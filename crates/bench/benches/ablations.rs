//! Ablation benches for the design choices DESIGN.md calls out: each
//! group measures a full scaled-down run with one mechanism toggled,
//! so `cargo bench` quantifies how much that mechanism contributes.

use criterion::{criterion_group, criterion_main, Criterion};
use tiersim_core::{run_workload, Dataset, ExperimentConfig, Kernel, MachineConfig};
use tiersim_policy::TieringMode;

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        scale: 11,
        degree: 8,
        trials: 1,
        sample_period: 211,
        jobs: 1,
        ..ExperimentConfig::default()
    }
}

fn machine(f: impl FnOnce(&mut MachineConfig)) -> MachineConfig {
    let mut m = cfg().machine(TieringMode::AutoNuma);
    f(&mut m);
    m
}

fn run(m: MachineConfig) -> f64 {
    let w = cfg().workload(Kernel::Bc, Dataset::Kron);
    run_workload(m, w).unwrap().total_secs
}

/// NVM internal 256 B buffer on/off: drives the sequential/random latency
/// split the paper attributes to the Optane architecture.
fn ablate_xpbuffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_xpbuffer");
    g.sample_size(10);
    g.bench_function("buffered", |b| b.iter(|| run(machine(|_| {}))));
    g.bench_function("unbuffered", |b| {
        b.iter(|| {
            run(machine(|m| {
                // Every NVM access pays the media latency.
                m.mem.nvm.buffer_entries = 1;
                m.mem.nvm.read_hit = m.mem.nvm.read_miss;
                m.mem.nvm.write_hit = m.mem.nvm.write_miss;
            }))
        })
    });
    g.finish();
}

/// Promotion rate limit sweep (kernel `numa_balancing_rate_limit_mbps`).
fn ablate_rate_limit(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_rate_limit");
    g.sample_size(10);
    for mbps in [1u64, 64, 65_536] {
        g.bench_function(format!("limit_{mbps}mbps"), |b| {
            b.iter(|| {
                run(machine(|m| {
                    m.os.promo_rate_limit_bytes_per_sec = mbps << 20;
                }))
            })
        });
    }
    g.finish();
}

/// Dynamic threshold vs fixed threshold (clamps pinned to the initial
/// value disable adaptation).
fn ablate_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_threshold");
    g.sample_size(10);
    g.bench_function("dynamic", |b| b.iter(|| run(machine(|_| {}))));
    g.bench_function("fixed", |b| {
        b.iter(|| {
            run(machine(|m| {
                m.os.hot_threshold_min_cycles = m.os.hot_threshold_cycles;
                m.os.hot_threshold_max_cycles = m.os.hot_threshold_cycles;
            }))
        })
    });
    g.finish();
}

/// Page cache on/off (Finding 5's mechanism).
fn ablate_page_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_page_cache");
    g.sample_size(10);
    g.bench_function("enabled", |b| b.iter(|| run(machine(|_| {}))));
    g.bench_function("disabled", |b| b.iter(|| run(machine(|m| m.os.page_cache_enabled = false))));
    g.finish();
}

/// Direction-optimizing BFS vs top-down-only: the bottom-up phase's
/// sequential scans change the external access mix.
fn ablate_bfs_direction(c: &mut Criterion) {
    use tiersim_graph::{bfs, build_sim_csr, BfsParams, UniformGenerator};
    use tiersim_mem::NullBackend;
    let el = UniformGenerator::new(11, 16).seed(9).generate();
    let mut m = NullBackend::new();
    let graph = build_sim_csr(&mut m, &el, true, 4);
    let mut g = c.benchmark_group("ablate_bfs_direction");
    g.bench_function("direction_optimizing", |b| {
        b.iter(|| bfs(&mut m, &graph, 0, 4, BfsParams::default()))
    });
    g.bench_function("top_down_only", |b| {
        b.iter(|| bfs(&mut m, &graph, 0, 4, BfsParams { alpha: 1, beta: 18 }))
    });
    g.finish();
}

/// TLB-reach sweep: Table 3's TLB-miss amplification depends on how much
/// of the footprint the TLBs cover.
fn ablate_tlb_reach(c: &mut Criterion) {
    use tiersim_mem::TlbGeometry;
    let mut g = c.benchmark_group("ablate_tlb_reach");
    g.sample_size(10);
    for (name, dtlb, stlb) in
        [("tiny_16_64", 16usize, 64usize), ("medium_64_512", 64, 512), ("huge_256_4096", 256, 4096)]
    {
        g.bench_function(name, |b| {
            b.iter(|| {
                run(machine(|m| {
                    m.mem.dtlb = TlbGeometry { entries: dtlb, ways: 4 };
                    m.mem.stlb = TlbGeometry { entries: stlb, ways: 8 };
                }))
            })
        });
    }
    g.finish();
}

/// Tiering-mode comparison: AutoNUMA vs the paper's static mapping vs
/// Memory Mode vs the all-DRAM/all-NVM brackets, on bc_kron.
fn ablate_tiering_mode(c: &mut Criterion) {
    use tiersim_core::{plan_from_report, run_workload};
    let mut g = c.benchmark_group("ablate_tiering_mode");
    g.sample_size(10);
    let w = cfg().workload(Kernel::Bc, Dataset::Kron);
    g.bench_function("autonuma", |b| {
        b.iter(|| run_workload(cfg().machine(TieringMode::AutoNuma), w).unwrap().total_secs)
    });
    let base = cfg().machine(TieringMode::AutoNuma);
    let profile = run_workload(base.clone(), w).unwrap();
    let plan = plan_from_report(&profile, &base, false);
    g.bench_function("static_object", |b| {
        b.iter(|| {
            let mut m = base.clone();
            m.mode = TieringMode::StaticObject(plan.clone());
            run_workload(m, w).unwrap().total_secs
        })
    });
    g.bench_function("memory_mode", |b| {
        b.iter(|| run_workload(cfg().machine(TieringMode::MemoryMode), w).unwrap().total_secs)
    });
    g.bench_function("all_nvm", |b| {
        b.iter(|| run_workload(cfg().machine(TieringMode::AllNvm), w).unwrap().total_secs)
    });
    g.finish();
}

criterion_group!(
    benches,
    ablate_xpbuffer,
    ablate_rate_limit,
    ablate_threshold,
    ablate_page_cache,
    ablate_bfs_direction,
    ablate_tlb_reach,
    ablate_tiering_mode
);
criterion_main!(benches);
