//! Microbenchmarks of the simulator's hot access path: cache hits, device
//! misses, TLB walks, and page migration — plus the tracked perf baseline:
//! streaming throughput through the `access_run` fast lane vs the
//! per-element path, and experiment-sweep wall time serial vs parallel,
//! written to `BENCH_access_path.json` at the repo root.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;
use tiersim_core::{run_workload, ExperimentConfig};
use tiersim_mem::{
    AccessError, AccessKind, CacheGeometry, DramModel, DramTimings, MemConfig, MemPolicy,
    MemorySystem, NvmModel, NvmTimings, PageNum, SetAssocCache, Tier, Tlb, TlbGeometry, VirtAddr,
    PAGE_SHIFT, PAGE_SIZE,
};
use tiersim_os::{AutoNuma, OsConfig};
use tiersim_policy::TieringMode;

fn sys_with_resident(pages: u64, tier: Tier) -> (MemorySystem, VirtAddr) {
    let mut sys = MemorySystem::new(
        MemConfig::builder()
            .dram_capacity((pages + 16) * PAGE_SIZE)
            .nvm_capacity(4 * (pages + 16) * PAGE_SIZE)
            .build()
            .unwrap(),
    )
    .unwrap();
    let a = sys.mmap(pages * PAGE_SIZE, MemPolicy::Default, "bench").unwrap();
    for i in 0..pages {
        sys.map_page((a + i * PAGE_SIZE).page(), tier, 0).unwrap();
    }
    (sys, a)
}

fn bench_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("access_path");

    let (mut sys, a) = sys_with_resident(16, Tier::Dram);
    sys.access(a, AccessKind::Load, 0).unwrap(); // warm
    g.bench_function("l1_hit", |b| {
        b.iter(|| sys.access(black_box(a), AccessKind::Load, 0).unwrap())
    });

    let (mut sys, a) = sys_with_resident(2048, Tier::Dram);
    let mut i = 0u64;
    g.bench_function("dram_scattered", |b| {
        b.iter(|| {
            i = i.wrapping_add(40503) % 2048;
            sys.access(black_box(a + i * PAGE_SIZE + (i % 64) * 64), AccessKind::Load, 0).unwrap()
        })
    });

    let (mut sys, a) = sys_with_resident(2048, Tier::Nvm);
    let mut i = 0u64;
    g.bench_function("nvm_scattered", |b| {
        b.iter(|| {
            i = i.wrapping_add(40503) % 2048;
            sys.access(black_box(a + i * PAGE_SIZE + (i % 64) * 64), AccessKind::Load, 0).unwrap()
        })
    });

    let (mut sys, a) = sys_with_resident(64, Tier::Nvm);
    let mut flip = false;
    g.bench_function("migrate_page", |b| {
        b.iter(|| {
            let to = if flip { Tier::Nvm } else { Tier::Dram };
            flip = !flip;
            sys.migrate_page(a.page(), to).unwrap()
        })
    });
    g.finish();
}

fn bench_components(c: &mut Criterion) {
    let mut g = c.benchmark_group("components");

    let mut cache = SetAssocCache::new(CacheGeometry { capacity: 32 << 10, ways: 8, latency: 4 });
    let mut line = 0u64;
    g.bench_function("cache_access", |b| {
        b.iter(|| {
            line = line.wrapping_add(97) & 0xFFFF;
            cache.access(black_box(line), false)
        })
    });

    let mut dram = DramModel::new(DramTimings {
        banks: 16,
        row_bytes: 8 << 10,
        read_hit: 160,
        read_miss: 245,
        write_hit: 160,
        write_miss: 245,
    });
    let mut addr = 0u64;
    g.bench_function("dram_device", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(64 * 131) & 0xFF_FFFF;
            dram.read(black_box(addr))
        })
    });

    let mut nvm = NvmModel::new(NvmTimings {
        buffer_entries: 16,
        block_bytes: 256,
        read_hit: 330,
        read_miss: 930,
        write_hit: 420,
        write_miss: 1250,
    });
    g.bench_function("nvm_device", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(64 * 131) & 0xFF_FFFF;
            nvm.read(black_box(addr))
        })
    });

    // Set-associative two-level TLB vs a minimal direct-mapped table
    // (`idx = vpn % SIZE`, as tiny educational MMUs use). The direct map
    // drops associativity, the STLB, and stats — it bounds how much the
    // model's fidelity costs per lookup. Measured: the modeled TLB's
    // MRU-touch early-exit keeps the hot hit within ~2x of the bare
    // array, so the direct map is not worth the fidelity loss (Skylake's
    // DTLB is 4-way; see DESIGN.md §12).
    let mut tlb =
        Tlb::new(TlbGeometry { entries: 64, ways: 4 }, TlbGeometry { entries: 1536, ways: 12 });
    for p in 0..16u64 {
        tlb.insert(PageNum::new(p));
    }
    let mut p = 0u64;
    g.bench_function("tlb_hit_modeled", |b| {
        b.iter(|| {
            p = (p + 1) % 16;
            tlb.lookup(black_box(PageNum::new(p)))
        })
    });

    const DM_SIZE: u64 = 64;
    let mut direct: Vec<u64> = vec![u64::MAX; DM_SIZE as usize];
    for q in 0..16u64 {
        direct[(q % DM_SIZE) as usize] = q;
    }
    g.bench_function("tlb_hit_direct_mapped", |b| {
        b.iter(|| {
            p = (p + 1) % 16;
            black_box(direct[(p % DM_SIZE) as usize] == p)
        })
    });
    g.finish();
}

/// Elements in the streaming workload: 1M × 8 bytes = 8 MB = 2048 pages,
/// exactly the resident region below.
const STREAM_ELEMS: u64 = 1 << 20;

fn stream_system() -> (MemorySystem, VirtAddr) {
    sys_with_resident(2048, Tier::Dram)
}

/// Times one sequential 8-byte-stride load stream issued element by
/// element through `MemorySystem::access`. Returns (seconds, cycles).
fn time_per_element() -> (f64, u64) {
    let (mut sys, a) = stream_system();
    let t = Instant::now();
    let mut cycles = 0u64;
    for i in 0..STREAM_ELEMS {
        cycles += sys.access(a + i * 8, AccessKind::Load, 0).unwrap().cycles;
    }
    (t.elapsed().as_secs_f64(), black_box(cycles))
}

/// Times the same stream through the per-line batched fast lane (interval
/// engine bypassed).
fn time_fast_lane() -> (f64, u64) {
    let (mut sys, a) = stream_system();
    let t = Instant::now();
    let out = sys.access_run_lane(a, 8, STREAM_ELEMS, AccessKind::Load, 0).unwrap();
    (t.elapsed().as_secs_f64(), black_box(out.cycles))
}

/// Times the same stream through `access_run` with the closed-form
/// interval engine engaged (cold pre-mapped uniform pages). Also returns
/// the number of pages the engine advanced in closed form.
fn time_interval() -> (f64, (u64, u64)) {
    let (mut sys, a) = stream_system();
    let t = Instant::now();
    let out = sys.access_run(a, 8, STREAM_ELEMS, AccessKind::Load, 0).unwrap();
    (t.elapsed().as_secs_f64(), (black_box(out.cycles), sys.interval_stats().pages))
}

/// Pages in the streaming region (8 MB / 4 KiB).
const STREAM_PAGES: u64 = STREAM_ELEMS * 8 / PAGE_SIZE;

/// A system whose stream region is mmapped but *not* populated, paired
/// with an OS engine servicing its faults: every first touch demand-pages
/// through `AutoNuma::handle_fault`, as a freshly allocated graph buffer
/// would. `fault_around_pages = 1` is the pure demand-paged kernel
/// default shape; larger windows bulk-populate ahead of the stream.
fn demand_system(fault_around_pages: u64) -> (MemorySystem, AutoNuma, VirtAddr) {
    let mut sys = MemorySystem::new(
        MemConfig::builder()
            .dram_capacity((STREAM_PAGES + 64) * PAGE_SIZE)
            .nvm_capacity(4 * (STREAM_PAGES + 64) * PAGE_SIZE)
            .build()
            .unwrap(),
    )
    .unwrap();
    let a = sys.mmap(STREAM_PAGES * PAGE_SIZE, MemPolicy::Default, "bench").unwrap();
    let cfg = OsConfig { autonuma_enabled: false, fault_around_pages, ..Default::default() };
    let os = AutoNuma::new(cfg).unwrap();
    (sys, os, a)
}

/// Times the stream demand-paged element by element: every access goes
/// through `MemorySystem::access`, every first touch of a page through
/// the fault path. This is the regression the demand-populate lane is
/// measured against — the batched lanes cannot engage because the next
/// page is never resident yet.
fn time_demand_paged() -> (f64, u64) {
    let (mut sys, mut os, a) = demand_system(1);
    let t = Instant::now();
    let mut cycles = 0u64;
    for i in 0..STREAM_ELEMS {
        let addr = a + i * 8;
        loop {
            match sys.access(addr, AccessKind::Load, 0) {
                Ok(o) => {
                    cycles += o.cycles;
                    break;
                }
                Err(AccessError::Fault(pf)) => {
                    cycles += os.handle_fault(&mut sys, pf, 0).expect("demand fault").cost_cycles;
                }
                Err(AccessError::Segfault { addr }) => panic!("segfault at {addr}"),
            }
        }
    }
    (t.elapsed().as_secs_f64(), black_box(cycles))
}

/// Times the same stream with fault-around bulk population: each fault
/// maps a whole window ahead, so the machine-style dispatch loop finds
/// plain resident windows and hands them to `access_run`, re-engaging
/// the fast lane and the closed-form interval engine. Returns
/// (seconds, (cycles, interval_pages)).
fn time_demand_populated() -> (f64, (u64, u64)) {
    let (mut sys, mut os, a) = demand_system(STREAM_PAGES);
    let t = Instant::now();
    let mut cycles = 0u64;
    let mut i = 0u64;
    while i < STREAM_ELEMS {
        let addr = a + i * 8;
        let window = sys.plain_window(addr.page(), STREAM_PAGES as usize + 2);
        if window == 0 {
            match sys.access(addr, AccessKind::Load, 0) {
                Ok(o) => {
                    cycles += o.cycles;
                    i += 1;
                }
                Err(AccessError::Fault(pf)) => {
                    cycles += os.handle_fault(&mut sys, pf, 0).expect("populate fault").cost_cycles;
                }
                Err(AccessError::Segfault { addr }) => panic!("segfault at {addr}"),
            }
            continue;
        }
        let window_end = (addr.page().index() + window as u64) << PAGE_SHIFT;
        let max_in_window = (window_end - 1 - addr.raw()) / 8 + 1;
        let chunk = (STREAM_ELEMS - i).min(max_in_window);
        let out = sys.access_run(addr, 8, chunk, AccessKind::Load, 0).expect("resident window");
        cycles += out.cycles;
        i += out.elems;
    }
    (t.elapsed().as_secs_f64(), (black_box(cycles), sys.interval_stats().pages))
}

fn bench_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream");
    g.throughput(Throughput::Elements(STREAM_ELEMS));
    g.bench_function("per_element", |b| b.iter(|| time_per_element().1));
    g.bench_function("fast_lane", |b| b.iter(|| time_fast_lane().1));
    g.bench_function("interval", |b| b.iter(|| time_interval().1));
    g.bench_function("demand_paged", |b| b.iter(|| time_demand_paged().1));
    g.bench_function("demand_populate", |b| b.iter(|| time_demand_populated().1));
    g.finish();
}

/// The six-workload experiment cells at a small scale, as byte-producing
/// closures for the sweep executor.
fn sweep_cells() -> Vec<impl FnOnce() -> Vec<u8> + Send> {
    let cfg = ExperimentConfig {
        scale: 10,
        degree: 8,
        trials: 1,
        sample_period: 211,
        jobs: 1,
        ..ExperimentConfig::default()
    };
    cfg.workloads()
        .into_iter()
        .map(move |w| {
            let mc = cfg.machine_for(&w, TieringMode::AutoNuma);
            move || {
                let report = run_workload(mc, w).expect("sweep cell");
                let mut bytes = Vec::new();
                report.write_summary_csv(&mut bytes).expect("csv");
                bytes
            }
        })
        .collect()
}

/// Best-of-3 wall time of `f`, with its payload from the last rep.
fn best_of_3<T>(mut f: impl FnMut() -> (f64, T)) -> (f64, T) {
    let (mut best, mut payload) = f();
    for _ in 0..2 {
        let (secs, p) = f();
        payload = p;
        if secs < best {
            best = secs;
        }
    }
    (best, payload)
}

/// Measures the tracked perf baseline and writes it to
/// `BENCH_access_path.json` at the repo root.
fn bench_baseline(_c: &mut Criterion) {
    // Access-path throughput: all three lanes must charge bit-equal cycles.
    let (per_elem_secs, per_elem_cycles) = best_of_3(time_per_element);
    let (fast_secs, fast_cycles) = best_of_3(time_fast_lane);
    let (interval_secs, (interval_cycles, interval_pages)) = best_of_3(time_interval);
    assert_eq!(per_elem_cycles, fast_cycles, "fast lane diverged from the per-element path");
    assert_eq!(
        per_elem_cycles, interval_cycles,
        "interval engine diverged from the per-element path"
    );
    assert_eq!(interval_pages, 2048, "interval engine did not cover the whole stream");
    let per_elem_rate = STREAM_ELEMS as f64 / per_elem_secs;
    let fast_rate = STREAM_ELEMS as f64 / fast_secs;
    let interval_rate = STREAM_ELEMS as f64 / interval_secs.max(1e-12);

    // Demand-paged regime: element-by-element faulting vs fault-around
    // bulk population. The populated lane must re-engage the interval
    // engine (ISSUE 9's acceptance bar: >= 5x over the demand-paged
    // per-element path, enforced again by `cargo xtask bench-gate`).
    let (demand_secs, _demand_cycles) = best_of_3(time_demand_paged);
    let (populate_secs, (_populate_cycles, populate_interval_pages)) =
        best_of_3(time_demand_populated);
    assert!(
        populate_interval_pages >= STREAM_PAGES / 2,
        "interval engine covered only {populate_interval_pages} of {STREAM_PAGES} pages \
         in the populated lane"
    );
    let demand_rate = STREAM_ELEMS as f64 / demand_secs;
    let populate_rate = STREAM_ELEMS as f64 / populate_secs.max(1e-12);
    let populate_speedup = demand_secs / populate_secs.max(1e-12);
    assert!(
        populate_speedup >= 5.0,
        "fault-around population must beat demand paging >= 5x, got {populate_speedup:.2}x"
    );

    // Sweep wall time: serial vs one worker per core. On a single-core
    // host (jobs <= 1) the "parallel" run is the serial run again, so the
    // speedup is reported as null rather than a misleading ~1.0x.
    let jobs = tiersim_core::sweep::default_jobs();
    let (serial_secs, serial_bytes) = best_of_3(|| {
        let t = Instant::now();
        let out = tiersim_core::sweep::run_cells(1, sweep_cells());
        (t.elapsed().as_secs_f64(), out)
    });
    let (parallel_secs, parallel_bytes) = best_of_3(|| {
        let t = Instant::now();
        let out = tiersim_core::sweep::run_cells(jobs, sweep_cells());
        (t.elapsed().as_secs_f64(), out)
    });
    assert_eq!(serial_bytes, parallel_bytes, "parallel sweep changed result bytes");
    let sweep_speedup = if jobs > 1 {
        format!("{:.3}", serial_secs / parallel_secs.max(1e-12))
    } else {
        "null".to_string()
    };
    let sweep_note = if jobs > 1 {
        String::new()
    } else {
        ",\n    \"note\": \"single-core host: parallel run degenerates to serial, speedup omitted\""
            .to_string()
    };

    let json = format!(
        "{{\n  \"bench\": \"access_path\",\n  \"host_cores\": {cores},\n  \"access_path\": {{\n    \"stream_elements\": {elems},\n    \"per_element_secs\": {per_elem_secs:.6},\n    \"per_element_accesses_per_sec\": {per_elem_rate:.0},\n    \"fast_lane_secs\": {fast_secs:.6},\n    \"fast_lane_accesses_per_sec\": {fast_rate:.0},\n    \"fast_lane_speedup\": {lane_speedup:.3},\n    \"interval_secs\": {interval_secs:.6},\n    \"interval_accesses_per_sec\": {interval_rate:.0},\n    \"interval_speedup\": {interval_speedup:.3},\n    \"demand_paged_secs\": {demand_secs:.6},\n    \"demand_paged_accesses_per_sec\": {demand_rate:.0},\n    \"demand_populate_secs\": {populate_secs:.6},\n    \"demand_populate_accesses_per_sec\": {populate_rate:.0},\n    \"demand_populate_speedup\": {populate_speedup:.3}\n  }},\n  \"sweep\": {{\n    \"cells\": 6,\n    \"scale\": 10,\n    \"serial_secs\": {serial_secs:.3},\n    \"jobs\": {jobs},\n    \"parallel_secs\": {parallel_secs:.3},\n    \"sweep_speedup\": {sweep_speedup}{sweep_note}\n  }}\n}}\n",
        cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        elems = STREAM_ELEMS,
        lane_speedup = per_elem_secs / fast_secs.max(1e-12),
        interval_speedup = per_elem_secs / interval_secs.max(1e-12),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_access_path.json");
    tiersim_core::journal::atomic_write(std::path::Path::new(path), json.as_bytes())
        .expect("write BENCH_access_path.json");
    println!("wrote {path}:\n{json}");
}

criterion_group!(benches, bench_access, bench_components, bench_stream, bench_baseline);
criterion_main!(benches);
