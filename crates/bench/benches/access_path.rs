//! Microbenchmarks of the simulator's hot access path: cache hits, device
//! misses, TLB walks, and page migration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tiersim_mem::{
    AccessKind, CacheGeometry, DramModel, DramTimings, MemConfig, MemPolicy, MemorySystem,
    NvmModel, NvmTimings, SetAssocCache, Tier, VirtAddr, PAGE_SIZE,
};

fn sys_with_resident(pages: u64, tier: Tier) -> (MemorySystem, VirtAddr) {
    let mut sys = MemorySystem::new(
        MemConfig::builder()
            .dram_capacity((pages + 16) * PAGE_SIZE)
            .nvm_capacity(4 * (pages + 16) * PAGE_SIZE)
            .build()
            .unwrap(),
    )
    .unwrap();
    let a = sys.mmap(pages * PAGE_SIZE, MemPolicy::Default, "bench").unwrap();
    for i in 0..pages {
        sys.map_page((a + i * PAGE_SIZE).page(), tier, 0).unwrap();
    }
    (sys, a)
}

fn bench_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("access_path");

    let (mut sys, a) = sys_with_resident(16, Tier::Dram);
    sys.access(a, AccessKind::Load, 0).unwrap(); // warm
    g.bench_function("l1_hit", |b| {
        b.iter(|| sys.access(black_box(a), AccessKind::Load, 0).unwrap())
    });

    let (mut sys, a) = sys_with_resident(2048, Tier::Dram);
    let mut i = 0u64;
    g.bench_function("dram_scattered", |b| {
        b.iter(|| {
            i = i.wrapping_add(40503) % 2048;
            sys.access(black_box(a + i * PAGE_SIZE + (i % 64) * 64), AccessKind::Load, 0).unwrap()
        })
    });

    let (mut sys, a) = sys_with_resident(2048, Tier::Nvm);
    let mut i = 0u64;
    g.bench_function("nvm_scattered", |b| {
        b.iter(|| {
            i = i.wrapping_add(40503) % 2048;
            sys.access(black_box(a + i * PAGE_SIZE + (i % 64) * 64), AccessKind::Load, 0).unwrap()
        })
    });

    let (mut sys, a) = sys_with_resident(64, Tier::Nvm);
    let mut flip = false;
    g.bench_function("migrate_page", |b| {
        b.iter(|| {
            let to = if flip { Tier::Nvm } else { Tier::Dram };
            flip = !flip;
            sys.migrate_page(a.page(), to).unwrap()
        })
    });
    g.finish();
}

fn bench_components(c: &mut Criterion) {
    let mut g = c.benchmark_group("components");

    let mut cache = SetAssocCache::new(CacheGeometry { capacity: 32 << 10, ways: 8, latency: 4 });
    let mut line = 0u64;
    g.bench_function("cache_access", |b| {
        b.iter(|| {
            line = line.wrapping_add(97) & 0xFFFF;
            cache.access(black_box(line), false)
        })
    });

    let mut dram = DramModel::new(DramTimings {
        banks: 16,
        row_bytes: 8 << 10,
        read_hit: 160,
        read_miss: 245,
        write_hit: 160,
        write_miss: 245,
    });
    let mut addr = 0u64;
    g.bench_function("dram_device", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(64 * 131) & 0xFF_FFFF;
            dram.read(black_box(addr))
        })
    });

    let mut nvm = NvmModel::new(NvmTimings {
        buffer_entries: 16,
        block_bytes: 256,
        read_hit: 330,
        read_miss: 930,
        write_hit: 420,
        write_miss: 1250,
    });
    g.bench_function("nvm_device", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(64 * 131) & 0xFF_FFFF;
            nvm.read(black_box(addr))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_access, bench_components);
criterion_main!(benches);
