//! Cost of one tiersim-audit pass, sizing the `audit_every_ticks`
//! checkpoint knob: the auditor walks every resident page plus the
//! counter laws, so this measures the per-checkpoint overhead a
//! debug-build run pays.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tiersim_core::{Machine, MachineConfig};
use tiersim_mem::{MemBackend, PAGE_SIZE};
use tiersim_policy::TieringMode;

/// A machine with `pages` resident pages of mixed DRAM/NVM traffic.
fn warmed_machine(pages: u64) -> Machine {
    let cfg = MachineConfig::scaled_default(pages * PAGE_SIZE, TieringMode::AutoNuma);
    let mut m = Machine::new(cfg).expect("machine");
    let base = m.mmap(pages * PAGE_SIZE, "bench.audit");
    for i in 0..pages {
        m.store(base + i * PAGE_SIZE, 8);
    }
    // A second scattered pass generates hint faults and promotions.
    for i in 0..pages {
        m.load(base + (i.wrapping_mul(37) % pages) * PAGE_SIZE, 8);
    }
    m
}

fn bench_audit(c: &mut Criterion) {
    let mut g = c.benchmark_group("audit");
    for &pages in &[256u64, 4096] {
        let m = warmed_machine(pages);
        g.bench_function(format!("full_pass_{pages}_pages"), |b| {
            b.iter(|| {
                let report = black_box(&m).audit();
                assert!(report.is_clean());
                report.checks
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_audit);
criterion_main!(benches);
