//! One Criterion target per paper table/figure, at a reduced scale so
//! `cargo bench` exercises every reproduction end to end. The
//! full-resolution runs live in the `src/bin` reproduction binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use tiersim_core::experiments::{
    AutonumaTrace, Characterization, Comparison, ExperimentConfig, ObjectAnalysis,
};
use tiersim_core::{Dataset, Kernel};

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        scale: 11,
        degree: 8,
        trials: 1,
        sample_period: 211,
        jobs: 1,
        ..ExperimentConfig::default()
    }
}

fn bench_characterization(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp_characterization");
    g.sample_size(10);
    // One run feeds Fig 3–5 and Tables 1–3; bench each derivation on a
    // pre-computed bundle, plus the end-to-end bundle itself.
    g.bench_function("exp_bundle_six_workloads", |b| {
        b.iter(|| Characterization::run(&cfg()).unwrap())
    });
    let bundle = Characterization::run(&cfg()).unwrap();
    g.bench_function("exp_fig03_levels", |b| b.iter(|| bundle.fig3()));
    g.bench_function("exp_fig04_touches", |b| b.iter(|| bundle.fig4()));
    g.bench_function("exp_fig05_reuse", |b| b.iter(|| bundle.fig5()));
    g.bench_function("exp_table1_location", |b| b.iter(|| bundle.table1()));
    g.bench_function("exp_table2_cost", |b| b.iter(|| bundle.table2()));
    g.bench_function("exp_table3_tlb", |b| b.iter(|| bundle.table3()));
    g.finish();
}

fn bench_objects_and_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp_objects");
    g.sample_size(10);
    g.bench_function("exp_fig06_07_08_object_analysis", |b| {
        b.iter(|| {
            let a = ObjectAnalysis::run(&cfg()).unwrap();
            (a.fig6(tiersim_mem::Tier::Nvm, 10), a.fig7(), a.fig8())
        })
    });
    g.bench_function("exp_fig09_10_autonuma_trace", |b| {
        b.iter(|| {
            let t = AutonumaTrace::run(&cfg()).unwrap();
            (t.fig9(), t.fig10())
        })
    });
    g.finish();
}

fn bench_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp_comparison");
    g.sample_size(10);
    g.bench_function("exp_fig11_one_pair", |b| {
        b.iter(|| {
            let cfg = cfg();
            let w = cfg.workload(Kernel::Bfs, Dataset::Kron);
            Comparison::compare(&cfg, w, false).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_characterization, bench_objects_and_trace, bench_comparison);
criterion_main!(benches);
