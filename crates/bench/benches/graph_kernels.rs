//! Benchmarks of the graph substrate: generators, builders, and the
//! kernels on a free (null) backend, isolating algorithm overhead from
//! memory simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use tiersim_graph::{
    bc, bfs, build_sim_csr, cc_afforest, cc_sv, pr, BfsParams, KroneckerGenerator, PrParams,
    UniformGenerator,
};
use tiersim_mem::NullBackend;

const SCALE: u32 = 12;
const DEGREE: usize = 8;

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generate");
    g.bench_function("kronecker", |b| {
        b.iter(|| KroneckerGenerator::new(SCALE, DEGREE).seed(1).generate())
    });
    g.bench_function("uniform", |b| {
        b.iter(|| UniformGenerator::new(SCALE, DEGREE).seed(1).generate())
    });
    g.finish();
}

fn bench_build_and_kernels(c: &mut Criterion) {
    let el = KroneckerGenerator::new(SCALE, DEGREE).seed(1).generate();
    let mut g = c.benchmark_group("kernels_null_backend");
    g.sample_size(20);

    g.bench_function("build_csr", |b| {
        b.iter(|| {
            let mut m = NullBackend::new();
            build_sim_csr(&mut m, &el, true, 4)
        })
    });

    let mut m = NullBackend::new();
    let graph = build_sim_csr(&mut m, &el, true, 4);
    g.bench_function("bfs", |b| b.iter(|| bfs(&mut m, &graph, 1, 4, BfsParams::default())));
    g.bench_function("bc_one_source", |b| b.iter(|| bc(&mut m, &graph, &[1], 4)));
    g.bench_function("cc_sv", |b| b.iter(|| cc_sv(&mut m, &graph, 4)));
    g.bench_function("cc_afforest", |b| b.iter(|| cc_afforest(&mut m, &graph, 2, 4)));
    g.bench_function("pagerank", |b| {
        b.iter(|| pr(&mut m, &graph, PrParams { max_iters: 5, ..Default::default() }, 4))
    });
    g.finish();
}

criterion_group!(benches, bench_generators, bench_build_and_kernels);
criterion_main!(benches);
