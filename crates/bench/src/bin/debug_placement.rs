//! Diagnostic: per-label sample/traffic composition under AutoNUMA vs the
//! static plan, for calibrating the Figure 11 reproduction.

use tiersim_bench::Cli;
use tiersim_core::experiments::ExperimentConfig;
use tiersim_core::{plan_from_report, run_workload, Dataset, Kernel, RunReport};
use tiersim_policy::{aggregate_by_label, TieringMode};

fn dump(tag: &str, r: &RunReport) {
    println!(
        "--- {tag}: exec {:.4}s total {:.4}s nvm_samples {} ---",
        r.exec_secs(),
        r.total_secs,
        r.nvm_samples()
    );
    let mapped = r.mapped();
    let stats = aggregate_by_label(&mapped);
    println!(
        "{:<22} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "label", "bytes", "samples", "dram", "nvm", "density"
    );
    for s in &stats {
        let (dram, nvm): (u64, u64) = mapped
            .objects
            .iter()
            .filter(|o| *o.site == s.label)
            .fold((0, 0), |(d, n), o| (d + o.dram_samples, n + o.nvm_samples));
        println!(
            "{:<22} {:>10} {:>9} {:>9} {:>9} {:>10.6}",
            s.label,
            s.bytes,
            s.samples,
            dram,
            nvm,
            s.density()
        );
    }
    println!("counters: {:?}", r.counters);
}

fn main() {
    let cli = Cli::from_env();
    let cfg: ExperimentConfig = cli.experiment;
    let kernels = [Kernel::Bc];
    for kernel in kernels {
        for dataset in [Dataset::Kron] {
            let w = cfg.workload(kernel, dataset);
            let base = cfg.machine_for(&w, TieringMode::AutoNuma);
            println!(
                "== {} dram={}MB nvm={}MB steady_est={}MB peak_est={}MB ==",
                w.name(),
                base.mem.dram_capacity >> 20,
                base.mem.nvm_capacity >> 20,
                w.steady_app_bytes() >> 20,
                w.peak_app_bytes() >> 20,
            );
            let auto = run_workload(base.clone(), w).expect("autonuma run");
            dump("autonuma", &auto);
            let plan = plan_from_report(&auto, &base, false);
            println!(
                "plan: dram_used={} budget={} spilled={:?}",
                plan.dram_used, plan.dram_budget, plan.spilled_label
            );
            for (label, p) in plan.placement.iter() {
                println!("  {label:<22} -> {p:?}");
            }
            let mut sc = base.clone();
            sc.mode = TieringMode::StaticObject(plan);
            let stat = run_workload(sc, w).expect("static run");
            dump("static", &stat);
        }
    }
}
