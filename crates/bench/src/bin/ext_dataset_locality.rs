//! Extension experiment (beyond the paper): does AutoNUMA's trouble come
//! from graph *irregularity*? Run the same kernel on the paper's irregular
//! inputs (kron/urand) and on a spatially-local lattice ("road"), and
//! compare the page-touch profile, promotion activity, and the benefit of
//! the object-level static mapping.

use tiersim_bench::{banner, Cli};
use tiersim_core::render::{pct, secs, TextTable};
use tiersim_core::{plan_from_report, run_workload, Dataset, Kernel};
use tiersim_policy::TieringMode;
use tiersim_profile::TouchHistogram;

fn main() {
    let cli = Cli::from_env();
    banner("extension — dataset locality (irregular vs lattice)", &cli);
    let cfg = cli.experiment;
    let mut t = TextTable::new(vec![
        "Dataset",
        "1-touch",
        "3+-touch",
        "Promotions",
        "AutoNUMA",
        "Static",
        "Static gain",
    ]);
    for dataset in [Dataset::Kron, Dataset::Urand, Dataset::Road] {
        let w = cfg.workload(Kernel::Bfs, dataset);
        let base = cfg.machine(TieringMode::AutoNuma);
        let auto = run_workload(base.clone(), w).expect("autonuma run");
        let plan = plan_from_report(&auto, &base, true);
        let mut sc = base;
        sc.mode = TieringMode::StaticObject(plan);
        let stat = run_workload(sc, w).expect("static run");
        let (one, _, three) = TouchHistogram::of(&auto.samples).access_fractions();
        t.row(vec![
            dataset.to_string(),
            pct(one),
            pct(three),
            auto.counters.pgpromote_success.to_string(),
            secs(auto.total_secs),
            secs(stat.total_secs),
            pct(1.0 - stat.total_secs / auto.total_secs),
        ]);
    }
    let text = t.render();
    println!("{text}");
    cli.maybe_write_out(&text);
}
