//! Extension experiment (beyond the paper): the paper's static
//! object-level mapping vs a *dynamic* object-level tierer that re-ranks
//! and migrates objects online — the future work its conclusion sketches.

use tiersim_bench::{banner, Cli};
use tiersim_core::render::{pct, secs, TextTable};
use tiersim_core::{plan_from_report, run_workload, Dataset, Kernel};
use tiersim_policy::{DynamicObjectConfig, TieringMode};

fn main() {
    let cli = Cli::from_env();
    banner("extension — dynamic vs static object-level tiering", &cli);
    let cfg = cli.experiment;
    let mut t = TextTable::new(vec![
        "Workload",
        "AutoNUMA",
        "Static object",
        "Dynamic object",
        "Static gain",
        "Dynamic gain",
    ]);
    for kernel in [Kernel::Bc, Kernel::Cc] {
        for dataset in [Dataset::Kron, Dataset::Urand] {
            let w = cfg.workload(kernel, dataset);
            let base = cfg.machine(TieringMode::AutoNuma);
            let auto = run_workload(base.clone(), w).expect("autonuma");
            let plan = plan_from_report(&auto, &base, true);
            let mut sc = base.clone();
            sc.mode = TieringMode::StaticObject(plan);
            let stat = run_workload(sc, w).expect("static");
            let mut dc = base;
            dc.mode = TieringMode::DynamicObject(DynamicObjectConfig::default());
            let dynr = run_workload(dc, w).expect("dynamic");
            t.row(vec![
                w.name(),
                secs(auto.total_secs),
                secs(stat.total_secs),
                secs(dynr.total_secs),
                pct(1.0 - stat.total_secs / auto.total_secs),
                pct(1.0 - dynr.total_secs / auto.total_secs),
            ]);
        }
    }
    let text = t.render();
    println!("{text}");
    cli.maybe_write_out(&text);
}
