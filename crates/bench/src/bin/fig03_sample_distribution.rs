//! Reproduces the paper's Figure 3 (sample distribution across levels).

use tiersim_bench::{banner, Cli};
use tiersim_core::experiments::Characterization;

fn main() {
    let cli = Cli::from_env();
    banner("Figure 3 — sample distribution across levels", &cli);
    let c = Characterization::run(&cli.experiment).expect("characterization run");
    let text = c.render_fig3();
    println!("{text}");
    cli.maybe_write_out(&text);
}
