//! Reproduces the paper's Figure 4 (page touch-count histogram).

use tiersim_bench::{banner, Cli};
use tiersim_core::experiments::Characterization;

fn main() {
    let cli = Cli::from_env();
    banner("Figure 4 — page touch-count histogram", &cli);
    let c = Characterization::run(&cli.experiment).expect("characterization run");
    let text = c.render_fig4();
    println!("{text}");
    cli.maybe_write_out(&text);
}
