//! Reproduces the paper's Figure 5 (2-touch reuse intervals).

use tiersim_bench::{banner, Cli};
use tiersim_core::experiments::Characterization;

fn main() {
    let cli = Cli::from_env();
    banner("Figure 5 — 2-touch reuse intervals", &cli);
    let c = Characterization::run(&cli.experiment).expect("characterization run");
    let text = c.render_fig5();
    println!("{text}");
    cli.maybe_write_out(&text);
}
