//! Reproduces Figure 6: top-10 objects by DRAM and NVM samples
//! (`bc_kron`).

use tiersim_bench::{banner, Cli};
use tiersim_core::experiments::ObjectAnalysis;

fn main() {
    let cli = Cli::from_env();
    banner("Figure 6 — top objects by external samples (bc_kron)", &cli);
    let a = ObjectAnalysis::run(&cli.experiment).expect("bc_kron run");
    let text = a.render_fig6(10);
    println!("{text}");
    cli.maybe_write_out(&text);
}
