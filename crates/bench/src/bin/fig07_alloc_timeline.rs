//! Reproduces Figure 7: allocation amounts over time, marking when the
//! hottest NVM object was allocated (`bc_kron`).

use tiersim_bench::{banner, Cli};
use tiersim_core::experiments::ObjectAnalysis;
use tiersim_core::render::TextTable;

fn main() {
    let cli = Cli::from_env();
    banner("Figure 7 — allocation timeline (bc_kron)", &cli);
    let a = ObjectAnalysis::run(&cli.experiment).expect("bc_kron run");
    let tl = a.fig7();
    let mut t = TextTable::new(vec!["t(s)", "live MB"]);
    for &(secs, bytes) in &tl.points {
        t.row(vec![format!("{secs:.4}"), format!("{:.2}", bytes as f64 / (1 << 20) as f64)]);
    }
    let mut text = t.render();
    text.push_str(&format!("peak live: {:.2} MB\n", tl.peak_bytes() as f64 / (1 << 20) as f64));
    if let Some(secs) = a.hottest_nvm_alloc_secs() {
        text.push_str(&format!("hottest NVM object allocated at t = {secs:.4}s\n"));
    }
    println!("{text}");
    cli.maybe_write_out(&text);
}
