//! Reproduces Figure 8: the access pattern of the hottest NVM object over
//! its lifetime, plus a one-second zoom showing fine-grained randomness
//! (`bc_kron`).

use tiersim_bench::{banner, Cli};
use tiersim_core::experiments::ObjectAnalysis;

fn main() {
    let cli = Cli::from_env();
    banner("Figure 8 — hottest NVM object access pattern (bc_kron)", &cli);
    let a = ObjectAnalysis::run(&cli.experiment).expect("bc_kron run");
    let Some(pattern) = a.fig8() else {
        println!("no NVM samples recorded; increase --scale");
        return;
    };
    let mut text = String::new();
    text.push_str(&format!(
        "samples on hottest NVM object: {} (randomness metric {:.3})\n",
        pattern.points.len(),
        pattern.randomness().unwrap_or(0.0),
    ));
    text.push_str("t(s)      page  thread\n");
    for &(t, page, tid) in pattern.points.iter().take(40) {
        text.push_str(&format!("{t:<8.4}  {page:<5} t{tid}\n"));
    }
    if pattern.points.len() > 40 {
        text.push_str(&format!("... ({} more)\n", pattern.points.len() - 40));
    }
    // The paper's zoom: one "dilated second" wide window mid-run.
    if let Some(&(mid, _, _)) = pattern.points.get(pattern.points.len() / 2) {
        let z = pattern.zoom(mid, mid + 0.001);
        text.push_str(&format!(
            "zoom [{mid:.4}s, +1ms): {} samples, randomness {:.3}\n",
            z.points.len(),
            z.randomness().unwrap_or(0.0),
        ));
    }
    println!("{text}");
    cli.maybe_write_out(&text);
}
