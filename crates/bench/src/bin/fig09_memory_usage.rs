//! Reproduces Figure 9: DRAM/NVM usage, demotion/promotion counters, and
//! CPU utilization over time (`bc_kron`).

use tiersim_bench::{banner, Cli};
use tiersim_core::experiments::AutonumaTrace;

fn main() {
    let cli = Cli::from_env();
    banner("Figure 9 — memory usage and migration counters over time (bc_kron)", &cli);
    let tr = AutonumaTrace::run(&cli.experiment).expect("bc_kron run");
    let text = tr.render_fig9();
    println!("{text}");
    cli.maybe_write_out(&text);
}
