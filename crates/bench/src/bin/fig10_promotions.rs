//! Reproduces Figure 10: DRAM load samples over time vs pages promoted
//! (`bc_kron`).

use tiersim_bench::{banner, Cli};
use tiersim_core::experiments::AutonumaTrace;

fn main() {
    let cli = Cli::from_env();
    banner("Figure 10 — DRAM loads vs promotions over time (bc_kron)", &cli);
    let tr = AutonumaTrace::run(&cli.experiment).expect("bc_kron run");
    let text = tr.render_fig10();
    println!("{text}");
    cli.maybe_write_out(&text);
}
