//! Reproduces Figure 11: execution time of the object-level static
//! mapping vs AutoNUMA across the six paper workloads, including the
//! spill variants for the CC workloads.

use tiersim_bench::{banner, Cli};
use tiersim_core::experiments::Comparison;

fn main() {
    let cli = Cli::from_env();
    banner("Figure 11 — object-level static mapping vs AutoNUMA", &cli);
    let c = Comparison::run(&cli.experiment).expect("comparison runs");
    let text = c.render();
    println!("{text}");
    cli.maybe_write_out(&text);
}
