//! Runs every reproduction experiment and prints all tables/figures,
//! sharing the six characterization runs across Tables 1–3 and
//! Figures 3–5.
//!
//! Experiments are isolated: a failing (or panicking) experiment is
//! recorded and the rest still run. A failure summary is printed at the
//! end and the process exits nonzero if anything failed.
//!
//! `--jobs N` runs independent experiment cells on N worker threads; the
//! printed tables and `--out` bytes are identical for every value (see
//! DESIGN.md §10).

use tiersim_bench::{banner, run_repro_suite, Cli};

fn main() {
    let cli = Cli::from_env();
    banner("full paper reproduction", &cli);
    // Stderr only: stdout stays byte-identical across --jobs values.
    eprintln!("jobs: {}", cli.experiment.jobs);
    let suite = run_repro_suite(&cli.experiment, cli.inject_failure);
    print!("{}", suite.summary());
    cli.maybe_write_out(suite.output());
    cli.maybe_write_trace(suite.trace_log());
    std::process::exit(suite.exit_code());
}
