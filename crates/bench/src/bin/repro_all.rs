//! Runs every reproduction experiment and prints all tables/figures,
//! sharing the six characterization runs across Tables 1–3 and
//! Figures 3–5.

use tiersim_bench::{banner, Cli};
use tiersim_core::experiments::{AutonumaTrace, Characterization, Comparison, ObjectAnalysis};

fn main() {
    let cli = Cli::from_env();
    banner("full paper reproduction", &cli);
    let mut all = String::new();
    let mut section = |title: &str, body: String| {
        println!("--- {title} ---\n{body}");
        all.push_str(&format!("--- {title} ---\n{body}\n"));
    };

    let c = Characterization::run(&cli.experiment).expect("characterization");
    section("Figure 3: sample distribution across levels", c.render_fig3());
    section("Figure 4: page touch-count histogram", c.render_fig4());
    section("Figure 5: 2-touch reuse intervals (hottest NVM object)", c.render_fig5());
    section("Table 1: external access location", c.render_table1());
    section("Table 2: external latency cost split", c.render_table2());
    section("Table 3: external access cost by TLB outcome", c.render_table3());

    let a = ObjectAnalysis::run(&cli.experiment).expect("object analysis");
    section("Figure 6: top objects by external samples (bc_kron)", a.render_fig6(10));
    if let Some(secs) = a.hottest_nvm_alloc_secs() {
        section(
            "Figure 7: allocation timeline (bc_kron)",
            format!(
                "peak live {:.2} MB over {} events; hottest NVM object allocated at t={secs:.4}s\n",
                a.fig7().peak_bytes() as f64 / (1 << 20) as f64,
                a.fig7().points.len(),
            ),
        );
    }
    if let Some(p) = a.fig8() {
        section(
            "Figure 8: hottest NVM object access pattern (bc_kron)",
            format!(
                "{} samples, randomness metric {:.3}\n",
                p.points.len(),
                p.randomness().unwrap_or(0.0)
            ),
        );
    }

    let tr = AutonumaTrace::run(&cli.experiment).expect("autonuma trace");
    section("Figure 9: memory usage and counters over time (bc_kron)", tr.render_fig9());
    section("Figure 10: DRAM loads vs promotions (bc_kron)", tr.render_fig10());

    let cmp = Comparison::run(&cli.experiment).expect("comparison");
    section("Figure 11: object-level static mapping vs AutoNUMA", cmp.render());

    cli.maybe_write_out(&all);
}
