//! Runs every reproduction experiment and prints all tables/figures,
//! sharing the six characterization runs across Tables 1–3 and
//! Figures 3–5.
//!
//! Experiments are isolated: a failing (or panicking) experiment is
//! recorded and the rest still run. A failure summary is printed at the
//! end and the process exits nonzero if anything failed.

use tiersim_bench::{banner, Cli, ExperimentSuite};
use tiersim_core::experiments::{AutonumaTrace, Characterization, Comparison, ObjectAnalysis};
use tiersim_core::CoreError;

fn main() {
    let cli = Cli::from_env();
    banner("full paper reproduction", &cli);
    let mut suite = ExperimentSuite::new();

    if cli.inject_failure {
        // Deliberate failure to exercise the continue-on-failure path:
        // everything below must still run and the exit code must be 1.
        suite.attempt("injected failure", || {
            Err::<(), _>(CoreError::InvalidConfig {
                what: "injected failure",
                got: "--inject-failure".to_string(),
            })
        });
    }

    if let Some(c) = suite.attempt("characterization", || Characterization::run(&cli.experiment)) {
        for (title, body) in [
            ("Figure 3: sample distribution across levels", c.render_fig3()),
            ("Figure 4: page touch-count histogram", c.render_fig4()),
            ("Figure 5: 2-touch reuse intervals (hottest NVM object)", c.render_fig5()),
            ("Table 1: external access location", c.render_table1()),
            ("Table 2: external latency cost split", c.render_table2()),
            ("Table 3: external access cost by TLB outcome", c.render_table3()),
        ] {
            println!("{}", suite.section(title, &body));
        }
    }

    if let Some(a) = suite.attempt("object analysis", || ObjectAnalysis::run(&cli.experiment)) {
        println!(
            "{}",
            suite
                .section("Figure 6: top objects by external samples (bc_kron)", &a.render_fig6(10))
        );
        if let Some(secs) = a.hottest_nvm_alloc_secs() {
            let body = format!(
                "peak live {:.2} MB over {} events; hottest NVM object allocated at t={secs:.4}s\n",
                a.fig7().peak_bytes() as f64 / (1 << 20) as f64,
                a.fig7().points.len(),
            );
            println!("{}", suite.section("Figure 7: allocation timeline (bc_kron)", &body));
        }
        if let Some(p) = a.fig8() {
            let body = format!(
                "{} samples, randomness metric {:.3}\n",
                p.points.len(),
                p.randomness().unwrap_or(0.0)
            );
            println!(
                "{}",
                suite.section("Figure 8: hottest NVM object access pattern (bc_kron)", &body)
            );
        }
    }

    if let Some(tr) = suite.attempt("autonuma trace", || AutonumaTrace::run(&cli.experiment)) {
        println!(
            "{}",
            suite.section(
                "Figure 9: memory usage and counters over time (bc_kron)",
                &tr.render_fig9()
            )
        );
        println!(
            "{}",
            suite.section("Figure 10: DRAM loads vs promotions (bc_kron)", &tr.render_fig10())
        );
    }

    if let Some(cmp) = suite.attempt("comparison", || Comparison::run(&cli.experiment)) {
        println!(
            "{}",
            suite.section("Figure 11: object-level static mapping vs AutoNUMA", &cmp.render())
        );
    }

    print!("{}", suite.summary());
    cli.maybe_write_out(suite.output());
    std::process::exit(suite.exit_code());
}
