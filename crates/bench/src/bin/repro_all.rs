//! Runs every reproduction experiment and prints all tables/figures,
//! sharing the six characterization runs across Tables 1–3 and
//! Figures 3–5.
//!
//! Experiments are isolated: a failing (or panicking) experiment is
//! recorded and the rest still run. A failure summary is printed at the
//! end and the process exits nonzero if anything failed.
//!
//! `--jobs N` runs independent experiment cells on N worker threads; the
//! printed tables and `--out` bytes are identical for every value (see
//! DESIGN.md §10).
//!
//! `--resume PATH` runs the suite against a durable write-ahead journal
//! (DESIGN.md §13): killed runs — including `--kill-at N` injected kills
//! and real SIGKILL — resume where they left off, never re-executing a
//! completed experiment, and produce byte-identical reports to an
//! uninterrupted run.

//! `repro_all tune ...` dispatches to the AutoNUMA knob auto-tuner
//! service instead (DESIGN.md §16); see `tiersim_bench::tune_cli`.

use tiersim_bench::{banner, run_repro_suite, run_suite_journaled, run_tune_cli, Cli};

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("tune") {
        std::process::exit(run_tune_cli(args.skip(1)));
    }
    let cli = Cli::from_env();
    banner("full paper reproduction", &cli);
    // Stderr only: stdout stays byte-identical across --jobs values and
    // kill/resume splits.
    eprintln!("jobs: {}", cli.experiment.jobs);
    let suite = if let Some(journal) = &cli.resume {
        match run_suite_journaled(
            &cli.experiment,
            journal,
            cli.runner_options(),
            cli.inject_failure,
        ) {
            Ok(suite) => suite,
            Err(e) => {
                eprintln!("journal error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        run_repro_suite(&cli.experiment, cli.inject_failure)
    };
    print!("{}", suite.summary());
    if let Some(stats) = suite.cell_stats() {
        // Session-relative counters are stderr-only for the same reason;
        // the recovery tests read them to prove completed cells never
        // re-run.
        eprintln!("journal: {} cells executed, {} replayed", stats.executed, stats.replayed);
    }
    cli.maybe_write_out(suite.output());
    cli.maybe_write_trace(suite.trace_exports());
    std::process::exit(suite.exit_code());
}
