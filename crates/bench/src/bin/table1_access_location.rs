//! Reproduces the paper's Table 1 (external access location).

use tiersim_bench::{banner, Cli};
use tiersim_core::experiments::Characterization;

fn main() {
    let cli = Cli::from_env();
    banner("Table 1 — external access location", &cli);
    let c = Characterization::run(&cli.experiment).expect("characterization run");
    let text = c.render_table1();
    println!("{text}");
    cli.maybe_write_out(&text);
}
