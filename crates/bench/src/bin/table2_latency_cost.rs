//! Reproduces the paper's Table 2 (external latency cost split).

use tiersim_bench::{banner, Cli};
use tiersim_core::experiments::Characterization;

fn main() {
    let cli = Cli::from_env();
    banner("Table 2 — external latency cost split", &cli);
    let c = Characterization::run(&cli.experiment).expect("characterization run");
    let text = c.render_table2();
    println!("{text}");
    cli.maybe_write_out(&text);
}
