//! Reproduces the paper's Table 3 (external access cost by TLB outcome).

use tiersim_bench::{banner, Cli};
use tiersim_core::experiments::Characterization;

fn main() {
    let cli = Cli::from_env();
    banner("Table 3 — external access cost by TLB outcome", &cli);
    let c = Characterization::run(&cli.experiment).expect("characterization run");
    let text = c.render_table3();
    println!("{text}");
    cli.maybe_write_out(&text);
}
