//! Dumps the paper artifact's trace files for one workload run:
//! `memory_trace.csv`, `mmap_trace.csv`, `munmap_trace.csv`,
//! `perfmem_trace_mapped_DRAM.csv` and `perfmem_trace_mapped_PMEM.csv`
//! (the outputs of the artifact's `start_post_process.sh` +
//! `start_mapping.sh` pipeline), into a directory named after the
//! workload, ready for the paper's plotting scripts.

use std::fs::{self, File};
use std::io::BufWriter;
use tiersim_bench::{banner, Cli};
use tiersim_core::{Dataset, Kernel};
use tiersim_mem::Tier;
use tiersim_policy::TieringMode;
use tiersim_profile::export;

fn main() {
    let cli = Cli::from_env();
    banner("trace dump (artifact CSV layout)", &cli);
    for kernel in Kernel::PAPER {
        for dataset in Dataset::ALL {
            let w = cli.experiment.workload(kernel, dataset);
            let r = cli.experiment.run(w, TieringMode::AutoNuma).expect("workload run");
            let dir = std::path::PathBuf::from(w.name()).join("autonuma");
            fs::create_dir_all(&dir).expect("create output dir");
            let open = |name: &str| {
                BufWriter::new(File::create(dir.join(name)).expect("create trace file"))
            };
            export::write_memory_trace(open("memory_trace.csv"), &r.samples).unwrap();
            export::write_mmap_trace(open("mmap_trace.csv"), &r.tracker).unwrap();
            export::write_munmap_trace(open("munmap_trace.csv"), &r.tracker).unwrap();
            export::write_mapped_trace(
                open("perfmem_trace_mapped_DRAM.csv"),
                &r.samples,
                &r.tracker,
                Tier::Dram,
            )
            .unwrap();
            export::write_mapped_trace(
                open("perfmem_trace_mapped_PMEM.csv"),
                &r.samples,
                &r.tracker,
                Tier::Nvm,
            )
            .unwrap();
            println!(
                "{}: {} samples, {} allocations -> {}/",
                w.name(),
                r.samples.len(),
                r.tracker.len(),
                dir.display()
            );
        }
    }
}
