//! # tiersim-bench — reproduction harness
//!
//! One binary per paper table/figure (`table1_access_location`,
//! `fig03_sample_distribution`, …, `fig11_object_vs_autonuma`, plus
//! `repro_all`), each printing the same rows/series the paper reports,
//! and Criterion micro/macro benchmarks under `benches/`.
//!
//! All binaries accept:
//!
//! ```text
//! --scale N     graph scale (default 16; paper used 30/31)
//! --degree N    average degree (default 16)
//! --trials N    kernel trials (default 4)
//! --jobs N      worker threads for independent experiment cells
//!               (default: available parallelism; output bytes are
//!               identical for every value)
//! --out PATH    also write the printed output to a file
//! --trace PATH  record the AutoNUMA event trace and write it here as
//!               JSONL (or CSV when PATH ends in .csv); see DESIGN.md §11
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::path::PathBuf;
use tiersim_core::{ExperimentConfig, TraceConfig, TraceLog};

/// Parsed command-line options shared by all reproduction binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// Experiment parameters.
    pub experiment: ExperimentConfig,
    /// Optional output-file path.
    pub out: Option<PathBuf>,
    /// Optional event-trace output path; setting it also enables tracing
    /// in [`Cli::experiment`].
    pub trace_out: Option<PathBuf>,
    /// Injects a deliberately failing experiment into `repro_all`, to
    /// exercise the continue-on-failure path end to end.
    pub inject_failure: bool,
}

impl Cli {
    /// Parses `args` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown flags or malformed values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
        let mut cli = Cli {
            experiment: ExperimentConfig::default(),
            out: None,
            trace_out: None,
            inject_failure: false,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
            match arg.as_str() {
                "--scale" => {
                    cli.experiment.scale =
                        value("--scale")?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                }
                "--degree" => {
                    cli.experiment.degree =
                        value("--degree")?.parse().map_err(|e| format!("bad --degree: {e}"))?;
                }
                "--trials" => {
                    cli.experiment.trials =
                        value("--trials")?.parse().map_err(|e| format!("bad --trials: {e}"))?;
                }
                "--jobs" => {
                    cli.experiment.jobs =
                        value("--jobs")?.parse().map_err(|e| format!("bad --jobs: {e}"))?;
                }
                "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
                "--trace" => {
                    cli.trace_out = Some(PathBuf::from(value("--trace")?));
                    cli.experiment.trace = TraceConfig::on();
                }
                "--inject-failure" => cli.inject_failure = true,
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown argument: {other}\n{USAGE}")),
            }
        }
        if cli.experiment.scale < 4 || cli.experiment.scale > 28 {
            return Err("--scale must be in 4..=28".to_string());
        }
        if cli.experiment.jobs == 0 {
            return Err("--jobs must be at least 1".to_string());
        }
        Ok(cli)
    }

    /// Parses the process arguments, exiting with usage on error.
    pub fn from_env() -> Cli {
        match Cli::parse(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Writes `text` to the `--out` path if one was given.
    pub fn maybe_write_out(&self, text: &str) {
        if let Some(path) = &self.out {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("wrote {}", path.display());
        }
    }

    /// Writes `log` to the `--trace` path if one was given: JSONL by
    /// default, CSV when the path ends in `.csv`. A `--trace` flag with
    /// no log to write (the traced experiment failed) is an error.
    pub fn maybe_write_trace(&self, log: Option<&TraceLog>) {
        let Some(path) = &self.trace_out else { return };
        let Some(log) = log else {
            eprintln!("--trace given but no trace was recorded (traced experiment failed?)");
            std::process::exit(1);
        };
        let text = if path.extension().is_some_and(|e| e == "csv") {
            tiersim_core::trace_to_csv(log)
        } else {
            tiersim_core::trace_to_jsonl(log)
        };
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!(
            "wrote {} ({} events recorded, {} dropped)",
            path.display(),
            log.recorded,
            log.dropped
        );
    }
}

/// Usage text shared by the binaries.
pub const USAGE: &str = "usage: <bin> [--scale N] [--degree N] [--trials N] [--jobs N] \
     [--out PATH] [--trace PATH] [--inject-failure]";

/// Runs a set of experiments where each may fail without killing the
/// rest: `repro_all`'s continue-on-failure harness.
///
/// Each [`attempt`](ExperimentSuite::attempt) isolates one experiment —
/// an `Err` or a panic is recorded against its name and the suite moves
/// on. At the end, [`summary`](ExperimentSuite::summary) reports what
/// failed and [`exit_code`](ExperimentSuite::exit_code) is nonzero if
/// anything did.
#[derive(Debug)]
pub struct ExperimentSuite {
    output: String,
    attempted: usize,
    failures: Vec<(String, String)>,
    jobs: usize,
    trace: Option<TraceLog>,
}

impl Default for ExperimentSuite {
    fn default() -> Self {
        ExperimentSuite {
            output: String::new(),
            attempted: 0,
            failures: Vec::new(),
            jobs: tiersim_core::sweep::default_jobs(),
            trace: None,
        }
    }
}

impl ExperimentSuite {
    /// An empty suite with the default worker count.
    pub fn new() -> ExperimentSuite {
        ExperimentSuite::default()
    }

    /// Returns a copy with `jobs` worker threads for the experiments it
    /// hosts. The suite only carries the knob (experiments read it from
    /// their `ExperimentConfig`); recorded output never depends on it.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Worker threads this suite was configured with.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Records one rendered section and returns the text to display.
    pub fn section(&mut self, title: &str, body: &str) -> String {
        let text = format!("--- {title} ---\n{body}");
        self.output.push_str(&text);
        self.output.push('\n');
        text
    }

    /// Runs one experiment isolated from the rest. Returns its value on
    /// success; on `Err` or panic, records the failure under `name` and
    /// returns `None` so the caller can skip that experiment's sections.
    pub fn attempt<T, E: std::fmt::Display>(
        &mut self,
        name: &str,
        f: impl FnOnce() -> Result<T, E>,
    ) -> Option<T> {
        self.attempted += 1;
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(Ok(v)) => Some(v),
            Ok(Err(e)) => {
                self.failures.push((name.to_string(), e.to_string()));
                None
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                self.failures.push((name.to_string(), format!("panicked: {msg}")));
                None
            }
        }
    }

    /// Accumulated section text (what `--out` writes).
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Records the event trace of the suite's traced run.
    pub fn set_trace_log(&mut self, log: TraceLog) {
        self.trace = Some(log);
    }

    /// The event trace recorded by the suite's traced run, if any (what
    /// `--trace` writes).
    pub fn trace_log(&self) -> Option<&TraceLog> {
        self.trace.as_ref()
    }

    /// The recorded `(experiment, error)` pairs.
    pub fn failures(&self) -> &[(String, String)] {
        &self.failures
    }

    /// End-of-run report: which experiments completed and, for each
    /// failure, what went wrong.
    pub fn summary(&self) -> String {
        let ok = self.attempted - self.failures.len();
        let mut s = format!("== {ok}/{} experiments completed ==\n", self.attempted);
        for (name, err) in &self.failures {
            s.push_str(&format!("FAILED {name}: {err}\n"));
        }
        s
    }

    /// `0` if every attempt succeeded, `1` otherwise.
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.failures.is_empty())
    }
}

/// Prints the standard experiment banner.
pub fn banner(what: &str, cli: &Cli) {
    println!(
        "== {what} (scale {}, degree {}, trials {}) ==",
        cli.experiment.scale, cli.experiment.degree, cli.experiment.trials
    );
}

/// Runs the full `repro_all` experiment suite: every reproduction
/// experiment, sharing the six characterization runs across Tables 1–3
/// and Figures 3–5, isolated so one failure never kills the rest.
///
/// Sections print to stdout as they complete and accumulate in the
/// returned suite ([`ExperimentSuite::output`]). The recorded bytes are
/// identical for every `experiment.jobs` value — the byte-identity test
/// in `tests/parallel_sweep.rs` holds this function to that contract.
pub fn run_repro_suite(experiment: &ExperimentConfig, inject_failure: bool) -> ExperimentSuite {
    use tiersim_core::experiments::{AutonumaTrace, Characterization, Comparison, ObjectAnalysis};
    use tiersim_core::CoreError;

    let mut suite = ExperimentSuite::new().with_jobs(experiment.jobs);

    if inject_failure {
        // Deliberate failure to exercise the continue-on-failure path:
        // everything below must still run and the exit code must be 1.
        suite.attempt("injected failure", || {
            Err::<(), _>(CoreError::InvalidConfig {
                what: "injected failure",
                got: "--inject-failure".to_string(),
            })
        });
    }

    if let Some(c) = suite.attempt("characterization", || Characterization::run(experiment)) {
        for (title, body) in [
            ("Figure 3: sample distribution across levels", c.render_fig3()),
            ("Figure 4: page touch-count histogram", c.render_fig4()),
            ("Figure 5: 2-touch reuse intervals (hottest NVM object)", c.render_fig5()),
            ("Table 1: external access location", c.render_table1()),
            ("Table 2: external latency cost split", c.render_table2()),
            ("Table 3: external access cost by TLB outcome", c.render_table3()),
        ] {
            println!("{}", suite.section(title, &body));
        }
    }

    if let Some(a) = suite.attempt("object analysis", || ObjectAnalysis::run(experiment)) {
        println!(
            "{}",
            suite
                .section("Figure 6: top objects by external samples (bc_kron)", &a.render_fig6(10))
        );
        if let Some(secs) = a.hottest_nvm_alloc_secs() {
            let body = format!(
                "peak live {:.2} MB over {} events; hottest NVM object allocated at t={secs:.4}s\n",
                a.fig7().peak_bytes() as f64 / (1 << 20) as f64,
                a.fig7().points.len(),
            );
            println!("{}", suite.section("Figure 7: allocation timeline (bc_kron)", &body));
        }
        if let Some(p) = a.fig8() {
            let body = format!(
                "{} samples, randomness metric {:.3}\n",
                p.points.len(),
                p.randomness().unwrap_or(0.0)
            );
            println!(
                "{}",
                suite.section("Figure 8: hottest NVM object access pattern (bc_kron)", &body)
            );
        }
    }

    if let Some(tr) = suite.attempt("autonuma trace", || AutonumaTrace::run(experiment)) {
        println!(
            "{}",
            suite.section(
                "Figure 9: memory usage and counters over time (bc_kron)",
                &tr.render_fig9()
            )
        );
        println!(
            "{}",
            suite.section("Figure 10: DRAM loads vs promotions (bc_kron)", &tr.render_fig10())
        );
        // The bc_kron run is the suite's traced run: keep its event log
        // so `--trace` can export it (empty unless tracing was enabled).
        if !tr.report.trace.is_empty() {
            suite.set_trace_log(tr.report.trace.clone());
        }
    }

    if let Some(cmp) = suite.attempt("comparison", || Comparison::run(experiment)) {
        println!(
            "{}",
            suite.section("Figure 11: object-level static mapping vs AutoNUMA", &cmp.render())
        );
    }

    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_args() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.experiment, ExperimentConfig::default());
        assert!(cli.out.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let cli =
            parse(&["--scale", "14", "--degree", "8", "--trials", "2", "--out", "/tmp/x.txt"])
                .unwrap();
        assert_eq!(cli.experiment.scale, 14);
        assert_eq!(cli.experiment.degree, 8);
        assert_eq!(cli.experiment.trials, 2);
        assert_eq!(cli.out.as_deref(), Some(std::path::Path::new("/tmp/x.txt")));
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "40"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }

    #[test]
    fn parses_inject_failure_flag() {
        assert!(!parse(&[]).unwrap().inject_failure);
        assert!(parse(&["--inject-failure"]).unwrap().inject_failure);
    }

    #[test]
    fn trace_flag_sets_path_and_enables_tracing() {
        let off = parse(&[]).unwrap();
        assert!(off.trace_out.is_none());
        assert_eq!(off.experiment.trace, TraceConfig::off());

        let on = parse(&["--trace", "/tmp/t.jsonl"]).unwrap();
        assert_eq!(on.trace_out.as_deref(), Some(std::path::Path::new("/tmp/t.jsonl")));
        assert_eq!(on.experiment.trace, TraceConfig::on());
        assert!(parse(&["--trace"]).is_err());
    }

    #[test]
    fn parses_and_validates_jobs() {
        assert_eq!(parse(&["--jobs", "4"]).unwrap().experiment.jobs, 4);
        assert_eq!(parse(&[]).unwrap().experiment.jobs, tiersim_core::sweep::default_jobs());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--jobs", "many"]).is_err());
        assert!(parse(&["--jobs"]).is_err());
    }

    #[test]
    fn suite_carries_jobs_knob() {
        assert_eq!(ExperimentSuite::new().jobs(), tiersim_core::sweep::default_jobs());
        assert_eq!(ExperimentSuite::new().with_jobs(3).jobs(), 3);
        assert_eq!(ExperimentSuite::new().with_jobs(0).jobs(), 1, "clamped to at least one worker");
    }

    #[test]
    fn suite_continues_past_failures_and_reports() {
        let mut suite = ExperimentSuite::new();
        let ok = suite.attempt("first", || Ok::<_, String>(41));
        assert_eq!(ok, Some(41));
        let bad = suite.attempt("second", || Err::<i32, _>("boom".to_string()));
        assert_eq!(bad, None);
        let after = suite.attempt("third", || Ok::<_, String>(1));
        assert_eq!(after, Some(1), "a failure does not stop later experiments");
        assert_eq!(suite.failures().len(), 1);
        assert_eq!(suite.exit_code(), 1);
        let s = suite.summary();
        assert!(s.contains("2/3 experiments completed"), "{s}");
        assert!(s.contains("FAILED second: boom"), "{s}");
    }

    #[test]
    fn suite_isolates_panics() {
        let mut suite = ExperimentSuite::new();
        let r = suite.attempt("exploding", || -> Result<(), String> {
            panic!("unrecoverable fault at 0xdead");
        });
        assert_eq!(r, None);
        assert!(suite.summary().contains("panicked: unrecoverable fault at 0xdead"));
        assert_eq!(suite.exit_code(), 1);
    }

    #[test]
    fn clean_suite_exits_zero() {
        let mut suite = ExperimentSuite::new();
        suite.attempt("only", || Ok::<_, String>(()));
        let text = suite.section("t", "body\n");
        assert!(text.starts_with("--- t ---"));
        assert_eq!(suite.exit_code(), 0);
        assert!(suite.summary().contains("1/1 experiments completed"));
        assert!(suite.output().contains("body"));
    }
}
