//! # tiersim-bench — reproduction harness
//!
//! One binary per paper table/figure (`table1_access_location`,
//! `fig03_sample_distribution`, …, `fig11_object_vs_autonuma`, plus
//! `repro_all`), each printing the same rows/series the paper reports,
//! and Criterion micro/macro benchmarks under `benches/`.
//!
//! All binaries accept:
//!
//! ```text
//! --scale N     graph scale (default 16; paper used 30/31)
//! --degree N    average degree (default 16)
//! --trials N    kernel trials (default 4)
//! --out PATH    also write the printed output to a file
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::path::PathBuf;
use tiersim_core::ExperimentConfig;

/// Parsed command-line options shared by all reproduction binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// Experiment parameters.
    pub experiment: ExperimentConfig,
    /// Optional output-file path.
    pub out: Option<PathBuf>,
}

impl Cli {
    /// Parses `args` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown flags or malformed values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
        let mut cli = Cli { experiment: ExperimentConfig::default(), out: None };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next().ok_or_else(|| format!("missing value for {name}"))
            };
            match arg.as_str() {
                "--scale" => {
                    cli.experiment.scale = value("--scale")?
                        .parse()
                        .map_err(|e| format!("bad --scale: {e}"))?;
                }
                "--degree" => {
                    cli.experiment.degree = value("--degree")?
                        .parse()
                        .map_err(|e| format!("bad --degree: {e}"))?;
                }
                "--trials" => {
                    cli.experiment.trials = value("--trials")?
                        .parse()
                        .map_err(|e| format!("bad --trials: {e}"))?;
                }
                "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown argument: {other}\n{USAGE}")),
            }
        }
        if cli.experiment.scale < 4 || cli.experiment.scale > 28 {
            return Err("--scale must be in 4..=28".to_string());
        }
        Ok(cli)
    }

    /// Parses the process arguments, exiting with usage on error.
    pub fn from_env() -> Cli {
        match Cli::parse(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Writes `text` to the `--out` path if one was given.
    pub fn maybe_write_out(&self, text: &str) {
        if let Some(path) = &self.out {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Usage text shared by the binaries.
pub const USAGE: &str = "usage: <bin> [--scale N] [--degree N] [--trials N] [--out PATH]";

/// Prints the standard experiment banner.
pub fn banner(what: &str, cli: &Cli) {
    println!(
        "== {what} (scale {}, degree {}, trials {}) ==",
        cli.experiment.scale, cli.experiment.degree, cli.experiment.trials
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_args() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.experiment, ExperimentConfig::default());
        assert!(cli.out.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let cli = parse(&["--scale", "14", "--degree", "8", "--trials", "2", "--out", "/tmp/x.txt"])
            .unwrap();
        assert_eq!(cli.experiment.scale, 14);
        assert_eq!(cli.experiment.degree, 8);
        assert_eq!(cli.experiment.trials, 2);
        assert_eq!(cli.out.as_deref(), Some(std::path::Path::new("/tmp/x.txt")));
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "40"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
