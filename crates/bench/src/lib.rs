//! # tiersim-bench — reproduction harness
//!
//! One binary per paper table/figure (`table1_access_location`,
//! `fig03_sample_distribution`, …, `fig11_object_vs_autonuma`, plus
//! `repro_all`), each printing the same rows/series the paper reports,
//! and Criterion micro/macro benchmarks under `benches/`.
//!
//! All binaries accept:
//!
//! ```text
//! --scale N         graph scale (default 16; paper used 30/31)
//! --degree N        average degree (default 16)
//! --trials N        kernel trials (default 4)
//! --jobs N          worker threads for independent experiment cells
//!                   (default: available parallelism; output bytes are
//!                   identical for every value)
//! --out PATH        also write the printed output to a file
//! --trace PATH      record the AutoNUMA event trace and write it here as
//!                   JSONL (or CSV when PATH ends in .csv); see DESIGN.md §11
//! --tick-budget N   quarantine any cell whose run exceeds N OS engine
//!                   ticks (0 = off); deterministic, no wall clock
//! --thp             enable transparent huge pages: khugepaged-style 2 MiB
//!                   collapse plus a 16-page fault-around window on every
//!                   machine (DESIGN.md §15)
//! ```
//!
//! `repro_all` additionally accepts the crash-safe sweep flags
//! (DESIGN.md §13):
//!
//! ```text
//! --resume PATH       run the suite against the durable journal at PATH:
//!                     created if absent, replayed if present — completed
//!                     cells are never re-executed
//! --kill-at N         die (exit 137) instead of performing the Nth
//!                     journal append; requires --resume
//! --max-attempts N    attempts per cell per session before quarantine
//!                     (default 3)
//! ```
//!
//! `repro_all tune` runs the AutoNUMA knob auto-tuner service instead
//! of the reproduction suite; see [`tune_cli`] and DESIGN.md §16.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod tune_cli;

pub use tune_cli::{run_tune_cli, TuneCli, TUNE_USAGE};

use std::path::{Path, PathBuf};
use tiersim_core::experiments::{AutonumaTrace, Characterization, Comparison, ObjectAnalysis};
use tiersim_core::journal::{
    atomic_write, run_journaled, CellError, CellOutcome, FailureClass, JournalCell, JournalError,
    JournalStats, KillMode, KillSpec, RunnerOptions,
};
use tiersim_core::{CoreError, ExperimentConfig, RunError, TraceConfig, TraceLog};

/// Parsed command-line options shared by all reproduction binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// Experiment parameters.
    pub experiment: ExperimentConfig,
    /// Optional output-file path.
    pub out: Option<PathBuf>,
    /// Optional event-trace output path; setting it also enables tracing
    /// in [`Cli::experiment`].
    pub trace_out: Option<PathBuf>,
    /// Injects a deliberately failing experiment into `repro_all`, to
    /// exercise the continue-on-failure path end to end.
    pub inject_failure: bool,
    /// Journal path for the crash-safe sweep lane (`--resume`).
    pub resume: Option<PathBuf>,
    /// Deterministic kill-point: die instead of performing the Nth
    /// journal append (`--kill-at`; requires `--resume`).
    pub kill_at: Option<u64>,
    /// Attempts per cell per session before quarantine (`--max-attempts`).
    pub max_attempts: u64,
}

impl Cli {
    /// Parses `args` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown flags or malformed values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
        let mut cli = Cli {
            experiment: ExperimentConfig::default(),
            out: None,
            trace_out: None,
            inject_failure: false,
            resume: None,
            kill_at: None,
            max_attempts: 3,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
            match arg.as_str() {
                "--scale" => {
                    cli.experiment.scale =
                        value("--scale")?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                }
                "--degree" => {
                    cli.experiment.degree =
                        value("--degree")?.parse().map_err(|e| format!("bad --degree: {e}"))?;
                }
                "--trials" => {
                    cli.experiment.trials =
                        value("--trials")?.parse().map_err(|e| format!("bad --trials: {e}"))?;
                }
                "--jobs" => {
                    cli.experiment.jobs =
                        value("--jobs")?.parse().map_err(|e| format!("bad --jobs: {e}"))?;
                }
                "--tick-budget" => {
                    cli.experiment.tick_budget = value("--tick-budget")?
                        .parse()
                        .map_err(|e| format!("bad --tick-budget: {e}"))?;
                }
                "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
                "--trace" => {
                    cli.trace_out = Some(PathBuf::from(value("--trace")?));
                    cli.experiment.trace = TraceConfig::on();
                }
                "--thp" => cli.experiment.thp = true,
                "--inject-failure" => cli.inject_failure = true,
                "--resume" => cli.resume = Some(PathBuf::from(value("--resume")?)),
                "--kill-at" => {
                    cli.kill_at = Some(
                        value("--kill-at")?.parse().map_err(|e| format!("bad --kill-at: {e}"))?,
                    );
                }
                "--max-attempts" => {
                    cli.max_attempts = value("--max-attempts")?
                        .parse()
                        .map_err(|e| format!("bad --max-attempts: {e}"))?;
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown argument: {other}\n{USAGE}")),
            }
        }
        if cli.experiment.scale < 4 || cli.experiment.scale > 28 {
            return Err("--scale must be in 4..=28".to_string());
        }
        if cli.experiment.jobs == 0 {
            return Err("--jobs must be at least 1".to_string());
        }
        if cli.max_attempts == 0 {
            return Err("--max-attempts must be at least 1".to_string());
        }
        if cli.kill_at.is_some() && cli.resume.is_none() {
            return Err("--kill-at requires --resume".to_string());
        }
        if cli.kill_at == Some(0) {
            return Err("--kill-at must be at least 1".to_string());
        }
        Ok(cli)
    }

    /// Parses the process arguments, exiting with usage on error.
    pub fn from_env() -> Cli {
        match Cli::parse(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The journal runner knobs these options imply. Suite-level cells
    /// run serially (their inner sweeps use `experiment.jobs`); a
    /// `--kill-at` becomes a hard `exit(137)` kill-point, mimicking
    /// SIGKILL for the recovery smoke tests.
    pub fn runner_options(&self) -> RunnerOptions {
        RunnerOptions {
            jobs: 1,
            max_attempts: self.max_attempts,
            kill: self.kill_at.map(|n| KillSpec {
                at_append: n,
                torn: false,
                mode: KillMode::Exit,
            }),
        }
    }

    /// Writes `text` to the `--out` path if one was given.
    pub fn maybe_write_out(&self, text: &str) {
        if let Some(path) = &self.out {
            if let Err(e) = atomic_write(path, text.as_bytes()) {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("wrote {}", path.display());
        }
    }

    /// Writes the trace exports to the `--trace` path if one was given:
    /// JSONL by default, CSV when the path ends in `.csv`. A `--trace`
    /// flag with no exports to write (the traced experiment failed) is an
    /// error.
    pub fn maybe_write_trace(&self, exports: Option<&TraceExports>) {
        let Some(path) = &self.trace_out else { return };
        let Some(exports) = exports else {
            eprintln!("--trace given but no trace was recorded (traced experiment failed?)");
            std::process::exit(1);
        };
        let text = if path.extension().is_some_and(|e| e == "csv") {
            &exports.csv
        } else {
            &exports.jsonl
        };
        if let Err(e) = atomic_write(path, text.as_bytes()) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {} ({} bytes)", path.display(), text.len());
    }
}

/// Usage text shared by the binaries.
pub const USAGE: &str = "usage: <bin> [--scale N] [--degree N] [--trials N] [--jobs N] \
     [--out PATH] [--trace PATH] [--tick-budget N] [--thp] [--inject-failure] \
     [--resume PATH] [--kill-at N] [--max-attempts N]";

/// The traced run's rendered exports, precomputed so a resumed suite can
/// reproduce `--trace` output from the journal without re-running the
/// traced experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceExports {
    /// JSONL export (DESIGN.md §11).
    pub jsonl: String,
    /// CSV export.
    pub csv: String,
}

impl TraceExports {
    /// Renders both export formats from a recorded log.
    pub fn from_log(log: &TraceLog) -> TraceExports {
        TraceExports {
            jsonl: tiersim_core::trace_to_jsonl(log),
            csv: tiersim_core::trace_to_csv(log),
        }
    }
}

/// Runs a set of experiments where each may fail without killing the
/// rest: `repro_all`'s continue-on-failure harness.
///
/// Each [`attempt`](ExperimentSuite::attempt) isolates one experiment —
/// an `Err` or a panic is recorded against its name and the suite moves
/// on. At the end, [`summary`](ExperimentSuite::summary) reports what
/// failed and [`exit_code`](ExperimentSuite::exit_code) is nonzero if
/// anything did. A journaled suite additionally carries degraded-mode
/// cell accounting ([`set_cell_stats`](ExperimentSuite::set_cell_stats)).
#[derive(Debug)]
pub struct ExperimentSuite {
    output: String,
    attempted: usize,
    failures: Vec<(String, String)>,
    jobs: usize,
    trace: Option<TraceExports>,
    cell_stats: Option<JournalStats>,
}

impl Default for ExperimentSuite {
    fn default() -> Self {
        ExperimentSuite {
            output: String::new(),
            attempted: 0,
            failures: Vec::new(),
            jobs: tiersim_core::sweep::default_jobs(),
            trace: None,
            cell_stats: None,
        }
    }
}

impl ExperimentSuite {
    /// An empty suite with the default worker count.
    pub fn new() -> ExperimentSuite {
        ExperimentSuite::default()
    }

    /// Returns a copy with `jobs` worker threads for the experiments it
    /// hosts. The suite only carries the knob (experiments read it from
    /// their `ExperimentConfig`); recorded output never depends on it.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Worker threads this suite was configured with.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Records one rendered section and returns the text to display.
    pub fn section(&mut self, title: &str, body: &str) -> String {
        let text = format!("--- {title} ---\n{body}");
        self.output.push_str(&text);
        self.output.push('\n');
        text
    }

    /// Runs one experiment isolated from the rest. Returns its value on
    /// success; on `Err` or panic, records the failure under `name` and
    /// returns `None` so the caller can skip that experiment's sections.
    pub fn attempt<T, E: std::fmt::Display>(
        &mut self,
        name: &str,
        f: impl FnOnce() -> Result<T, E>,
    ) -> Option<T> {
        self.attempted += 1;
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(Ok(v)) => Some(v),
            Ok(Err(e)) => {
                self.failures.push((name.to_string(), e.to_string()));
                None
            }
            Err(payload) => {
                let msg = tiersim_core::sweep::panic_message(payload.as_ref());
                self.failures.push((name.to_string(), format!("panicked: {msg}")));
                None
            }
        }
    }

    /// Counts one completed experiment that ran (or was replayed)
    /// outside [`attempt`](ExperimentSuite::attempt) — the journaled
    /// suite path.
    pub fn note_completed(&mut self) {
        self.attempted += 1;
    }

    /// Records one failed experiment that ran outside
    /// [`attempt`](ExperimentSuite::attempt) — a quarantined journal
    /// cell.
    pub fn note_quarantined(&mut self, name: &str, error: String) {
        self.attempted += 1;
        self.failures.push((name.to_string(), error));
    }

    /// Accumulated section text (what `--out` writes).
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Records the trace exports of the suite's traced run.
    pub fn set_trace_exports(&mut self, exports: TraceExports) {
        self.trace = Some(exports);
    }

    /// The trace exports recorded by the suite's traced run, if any
    /// (what `--trace` writes).
    pub fn trace_exports(&self) -> Option<&TraceExports> {
        self.trace.as_ref()
    }

    /// Attaches degraded-mode cell accounting from a journaled sweep;
    /// [`summary`](ExperimentSuite::summary) then reports it.
    pub fn set_cell_stats(&mut self, stats: JournalStats) {
        self.cell_stats = Some(stats);
    }

    /// Degraded-mode cell accounting, if this suite ran journaled.
    pub fn cell_stats(&self) -> Option<&JournalStats> {
        self.cell_stats.as_ref()
    }

    /// The recorded `(experiment, error)` pairs.
    pub fn failures(&self) -> &[(String, String)] {
        &self.failures
    }

    /// End-of-run report: which experiments completed and, for each
    /// failure, what went wrong. A journaled suite adds the degraded-mode
    /// cell columns; only final-state counters appear here, so the bytes
    /// are identical between an uninterrupted run and any kill+resume of
    /// it.
    pub fn summary(&self) -> String {
        let ok = self.attempted - self.failures.len();
        let mut s = format!("== {ok}/{} experiments completed ==\n", self.attempted);
        if let Some(c) = &self.cell_stats {
            s.push_str(&format!(
                "cells: {} completed, {} retried, {} quarantined\n",
                c.completed, c.retried, c.quarantined
            ));
        }
        for (name, err) in &self.failures {
            s.push_str(&format!("FAILED {name}: {err}\n"));
        }
        s
    }

    /// `0` if every attempt succeeded, `1` otherwise.
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.failures.is_empty())
    }
}

/// Prints the standard experiment banner.
pub fn banner(what: &str, cli: &Cli) {
    println!(
        "== {what} (scale {}, degree {}, trials {}) ==",
        cli.experiment.scale, cli.experiment.degree, cli.experiment.trials
    );
}

/// Rendered `(title, body)` pairs for one experiment's sections.
type Sections = Vec<(String, String)>;

/// Runs the characterization experiment and renders Tables 1–3 and
/// Figures 3–5.
fn characterization_sections(experiment: &ExperimentConfig) -> Result<Sections, CoreError> {
    let c = Characterization::run(experiment)?;
    Ok(vec![
        ("Figure 3: sample distribution across levels".to_string(), c.render_fig3()),
        ("Figure 4: page touch-count histogram".to_string(), c.render_fig4()),
        ("Figure 5: 2-touch reuse intervals (hottest NVM object)".to_string(), c.render_fig5()),
        ("Table 1: external access location".to_string(), c.render_table1()),
        ("Table 2: external latency cost split".to_string(), c.render_table2()),
        ("Table 3: external access cost by TLB outcome".to_string(), c.render_table3()),
    ])
}

/// Runs the object-level analysis and renders Figures 6–8.
fn object_analysis_sections(experiment: &ExperimentConfig) -> Result<Sections, CoreError> {
    let a = ObjectAnalysis::run(experiment)?;
    let mut out = vec![(
        "Figure 6: top objects by external samples (bc_kron)".to_string(),
        a.render_fig6(10),
    )];
    if let Some(secs) = a.hottest_nvm_alloc_secs() {
        let body = format!(
            "peak live {:.2} MB over {} events; hottest NVM object allocated at t={secs:.4}s\n",
            a.fig7().peak_bytes() as f64 / (1 << 20) as f64,
            a.fig7().points.len(),
        );
        out.push(("Figure 7: allocation timeline (bc_kron)".to_string(), body));
    }
    if let Some(p) = a.fig8() {
        let body = format!(
            "{} samples, randomness metric {:.3}\n",
            p.points.len(),
            p.randomness().unwrap_or(0.0)
        );
        out.push(("Figure 8: hottest NVM object access pattern (bc_kron)".to_string(), body));
    }
    Ok(out)
}

/// Runs the traced AutoNUMA experiment and renders Figures 9–10, plus the
/// recorded event log when tracing was enabled.
fn autonuma_trace_sections(
    experiment: &ExperimentConfig,
) -> Result<(Sections, Option<TraceLog>), CoreError> {
    let tr = AutonumaTrace::run(experiment)?;
    let sections = vec![
        ("Figure 9: memory usage and counters over time (bc_kron)".to_string(), tr.render_fig9()),
        ("Figure 10: DRAM loads vs promotions (bc_kron)".to_string(), tr.render_fig10()),
    ];
    // The bc_kron run is the suite's traced run: keep its event log so
    // `--trace` can export it (empty unless tracing was enabled).
    let log = (!tr.report.trace.is_empty()).then(|| tr.report.trace.clone());
    Ok((sections, log))
}

/// Runs the Figure 11 comparison.
fn comparison_sections(experiment: &ExperimentConfig) -> Result<Sections, CoreError> {
    let cmp = Comparison::run(experiment)?;
    Ok(vec![("Figure 11: object-level static mapping vs AutoNUMA".to_string(), cmp.render())])
}

/// Runs the full `repro_all` experiment suite: every reproduction
/// experiment, sharing the six characterization runs across Tables 1–3
/// and Figures 3–5, isolated so one failure never kills the rest.
///
/// Sections print to stdout as they complete and accumulate in the
/// returned suite ([`ExperimentSuite::output`]). The recorded bytes are
/// identical for every `experiment.jobs` value — the byte-identity test
/// in `tests/parallel_sweep.rs` holds this function to that contract.
pub fn run_repro_suite(experiment: &ExperimentConfig, inject_failure: bool) -> ExperimentSuite {
    let mut suite = ExperimentSuite::new().with_jobs(experiment.jobs);

    if inject_failure {
        // Deliberate failure to exercise the continue-on-failure path:
        // everything below must still run and the exit code must be 1.
        suite.attempt("injected failure", || Err::<(), _>(injected_failure()));
    }

    if let Some(sections) =
        suite.attempt("characterization", || characterization_sections(experiment))
    {
        for (title, body) in &sections {
            println!("{}", suite.section(title, body));
        }
    }

    if let Some(sections) =
        suite.attempt("object analysis", || object_analysis_sections(experiment))
    {
        for (title, body) in &sections {
            println!("{}", suite.section(title, body));
        }
    }

    if let Some((sections, log)) =
        suite.attempt("autonuma trace", || autonuma_trace_sections(experiment))
    {
        for (title, body) in &sections {
            println!("{}", suite.section(title, body));
        }
        if let Some(log) = log {
            suite.set_trace_exports(TraceExports::from_log(&log));
        }
    }

    if let Some(sections) = suite.attempt("comparison", || comparison_sections(experiment)) {
        for (title, body) in &sections {
            println!("{}", suite.section(title, body));
        }
    }

    suite
}

/// The deliberate `--inject-failure` error.
fn injected_failure() -> CoreError {
    CoreError::InvalidConfig { what: "injected failure", got: "--inject-failure".to_string() }
}

/// Section separator inside a journal payload (ASCII record separator).
const PAYLOAD_RS: char = '\u{1e}';
/// Title/body separator inside one payload section (ASCII unit
/// separator).
const PAYLOAD_US: char = '\u{1f}';
/// Reserved payload section carrying the traced run's JSONL export. The
/// NUL prefix keeps it disjoint from every printable section title.
const TRACE_JSONL_SECTION: &str = "\u{0}trace_jsonl";
/// Reserved payload section carrying the traced run's CSV export.
const TRACE_CSV_SECTION: &str = "\u{0}trace_csv";

/// Serializes rendered sections into one journal payload string.
fn encode_payload(sections: &[(String, String)]) -> String {
    let parts: Vec<String> =
        sections.iter().map(|(title, body)| format!("{title}{PAYLOAD_US}{body}")).collect();
    parts.join(&PAYLOAD_RS.to_string())
}

/// Splits a journal payload back into `(title, body)` sections.
fn decode_payload(payload: &str) -> Vec<(&str, &str)> {
    if payload.is_empty() {
        return Vec::new();
    }
    payload.split(PAYLOAD_RS).filter_map(|s| s.split_once(PAYLOAD_US)).collect()
}

/// Maps an experiment error to its journal failure class: the stuck-cell
/// watchdog gets its own column, everything else is an ordinary error
/// (panics are classified by the runner itself).
fn cell_error(e: CoreError) -> CellError {
    let class = match &e {
        CoreError::Run(RunError::Stuck { .. }) => FailureClass::Stuck,
        _ => FailureClass::Error,
    };
    CellError { class, message: e.to_string() }
}

/// The journaled variant of [`run_repro_suite`]: every experiment is one
/// durable cell in the write-ahead journal at `journal` (DESIGN.md §13).
///
/// The journal is created if absent and replayed if present — completed
/// cells return their recorded payload without re-executing, failed cells
/// retry up to `opts.max_attempts` per session, and cells that exhaust
/// the budget are quarantined in the summary's degraded-mode columns.
/// The assembled output, summary, and trace exports are byte-identical
/// between an uninterrupted run and any kill+resume split of it.
///
/// # Errors
///
/// [`JournalError`] on I/O failure, a journal recorded under a different
/// experiment fingerprint, or a corrupt journal.
///
/// # Panics
///
/// Raises [`tiersim_core::sweep::SweepAbort`] when an armed kill-point
/// with [`KillMode::Panic`] fires ([`KillMode::Exit`] terminates the
/// process instead).
pub fn run_suite_journaled(
    experiment: &ExperimentConfig,
    journal: &Path,
    opts: RunnerOptions,
    inject_failure: bool,
) -> Result<ExperimentSuite, JournalError> {
    let exp = *experiment;
    let mut cells: Vec<JournalCell> = Vec::new();
    if inject_failure {
        cells.push(JournalCell {
            name: "injected failure".to_string(),
            run: Box::new(move || Err(cell_error(injected_failure()))),
        });
    }
    cells.push(JournalCell {
        name: "characterization".to_string(),
        run: Box::new(move || {
            characterization_sections(&exp).map(|s| encode_payload(&s)).map_err(cell_error)
        }),
    });
    cells.push(JournalCell {
        name: "object analysis".to_string(),
        run: Box::new(move || {
            object_analysis_sections(&exp).map(|s| encode_payload(&s)).map_err(cell_error)
        }),
    });
    cells.push(JournalCell {
        name: "autonuma trace".to_string(),
        run: Box::new(move || {
            let (mut sections, log) = autonuma_trace_sections(&exp).map_err(cell_error)?;
            if let Some(log) = log {
                let exports = TraceExports::from_log(&log);
                sections.push((TRACE_JSONL_SECTION.to_string(), exports.jsonl));
                sections.push((TRACE_CSV_SECTION.to_string(), exports.csv));
            }
            Ok(encode_payload(&sections))
        }),
    });
    cells.push(JournalCell {
        name: "comparison".to_string(),
        run: Box::new(move || {
            comparison_sections(&exp).map(|s| encode_payload(&s)).map_err(cell_error)
        }),
    });

    let outcome = run_journaled(journal, &experiment.fingerprint(), cells, opts)?;

    let mut suite = ExperimentSuite::new().with_jobs(experiment.jobs);
    let mut jsonl = None;
    let mut csv = None;
    for (name, cell) in &outcome.cells {
        match cell {
            CellOutcome::Completed { payload, .. } => {
                suite.note_completed();
                for (title, body) in decode_payload(payload) {
                    if title == TRACE_JSONL_SECTION {
                        jsonl = Some(body.to_string());
                    } else if title == TRACE_CSV_SECTION {
                        csv = Some(body.to_string());
                    } else {
                        println!("{}", suite.section(title, body));
                    }
                }
            }
            // The attempt count is session-relative, so it stays out of
            // the byte-compared summary; the message itself is a pure
            // function of the cell.
            CellOutcome::Quarantined { error, .. } => {
                suite.note_quarantined(name, format!("quarantined: {error}"));
            }
        }
    }
    if let (Some(jsonl), Some(csv)) = (jsonl, csv) {
        suite.set_trace_exports(TraceExports { jsonl, csv });
    }
    suite.set_cell_stats(outcome.stats);
    Ok(suite)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_args() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.experiment, ExperimentConfig::default());
        assert!(cli.out.is_none());
        assert!(cli.resume.is_none());
        assert!(cli.kill_at.is_none());
        assert_eq!(cli.max_attempts, 3);
    }

    #[test]
    fn parses_all_flags() {
        let cli =
            parse(&["--scale", "14", "--degree", "8", "--trials", "2", "--out", "/tmp/x.txt"])
                .unwrap();
        assert_eq!(cli.experiment.scale, 14);
        assert_eq!(cli.experiment.degree, 8);
        assert_eq!(cli.experiment.trials, 2);
        assert_eq!(cli.out.as_deref(), Some(std::path::Path::new("/tmp/x.txt")));
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "40"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }

    #[test]
    fn parses_inject_failure_flag() {
        assert!(!parse(&[]).unwrap().inject_failure);
        assert!(parse(&["--inject-failure"]).unwrap().inject_failure);
    }

    #[test]
    fn parses_thp_flag() {
        assert!(!parse(&[]).unwrap().experiment.thp);
        assert!(parse(&["--thp"]).unwrap().experiment.thp);
    }

    #[test]
    fn trace_flag_sets_path_and_enables_tracing() {
        let off = parse(&[]).unwrap();
        assert!(off.trace_out.is_none());
        assert_eq!(off.experiment.trace, TraceConfig::off());

        let on = parse(&["--trace", "/tmp/t.jsonl"]).unwrap();
        assert_eq!(on.trace_out.as_deref(), Some(std::path::Path::new("/tmp/t.jsonl")));
        assert_eq!(on.experiment.trace, TraceConfig::on());
        assert!(parse(&["--trace"]).is_err());
    }

    #[test]
    fn parses_and_validates_jobs() {
        assert_eq!(parse(&["--jobs", "4"]).unwrap().experiment.jobs, 4);
        assert_eq!(parse(&[]).unwrap().experiment.jobs, tiersim_core::sweep::default_jobs());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--jobs", "many"]).is_err());
        assert!(parse(&["--jobs"]).is_err());
    }

    #[test]
    fn parses_and_validates_journal_flags() {
        let cli =
            parse(&["--resume", "/tmp/j.jsonl", "--kill-at", "3", "--max-attempts", "2"]).unwrap();
        assert_eq!(cli.resume.as_deref(), Some(std::path::Path::new("/tmp/j.jsonl")));
        assert_eq!(cli.kill_at, Some(3));
        assert_eq!(cli.max_attempts, 2);
        let opts = cli.runner_options();
        assert_eq!(opts.jobs, 1);
        assert_eq!(opts.max_attempts, 2);
        assert_eq!(opts.kill, Some(KillSpec { at_append: 3, torn: false, mode: KillMode::Exit }));

        assert!(parse(&["--kill-at", "3"]).is_err(), "--kill-at requires --resume");
        assert!(parse(&["--resume", "/tmp/j", "--kill-at", "0"]).is_err());
        assert!(parse(&["--max-attempts", "0"]).is_err());
        assert!(parse(&["--tick-budget", "many"]).is_err());
        assert_eq!(parse(&["--tick-budget", "5000"]).unwrap().experiment.tick_budget, 5000);
    }

    #[test]
    fn suite_carries_jobs_knob() {
        assert_eq!(ExperimentSuite::new().jobs(), tiersim_core::sweep::default_jobs());
        assert_eq!(ExperimentSuite::new().with_jobs(3).jobs(), 3);
        assert_eq!(ExperimentSuite::new().with_jobs(0).jobs(), 1, "clamped to at least one worker");
    }

    #[test]
    fn suite_continues_past_failures_and_reports() {
        let mut suite = ExperimentSuite::new();
        let ok = suite.attempt("first", || Ok::<_, String>(41));
        assert_eq!(ok, Some(41));
        let bad = suite.attempt("second", || Err::<i32, _>("boom".to_string()));
        assert_eq!(bad, None);
        let after = suite.attempt("third", || Ok::<_, String>(1));
        assert_eq!(after, Some(1), "a failure does not stop later experiments");
        assert_eq!(suite.failures().len(), 1);
        assert_eq!(suite.exit_code(), 1);
        let s = suite.summary();
        assert!(s.contains("2/3 experiments completed"), "{s}");
        assert!(s.contains("FAILED second: boom"), "{s}");
    }

    #[test]
    fn suite_isolates_panics() {
        let mut suite = ExperimentSuite::new();
        let r = suite.attempt("exploding", || -> Result<(), String> {
            panic!("unrecoverable fault at 0xdead");
        });
        assert_eq!(r, None);
        assert!(suite.summary().contains("panicked: unrecoverable fault at 0xdead"));
        assert_eq!(suite.exit_code(), 1);
    }

    #[test]
    fn clean_suite_exits_zero() {
        let mut suite = ExperimentSuite::new();
        suite.attempt("only", || Ok::<_, String>(()));
        let text = suite.section("t", "body\n");
        assert!(text.starts_with("--- t ---"));
        assert_eq!(suite.exit_code(), 0);
        assert!(suite.summary().contains("1/1 experiments completed"));
        assert!(suite.output().contains("body"));
    }

    #[test]
    fn summary_reports_degraded_mode_columns_when_journaled() {
        let mut suite = ExperimentSuite::new();
        assert!(!suite.summary().contains("cells:"), "no cell line without journal stats");
        suite.note_completed();
        suite.note_quarantined("stuck one", "quarantined: cell stuck".to_string());
        suite.set_cell_stats(JournalStats {
            completed: 1,
            retried: 0,
            quarantined: 1,
            executed: 4,
            replayed: 0,
        });
        let s = suite.summary();
        assert!(s.contains("1/2 experiments completed"), "{s}");
        assert!(s.contains("cells: 1 completed, 0 retried, 1 quarantined"), "{s}");
        assert!(s.contains("FAILED stuck one: quarantined: cell stuck"), "{s}");
        assert_eq!(suite.exit_code(), 1);
    }

    #[test]
    fn payload_codec_roundtrips_sections() {
        let sections = vec![
            ("Table 1".to_string(), "a,b\n1,2\n".to_string()),
            (TRACE_JSONL_SECTION.to_string(), "{\"t\":1}\n".to_string()),
            ("Figure 3".to_string(), "multi\nline body\n".to_string()),
        ];
        let payload = encode_payload(&sections);
        let decoded = decode_payload(&payload);
        assert_eq!(decoded.len(), 3);
        for ((t, b), (dt, db)) in sections.iter().zip(&decoded) {
            assert_eq!((t.as_str(), b.as_str()), (*dt, *db));
        }
        assert!(decode_payload("").is_empty());
    }

    #[test]
    fn cell_error_classifies_stuck_separately() {
        let stuck = cell_error(CoreError::Run(RunError::Stuck { ticks: 5, budget: 2 }));
        assert_eq!(stuck.class, FailureClass::Stuck);
        assert!(stuck.message.contains("stuck"));
        let plain = cell_error(injected_failure());
        assert_eq!(plain.class, FailureClass::Error);
    }
}
