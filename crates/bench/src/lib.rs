//! # tiersim-bench — reproduction harness
//!
//! One binary per paper table/figure (`table1_access_location`,
//! `fig03_sample_distribution`, …, `fig11_object_vs_autonuma`, plus
//! `repro_all`), each printing the same rows/series the paper reports,
//! and Criterion micro/macro benchmarks under `benches/`.
//!
//! All binaries accept:
//!
//! ```text
//! --scale N     graph scale (default 16; paper used 30/31)
//! --degree N    average degree (default 16)
//! --trials N    kernel trials (default 4)
//! --out PATH    also write the printed output to a file
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::path::PathBuf;
use tiersim_core::ExperimentConfig;

/// Parsed command-line options shared by all reproduction binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// Experiment parameters.
    pub experiment: ExperimentConfig,
    /// Optional output-file path.
    pub out: Option<PathBuf>,
    /// Injects a deliberately failing experiment into `repro_all`, to
    /// exercise the continue-on-failure path end to end.
    pub inject_failure: bool,
}

impl Cli {
    /// Parses `args` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown flags or malformed values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
        let mut cli =
            Cli { experiment: ExperimentConfig::default(), out: None, inject_failure: false };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
            match arg.as_str() {
                "--scale" => {
                    cli.experiment.scale =
                        value("--scale")?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                }
                "--degree" => {
                    cli.experiment.degree =
                        value("--degree")?.parse().map_err(|e| format!("bad --degree: {e}"))?;
                }
                "--trials" => {
                    cli.experiment.trials =
                        value("--trials")?.parse().map_err(|e| format!("bad --trials: {e}"))?;
                }
                "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
                "--inject-failure" => cli.inject_failure = true,
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown argument: {other}\n{USAGE}")),
            }
        }
        if cli.experiment.scale < 4 || cli.experiment.scale > 28 {
            return Err("--scale must be in 4..=28".to_string());
        }
        Ok(cli)
    }

    /// Parses the process arguments, exiting with usage on error.
    pub fn from_env() -> Cli {
        match Cli::parse(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Writes `text` to the `--out` path if one was given.
    pub fn maybe_write_out(&self, text: &str) {
        if let Some(path) = &self.out {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Usage text shared by the binaries.
pub const USAGE: &str =
    "usage: <bin> [--scale N] [--degree N] [--trials N] [--out PATH] [--inject-failure]";

/// Runs a set of experiments where each may fail without killing the
/// rest: `repro_all`'s continue-on-failure harness.
///
/// Each [`attempt`](ExperimentSuite::attempt) isolates one experiment —
/// an `Err` or a panic is recorded against its name and the suite moves
/// on. At the end, [`summary`](ExperimentSuite::summary) reports what
/// failed and [`exit_code`](ExperimentSuite::exit_code) is nonzero if
/// anything did.
#[derive(Debug, Default)]
pub struct ExperimentSuite {
    output: String,
    attempted: usize,
    failures: Vec<(String, String)>,
}

impl ExperimentSuite {
    /// An empty suite.
    pub fn new() -> ExperimentSuite {
        ExperimentSuite::default()
    }

    /// Records one rendered section and returns the text to display.
    pub fn section(&mut self, title: &str, body: &str) -> String {
        let text = format!("--- {title} ---\n{body}");
        self.output.push_str(&text);
        self.output.push('\n');
        text
    }

    /// Runs one experiment isolated from the rest. Returns its value on
    /// success; on `Err` or panic, records the failure under `name` and
    /// returns `None` so the caller can skip that experiment's sections.
    pub fn attempt<T, E: std::fmt::Display>(
        &mut self,
        name: &str,
        f: impl FnOnce() -> Result<T, E>,
    ) -> Option<T> {
        self.attempted += 1;
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(Ok(v)) => Some(v),
            Ok(Err(e)) => {
                self.failures.push((name.to_string(), e.to_string()));
                None
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                self.failures.push((name.to_string(), format!("panicked: {msg}")));
                None
            }
        }
    }

    /// Accumulated section text (what `--out` writes).
    pub fn output(&self) -> &str {
        &self.output
    }

    /// The recorded `(experiment, error)` pairs.
    pub fn failures(&self) -> &[(String, String)] {
        &self.failures
    }

    /// End-of-run report: which experiments completed and, for each
    /// failure, what went wrong.
    pub fn summary(&self) -> String {
        let ok = self.attempted - self.failures.len();
        let mut s = format!("== {ok}/{} experiments completed ==\n", self.attempted);
        for (name, err) in &self.failures {
            s.push_str(&format!("FAILED {name}: {err}\n"));
        }
        s
    }

    /// `0` if every attempt succeeded, `1` otherwise.
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.failures.is_empty())
    }
}

/// Prints the standard experiment banner.
pub fn banner(what: &str, cli: &Cli) {
    println!(
        "== {what} (scale {}, degree {}, trials {}) ==",
        cli.experiment.scale, cli.experiment.degree, cli.experiment.trials
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_args() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.experiment, ExperimentConfig::default());
        assert!(cli.out.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let cli =
            parse(&["--scale", "14", "--degree", "8", "--trials", "2", "--out", "/tmp/x.txt"])
                .unwrap();
        assert_eq!(cli.experiment.scale, 14);
        assert_eq!(cli.experiment.degree, 8);
        assert_eq!(cli.experiment.trials, 2);
        assert_eq!(cli.out.as_deref(), Some(std::path::Path::new("/tmp/x.txt")));
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "40"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }

    #[test]
    fn parses_inject_failure_flag() {
        assert!(!parse(&[]).unwrap().inject_failure);
        assert!(parse(&["--inject-failure"]).unwrap().inject_failure);
    }

    #[test]
    fn suite_continues_past_failures_and_reports() {
        let mut suite = ExperimentSuite::new();
        let ok = suite.attempt("first", || Ok::<_, String>(41));
        assert_eq!(ok, Some(41));
        let bad = suite.attempt("second", || Err::<i32, _>("boom".to_string()));
        assert_eq!(bad, None);
        let after = suite.attempt("third", || Ok::<_, String>(1));
        assert_eq!(after, Some(1), "a failure does not stop later experiments");
        assert_eq!(suite.failures().len(), 1);
        assert_eq!(suite.exit_code(), 1);
        let s = suite.summary();
        assert!(s.contains("2/3 experiments completed"), "{s}");
        assert!(s.contains("FAILED second: boom"), "{s}");
    }

    #[test]
    fn suite_isolates_panics() {
        let mut suite = ExperimentSuite::new();
        let r = suite.attempt("exploding", || -> Result<(), String> {
            panic!("unrecoverable fault at 0xdead");
        });
        assert_eq!(r, None);
        assert!(suite.summary().contains("panicked: unrecoverable fault at 0xdead"));
        assert_eq!(suite.exit_code(), 1);
    }

    #[test]
    fn clean_suite_exits_zero() {
        let mut suite = ExperimentSuite::new();
        suite.attempt("only", || Ok::<_, String>(()));
        let text = suite.section("t", "body\n");
        assert!(text.starts_with("--- t ---"));
        assert_eq!(suite.exit_code(), 0);
        assert!(suite.summary().contains("1/1 experiments completed"));
        assert!(suite.output().contains("body"));
    }
}
