//! The `repro_all tune` subcommand: the AutoNUMA knob auto-tuner
//! service (DESIGN.md §16).
//!
//! Runs one crash-safe successive-halving search per invocation against
//! a durable journal, prints the deterministic Pareto report on stdout
//! (byte-identical across `--jobs` values and kill/resume splits), and
//! optionally writes the report as JSON/CSV plus the driver's lifecycle
//! trace.

use std::path::PathBuf;
use tiersim_core::journal::{KillMode, KillSpec, RunnerOptions};
use tiersim_core::tune::{run_tune, GridSpec, TuneConfig};
use tiersim_core::{Dataset, ExperimentConfig, Kernel};

use crate::TraceExports;

/// Usage text for `repro_all tune`.
pub const TUNE_USAGE: &str = "usage: repro_all tune [--workload NAME] [--grid tiny|paper] \
     [--rung-budget N] [--finalists N] [--seed N] [--scale N] [--degree N] [--trials N] \
     [--jobs N] [--resume PATH] [--kill-at N] [--out-json PATH] [--out-csv PATH] \
     [--trace PATH]";

/// Parsed options for the tune subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneCli {
    /// Testbed parameters (scale/degree/trials/jobs).
    pub experiment: ExperimentConfig,
    /// Workload kernel.
    pub kernel: Kernel,
    /// Workload dataset.
    pub dataset: Dataset,
    /// Seeding grid.
    pub grid: GridSpec,
    /// Rung-0 tick budget.
    pub rung_budget: u64,
    /// Survivor count that stops the halving.
    pub finalists: usize,
    /// Tie-break / fault-plan seed.
    pub seed: u64,
    /// Journal path (`--resume`; defaults to `tune.journal`).
    pub journal: PathBuf,
    /// Deterministic kill-point (`--kill-at`): `exit(137)` instead of
    /// the Nth journal append of this session, counted across rungs.
    pub kill_at: Option<u64>,
    /// Pareto report JSON output path.
    pub out_json: Option<PathBuf>,
    /// Pareto report CSV output path.
    pub out_csv: Option<PathBuf>,
    /// Driver lifecycle trace output path (JSONL, or CSV by extension).
    pub trace_out: Option<PathBuf>,
}

/// Parses a `bc_kron`-style workload name.
fn parse_workload(name: &str) -> Result<(Kernel, Dataset), String> {
    let (kernel_name, dataset_name) = name
        .rsplit_once('_')
        .ok_or_else(|| format!("bad --workload {name}: expected <kernel>_<dataset>"))?;
    let kernel =
        [Kernel::Bc, Kernel::Bfs, Kernel::Cc, Kernel::CcAff, Kernel::Pr, Kernel::Sssp, Kernel::Tc]
            .into_iter()
            .find(|k| k.name() == kernel_name)
            .ok_or_else(|| format!("unknown kernel {kernel_name} in --workload {name}"))?;
    let dataset = [Dataset::Kron, Dataset::Urand, Dataset::Road]
        .into_iter()
        .find(|d| d.name() == dataset_name)
        .ok_or_else(|| format!("unknown dataset {dataset_name} in --workload {name}"))?;
    Ok((kernel, dataset))
}

impl TuneCli {
    /// Parses `args` (everything after the `tune` token).
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown flags or malformed values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<TuneCli, String> {
        // The testbed defaults to the suite's standard scale: below it
        // (roughly scale < 15) runs finish inside one dilated scan period,
        // every knob point scores identically and the search is
        // uninformative. Smoke/CI runs pass an explicit smaller --scale
        // when they only exercise the journal mechanics.
        let experiment = ExperimentConfig { jobs: 1, ..ExperimentConfig::default() };
        let mut cli = TuneCli {
            experiment,
            kernel: Kernel::Bc,
            dataset: Dataset::Kron,
            grid: GridSpec::Tiny,
            rung_budget: 2000,
            finalists: 4,
            seed: 42,
            journal: PathBuf::from("tune.journal"),
            kill_at: None,
            out_json: None,
            out_csv: None,
            trace_out: None,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
            match arg.as_str() {
                "--workload" => {
                    let (kernel, dataset) = parse_workload(&value("--workload")?)?;
                    cli.kernel = kernel;
                    cli.dataset = dataset;
                }
                "--grid" => {
                    cli.grid = match value("--grid")?.as_str() {
                        "tiny" => GridSpec::Tiny,
                        "paper" => GridSpec::Paper,
                        other => return Err(format!("bad --grid {other}: tiny or paper")),
                    };
                }
                "--rung-budget" => {
                    cli.rung_budget = value("--rung-budget")?
                        .parse()
                        .map_err(|e| format!("bad --rung-budget: {e}"))?;
                }
                "--finalists" => {
                    cli.finalists = value("--finalists")?
                        .parse()
                        .map_err(|e| format!("bad --finalists: {e}"))?;
                }
                "--seed" => {
                    cli.seed = value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--scale" => {
                    cli.experiment.scale =
                        value("--scale")?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                }
                "--degree" => {
                    cli.experiment.degree =
                        value("--degree")?.parse().map_err(|e| format!("bad --degree: {e}"))?;
                }
                "--trials" => {
                    cli.experiment.trials =
                        value("--trials")?.parse().map_err(|e| format!("bad --trials: {e}"))?;
                }
                "--jobs" => {
                    cli.experiment.jobs =
                        value("--jobs")?.parse().map_err(|e| format!("bad --jobs: {e}"))?;
                }
                "--resume" => cli.journal = PathBuf::from(value("--resume")?),
                "--kill-at" => {
                    cli.kill_at = Some(
                        value("--kill-at")?.parse().map_err(|e| format!("bad --kill-at: {e}"))?,
                    );
                }
                "--out-json" => cli.out_json = Some(PathBuf::from(value("--out-json")?)),
                "--out-csv" => cli.out_csv = Some(PathBuf::from(value("--out-csv")?)),
                "--trace" => cli.trace_out = Some(PathBuf::from(value("--trace")?)),
                "--help" | "-h" => return Err(TUNE_USAGE.to_string()),
                other => return Err(format!("unknown argument: {other}\n{TUNE_USAGE}")),
            }
        }
        if cli.experiment.scale < 4 || cli.experiment.scale > 28 {
            return Err("--scale must be in 4..=28".to_string());
        }
        if cli.experiment.jobs == 0 {
            return Err("--jobs must be at least 1".to_string());
        }
        if cli.rung_budget == 0 {
            return Err("--rung-budget must be at least 1".to_string());
        }
        if cli.finalists == 0 {
            return Err("--finalists must be at least 1".to_string());
        }
        if cli.kill_at == Some(0) {
            return Err("--kill-at must be at least 1".to_string());
        }
        Ok(cli)
    }

    /// The tuner search these options describe.
    pub fn tune_config(&self) -> TuneConfig {
        TuneConfig {
            experiment: self.experiment,
            kernel: self.kernel,
            dataset: self.dataset,
            grid: self.grid,
            rung_budget: self.rung_budget,
            finalists: self.finalists,
            seed: self.seed,
        }
    }

    /// The journal runner knobs: `--jobs` workers, an `exit(137)`
    /// kill-point when `--kill-at` is armed (the tuner pins
    /// `max_attempts` itself).
    pub fn runner_options(&self) -> RunnerOptions {
        RunnerOptions {
            jobs: self.experiment.jobs,
            max_attempts: 1,
            kill: self.kill_at.map(|n| KillSpec {
                at_append: n,
                torn: false,
                mode: KillMode::Exit,
            }),
        }
    }
}

/// Runs the tune subcommand end to end; returns the process exit code.
/// Stdout carries only the deterministic report; session-relative info
/// goes to stderr.
pub fn run_tune_cli(args: impl IntoIterator<Item = String>) -> i32 {
    let cli = match TuneCli::parse(args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    // Budget-exceeded cells abort via `panic_any(RunError::Stuck)` and are
    // caught by the fallible sweep lane; they are routine scores for the
    // tuner (stuck-at-budget ranks last), so keep the default panic hook
    // from spraying a `Box<dyn Any>` backtrace per stuck cell. Every other
    // payload still reaches the default hook untouched.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<tiersim_core::RunError>().is_none() {
            default_hook(info);
        }
    }));
    let cfg = cli.tune_config();
    eprintln!(
        "tune: {} on {} grid, journal {}, jobs {}",
        cfg.experiment.workload(cfg.kernel, cfg.dataset).name(),
        cfg.grid.name(),
        cli.journal.display(),
        cli.experiment.jobs
    );
    let outcome = match run_tune(&cfg, &cli.journal, cli.runner_options()) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("tune error: {e}");
            return 1;
        }
    };
    print!("{}", outcome.report.render());
    eprintln!("journal: {} cells executed, {} replayed", outcome.executed, outcome.replayed);
    if let Some(path) = &cli.out_json {
        if let Err(e) = outcome.report.write_json(path) {
            eprintln!("failed to write {}: {e}", path.display());
            return 1;
        }
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = &cli.out_csv {
        if let Err(e) = outcome.report.write_csv(path) {
            eprintln!("failed to write {}: {e}", path.display());
            return 1;
        }
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = &cli.trace_out {
        let exports = TraceExports::from_log(&outcome.trace);
        let text = if path.extension().is_some_and(|e| e == "csv") {
            &exports.csv
        } else {
            &exports.jsonl
        };
        if let Err(e) = tiersim_core::journal::atomic_write(path, text.as_bytes()) {
            eprintln!("failed to write {}: {e}", path.display());
            return 1;
        }
        eprintln!("wrote {} ({} bytes)", path.display(), text.len());
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<TuneCli, String> {
        TuneCli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_use_the_calibrated_testbed() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.kernel, Kernel::Bc);
        assert_eq!(cli.dataset, Dataset::Kron);
        assert_eq!(cli.grid, GridSpec::Tiny);
        // The suite-standard scale: smaller testbeds finish inside one
        // dilated scan period and score every knob point identically.
        assert_eq!(cli.experiment.scale, ExperimentConfig::default().scale);
        assert_eq!(cli.experiment.trials, ExperimentConfig::default().trials);
        assert_eq!(cli.experiment.jobs, 1);
        assert_eq!(cli.rung_budget, 2000);
        assert_eq!(cli.journal, PathBuf::from("tune.journal"));
    }

    #[test]
    fn parses_workloads_including_two_part_kernels() {
        let cli = parse(&["--workload", "cc_aff_urand"]).unwrap();
        assert_eq!(cli.kernel, Kernel::CcAff);
        assert_eq!(cli.dataset, Dataset::Urand);
        let cli = parse(&["--workload", "bfs_road"]).unwrap();
        assert_eq!(cli.kernel, Kernel::Bfs);
        assert_eq!(cli.dataset, Dataset::Road);
        assert!(parse(&["--workload", "nope_kron"]).is_err());
        assert!(parse(&["--workload", "bc_mars"]).is_err());
        assert!(parse(&["--workload", "bc"]).is_err());
    }

    #[test]
    fn parses_search_flags_and_rejects_degenerate_values() {
        let cli = parse(&[
            "--grid",
            "paper",
            "--rung-budget",
            "5000",
            "--finalists",
            "8",
            "--seed",
            "7",
            "--kill-at",
            "3",
        ])
        .unwrap();
        assert_eq!(cli.grid, GridSpec::Paper);
        assert_eq!(cli.rung_budget, 5000);
        assert_eq!(cli.finalists, 8);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.kill_at, Some(3));
        assert!(parse(&["--rung-budget", "0"]).is_err());
        assert!(parse(&["--finalists", "0"]).is_err());
        assert!(parse(&["--kill-at", "0"]).is_err());
        assert!(parse(&["--grid", "huge"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn runner_options_arm_exit_kills() {
        let cli = parse(&["--kill-at", "5", "--jobs", "4"]).unwrap();
        let opts = cli.runner_options();
        assert_eq!(opts.jobs, 4);
        assert_eq!(opts.max_attempts, 1);
        assert_eq!(opts.kill, Some(KillSpec { at_append: 5, torn: false, mode: KillMode::Exit }));
    }

    #[test]
    fn tune_config_fingerprint_tracks_search_inputs() {
        let a = parse(&[]).unwrap().tune_config();
        let b = parse(&["--seed", "9"]).unwrap().tune_config();
        let c = parse(&["--jobs", "4"]).unwrap().tune_config();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), c.fingerprint(), "jobs must not change the fingerprint");
    }
}
