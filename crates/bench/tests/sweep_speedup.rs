//! Wall-clock acceptance check for the parallel sweep executor: on a
//! host with ≥ 4 cores, `repro`-style cells on 4 workers must finish
//! ≥ 2.5× faster than serially — with byte-identical results (the
//! byte-identity half is asserted unconditionally; see also
//! `tests/parallel_sweep.rs` at the workspace root).
//!
//! Lives in `crates/bench/tests/` because real-time measurement is only
//! allowed in the bench crate (`wall-clock` lint rule).

use std::time::Instant;
use tiersim_core::sweep;
use tiersim_core::{run_workload, ExperimentConfig, TraceConfig};
use tiersim_policy::TieringMode;

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        scale: 11,
        degree: 8,
        trials: 1,
        sample_period: 211,
        jobs: 1,
        trace: TraceConfig::off(),
        tick_budget: 0,
        thp: false,
    }
}

/// Eight equal-shape experiment cells (the six-workload grid plus two
/// repeats), each a full deterministic `run_workload`.
fn cells() -> Vec<impl FnOnce() -> Vec<u8> + Send> {
    let cfg = cfg();
    let mut ws = cfg.workloads();
    ws.push(ws[0]);
    ws.push(ws[1]);
    ws.into_iter()
        .map(move |w| {
            let mc = cfg.machine_for(&w, TieringMode::AutoNuma);
            move || {
                let report = run_workload(mc, w).expect("cell run");
                let mut bytes = Vec::new();
                report.write_summary_csv(&mut bytes).expect("csv");
                bytes
            }
        })
        .collect()
}

#[test]
fn four_workers_beat_serial_by_2_5x_on_4_cores() {
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);

    let t0 = Instant::now();
    let serial = sweep::run_cells(1, cells());
    let serial_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = sweep::run_cells(4, cells());
    let parallel_secs = t1.elapsed().as_secs_f64();

    // Byte-identity holds on any host, whatever the scheduling.
    assert_eq!(serial, parallel, "parallel sweep changed result bytes");

    let speedup = serial_secs / parallel_secs.max(1e-9);
    eprintln!(
        "sweep speedup: {speedup:.2}x ({serial_secs:.2}s -> {parallel_secs:.2}s, {cores} cores)"
    );
    if cores >= 4 {
        assert!(
            speedup >= 2.5,
            "expected >= 2.5x speedup on {cores} cores, got {speedup:.2}x \
             ({serial_secs:.2}s serial vs {parallel_secs:.2}s with 4 workers)"
        );
    }
}
