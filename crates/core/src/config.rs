//! Machine configuration: everything that defines the simulated platform
//! for one run.

use crate::error::CoreError;
use tiersim_mem::{CacheGeometry, FaultPlan, MemConfig, TlbGeometry, TraceConfig};
use tiersim_os::OsConfig;
use tiersim_policy::TieringMode;

/// The machine-level name for the fault-injection plan: the plan lives
/// in [`MemConfig::fault`] (the memory system owns the injector), and
/// [`MachineConfig::with_fault`] threads it through.
pub type FaultConfig = FaultPlan;

/// Full platform configuration for a run: hardware model, OS model,
/// tiering mode, thread count and profiling parameters.
///
/// [`MachineConfig::scaled_default`] produces the configuration used by
/// the paper-reproduction experiments: hardware structures and OS time
/// constants are scaled down consistently with the scaled-down workloads
/// (see DESIGN.md, "substitutions").
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Hardware model.
    pub mem: MemConfig,
    /// OS model (the `autonuma_enabled` field is overridden by `mode`).
    pub os: OsConfig,
    /// Tiering policy governing the run.
    pub mode: TieringMode,
    /// Logical thread count (the paper's socket has 18 cores).
    pub threads: usize,
    /// PEBS-style sampling period (accesses per sample).
    pub sample_period: u64,
    /// Pure-CPU cycles charged per memory operation (models non-memory
    /// instructions between accesses).
    pub cpu_cycles_per_op: u64,
    /// Cycles between timeline snapshots (numastat/vmstat polling, as the
    /// paper's scripts poll once per second).
    pub timeline_period_cycles: u64,
    /// Fraction of DRAM the static-object planner may commit.
    pub plan_dram_headroom: f64,
    /// Host worker threads available to sweeps that run many copies of
    /// this machine concurrently (see `crate::sweep`). One machine is
    /// always a single simulation thread: this knob never affects
    /// simulated behavior or output bytes, only wall-clock time.
    pub jobs: usize,
    /// Stuck-cell watchdog: abort the run (as a typed
    /// [`crate::RunError::Stuck`] failure) once the machine has taken more
    /// than this many OS engine ticks. `0` disables the watchdog. Ticks
    /// are a pure function of simulated progress, so the budget trips
    /// deterministically — never from host wall-clock time.
    pub tick_budget: u64,
}

impl MachineConfig {
    /// The experiment configuration: a machine whose capacity ratios
    /// mirror the paper's testbed against a workload whose *steady*
    /// (trial-phase) footprint is `footprint_bytes`.
    ///
    /// - DRAM is sized to ~110% of the kron workloads' steady footprint —
    ///   mirroring the paper's testbed, where the kron (-g30) live set
    ///   roughly matches the 192 GB DRAM while the larger urand (-u31)
    ///   set and the build-phase peak exceed it.
    /// - NVM is 8× DRAM (paper: 768 GB vs 192 GB = 4×, plus slack so the
    ///   simulator never OOMs).
    /// - Caches/TLBs are scaled so their coverage of the footprint is
    ///   small, as on the real machine.
    /// - OS time constants are dilated so a run spans hundreds of scan
    ///   periods, like the paper's minutes-long runs.
    pub fn scaled_default(footprint_bytes: u64, mode: TieringMode) -> MachineConfig {
        let page = tiersim_mem::PAGE_SIZE;
        let dram = ((footprint_bytes as f64 * 1.10) as u64 / page).max(64) * page;
        let nvm = dram * 8;
        let mem = MemConfig::builder()
            .dram_capacity(dram)
            .nvm_capacity(nvm)
            .l1(CacheGeometry { capacity: 16 << 10, ways: 8, latency: 4 })
            .l2(CacheGeometry { capacity: 64 << 10, ways: 8, latency: 14 })
            .l3(CacheGeometry { capacity: 256 << 10, ways: 8, latency: 44 })
            .dtlb(TlbGeometry { entries: 16, ways: 4 })
            .stlb(TlbGeometry { entries: 64, ways: 8 })
            .build()
            // tiersim-lint: allow(unwrap) — the geometry above is constant and valid by construction.
            .expect("scaled defaults are valid");
        // Dilation 5000: one "paper second" of OS behavior happens every
        // 0.2 ms of simulated time, so a ~0.5 s simulated run covers
        // ~2500 scan periods, comparable to a ~40 min real run.
        let dilation = 5000.0;
        let mut os = OsConfig::default().with_time_dilation(dilation);
        // The kernel scans 256 MB per period on a 192 GB machine; keep the
        // same *fraction of footprint* per period.
        let footprint_ratio = (228u64 << 30) as f64 / footprint_bytes.max(1) as f64;
        os.scan_size_pages = ((65_536.0 / footprint_ratio) as u64).max(4);
        // Real kswapd migration bandwidth is finite and comparable to the
        // app's allocation rate (GB/s on the paper's machine), so
        // allocation bursts outrun reclaim and overflow to NVM
        // (Finding 3). Time dilation must not inflate kswapd's bandwidth
        // relative to the app, so its period is fixed in *simulated* time:
        // 16 pages per 1 ms ≈ 64 MB/s of demotion bandwidth.
        os.kswapd_batch_pages = 16;
        os.kswapd_period_cycles = os.freq_hz / 1000;
        let timeline_period_cycles = os.scan_period_cycles;
        MachineConfig {
            mem,
            os,
            mode,
            threads: 18,
            sample_period: 9973,
            cpu_cycles_per_op: 2,
            timeline_period_cycles,
            plan_dram_headroom: 0.92,
            jobs: 1,
            tick_budget: 0,
        }
    }

    /// Returns a copy with `jobs` host worker threads for sweeps.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Returns a copy with the stuck-cell watchdog armed at `ticks` OS
    /// engine ticks (`0` disables).
    #[must_use]
    pub fn with_tick_budget(mut self, ticks: u64) -> Self {
        self.tick_budget = ticks;
        self
    }

    /// Returns a copy with `fault` as the fault-injection plan.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.mem.fault = fault;
        self
    }

    /// The fault-injection plan this machine runs with.
    pub fn fault(&self) -> &FaultConfig {
        &self.mem.fault
    }

    /// Returns a copy with `trace` as the event-trace settings. Like the
    /// fault plan, the recorder lives in [`MemConfig`] because the memory
    /// system owns it.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.mem.trace = trace;
        self
    }

    /// The event-trace settings this machine runs with.
    pub fn trace(&self) -> TraceConfig {
        self.mem.trace
    }

    /// Returns a copy with tiersim-audit checkpoints every `ticks` OS
    /// engine ticks (`0` disables; the periodic `debug_assert!` fires in
    /// debug builds only). See `OsConfig::audit_every_ticks`.
    #[must_use]
    pub fn with_audit(mut self, ticks: u64) -> Self {
        self.os.audit_every_ticks = ticks;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on inconsistent parameters.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.mem.validate()?;
        self.os.validate()?;
        if self.threads == 0 {
            return Err(CoreError::InvalidConfig { what: "threads", got: "0".to_string() });
        }
        if self.jobs == 0 {
            return Err(CoreError::InvalidConfig { what: "jobs", got: "0".to_string() });
        }
        if self.sample_period == 0 {
            return Err(CoreError::InvalidConfig { what: "sample period", got: "0".to_string() });
        }
        if self.timeline_period_cycles == 0 {
            return Err(CoreError::InvalidConfig { what: "timeline period", got: "0".to_string() });
        }
        if !(0.0..=1.0).contains(&self.plan_dram_headroom) {
            return Err(CoreError::InvalidConfig {
                what: "plan headroom",
                got: format!("{} (must be within 0..=1)", self.plan_dram_headroom),
            });
        }
        if self.mem.freq_hz != self.os.freq_hz {
            return Err(CoreError::InvalidConfig {
                what: "mem/os frequency mismatch",
                got: format!("mem {} Hz vs os {} Hz", self.mem.freq_hz, self.os.freq_hz),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim_mem::Tier;

    #[test]
    fn scaled_default_is_valid_and_pressured() {
        let cfg = MachineConfig::scaled_default(64 << 20, TieringMode::AutoNuma);
        cfg.validate().unwrap();
        // DRAM tracks the kron steady footprint; NVM dwarfs it.
        assert!(cfg.mem.dram_capacity >= 64 << 20);
        assert!(cfg.mem.dram_capacity < 2 * (64 << 20));
        assert!(cfg.mem.nvm_capacity > 4 * (64 << 20));
        let _ = Tier::Dram;
    }

    #[test]
    fn validation_catches_zero_threads() {
        let mut cfg = MachineConfig::scaled_default(1 << 20, TieringMode::FirstTouch);
        cfg.threads = 0;
        assert!(matches!(cfg.validate(), Err(CoreError::InvalidConfig { what: "threads", .. })));
    }

    #[test]
    fn validation_catches_zero_jobs() {
        let cfg = MachineConfig::scaled_default(1 << 20, TieringMode::AutoNuma).with_jobs(0);
        assert!(matches!(cfg.validate(), Err(CoreError::InvalidConfig { what: "jobs", .. })));
        let cfg = cfg.with_jobs(8);
        cfg.validate().unwrap();
        assert_eq!(cfg.jobs, 8);
    }

    #[test]
    fn validation_catches_frequency_mismatch() {
        let mut cfg = MachineConfig::scaled_default(1 << 20, TieringMode::AutoNuma);
        cfg.os.freq_hz = 123;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn scan_size_scales_with_footprint() {
        let small = MachineConfig::scaled_default(8 << 20, TieringMode::AutoNuma);
        let large = MachineConfig::scaled_default(128 << 20, TieringMode::AutoNuma);
        assert!(large.os.scan_size_pages > small.os.scan_size_pages);
    }

    #[test]
    fn with_fault_threads_plan_to_memory_config() {
        use tiersim_mem::RATE_ONE;
        let plan =
            FaultConfig { seed: 11, migrate_busy_per_64k: RATE_ONE / 8, ..FaultConfig::none() };
        let cfg = MachineConfig::scaled_default(1 << 20, TieringMode::AutoNuma).with_fault(plan);
        cfg.validate().unwrap();
        assert_eq!(*cfg.fault(), plan);
        assert_eq!(cfg.mem.fault, plan);
        // Default machines carry the empty plan.
        let plain = MachineConfig::scaled_default(1 << 20, TieringMode::AutoNuma);
        assert!(plain.fault().is_none());
    }
}
