//! Error type for the core crate.

use core::fmt;

/// Errors produced by machine assembly and experiment running.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The memory-system simulator rejected a configuration or operation.
    Mem(tiersim_mem::MemError),
    /// The OS model rejected a configuration or ran out of memory.
    Os(tiersim_os::OsError),
    /// A machine/experiment parameter was rejected.
    InvalidConfig {
        /// Which parameter was rejected.
        what: &'static str,
        /// The offending value (and, where useful, the accepted range).
        got: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Mem(e) => write!(f, "memory system: {e}"),
            CoreError::Os(e) => write!(f, "os model: {e}"),
            CoreError::InvalidConfig { what, got } => {
                write!(f, "invalid configuration: {what} (got {got})")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Mem(e) => Some(e),
            CoreError::Os(e) => Some(e),
            CoreError::InvalidConfig { .. } => None,
        }
    }
}

impl From<tiersim_mem::MemError> for CoreError {
    fn from(e: tiersim_mem::MemError) -> Self {
        CoreError::Mem(e)
    }
}

impl From<tiersim_os::OsError> for CoreError {
    fn from(e: tiersim_os::OsError) -> Self {
        CoreError::Os(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_sources() {
        let e = CoreError::from(tiersim_mem::MemError::OutOfMemory);
        assert!(e.to_string().contains("memory system"));
        assert!(e.source().is_some());
        let inv = CoreError::InvalidConfig { what: "x", got: "7".to_string() };
        assert!(inv.source().is_none());
        assert!(inv.to_string().contains('7'), "error carries the offending value: {inv}");
    }
}
