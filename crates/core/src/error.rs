//! Error type for the core crate.

use core::fmt;

/// A workload run died mid-flight: the typed payload behind what used to
/// be a bare `panic!` in [`crate::Machine`]'s access path.
///
/// The access path sits below the infallible `MemBackend` trait, so it
/// cannot thread a `Result` up through the graph kernels; instead it
/// raises a `RunError` as a *typed* panic payload
/// (`std::panic::panic_any`) and [`crate::run_workload`] catches it at
/// the run boundary, converting the poisoned run into
/// [`CoreError::Run`]. A poisoned sweep cell therefore becomes a
/// journaled failure, not a process abort (ISSUE 7).
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The OS model could not recover from a page fault (true OOM on
    /// both tiers after reclaim, or an internal inconsistency).
    UnrecoverableFault {
        /// The faulting virtual address, pre-rendered.
        addr: String,
        /// The tiering mode the machine ran under.
        mode: String,
        /// The OS error that ended the run.
        source: tiersim_os::OsError,
    },
    /// The workload touched an address no mapping covers.
    Segfault {
        /// The unmapped virtual address, pre-rendered.
        addr: String,
    },
    /// The tick-budget watchdog fired: the machine consumed more OS
    /// engine ticks than [`crate::MachineConfig::tick_budget`] allows, so
    /// the cell is presumed stuck (runaway workload) and is aborted
    /// deterministically instead of hanging the sweep.
    Stuck {
        /// OS engine ticks consumed when the watchdog fired.
        ticks: u64,
        /// The configured budget that was exceeded.
        budget: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnrecoverableFault { addr, mode, source } => {
                write!(f, "unrecoverable fault at {addr} under {mode}: {source}")
            }
            RunError::Segfault { addr } => {
                write!(f, "workload touched unmapped address {addr}")
            }
            RunError::Stuck { ticks, budget } => {
                write!(f, "cell stuck: {ticks} OS ticks exceed the budget of {budget}")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::UnrecoverableFault { source, .. } => Some(source),
            RunError::Segfault { .. } | RunError::Stuck { .. } => None,
        }
    }
}

/// Errors produced by machine assembly and experiment running.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The memory-system simulator rejected a configuration or operation.
    Mem(tiersim_mem::MemError),
    /// The OS model rejected a configuration or ran out of memory.
    Os(tiersim_os::OsError),
    /// A machine/experiment parameter was rejected.
    InvalidConfig {
        /// Which parameter was rejected.
        what: &'static str,
        /// The offending value (and, where useful, the accepted range).
        got: String,
    },
    /// A workload run died mid-flight (unrecoverable fault, segfault, or
    /// the stuck-cell watchdog); see [`RunError`].
    Run(RunError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Mem(e) => write!(f, "memory system: {e}"),
            CoreError::Os(e) => write!(f, "os model: {e}"),
            CoreError::InvalidConfig { what, got } => {
                write!(f, "invalid configuration: {what} (got {got})")
            }
            CoreError::Run(e) => write!(f, "run aborted: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Mem(e) => Some(e),
            CoreError::Os(e) => Some(e),
            CoreError::InvalidConfig { .. } => None,
            CoreError::Run(e) => Some(e),
        }
    }
}

impl From<RunError> for CoreError {
    fn from(e: RunError) -> Self {
        CoreError::Run(e)
    }
}

impl From<tiersim_mem::MemError> for CoreError {
    fn from(e: tiersim_mem::MemError) -> Self {
        CoreError::Mem(e)
    }
}

impl From<tiersim_os::OsError> for CoreError {
    fn from(e: tiersim_os::OsError) -> Self {
        CoreError::Os(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_sources() {
        let e = CoreError::from(tiersim_mem::MemError::OutOfMemory);
        assert!(e.to_string().contains("memory system"));
        assert!(e.source().is_some());
        let inv = CoreError::InvalidConfig { what: "x", got: "7".to_string() };
        assert!(inv.source().is_none());
        assert!(inv.to_string().contains('7'), "error carries the offending value: {inv}");
    }

    #[test]
    fn run_errors_render_and_chain() {
        let stuck = CoreError::from(RunError::Stuck { ticks: 100, budget: 10 });
        assert!(stuck.to_string().contains("stuck"), "{stuck}");
        assert!(stuck.to_string().contains("100"), "{stuck}");
        assert!(stuck.source().is_some());
        let seg = RunError::Segfault { addr: "0xdead".to_string() };
        assert!(seg.to_string().contains("0xdead"), "{seg}");
        assert!(seg.source().is_none());
    }
}
