//! AutoNUMA behavior over time (paper §6.5–6.7: Figures 9 and 10).

use super::ExperimentConfig;
use crate::error::CoreError;
use crate::render::TextTable;
use crate::report::RunReport;
use crate::timeline::TimelineOps;
use crate::workload::{Dataset, Kernel};
use tiersim_mem::{MemLevel, Tier};
use tiersim_policy::TieringMode;
use tiersim_profile::binned_counts;

/// One sampled second of Figure 9: memory usage, migration activity and
/// CPU utilization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Row {
    /// Time in seconds.
    pub time_secs: f64,
    /// Application bytes resident on DRAM.
    pub dram_app_bytes: u64,
    /// Page-cache bytes resident on DRAM.
    pub dram_cache_bytes: u64,
    /// Application bytes resident on NVM.
    pub nvm_app_bytes: u64,
    /// Page-cache bytes resident on NVM.
    pub nvm_cache_bytes: u64,
    /// Pages demoted in this window.
    pub demotions: u64,
    /// Pages promoted in this window.
    pub promotions: u64,
    /// CPU utilization in `[0, 1]`.
    pub cpu_util: f64,
    /// Dynamic hot threshold at the snapshot, in cycles.
    pub threshold_cycles: u64,
    /// Bytes left in the promotion rate limiter's bucket at the snapshot.
    pub rate_tokens_bytes: u64,
}

/// One bin of Figure 10: DRAM load samples vs pages promoted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig10Row {
    /// Bin start in seconds.
    pub time_secs: f64,
    /// DRAM load samples in the bin.
    pub dram_loads: u64,
    /// Pages promoted in the bin.
    pub promotions: u64,
}

/// The AutoNUMA trace bundle: one run of `bc_kron` (the paper's example)
/// with its timeline-derived figures.
#[derive(Debug)]
pub struct AutonumaTrace {
    /// The underlying run.
    pub report: RunReport,
    freq_hz: u64,
}

impl AutonumaTrace {
    /// Runs `bc_kron` under AutoNUMA.
    ///
    /// # Errors
    ///
    /// Propagates run errors.
    pub fn run(cfg: &ExperimentConfig) -> Result<AutonumaTrace, CoreError> {
        let w = cfg.workload(Kernel::Bc, Dataset::Kron);
        let mc = cfg.machine_for(&w, TieringMode::AutoNuma);
        let freq_hz = mc.mem.freq_hz;
        Ok(AutonumaTrace { report: crate::runner::run_workload(mc, w)?, freq_hz })
    }

    /// Figure 9 rows, one per timeline snapshot.
    pub fn fig9(&self) -> Vec<Fig9Row> {
        let demote = self.report.timeline.counter_deltas(|c| c.pgdemote_kswapd + c.pgdemote_direct);
        let promote = self.report.timeline.counter_deltas(|c| c.pgpromote_success);
        self.report
            .timeline
            .iter()
            .zip(demote)
            .zip(promote)
            .map(|((s, (_, d)), (_, p))| Fig9Row {
                time_secs: s.time_secs,
                dram_app_bytes: s.numastat.anon_pages[Tier::Dram.index()] * tiersim_mem::PAGE_SIZE,
                dram_cache_bytes: s.numastat.file_pages[Tier::Dram.index()]
                    * tiersim_mem::PAGE_SIZE,
                nvm_app_bytes: s.numastat.anon_pages[Tier::Nvm.index()] * tiersim_mem::PAGE_SIZE,
                nvm_cache_bytes: s.numastat.file_pages[Tier::Nvm.index()] * tiersim_mem::PAGE_SIZE,
                demotions: d,
                promotions: p,
                cpu_util: s.cpu_util,
                threshold_cycles: s.threshold_cycles,
                rate_tokens_bytes: s.rate_tokens_bytes,
            })
            .collect()
    }

    /// Figure 10 rows: DRAM load samples per window joined with
    /// promotions per window.
    pub fn fig10(&self) -> Vec<Fig10Row> {
        let snaps = &self.report.timeline;
        if snaps.is_empty() {
            return Vec::new();
        }
        let bin = (snaps[0].time_secs).max(1e-9);
        let loads = binned_counts(&self.report.samples, bin, self.freq_hz, |s| {
            !s.is_store && s.level == MemLevel::Dram
        });
        let promos = snaps.counter_deltas(|c| c.pgpromote_success);
        loads
            .into_iter()
            .enumerate()
            .map(|(i, (t, dram_loads))| Fig10Row {
                time_secs: t,
                dram_loads,
                promotions: promos.get(i).map_or(0, |&(_, p)| p),
            })
            .collect()
    }

    /// Renders Figure 9 as a text table.
    pub fn render_fig9(&self) -> String {
        let mut t = TextTable::new(vec![
            "t(s)",
            "DRAM app",
            "DRAM cache",
            "NVM app",
            "NVM cache",
            "demote",
            "promote",
            "CPU%",
            "thresh(cyc)",
            "rate(KB)",
        ]);
        let mb = |b: u64| format!("{:.1}MB", b as f64 / (1 << 20) as f64);
        for r in self.fig9() {
            t.row(vec![
                format!("{:.4}", r.time_secs),
                mb(r.dram_app_bytes),
                mb(r.dram_cache_bytes),
                mb(r.nvm_app_bytes),
                mb(r.nvm_cache_bytes),
                r.demotions.to_string(),
                r.promotions.to_string(),
                format!("{:.0}%", r.cpu_util * 100.0),
                r.threshold_cycles.to_string(),
                (r.rate_tokens_bytes >> 10).to_string(),
            ]);
        }
        t.render()
    }

    /// Renders Figure 10 as a text table.
    pub fn render_fig10(&self) -> String {
        let mut t = TextTable::new(vec!["t(s)", "DRAM load samples", "pages promoted"]);
        for r in self.fig10() {
            t.row(vec![
                format!("{:.4}", r.time_secs),
                r.dram_loads.to_string(),
                r.promotions.to_string(),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tiny_config;

    #[test]
    fn trace_produces_time_series() {
        let tr = AutonumaTrace::run(&tiny_config()).unwrap();
        let f9 = tr.fig9();
        assert!(f9.len() >= 3, "expected several snapshots, got {}", f9.len());
        // Memory usage is nonzero once the run is underway.
        assert!(f9.iter().any(|r| r.dram_app_bytes > 0));
        // CPU utilization is a valid fraction everywhere.
        assert!(f9.iter().all(|r| (0.0..=1.0).contains(&r.cpu_util)));
        let f10 = tr.fig10();
        assert!(!f10.is_empty());
        assert!(f10.iter().any(|r| r.dram_loads > 0));
        assert!(tr.render_fig9().lines().count() >= 5);
        assert!(tr.render_fig10().lines().count() >= 3);
    }
}
