//! The six-workload characterization bundle: Figure 3, Figure 4,
//! Figure 5, and Tables 1–3.

use super::ExperimentConfig;
use crate::error::CoreError;
use crate::render::{pct, TextTable};
use crate::report::RunReport;
use tiersim_mem::Tier;
use tiersim_policy::TieringMode;
use tiersim_profile::{two_touch_reuse, LevelDistribution, Summary, TouchHistogram};

/// One bar group of Figure 3: where samples were satisfied.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Workload label (e.g. `bc_kron`).
    pub workload: String,
    /// Fraction of load samples satisfied in caches.
    pub cache_frac: f64,
    /// Fraction satisfied by DRAM.
    pub dram_frac: f64,
    /// Fraction satisfied by NVM.
    pub nvm_frac: f64,
}

/// One bar group of Figure 4: touch-count distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Workload label.
    pub workload: String,
    /// Fraction of external accesses on pages touched exactly once.
    pub one_touch: f64,
    /// Fraction on pages touched exactly twice.
    pub two_touch: f64,
    /// Fraction on pages touched three or more times.
    pub three_plus: f64,
}

/// One group of Figure 5: reuse-interval statistics of 2-touch pages of
/// the hottest NVM object, plus the §5.2 promoted fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Workload label.
    pub workload: String,
    /// Object label of the hottest NVM object.
    pub hottest_object: String,
    /// Number of 2-touch pages analyzed.
    pub pages: usize,
    /// Interval statistics in seconds (None if fewer than one page).
    pub intervals: Option<Summary>,
    /// Fraction of 2-touch pages observed NVM-then-DRAM (promoted).
    pub promoted_fraction: f64,
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Workload label.
    pub workload: String,
    /// Fraction of samples outside caches.
    pub outside_cache: f64,
    /// Share of external samples on DRAM.
    pub dram_share: f64,
    /// Share of external samples on NVM.
    pub nvm_share: f64,
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Workload label.
    pub workload: String,
    /// Share of external latency cost from DRAM samples.
    pub dram_cost_share: f64,
    /// Share of external latency cost from NVM samples.
    pub nvm_cost_share: f64,
}

/// One row of Table 3 (average cycles per bucket; `None` = no samples).
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Workload label.
    pub workload: String,
    /// DRAM, TLB hit.
    pub dram_tlb_hit: Option<f64>,
    /// DRAM, TLB miss.
    pub dram_tlb_miss: Option<f64>,
    /// NVM, TLB hit.
    pub nvm_tlb_hit: Option<f64>,
    /// NVM, TLB miss.
    pub nvm_tlb_miss: Option<f64>,
}

/// The characterization bundle: six AutoNUMA runs and every table/figure
/// derived from them.
#[derive(Debug)]
pub struct Characterization {
    /// One report per paper workload, in grid order.
    pub reports: Vec<RunReport>,
    freq_hz: u64,
}

impl Characterization {
    /// Runs the six paper workloads under AutoNUMA.
    ///
    /// # Errors
    ///
    /// Propagates the first run error.
    pub fn run(cfg: &ExperimentConfig) -> Result<Characterization, CoreError> {
        let freq_hz = cfg.machine(TieringMode::AutoNuma).mem.freq_hz;
        // Each workload is an independent deterministic cell; run them on
        // the sweep executor. Results come back in grid order, so error
        // propagation picks the same (first) failure a serial loop would.
        let cells: Vec<_> = cfg
            .workloads()
            .into_iter()
            .map(|w| {
                let mc = cfg.machine_for(&w, TieringMode::AutoNuma);
                move || crate::runner::run_workload(mc, w)
            })
            .collect();
        let reports =
            crate::sweep::run_cells(cfg.jobs, cells).into_iter().collect::<Result<Vec<_>, _>>()?;
        Ok(Characterization { reports, freq_hz })
    }

    /// Builds from pre-computed reports (used by the `all` harness to
    /// share runs across experiments).
    pub fn from_reports(reports: Vec<RunReport>, freq_hz: u64) -> Characterization {
        Characterization { reports, freq_hz }
    }

    /// Figure 3 rows.
    pub fn fig3(&self) -> Vec<Fig3Row> {
        self.reports
            .iter()
            .map(|r| {
                let d = LevelDistribution::of(&r.samples);
                Fig3Row {
                    workload: r.workload.name(),
                    cache_frac: 1.0 - d.external_fraction(),
                    dram_frac: d.fraction(tiersim_mem::MemLevel::Dram),
                    nvm_frac: d.fraction(tiersim_mem::MemLevel::Nvm),
                }
            })
            .collect()
    }

    /// Figure 4 rows (fractions of external accesses by page touch count).
    pub fn fig4(&self) -> Vec<Fig4Row> {
        self.reports
            .iter()
            .map(|r| {
                let h = TouchHistogram::of(&r.samples);
                let (one, two, three) = h.access_fractions();
                Fig4Row {
                    workload: r.workload.name(),
                    one_touch: one,
                    two_touch: two,
                    three_plus: three,
                }
            })
            .collect()
    }

    /// Figure 5 rows (2-touch reuse intervals on each workload's hottest
    /// NVM object).
    pub fn fig5(&self) -> Vec<Fig5Row> {
        self.reports
            .iter()
            .map(|r| {
                let mapped = r.mapped();
                let hottest = mapped
                    .hottest_nvm_object()
                    .and_then(|o| r.tracker.record(o.id).map(|c| (o, c)));
                match hottest {
                    Some((obj, rec)) => {
                        let reuse = two_touch_reuse(&r.samples, rec.addr, rec.len, self.freq_hz);
                        Fig5Row {
                            workload: r.workload.name(),
                            hottest_object: obj.site.to_string(),
                            pages: reuse.pages_analyzed,
                            intervals: reuse.intervals_secs,
                            promoted_fraction: reuse.promoted_fraction,
                        }
                    }
                    None => Fig5Row {
                        workload: r.workload.name(),
                        hottest_object: "-".into(),
                        pages: 0,
                        intervals: None,
                        promoted_fraction: 0.0,
                    },
                }
            })
            .collect()
    }

    /// Table 1 rows.
    pub fn table1(&self) -> Vec<Table1Row> {
        self.reports
            .iter()
            .map(|r| {
                let d = LevelDistribution::of(&r.samples);
                Table1Row {
                    workload: r.workload.name(),
                    outside_cache: d.external_fraction(),
                    dram_share: d.tier_share_of_external(Tier::Dram),
                    nvm_share: d.tier_share_of_external(Tier::Nvm),
                }
            })
            .collect()
    }

    /// Table 2 rows.
    pub fn table2(&self) -> Vec<Table2Row> {
        self.reports
            .iter()
            .map(|r| {
                let d = LevelDistribution::of(&r.samples);
                Table2Row {
                    workload: r.workload.name(),
                    dram_cost_share: d.tier_share_of_cost(Tier::Dram),
                    nvm_cost_share: d.tier_share_of_cost(Tier::Nvm),
                }
            })
            .collect()
    }

    /// Table 3 rows.
    pub fn table3(&self) -> Vec<Table3Row> {
        self.reports
            .iter()
            .map(|r| {
                let d = LevelDistribution::of(&r.samples);
                Table3Row {
                    workload: r.workload.name(),
                    dram_tlb_hit: d.mean_external_cost(Tier::Dram, false),
                    dram_tlb_miss: d.mean_external_cost(Tier::Dram, true),
                    nvm_tlb_hit: d.mean_external_cost(Tier::Nvm, false),
                    nvm_tlb_miss: d.mean_external_cost(Tier::Nvm, true),
                }
            })
            .collect()
    }

    /// Renders Table 1 as text in the paper's layout.
    pub fn render_table1(&self) -> String {
        let mut t =
            TextTable::new(vec!["Workload", "Outside Cache", "Pages in DRAM", "Pages in NVM"]);
        for r in self.table1() {
            t.row(vec![r.workload, pct(r.outside_cache), pct(r.dram_share), pct(r.nvm_share)]);
        }
        t.render()
    }

    /// Renders Table 2 as text.
    pub fn render_table2(&self) -> String {
        let mut t = TextTable::new(vec!["Application", "DRAM Access Cost", "NVM Access Cost"]);
        let mut rows = self.table2();
        // The paper orders Table 2 by NVM cost descending.
        rows.sort_by(|a, b| b.nvm_cost_share.total_cmp(&a.nvm_cost_share));
        for r in rows {
            t.row(vec![r.workload, pct(r.dram_cost_share), pct(r.nvm_cost_share)]);
        }
        t.render()
    }

    /// Renders Table 3 as text.
    pub fn render_table3(&self) -> String {
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.0}"));
        let mut t = TextTable::new(vec![
            "Application",
            "DRAM TLB Hit",
            "DRAM TLB Miss",
            "NVM TLB Hit",
            "NVM TLB Miss",
        ]);
        for r in self.table3() {
            t.row(vec![
                r.workload,
                fmt(r.dram_tlb_hit),
                fmt(r.dram_tlb_miss),
                fmt(r.nvm_tlb_hit),
                fmt(r.nvm_tlb_miss),
            ]);
        }
        t.render()
    }

    /// Renders Figure 3 as text.
    pub fn render_fig3(&self) -> String {
        let mut t = TextTable::new(vec!["Workload", "Caches", "DRAM", "NVM"]);
        for r in self.fig3() {
            t.row(vec![r.workload, pct(r.cache_frac), pct(r.dram_frac), pct(r.nvm_frac)]);
        }
        t.render()
    }

    /// Renders Figure 4 as text.
    pub fn render_fig4(&self) -> String {
        let mut t = TextTable::new(vec!["Workload", "1 touch", "2 touches", "3+ touches"]);
        for r in self.fig4() {
            t.row(vec![r.workload, pct(r.one_touch), pct(r.two_touch), pct(r.three_plus)]);
        }
        t.render()
    }

    /// Renders Figure 5 as text.
    pub fn render_fig5(&self) -> String {
        let mut t = TextTable::new(vec![
            "Workload", "Object", "Pages", "Min", "P25", "P50", "P75", "Max", "Avg", "Std",
            "Promoted",
        ]);
        for r in self.fig5() {
            let f = |v: f64| format!("{v:.4}");
            match r.intervals {
                Some(s) => t.row(vec![
                    r.workload,
                    r.hottest_object,
                    r.pages.to_string(),
                    f(s.min),
                    f(s.p25),
                    f(s.p50),
                    f(s.p75),
                    f(s.max),
                    f(s.mean),
                    f(s.std_dev),
                    pct(r.promoted_fraction),
                ]),
                None => t.row(vec![
                    r.workload,
                    r.hottest_object,
                    "0".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tiny_config;

    #[test]
    fn characterization_produces_all_tables() {
        let c = Characterization::run(&tiny_config()).unwrap();
        assert_eq!(c.reports.len(), 6);
        assert_eq!(c.fig3().len(), 6);
        assert_eq!(c.fig4().len(), 6);
        assert_eq!(c.fig5().len(), 6);
        assert_eq!(c.table1().len(), 6);
        assert_eq!(c.table2().len(), 6);
        assert_eq!(c.table3().len(), 6);
        // Shares are consistent.
        for r in c.table1() {
            assert!((r.dram_share + r.nvm_share - 1.0).abs() < 1e-9 || r.outside_cache == 0.0);
        }
        for r in c.fig4() {
            let sum = r.one_touch + r.two_touch + r.three_plus;
            assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-9);
        }
        // Renderers produce header + 6 rows.
        for text in [
            c.render_table1(),
            c.render_table2(),
            c.render_table3(),
            c.render_fig3(),
            c.render_fig4(),
            c.render_fig5(),
        ] {
            assert_eq!(text.lines().count(), 8, "{text}");
        }
    }
}
