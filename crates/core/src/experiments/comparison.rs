//! Object-level static mapping vs AutoNUMA (paper §7: Figure 11).

use super::ExperimentConfig;
use crate::error::CoreError;
use crate::render::{pct, secs, TextTable};
use crate::runner::{plan_from_report, run_workload};
use crate::workload::{Kernel, WorkloadConfig};
use tiersim_policy::TieringMode;

/// One bar of Figure 11.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Row {
    /// Workload label; spill-variant rows carry the paper's `*` suffix.
    pub workload: String,
    /// Application execution time (load + build + trials) under AutoNUMA,
    /// seconds — the quantity the paper's Figure 11 compares.
    pub autonuma_secs: f64,
    /// Application execution time under the static object mapping.
    pub static_secs: f64,
    /// Kernel-trials-only time under AutoNUMA, seconds.
    pub autonuma_trial_secs: f64,
    /// Kernel-trials-only time under the static mapping, seconds.
    pub static_trial_secs: f64,
    /// NVM load samples under AutoNUMA.
    pub autonuma_nvm_samples: u64,
    /// NVM load samples under the static mapping.
    pub static_nvm_samples: u64,
    /// Whether the spill variant was used.
    pub spill: bool,
}

impl Fig11Row {
    /// Execution-time improvement over AutoNUMA (positive = static
    /// mapping is faster), as a fraction.
    pub fn improvement(&self) -> f64 {
        if self.autonuma_secs == 0.0 {
            return 0.0;
        }
        1.0 - self.static_secs / self.autonuma_secs
    }

    /// Reduction in NVM samples vs AutoNUMA, as a fraction.
    pub fn nvm_reduction(&self) -> f64 {
        if self.autonuma_nvm_samples == 0 {
            return 0.0;
        }
        1.0 - self.static_nvm_samples as f64 / self.autonuma_nvm_samples as f64
    }
}

/// The Figure 11 comparison: each paper workload run under AutoNUMA and
/// under the profile-derived static object mapping, plus spill-variant
/// rows for the CC workloads (the paper's `cc_kron*`/`cc_urand*`).
#[derive(Debug)]
pub struct Comparison {
    /// One row per bar of the figure.
    pub rows: Vec<Fig11Row>,
}

impl Comparison {
    /// Runs the full comparison.
    ///
    /// # Errors
    ///
    /// Propagates the first run error.
    pub fn run(cfg: &ExperimentConfig) -> Result<Comparison, CoreError> {
        // Expand the workload grid into (workload, spill) cells up front
        // so the sweep executor can run each AutoNUMA/static pair
        // concurrently; row order (and first-error choice) matches the
        // old serial loop exactly.
        let mut specs = Vec::new();
        for w in cfg.workloads() {
            specs.push((w, false));
            if w.kernel == Kernel::Cc {
                specs.push((w, true));
            }
        }
        let cells: Vec<_> = specs
            .into_iter()
            .map(|(w, spill)| {
                let cfg = *cfg;
                move || Self::compare(&cfg, w, spill)
            })
            .collect();
        let rows =
            crate::sweep::run_cells(cfg.jobs, cells).into_iter().collect::<Result<Vec<_>, _>>()?;
        Ok(Comparison { rows })
    }

    /// Runs one workload pair (AutoNUMA + static) and builds its row.
    ///
    /// # Errors
    ///
    /// Propagates run errors.
    pub fn compare(
        cfg: &ExperimentConfig,
        workload: WorkloadConfig,
        spill: bool,
    ) -> Result<Fig11Row, CoreError> {
        let base = cfg.machine_for(&workload, TieringMode::AutoNuma);
        let auto = run_workload(base.clone(), workload)?;
        let plan = plan_from_report(&auto, &base, spill);
        let mut static_cfg = base;
        static_cfg.mode = TieringMode::StaticObject(plan);
        let stat = run_workload(static_cfg, workload)?;
        let name = if spill { format!("{}*", workload.name()) } else { workload.name() };
        Ok(Fig11Row {
            workload: name,
            autonuma_secs: auto.total_secs,
            static_secs: stat.total_secs,
            autonuma_trial_secs: auto.exec_secs(),
            static_trial_secs: stat.exec_secs(),
            autonuma_nvm_samples: auto.nvm_samples(),
            static_nvm_samples: stat.nvm_samples(),
            spill,
        })
    }

    /// Mean improvement across non-spill rows (the paper reports 21%
    /// average).
    pub fn mean_improvement(&self) -> f64 {
        let base: Vec<f64> =
            self.rows.iter().filter(|r| !r.spill).map(Fig11Row::improvement).collect();
        if base.is_empty() {
            0.0
        } else {
            base.iter().sum::<f64>() / base.len() as f64
        }
    }

    /// Best improvement across all rows (the paper reports up to 51%).
    pub fn max_improvement(&self) -> f64 {
        self.rows.iter().map(Fig11Row::improvement).fold(f64::MIN, f64::max)
    }

    /// Convenience accessor: the row for `name` (e.g. `"cc_kron*"`).
    pub fn row(&self, name: &str) -> Option<&Fig11Row> {
        self.rows.iter().find(|r| r.workload == name)
    }

    /// Renders the comparison as a text table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Workload",
            "AutoNUMA",
            "Object-level",
            "Improvement",
            "NVM sample reduction",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.workload.clone(),
                secs(r.autonuma_secs),
                secs(r.static_secs),
                pct(r.improvement()),
                pct(r.nvm_reduction()),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "avg improvement (whole-object rows): {}; max improvement: {}\n",
            pct(self.mean_improvement()),
            pct(self.max_improvement()),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tiny_config;
    use crate::workload::Dataset;

    #[test]
    fn single_pair_comparison_runs() {
        let cfg = tiny_config();
        let w = cfg.workload(Kernel::Bfs, Dataset::Kron);
        let row = Comparison::compare(&cfg, w, false).unwrap();
        assert!(row.autonuma_secs > 0.0);
        assert!(row.static_secs > 0.0);
        assert!(!row.spill);
        assert!(row.workload == "bfs_kron");
    }

    #[test]
    fn spill_row_is_labeled_with_asterisk() {
        let cfg = tiny_config();
        let w = cfg.workload(Kernel::Cc, Dataset::Urand);
        let row = Comparison::compare(&cfg, w, true).unwrap();
        assert_eq!(row.workload, "cc_urand*");
        assert!(row.spill);
    }

    #[test]
    fn improvement_math() {
        let r = Fig11Row {
            workload: "x".into(),
            autonuma_secs: 2.0,
            static_secs: 1.0,
            autonuma_trial_secs: 1.0,
            static_trial_secs: 0.6,
            autonuma_nvm_samples: 100,
            static_nvm_samples: 25,
            spill: false,
        };
        assert!((r.improvement() - 0.5).abs() < 1e-12);
        assert!((r.nvm_reduction() - 0.75).abs() < 1e-12);
    }
}
