//! Paper-reproduction experiments: one module per figure/table family.
//!
//! Each experiment runs scaled-down versions of the paper's six workloads
//! (BC/BFS/CC × kron/urand) and derives the corresponding table or figure
//! series. The `tiersim-bench` crate exposes one binary per experiment.

mod autonuma_trace;
mod characterization;
mod comparison;
mod objects;

pub use autonuma_trace::{AutonumaTrace, Fig10Row, Fig9Row};
pub use characterization::{
    Characterization, Fig3Row, Fig4Row, Fig5Row, Table1Row, Table2Row, Table3Row,
};
pub use comparison::{Comparison, Fig11Row};
pub use objects::{Fig6Row, ObjectAnalysis};

use crate::config::MachineConfig;
use crate::error::CoreError;
use crate::report::RunReport;
use crate::runner::run_workload;
use crate::workload::{Dataset, Kernel, WorkloadConfig};
use tiersim_mem::TraceConfig;
use tiersim_policy::TieringMode;

/// Shared experiment parameters.
///
/// The defaults (scale 16, degree 16) keep a full six-workload
/// characterization run in the tens of seconds; the reproduction binaries
/// accept `--scale` to push toward the paper's regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Graph scale (`2^scale` vertices).
    pub scale: u32,
    /// Average degree.
    pub degree: usize,
    /// Trials per kernel.
    pub trials: usize,
    /// Sampling period.
    pub sample_period: u64,
    /// Worker threads for independent experiment cells (workload runs).
    /// Output bytes are identical for every value — see
    /// [`crate::sweep::run_cells`] and DESIGN.md §10.
    pub jobs: usize,
    /// Event-trace settings threaded into every machine this experiment
    /// builds (off by default; see DESIGN.md §11).
    pub trace: TraceConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 16,
            degree: 16,
            trials: 4,
            sample_period: 9973,
            jobs: crate::sweep::default_jobs(),
            trace: TraceConfig::off(),
        }
    }
}

impl ExperimentConfig {
    /// The paper's six workloads at this configuration. As in the paper,
    /// the urand dataset is one scale larger than kron (`-u31` vs
    /// `-g30`), giving it the larger footprint.
    pub fn workloads(&self) -> Vec<WorkloadConfig> {
        let mut v = Vec::new();
        for kernel in Kernel::PAPER {
            for dataset in Dataset::ALL {
                v.push(self.workload(kernel, dataset));
            }
        }
        v
    }

    /// One specific workload at this configuration (urand runs one scale
    /// larger than kron, as in the paper).
    pub fn workload(&self, kernel: Kernel, dataset: Dataset) -> WorkloadConfig {
        let scale = match dataset {
            Dataset::Kron | Dataset::Road => self.scale,
            Dataset::Urand => self.scale + 1,
        };
        // GAPBS runs many more BFS trials than BC sources (64 vs 16 by
        // default); keep that 4:1 ratio so sample volumes are comparable.
        let trials = match kernel {
            Kernel::Bfs => self.trials * 4,
            _ => self.trials,
        };
        let mut w = WorkloadConfig::new(kernel, dataset).scale(scale).trials(trials);
        w.degree = self.degree;
        w
    }

    /// The fixed testbed for this experiment under `mode`: one machine for
    /// all workloads (the paper uses a single 192 GB + 768 GB socket),
    /// sized against the kron workloads' steady footprint.
    pub fn machine(&self, mode: TieringMode) -> MachineConfig {
        let reference = self.workload(Kernel::Bc, Dataset::Kron);
        let mut cfg = MachineConfig::scaled_default(reference.steady_app_bytes(), mode);
        cfg.sample_period = self.sample_period;
        cfg.jobs = self.jobs;
        cfg.mem.trace = self.trace;
        cfg
    }

    /// The machine configuration for a workload under `mode`. The machine
    /// is the same for every workload (see [`ExperimentConfig::machine`]);
    /// the parameter only keeps call sites self-documenting.
    pub fn machine_for(&self, _workload: &WorkloadConfig, mode: TieringMode) -> MachineConfig {
        self.machine(mode)
    }

    /// Runs one workload under `mode`.
    ///
    /// # Errors
    ///
    /// Propagates configuration/OOM errors from the runner.
    pub fn run(&self, workload: WorkloadConfig, mode: TieringMode) -> Result<RunReport, CoreError> {
        run_workload(self.machine_for(&workload, mode), workload)
    }
}

#[cfg(test)]
pub(crate) fn tiny_config() -> ExperimentConfig {
    // Scale 12 keeps tests fast while still putting the footprint well
    // above the scaled DRAM capacity (the paper's premise).
    ExperimentConfig {
        scale: 12,
        degree: 8,
        trials: 1,
        sample_period: 97,
        jobs: 1,
        trace: TraceConfig::off(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_grid_is_configured() {
        let cfg = ExperimentConfig {
            scale: 12,
            degree: 8,
            trials: 3,
            sample_period: 101,
            jobs: 1,
            trace: TraceConfig::off(),
        };
        let ws = cfg.workloads();
        assert_eq!(ws.len(), 6);
        assert!(ws.iter().all(|w| w.degree == 8));
        // BFS runs 4x the trials (GAPBS's 64-vs-16 default ratio).
        assert!(ws.iter().all(|w| w.trials == if w.kernel == Kernel::Bfs { 12 } else { 3 }));
        assert!(ws.iter().filter(|w| w.dataset == Dataset::Kron).all(|w| w.scale == 12));
        assert!(ws.iter().filter(|w| w.dataset == Dataset::Urand).all(|w| w.scale == 13));
    }

    #[test]
    fn machine_inherits_sample_period() {
        let cfg = tiny_config();
        let w = cfg.workload(Kernel::Bfs, Dataset::Kron);
        let m = cfg.machine_for(&w, TieringMode::AutoNuma);
        assert_eq!(m.sample_period, 97);
    }
}
