//! Paper-reproduction experiments: one module per figure/table family.
//!
//! Each experiment runs scaled-down versions of the paper's six workloads
//! (BC/BFS/CC × kron/urand) and derives the corresponding table or figure
//! series. The `tiersim-bench` crate exposes one binary per experiment.

mod autonuma_trace;
mod characterization;
mod comparison;
mod objects;

pub use autonuma_trace::{AutonumaTrace, Fig10Row, Fig9Row};
pub use characterization::{
    Characterization, Fig3Row, Fig4Row, Fig5Row, Table1Row, Table2Row, Table3Row,
};
pub use comparison::{Comparison, Fig11Row};
pub use objects::{Fig6Row, ObjectAnalysis};

use crate::config::MachineConfig;
use crate::error::CoreError;
use crate::report::RunReport;
use crate::runner::run_workload;
use crate::workload::{Dataset, Kernel, WorkloadConfig};
use tiersim_mem::TraceConfig;
use tiersim_policy::TieringMode;

/// Shared experiment parameters.
///
/// The defaults (scale 16, degree 16) keep a full six-workload
/// characterization run in the tens of seconds; the reproduction binaries
/// accept `--scale` to push toward the paper's regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Graph scale (`2^scale` vertices).
    pub scale: u32,
    /// Average degree.
    pub degree: usize,
    /// Trials per kernel.
    pub trials: usize,
    /// Sampling period.
    pub sample_period: u64,
    /// Worker threads for independent experiment cells (workload runs).
    /// Output bytes are identical for every value — see
    /// [`crate::sweep::run_cells`] and DESIGN.md §10.
    pub jobs: usize,
    /// Event-trace settings threaded into every machine this experiment
    /// builds (off by default; see DESIGN.md §11).
    pub trace: TraceConfig,
    /// Stuck-cell watchdog budget in OS engine ticks, threaded into every
    /// machine (`0` disables; see [`crate::MachineConfig::tick_budget`]).
    pub tick_budget: u64,
    /// Transparent huge pages: when `true` every machine this experiment
    /// builds runs with khugepaged-style 2 MiB collapse *and* a 16-page
    /// fault-around window (the kernel's `fault_around_bytes` default is
    /// 64 KiB), mirroring the paper's THP-enabled testbed. Off by default,
    /// matching the prior demand-paged-only behavior.
    pub thp: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 16,
            degree: 16,
            trials: 4,
            sample_period: 9973,
            jobs: crate::sweep::default_jobs(),
            trace: TraceConfig::off(),
            tick_budget: 0,
            thp: false,
        }
    }
}

impl ExperimentConfig {
    /// The paper's six workloads at this configuration. As in the paper,
    /// the urand dataset is one scale larger than kron (`-u31` vs
    /// `-g30`), giving it the larger footprint.
    pub fn workloads(&self) -> Vec<WorkloadConfig> {
        let mut v = Vec::new();
        for kernel in Kernel::PAPER {
            for dataset in Dataset::ALL {
                v.push(self.workload(kernel, dataset));
            }
        }
        v
    }

    /// One specific workload at this configuration (urand runs one scale
    /// larger than kron, as in the paper).
    pub fn workload(&self, kernel: Kernel, dataset: Dataset) -> WorkloadConfig {
        let scale = match dataset {
            Dataset::Kron | Dataset::Road => self.scale,
            Dataset::Urand => self.scale + 1,
        };
        // GAPBS runs many more BFS trials than BC sources (64 vs 16 by
        // default); keep that 4:1 ratio so sample volumes are comparable.
        let trials = match kernel {
            Kernel::Bfs => self.trials * 4,
            _ => self.trials,
        };
        let mut w = WorkloadConfig::new(kernel, dataset).scale(scale).trials(trials);
        w.degree = self.degree;
        w
    }

    /// The fixed testbed for this experiment under `mode`: one machine for
    /// all workloads (the paper uses a single 192 GB + 768 GB socket),
    /// sized against the kron workloads' steady footprint.
    pub fn machine(&self, mode: TieringMode) -> MachineConfig {
        let reference = self.workload(Kernel::Bc, Dataset::Kron);
        let mut cfg = MachineConfig::scaled_default(reference.steady_app_bytes(), mode);
        cfg.sample_period = self.sample_period;
        cfg.jobs = self.jobs;
        cfg.mem.trace = self.trace;
        cfg.tick_budget = self.tick_budget;
        if self.thp {
            cfg.os.thp_enabled = true;
            // The kernel's fault_around_bytes default: 64 KiB = 16 pages.
            cfg.os.fault_around_pages = 16;
        }
        cfg
    }

    /// A stable fingerprint of every parameter that shapes output bytes —
    /// the journal (`crate::journal`) stores it so `--resume` refuses a
    /// journal written under different experiment inputs. `jobs` is
    /// deliberately excluded: the determinism contract (DESIGN.md §10)
    /// guarantees identical bytes for every worker count, so resuming
    /// with a different `--jobs` is sound.
    pub fn fingerprint(&self) -> String {
        format!(
            "scale={};degree={};trials={};sample_period={};trace={};tick_budget={};thp={}",
            self.scale,
            self.degree,
            self.trials,
            self.sample_period,
            u8::from(self.trace.enabled),
            self.tick_budget,
            u8::from(self.thp),
        )
    }

    /// The machine configuration for a workload under `mode`. The machine
    /// is the same for every workload (see [`ExperimentConfig::machine`]);
    /// the parameter only keeps call sites self-documenting.
    pub fn machine_for(&self, _workload: &WorkloadConfig, mode: TieringMode) -> MachineConfig {
        self.machine(mode)
    }

    /// Runs one workload under `mode`.
    ///
    /// # Errors
    ///
    /// Propagates configuration/OOM errors from the runner.
    pub fn run(&self, workload: WorkloadConfig, mode: TieringMode) -> Result<RunReport, CoreError> {
        run_workload(self.machine_for(&workload, mode), workload)
    }
}

#[cfg(test)]
pub(crate) fn tiny_config() -> ExperimentConfig {
    // Scale 12 keeps tests fast while still putting the footprint well
    // above the scaled DRAM capacity (the paper's premise).
    ExperimentConfig {
        scale: 12,
        degree: 8,
        trials: 1,
        sample_period: 97,
        jobs: 1,
        trace: TraceConfig::off(),
        tick_budget: 0,
        thp: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_grid_is_configured() {
        let cfg = ExperimentConfig {
            scale: 12,
            degree: 8,
            trials: 3,
            sample_period: 101,
            jobs: 1,
            trace: TraceConfig::off(),
            tick_budget: 0,
            thp: false,
        };
        let ws = cfg.workloads();
        assert_eq!(ws.len(), 6);
        assert!(ws.iter().all(|w| w.degree == 8));
        // BFS runs 4x the trials (GAPBS's 64-vs-16 default ratio).
        assert!(ws.iter().all(|w| w.trials == if w.kernel == Kernel::Bfs { 12 } else { 3 }));
        assert!(ws.iter().filter(|w| w.dataset == Dataset::Kron).all(|w| w.scale == 12));
        assert!(ws.iter().filter(|w| w.dataset == Dataset::Urand).all(|w| w.scale == 13));
    }

    #[test]
    fn machine_inherits_sample_period() {
        let cfg = tiny_config();
        let w = cfg.workload(Kernel::Bfs, Dataset::Kron);
        let m = cfg.machine_for(&w, TieringMode::AutoNuma);
        assert_eq!(m.sample_period, 97);
    }

    #[test]
    fn fingerprint_tracks_output_shaping_inputs_but_not_jobs() {
        let base = tiny_config();
        let mut other_jobs = base;
        other_jobs.jobs = 8;
        // Resuming with a different worker count is explicitly supported.
        assert_eq!(base.fingerprint(), other_jobs.fingerprint());
        let mut other_scale = base;
        other_scale.scale += 1;
        assert_ne!(base.fingerprint(), other_scale.fingerprint());
        let mut traced = base;
        traced.trace = TraceConfig::on();
        assert_ne!(base.fingerprint(), traced.fingerprint());
        let mut budgeted = base;
        budgeted.tick_budget = 500;
        assert_ne!(base.fingerprint(), budgeted.fingerprint());
        let mut huge = base;
        huge.thp = true;
        assert_ne!(base.fingerprint(), huge.fingerprint());
    }

    #[test]
    fn thp_knob_reaches_the_machine() {
        let mut cfg = tiny_config();
        let off = cfg.machine(TieringMode::AutoNuma);
        assert!(!off.os.thp_enabled);
        assert_eq!(off.os.fault_around_pages, 1);
        cfg.thp = true;
        let on = cfg.machine(TieringMode::AutoNuma);
        assert!(on.os.thp_enabled);
        assert_eq!(on.os.fault_around_pages, 16);
        on.validate().unwrap();
    }
}
