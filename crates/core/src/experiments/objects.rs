//! Object-level analysis of one workload (paper §6.2–6.4: Figures 6–8).

use super::ExperimentConfig;
use crate::error::CoreError;
use crate::render::{pct, TextTable};
use crate::report::RunReport;
use crate::workload::{Dataset, Kernel};
use tiersim_mem::Tier;
use tiersim_policy::TieringMode;
use tiersim_profile::{top_objects, AccessPattern, AllocTimeline};

/// One bar of Figure 6 (top objects by samples on a tier).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Rank (0 = hottest).
    pub rank: usize,
    /// Object id (allocation order).
    pub object_id: u32,
    /// Call-site label.
    pub site: String,
    /// Samples on the tier.
    pub samples: u64,
    /// Share of the tier's samples.
    pub share: f64,
}

/// The object analysis bundle: one AutoNUMA run of a single workload
/// (`bc_kron` by default, as in the paper) and Figures 6–8 derived from
/// it.
#[derive(Debug)]
pub struct ObjectAnalysis {
    /// The underlying run.
    pub report: RunReport,
    freq_hz: u64,
}

impl ObjectAnalysis {
    /// Runs `bc_kron` under AutoNUMA (the paper's illustrative workload).
    ///
    /// # Errors
    ///
    /// Propagates run errors.
    pub fn run(cfg: &ExperimentConfig) -> Result<ObjectAnalysis, CoreError> {
        Self::run_workload(cfg, Kernel::Bc, Dataset::Kron)
    }

    /// Runs any kernel × dataset under AutoNUMA.
    ///
    /// # Errors
    ///
    /// Propagates run errors.
    pub fn run_workload(
        cfg: &ExperimentConfig,
        kernel: Kernel,
        dataset: Dataset,
    ) -> Result<ObjectAnalysis, CoreError> {
        let w = cfg.workload(kernel, dataset);
        let mc = cfg.machine_for(&w, TieringMode::AutoNuma);
        let freq_hz = mc.mem.freq_hz;
        Ok(ObjectAnalysis { report: crate::runner::run_workload(mc, w)?, freq_hz })
    }

    /// Figure 6 rows: top `n` objects by samples on `tier`.
    pub fn fig6(&self, tier: Tier, n: usize) -> Vec<Fig6Row> {
        let mapped = self.report.mapped();
        top_objects(&mapped, tier, n)
            .into_iter()
            .enumerate()
            .map(|(rank, r)| Fig6Row {
                rank,
                object_id: r.id.0,
                site: r.site.to_string(),
                samples: r.samples,
                share: r.share,
            })
            .collect()
    }

    /// Figure 7: the allocation timeline, in seconds × bytes.
    pub fn fig7(&self) -> AllocTimeline {
        AllocTimeline::of(&self.report.tracker, self.freq_hz)
    }

    /// Allocation time (seconds) of the hottest NVM object — the paper's
    /// red dashed line in Figure 7.
    pub fn hottest_nvm_alloc_secs(&self) -> Option<f64> {
        let mapped = self.report.mapped();
        let obj = mapped.hottest_nvm_object()?;
        let rec = self.report.tracker.record(obj.id)?;
        Some(rec.alloc_time as f64 / self.freq_hz as f64)
    }

    /// Figure 8: the access pattern of the hottest NVM object (full run).
    pub fn fig8(&self) -> Option<AccessPattern> {
        let mapped = self.report.mapped();
        let obj = mapped.hottest_nvm_object()?;
        let rec = self.report.tracker.record(obj.id)?;
        Some(AccessPattern::of(&self.report.samples, rec, self.freq_hz))
    }

    /// Renders Figure 6 (both tiers) as text.
    pub fn render_fig6(&self, n: usize) -> String {
        let mut out = String::new();
        for tier in [Tier::Dram, Tier::Nvm] {
            out.push_str(&format!(
                "Top {n} objects by {tier} samples ({}):\n",
                self.report.workload.name()
            ));
            let mut t = TextTable::new(vec!["Rank", "Object", "Site", "Samples", "Share"]);
            for r in self.fig6(tier, n) {
                t.row(vec![
                    r.rank.to_string(),
                    r.object_id.to_string(),
                    r.site,
                    r.samples.to_string(),
                    pct(r.share),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tiny_config;

    #[test]
    fn object_analysis_produces_figures() {
        let a = ObjectAnalysis::run(&tiny_config()).unwrap();
        // Figure 6: NVM samples concentrate in few objects (Finding 2).
        let nvm_rows = a.fig6(Tier::Nvm, 10);
        assert!(!nvm_rows.is_empty(), "some NVM samples expected under pressure");
        assert!(nvm_rows[0].share >= nvm_rows.last().unwrap().share);
        // Figure 7: allocations rise and fall.
        let tl = a.fig7();
        assert!(tl.peak_bytes() > 0);
        assert!(tl.points.len() >= 10);
        // The hottest NVM object exists and was allocated at a real time.
        assert!(a.hottest_nvm_alloc_secs().unwrap() >= 0.0);
        // Figure 8: pattern extraction works.
        let p = a.fig8().unwrap();
        assert!(!p.points.is_empty());
        // Render includes both tiers.
        let text = a.render_fig6(5);
        assert!(text.contains("DRAM samples"));
        assert!(text.contains("NVM samples"));
    }
}
