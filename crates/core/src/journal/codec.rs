//! Dependency-free encoding primitives for the journal: FNV-1a64
//! checksums, JSON string escaping, and a minimal flat-object JSONL
//! parser. Mirrors the hand-rolled style of `tiersim-trace`'s exporters
//! and `xtask`'s validators — the journal must be writable and checkable
//! on an offline toolchain.

use std::collections::BTreeMap;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a64 over `bytes`: the journal's line checksum and the basis of
/// stable cell IDs. Chosen for the same reason the trace layer hand-rolls
/// its JSON: zero dependencies, identical on every platform.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Escapes `s` for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A scalar value in a flat journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// An unsigned integer field (`seq`, `attempt`, …).
    U64(u64),
    /// A string field (`kind`, `cell`, `payload`, …), unescaped.
    Str(String),
}

impl Value {
    /// The integer, if this is an integer field.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::Str(_) => None,
        }
    }

    /// The string, if this is a string field.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::U64(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

/// Parses one flat JSON object (string and unsigned-integer values only —
/// exactly what the journal writes) into field order-independent form.
/// Returns `None` on any syntax error: a torn or corrupt line.
pub fn parse_flat_object(line: &str) -> Option<BTreeMap<String, Value>> {
    let bytes = line.trim().as_bytes();
    let mut i = 0usize;
    let mut out = BTreeMap::new();
    if bytes.first() != Some(&b'{') {
        return None;
    }
    i += 1;
    let mut first = true;
    loop {
        skip_ws(bytes, &mut i);
        if first && bytes.get(i) == Some(&b'}') {
            i += 1;
            break;
        }
        first = false;
        let key = parse_string(bytes, &mut i)?;
        skip_ws(bytes, &mut i);
        if bytes.get(i) != Some(&b':') {
            return None;
        }
        i += 1;
        skip_ws(bytes, &mut i);
        let value = match bytes.get(i)? {
            b'"' => Value::Str(parse_string(bytes, &mut i)?),
            b'0'..=b'9' => Value::U64(parse_u64(bytes, &mut i)?),
            _ => return None,
        };
        out.insert(key, value);
        skip_ws(bytes, &mut i);
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {
                i += 1;
                break;
            }
            _ => return None,
        }
    }
    skip_ws(bytes, &mut i);
    if i == bytes.len() {
        Some(out)
    } else {
        None
    }
}

fn skip_ws(bytes: &[u8], i: &mut usize) {
    while bytes.get(*i).is_some_and(u8::is_ascii_whitespace) {
        *i += 1;
    }
}

fn parse_u64(bytes: &[u8], i: &mut usize) -> Option<u64> {
    let start = *i;
    while bytes.get(*i).is_some_and(u8::is_ascii_digit) {
        *i += 1;
    }
    if *i == start {
        return None;
    }
    std::str::from_utf8(&bytes[start..*i]).ok()?.parse().ok()
}

fn parse_string(bytes: &[u8], i: &mut usize) -> Option<String> {
    if bytes.get(*i) != Some(&b'"') {
        return None;
    }
    *i += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*i)? {
            b'"' => {
                *i += 1;
                break;
            }
            b'\\' => {
                *i += 1;
                match bytes.get(*i)? {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let hex = bytes.get(*i + 1..*i + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.extend_from_slice(char::from_u32(code)?.to_string().as_bytes());
                        *i += 4;
                    }
                    _ => return None,
                }
                *i += 1;
            }
            _ => {
                out.push(bytes[*i]);
                *i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Renders an FNV-1a64 hash as fixed-width lowercase hex — the journal's
/// `crc` field and cell-ID format.
pub fn hex16(h: u64) -> String {
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "line\nbreak \"quoted\" back\\slash\ttab \u{1}ctrl";
        let line = format!("{{\"k\":\"{}\"}}", escape_json(nasty));
        let obj = parse_flat_object(&line).expect("parses");
        assert_eq!(obj["k"].as_str(), Some(nasty));
    }

    #[test]
    fn parses_mixed_fields_in_any_order() {
        let obj = parse_flat_object(r#"{"b":7,"a":"x","c":"y z"}"#).expect("parses");
        assert_eq!(obj["b"].as_u64(), Some(7));
        assert_eq!(obj["a"].as_str(), Some("x"));
        assert_eq!(obj["c"].as_str(), Some("y z"));
        assert_eq!(obj.len(), 3);
    }

    #[test]
    fn rejects_torn_and_malformed_lines() {
        for bad in [
            "",
            "{",
            r#"{"k":"v"#,
            r#"{"k":}"#,
            r#"{"k":"v"} trailing"#,
            r#"{"k":-1}"#,
            r#"{k:"v"}"#,
            r#"{"k":"v",}"#,
        ] {
            assert!(parse_flat_object(bad).is_none(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn hex16_is_fixed_width() {
        assert_eq!(hex16(0), "0000000000000000");
        assert_eq!(hex16(u64::MAX), "ffffffffffffffff");
        assert_eq!(hex16(0xabc).len(), 16);
    }
}
