//! Durable, crash-safe execution layer for experiment sweeps (ISSUE 7).
//!
//! A sweep's cells are independent deterministic simulations, so the only
//! state worth persisting is *which cell produced which bytes*. This
//! module provides exactly that:
//!
//! - every cell's inputs hash into a stable [`CellId`];
//! - each lifecycle step appends one checksummed JSONL record to a
//!   write-ahead journal ([`JournalWriter`]) — `start` before a cell
//!   runs, `done`/`fail` after, `quarantine` when retries are exhausted;
//! - on restart, [`replay`] folds the journal back into per-cell state:
//!   completed cells are *reused* (their payload comes from the journal,
//!   never re-executed), everything else re-runs;
//! - final artifacts (reports, trace exports) are published with
//!   [`atomic_write`], the tmp + fsync + rename helper — a reader never
//!   observes a half-written file.
//!
//! Crash safety is *proven*, not assumed: [`KillSpec`] aborts the runner
//! at the Nth journal append (optionally leaving a torn half-line, the
//! worst a real SIGKILL can do to an appended file), and the recovery
//! tests assert that resuming produces byte-identical output to an
//! uninterrupted run. See DESIGN.md §13 for the record schema.
//!
//! Like the trace exporters and the `xtask` validators, everything here
//! is dependency-free by construction (hand-rolled JSON, FNV-1a64
//! checksums) so it runs on the offline CI toolchain.

pub mod codec;
mod runner;

pub use runner::{
    run_journaled, CellError, CellOutcome, FailureClass, JournalCell, JournalOutcome, JournalStats,
    RunnerOptions,
};

use codec::{escape_json, fnv1a64, hex16, parse_flat_object, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal format version; bumped on incompatible schema changes.
pub const JOURNAL_VERSION: u64 = 1;

/// A stable identifier for one experiment cell: FNV-1a64 over the cell's
/// name and the sweep fingerprint, rendered as 16 hex digits. The same
/// cell under the same configuration gets the same ID on every host and
/// every run — that is what lets a resumed run match journal records back
/// to cells.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(
    /// The 16-hex-digit FNV-1a64 hash.
    pub String,
);

impl CellId {
    /// Derives the ID for the cell `name` under `fingerprint`.
    pub fn derive(name: &str, fingerprint: &str) -> CellId {
        let mut bytes = Vec::with_capacity(name.len() + fingerprint.len() + 1);
        bytes.extend_from_slice(name.as_bytes());
        bytes.push(0x1f); // unit separator: "a"+"bc" never collides with "ab"+"c"
        bytes.extend_from_slice(fingerprint.as_bytes());
        CellId(hex16(fnv1a64(&bytes)))
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Journal-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An I/O operation on the journal or an artifact failed.
    Io(String),
    /// The journal on disk was written under a different sweep
    /// configuration; resuming would mix incompatible results.
    FingerprintMismatch {
        /// Fingerprint of the sweep asking to resume.
        expected: String,
        /// Fingerprint recorded in the journal's meta record.
        found: String,
    },
    /// A record before the final line failed validation — real corruption,
    /// not a torn tail, so the journal cannot be trusted.
    Corrupt {
        /// 1-based line number of the offending record.
        line: usize,
        /// What failed.
        what: String,
    },
    /// Two cells in one sweep derived the same ID (duplicate names).
    DuplicateCell(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io: {e}"),
            JournalError::FingerprintMismatch { expected, found } => write!(
                f,
                "journal fingerprint mismatch: sweep is `{expected}` but journal was written \
                 under `{found}`"
            ),
            JournalError::Corrupt { line, what } => {
                write!(f, "journal corrupt at line {line}: {what}")
            }
            JournalError::DuplicateCell(id) => {
                write!(f, "duplicate cell id {id}: cell names must be unique")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e.to_string())
    }
}

/// Writes `bytes` to `path` atomically: tmp file in the same directory,
/// fsync, rename over the destination. A crash at any point leaves either
/// the old file or the new one — never a torn mix. Every final artifact
/// (reports, CSVs, trace exports) must go through here; the `atomic-write`
/// lint rule (`cargo xtask lint`) forbids direct `fs::write` elsewhere.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = tmp_sibling(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Best effort: don't leave the temp file behind on failure.
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// The temp-file path `atomic_write` stages into: `<file>.tmp` beside the
/// destination (same filesystem, so the rename is atomic).
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// How a [`KillSpec`] terminates the runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// Raise a [`crate::sweep::SweepAbort`] panic — unwinds through the
    /// sweep like a crash but stays inside the process, so tests can
    /// catch it and immediately resume.
    Panic,
    /// `process::exit(137)` — the real thing, exactly what a SIGKILLed
    /// process looks like to its parent. Used by `repro_all --kill-at`
    /// and the CI kill-and-resume smoke job.
    Exit,
}

/// Deterministic kill-point injector: abort the runner *instead of*
/// performing the Nth journal append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// 1-based append index to die at. An index beyond the run's total
    /// append count never fires — the run completes normally.
    pub at_append: u64,
    /// Write the first half of the record (no newline) before dying,
    /// simulating the torn tail a mid-write crash leaves behind.
    pub torn: bool,
    /// How to die.
    pub mode: KillMode,
}

/// One validated journal record, decoded from a JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// First record of every journal: schema version + sweep fingerprint.
    Meta {
        /// The sweep fingerprint (see `ExperimentConfig::fingerprint`).
        fingerprint: String,
    },
    /// A cell attempt is about to execute.
    Start {
        /// Cell ID.
        cell: CellId,
        /// Human-readable cell name.
        name: String,
        /// 1-based attempt number.
        attempt: u64,
    },
    /// A cell attempt completed; `payload` is the cell's output bytes.
    Done {
        /// Cell ID.
        cell: CellId,
        /// 1-based attempt number.
        attempt: u64,
        /// The cell's serialized result.
        payload: String,
    },
    /// A cell attempt failed and may be retried.
    Fail {
        /// Cell ID.
        cell: CellId,
        /// 1-based attempt number.
        attempt: u64,
        /// Failure class: `error`, `panic`, or `stuck`.
        class: String,
        /// Rendered failure message.
        error: String,
    },
    /// A cell exhausted its retry budget and is out of the sweep.
    Quarantine {
        /// Cell ID.
        cell: CellId,
        /// Attempts consumed before giving up.
        attempts: u64,
        /// The final failure message.
        error: String,
    },
}

impl Record {
    /// Serializes the record as one JSONL line (no trailing newline):
    /// `{` + core fields + `,"crc":"<hex16>"}` where the checksum covers
    /// the core field bytes.
    pub fn to_line(&self, seq: u64) -> String {
        let core = match self {
            Record::Meta { fingerprint } => format!(
                "\"v\":{JOURNAL_VERSION},\"seq\":{seq},\"kind\":\"meta\",\"fingerprint\":\"{}\"",
                escape_json(fingerprint)
            ),
            Record::Start { cell, name, attempt } => format!(
                "\"v\":{JOURNAL_VERSION},\"seq\":{seq},\"kind\":\"start\",\"cell\":\"{cell}\",\
                 \"name\":\"{}\",\"attempt\":{attempt}",
                escape_json(name)
            ),
            Record::Done { cell, attempt, payload } => format!(
                "\"v\":{JOURNAL_VERSION},\"seq\":{seq},\"kind\":\"done\",\"cell\":\"{cell}\",\
                 \"attempt\":{attempt},\"payload\":\"{}\"",
                escape_json(payload)
            ),
            Record::Fail { cell, attempt, class, error } => format!(
                "\"v\":{JOURNAL_VERSION},\"seq\":{seq},\"kind\":\"fail\",\"cell\":\"{cell}\",\
                 \"attempt\":{attempt},\"class\":\"{class}\",\"error\":\"{}\"",
                escape_json(error)
            ),
            Record::Quarantine { cell, attempts, error } => format!(
                "\"v\":{JOURNAL_VERSION},\"seq\":{seq},\"kind\":\"quarantine\",\
                 \"cell\":\"{cell}\",\"attempts\":{attempts},\"error\":\"{}\"",
                escape_json(error)
            ),
        };
        format!("{{{core},\"crc\":\"{}\"}}", hex16(fnv1a64(core.as_bytes())))
    }
}

/// Splits a raw line into its checksummed core and its recorded crc,
/// verifying the two agree. Shared shape with `xtask journal-check`'s
/// standalone copy.
fn verify_crc(line: &str) -> Option<&str> {
    let line = line.trim_end_matches(['\r']);
    let rest = line.strip_prefix('{')?;
    let marker = ",\"crc\":\"";
    let pos = rest.rfind(marker)?;
    let core = &rest[..pos];
    let crc_part = rest[pos + marker.len()..].strip_suffix("\"}")?;
    if crc_part.len() != 16 {
        return None;
    }
    if hex16(fnv1a64(core.as_bytes())) == crc_part {
        Some(core)
    } else {
        None
    }
}

/// Replayed per-cell state: the fold of every journal record that names
/// one cell. Order-insensitive; the latest decisive record wins.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellState {
    /// Cell name from the latest `start` record, if any.
    pub name: Option<String>,
    /// Payload from a `done` record — the cell is complete and must not
    /// re-execute.
    pub payload: Option<String>,
    /// The attempt number that produced `payload`.
    pub done_attempt: u64,
    /// Number of `fail` records (attempts already consumed).
    pub fails: u64,
    /// The most recent failure message.
    pub last_error: Option<String>,
    /// Whether a `quarantine` record exists for the cell.
    pub quarantined: bool,
    /// Whether any `start` record exists (an attempt began; absence of an
    /// outcome record means the runner died mid-cell).
    pub started: bool,
}

/// The fold of an entire journal file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Fingerprint from the meta record.
    pub fingerprint: String,
    /// Per-cell state, keyed by cell ID.
    pub cells: BTreeMap<CellId, CellState>,
    /// Count of valid records consumed (including meta).
    pub records: usize,
    /// The next unused sequence number.
    pub next_seq: u64,
    /// Byte length of the valid prefix; anything past it is a torn tail.
    pub valid_len: usize,
    /// Whether a torn (half-written) final line was discarded.
    pub torn_tail: bool,
}

/// Folds journal `text` into per-cell state.
///
/// A torn *final* line — the worst a mid-append crash can leave — is
/// tolerated and reported via [`Replay::torn_tail`]; the resume path
/// truncates it before appending. Any invalid line *before* a valid one
/// is real corruption and refuses to replay.
///
/// # Errors
///
/// [`JournalError::Corrupt`] on mid-file corruption, a missing or
/// malformed meta record, or an unknown record kind.
pub fn replay(text: &str) -> Result<Replay, JournalError> {
    let mut cells: BTreeMap<CellId, CellState> = BTreeMap::new();
    let mut fingerprint: Option<String> = None;
    let mut records = 0usize;
    let mut next_seq = 0u64;
    let mut valid_len = 0usize;
    let mut torn_tail = false;
    let mut offset = 0usize;
    for (idx, line) in text.split_inclusive('\n').enumerate() {
        let line_no = idx + 1;
        let start_offset = offset;
        offset += line.len();
        let complete = line.ends_with('\n');
        let trimmed = line.trim();
        if trimmed.is_empty() {
            if complete {
                valid_len = offset;
            }
            continue;
        }
        let parsed = verify_crc(trimmed).and_then(|_| parse_flat_object(trimmed));
        let Some(obj) = parsed.filter(|_| complete) else {
            // Only the final line may be torn; everything else is
            // corruption. (`start_offset + line.len() == text.len()`
            // means nothing follows this line.)
            if start_offset + line.len() == text.len() {
                torn_tail = true;
                break;
            }
            return Err(JournalError::Corrupt {
                line: line_no,
                what: "bad checksum or malformed record followed by valid data".to_string(),
            });
        };
        let field_str = |k: &str| obj.get(k).and_then(Value::as_str).map(str::to_string);
        let field_u64 = |k: &str| obj.get(k).and_then(Value::as_u64);
        let corrupt = |what: &str| JournalError::Corrupt { line: line_no, what: what.to_string() };
        if field_u64("v") != Some(JOURNAL_VERSION) {
            return Err(corrupt("unsupported journal version"));
        }
        let seq = field_u64("seq").ok_or_else(|| corrupt("missing seq"))?;
        next_seq = next_seq.max(seq + 1);
        let kind = field_str("kind").ok_or_else(|| corrupt("missing kind"))?;
        if records == 0 && kind != "meta" {
            return Err(corrupt("first record must be meta"));
        }
        match kind.as_str() {
            "meta" => {
                let fp =
                    field_str("fingerprint").ok_or_else(|| corrupt("meta lacks fingerprint"))?;
                if fingerprint.is_some() {
                    return Err(corrupt("duplicate meta record"));
                }
                fingerprint = Some(fp);
            }
            "start" | "done" | "fail" | "quarantine" => {
                let cell =
                    CellId(field_str("cell").ok_or_else(|| corrupt("record lacks cell id"))?);
                let state = cells.entry(cell).or_default();
                match kind.as_str() {
                    "start" => {
                        state.started = true;
                        if let Some(name) = field_str("name") {
                            state.name = Some(name);
                        }
                    }
                    "done" => {
                        state.payload = Some(
                            field_str("payload").ok_or_else(|| corrupt("done lacks payload"))?,
                        );
                        state.done_attempt = field_u64("attempt").unwrap_or(1);
                    }
                    "fail" => {
                        state.fails += 1;
                        state.last_error = field_str("error");
                    }
                    _ => {
                        state.quarantined = true;
                        state.last_error = field_str("error").or_else(|| state.last_error.take());
                    }
                }
            }
            other => return Err(corrupt(&format!("unknown record kind `{other}`"))),
        }
        records += 1;
        valid_len = offset;
    }
    let fingerprint = fingerprint
        .ok_or(JournalError::Corrupt { line: 1, what: "journal has no meta record".to_string() })?;
    Ok(Replay { fingerprint, cells, records, next_seq, valid_len, torn_tail })
}

struct WriterInner {
    file: std::fs::File,
    seq: u64,
    appends: u64,
    dead: bool,
}

/// Append-only, fsync-per-record journal writer, shared across sweep
/// workers through an internal mutex.
///
/// With a [`KillSpec`] armed, the writer dies *instead of* performing the
/// specified append (optionally leaving a torn half-line first). After a
/// `Panic`-mode kill, every later append from any worker also raises
/// [`crate::sweep::SweepAbort`]: the journal is dead, exactly as if the
/// process were.
pub struct JournalWriter {
    inner: Mutex<WriterInner>,
    kill: Option<KillSpec>,
}

impl fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JournalWriter").field("kill", &self.kill).finish_non_exhaustive()
    }
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any previous file)
    /// and writes the meta record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the meta append itself may also trip an
    /// armed kill-point.
    pub fn create(
        path: &Path,
        fingerprint: &str,
        kill: Option<KillSpec>,
    ) -> Result<JournalWriter, JournalError> {
        let file = std::fs::File::create(path)?;
        let writer = JournalWriter {
            inner: Mutex::new(WriterInner { file, seq: 0, appends: 0, dead: false }),
            kill,
        };
        writer.append(&Record::Meta { fingerprint: fingerprint.to_string() });
        Ok(writer)
    }

    /// Opens an existing journal for appending, truncating a torn tail
    /// (per `replay.valid_len`) so new records always follow valid ones.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn resume(
        path: &Path,
        replay: &Replay,
        kill: Option<KillSpec>,
    ) -> Result<JournalWriter, JournalError> {
        use std::io::Seek as _;
        let mut file = std::fs::OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(replay.valid_len as u64)?;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(JournalWriter {
            inner: Mutex::new(WriterInner { file, seq: replay.next_seq, appends: 0, dead: false }),
            kill,
        })
    }

    /// Appends one record, fsyncing before returning — once this returns,
    /// the record survives any crash.
    ///
    /// # Panics
    ///
    /// Raises [`crate::sweep::SweepAbort`] when an armed kill-point fires
    /// (or already fired), and on I/O failure mid-sweep — both unwound
    /// through the fallible lane as whole-runner death, never recorded as
    /// a cell failure.
    pub fn append(&self, record: &Record) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.dead {
            std::panic::panic_any(crate::sweep::SweepAbort("journal dead after kill-point"));
        }
        inner.appends += 1;
        let line = record.to_line(inner.seq);
        inner.seq += 1;
        if let Some(kill) = self.kill {
            if inner.appends == kill.at_append {
                if kill.torn {
                    let torn = &line.as_bytes()[..line.len() / 2];
                    let _ = inner.file.write_all(torn);
                    let _ = inner.file.sync_data();
                }
                inner.dead = true;
                drop(inner);
                match kill.mode {
                    KillMode::Panic => {
                        std::panic::panic_any(crate::sweep::SweepAbort("kill-point"))
                    }
                    KillMode::Exit => std::process::exit(137),
                }
            }
        }
        let write = (|| -> std::io::Result<()> {
            inner.file.write_all(line.as_bytes())?;
            inner.file.write_all(b"\n")?;
            inner.file.sync_data()
        })();
        if write.is_err() {
            inner.dead = true;
            std::panic::panic_any(crate::sweep::SweepAbort("journal write failed"));
        }
    }

    /// Total appends attempted so far (including one that died at a
    /// kill-point).
    pub fn appends(&self) -> u64 {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).appends
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepAbort;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, Ordering};

    static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    /// A unique scratch path that never depends on wall-clock time.
    fn scratch(tag: &str) -> PathBuf {
        let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("tiersim-journal-{}-{tag}-{n}", std::process::id()))
    }

    fn cell(n: u64) -> CellId {
        CellId(hex16(n))
    }

    #[test]
    fn records_roundtrip_through_replay() {
        let path = scratch("roundtrip");
        let w = JournalWriter::create(&path, "fp-1", None).unwrap();
        w.append(&Record::Start { cell: cell(1), name: "alpha".to_string(), attempt: 1 });
        w.append(&Record::Done {
            cell: cell(1),
            attempt: 1,
            payload: "line a\nline b".to_string(),
        });
        w.append(&Record::Start { cell: cell(2), name: "beta".to_string(), attempt: 1 });
        w.append(&Record::Fail {
            cell: cell(2),
            attempt: 1,
            class: "panic".to_string(),
            error: "boom \"quoted\"".to_string(),
        });
        w.append(&Record::Quarantine { cell: cell(3), attempts: 3, error: "stuck".to_string() });
        let text = std::fs::read_to_string(&path).unwrap();
        let r = replay(&text).unwrap();
        assert_eq!(r.fingerprint, "fp-1");
        assert_eq!(r.records, 6);
        assert!(!r.torn_tail);
        let one = &r.cells[&cell(1)];
        assert_eq!(one.payload.as_deref(), Some("line a\nline b"));
        assert_eq!(one.name.as_deref(), Some("alpha"));
        let two = &r.cells[&cell(2)];
        assert!(two.payload.is_none());
        assert_eq!(two.fails, 1);
        assert_eq!(two.last_error.as_deref(), Some("boom \"quoted\""));
        assert!(r.cells[&cell(3)].quarantined);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated_and_truncated_on_resume() {
        let path = scratch("torn");
        let w = JournalWriter::create(&path, "fp", None).unwrap();
        w.append(&Record::Done { cell: cell(9), attempt: 1, payload: "ok".to_string() });
        drop(w);
        // Simulate a mid-append crash: half a record, no newline.
        let full = std::fs::read_to_string(&path).unwrap();
        let torn_line =
            Record::Done { cell: cell(10), attempt: 1, payload: "lost".to_string() }.to_line(99);
        let mut torn = full.clone().into_bytes();
        torn.extend_from_slice(&torn_line.as_bytes()[..torn_line.len() / 2]);
        atomic_write(&path, &torn).unwrap();
        let r = replay(std::str::from_utf8(&torn).unwrap()).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.records, 2, "the torn record is discarded");
        assert_eq!(r.valid_len, full.len());
        assert!(!r.cells.contains_key(&cell(10)));
        // Resume truncates the tail; the next append lands on a clean file.
        let w = JournalWriter::resume(&path, &r, None).unwrap();
        w.append(&Record::Done { cell: cell(11), attempt: 1, payload: "after".to_string() });
        let r2 = replay(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(!r2.torn_tail);
        assert_eq!(r2.records, 3);
        assert!(r2.cells[&cell(11)].payload.is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_refused() {
        let path = scratch("corrupt");
        let w = JournalWriter::create(&path, "fp", None).unwrap();
        w.append(&Record::Done { cell: cell(1), attempt: 1, payload: "a".to_string() });
        w.append(&Record::Done { cell: cell(2), attempt: 1, payload: "b".to_string() });
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        // Flip a byte in the middle record: its crc no longer matches.
        lines[1] = lines[1].replace("\"payload\":\"a\"", "\"payload\":\"A\"");
        let tampered = lines.join("\n") + "\n";
        assert!(matches!(replay(&tampered), Err(JournalError::Corrupt { line: 2, .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn kill_point_fires_at_exact_append_and_poisons_the_writer() {
        let path = scratch("kill");
        // Append #3 (meta is #1) dies instead of landing.
        let kill = KillSpec { at_append: 3, torn: false, mode: KillMode::Panic };
        let w = JournalWriter::create(&path, "fp", Some(kill)).unwrap();
        w.append(&Record::Done { cell: cell(1), attempt: 1, payload: "one".to_string() });
        let died = catch_unwind(AssertUnwindSafe(|| {
            w.append(&Record::Done { cell: cell(2), attempt: 1, payload: "two".to_string() });
        }))
        .unwrap_err();
        assert_eq!(died.downcast_ref::<SweepAbort>(), Some(&SweepAbort("kill-point")));
        // The killed append never landed; later appends die too.
        let again = catch_unwind(AssertUnwindSafe(|| {
            w.append(&Record::Done { cell: cell(3), attempt: 1, payload: "three".to_string() });
        }))
        .unwrap_err();
        assert!(again.is::<SweepAbort>());
        let r = replay(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(r.records, 2, "only the appends before the kill survive");
        assert!(!r.cells.contains_key(&cell(2)));
        assert!(!r.cells.contains_key(&cell(3)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_kill_leaves_a_recoverable_half_line() {
        let path = scratch("torn-kill");
        let kill = KillSpec { at_append: 2, torn: true, mode: KillMode::Panic };
        let w = JournalWriter::create(&path, "fp", Some(kill)).unwrap();
        let died = catch_unwind(AssertUnwindSafe(|| {
            w.append(&Record::Done { cell: cell(1), attempt: 1, payload: "gone".to_string() });
        }))
        .unwrap_err();
        assert!(died.is::<SweepAbort>());
        let text = std::fs::read_to_string(&path).unwrap();
        let r = replay(&text).unwrap();
        assert!(r.torn_tail, "the half-written record reads as a torn tail");
        assert_eq!(r.records, 1, "only meta survives");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_shape_renders() {
        let e =
            JournalError::FingerprintMismatch { expected: "a".to_string(), found: "b".to_string() };
        assert!(e.to_string().contains("fingerprint"));
    }

    #[test]
    fn atomic_write_replaces_content_and_cleans_tmp() {
        let path = scratch("atomic");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second version").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second version");
        assert!(!tmp_sibling(&path).exists(), "no staging file left behind");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cell_ids_are_stable_and_separator_safe() {
        assert_eq!(CellId::derive("bfs-kron", "fp"), CellId::derive("bfs-kron", "fp"));
        assert_ne!(CellId::derive("bfs-kron", "fp"), CellId::derive("bfs-kron", "fp2"));
        assert_ne!(CellId::derive("ab", "c"), CellId::derive("a", "bc"));
        assert_eq!(CellId::derive("x", "y").0.len(), 16);
    }
}
