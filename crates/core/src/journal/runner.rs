//! The journaled sweep runner: waves of fallible cells over a durable
//! write-ahead journal.
//!
//! Each cell appends `start` before executing and `done` right after
//! producing its payload — from the worker thread, so a result is durable
//! the moment it exists. Failures are classified and appended post-wave
//! in cell-index order; cells with remaining attempt budget go into the
//! next wave (bounded, deterministic backoff — a wave *is* the backoff
//! unit), and cells that exhaust it are quarantined. On resume, completed
//! cells come back from the journal without re-executing; everything else
//! runs again.

use super::{replay, CellId, JournalError, JournalWriter, KillSpec, Record};
use crate::sweep::{run_cells_fallible, CellFailure};
use std::path::Path;
use tiersim_trace::{TraceConfig, TraceEvent, TraceLog, TraceState};

/// How a cell failed, as recorded in the journal's `class` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// The cell returned an error.
    Error,
    /// The cell panicked (foreign panic caught by the fallible lane).
    Panic,
    /// The stuck-cell watchdog fired ([`crate::RunError::Stuck`]).
    Stuck,
}

impl FailureClass {
    /// The journal's string encoding of the class.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureClass::Error => "error",
            FailureClass::Panic => "panic",
            FailureClass::Stuck => "stuck",
        }
    }
}

/// A classified cell failure, as the journal records it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// Failure class for the journal's `class` field.
    pub class: FailureClass,
    /// Rendered message for the journal's `error` field.
    pub message: String,
}

/// One journaled sweep cell: a unique name plus a *re-callable* body
/// (retries and resume both need to run it again), returning the cell's
/// serialized payload.
pub struct JournalCell {
    /// Unique cell name (hashed with the sweep fingerprint into the
    /// [`CellId`]).
    pub name: String,
    /// The cell body. Must be deterministic: same configuration, same
    /// payload bytes, on every host and attempt.
    pub run: Box<dyn Fn() -> Result<String, CellError> + Send + Sync>,
}

impl std::fmt::Debug for JournalCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalCell").field("name", &self.name).finish_non_exhaustive()
    }
}

/// Knobs for [`run_journaled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerOptions {
    /// Worker threads for each wave (see [`crate::sweep::run_cells`]).
    pub jobs: usize,
    /// Attempts per cell per session before quarantine (minimum 1).
    pub max_attempts: u64,
    /// Deterministic kill-point injector, for crash-recovery tests and
    /// `repro_all --kill-at`.
    pub kill: Option<KillSpec>,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions { jobs: 1, max_attempts: 3, kill: None }
    }
}

/// Final state of one cell after a journaled sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// The cell has a payload — produced this session or replayed from
    /// the journal.
    Completed {
        /// The cell's serialized result.
        payload: String,
        /// Attempt number that produced the payload.
        attempts: u64,
        /// `true` if the payload came from the journal (the cell was
        /// *not* re-executed this session).
        replayed: bool,
    },
    /// The cell exhausted its attempt budget.
    Quarantined {
        /// The final failure message.
        error: String,
        /// Attempts consumed this session.
        attempts: u64,
    },
}

/// Degraded-mode accounting for a journaled sweep.
///
/// `completed`/`retried`/`quarantined` describe the *final state* and are
/// identical between an uninterrupted run and any kill+resume of it;
/// `executed`/`replayed` describe *this session's work* and are exactly
/// what the recovery tests use to prove completed cells never re-run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Cells with a payload (replayed or executed).
    pub completed: u64,
    /// Completed cells that needed more than one attempt.
    pub retried: u64,
    /// Cells quarantined after exhausting their budget.
    pub quarantined: u64,
    /// Cell executions performed this session (attempts, not cells).
    pub executed: u64,
    /// Cells whose payload was reused from the journal this session.
    pub replayed: u64,
}

/// The result of a journaled sweep.
#[derive(Debug)]
pub struct JournalOutcome {
    /// Per-cell outcomes, in the sweep's input order.
    pub cells: Vec<(String, CellOutcome)>,
    /// Degraded-mode accounting.
    pub stats: JournalStats,
    /// This session's cell lifecycle events (`cell_start`, `cell_done`,
    /// `cell_retry`, `cell_quarantine`), recorded deterministically in
    /// cell-index order per wave.
    pub trace: TraceLog,
}

/// Runs `cells` against the journal at `path`: create it if absent,
/// replay and resume it if present.
///
/// Completed cells found in the journal are returned without
/// re-executing. Everything else runs in waves via the fallible sweep
/// lane; a failing cell retries in the next wave until `max_attempts`,
/// then is quarantined. The returned outcome's payload bytes are a pure
/// function of the cells — identical for every `jobs` value and across
/// any kill/resume split.
///
/// # Errors
///
/// [`JournalError`] on I/O failure, fingerprint mismatch, duplicate cell
/// names, or a corrupt journal.
///
/// # Panics
///
/// Raises [`crate::sweep::SweepAbort`] when an armed kill-point fires.
pub fn run_journaled(
    path: &Path,
    fingerprint: &str,
    cells: Vec<JournalCell>,
    opts: RunnerOptions,
) -> Result<JournalOutcome, JournalError> {
    let ids: Vec<CellId> = cells.iter().map(|c| CellId::derive(&c.name, fingerprint)).collect();
    {
        let mut seen = std::collections::BTreeSet::new();
        for id in &ids {
            if !seen.insert(id) {
                return Err(JournalError::DuplicateCell(id.0.clone()));
            }
        }
    }
    // A journal with no complete line (absent, empty, or killed mid-meta)
    // is indistinguishable from "never started": begin fresh.
    let existing = if path.exists() { std::fs::read_to_string(path)? } else { String::new() };
    let (writer, prior) = if existing.contains('\n') {
        let rep = replay(&existing)?;
        if rep.fingerprint != fingerprint {
            return Err(JournalError::FingerprintMismatch {
                expected: fingerprint.to_string(),
                found: rep.fingerprint,
            });
        }
        let writer = JournalWriter::resume(path, &rep, opts.kill)?;
        (writer, rep.cells)
    } else {
        (JournalWriter::create(path, fingerprint, opts.kill)?, Default::default())
    };

    let n = cells.len();
    let max_attempts = opts.max_attempts.max(1);
    let mut outcomes: Vec<Option<CellOutcome>> = (0..n).map(|_| None).collect();
    let mut stats = JournalStats::default();
    // Attempt numbers already consumed, per cell, for journal numbering.
    // A quarantined cell's episode is closed: it re-runs with a fresh
    // budget, its journal attempts simply continuing upward.
    let mut base_attempts = vec![0u64; n];
    let mut pending: Vec<usize> = Vec::new();
    for i in 0..n {
        match prior.get(&ids[i]) {
            Some(state) if state.payload.is_some() => {
                let attempts = state.done_attempt.max(1);
                stats.replayed += 1;
                outcomes[i] = Some(CellOutcome::Completed {
                    // tiersim-lint: allow(unwrap) — guarded by the match arm.
                    payload: state.payload.clone().expect("payload present"),
                    attempts,
                    replayed: true,
                });
            }
            Some(state) => {
                // Journal attempt numbers continue upward across sessions,
                // even past a quarantine (the episode closes, numbering
                // does not reset — every record stays unambiguous).
                base_attempts[i] = state.fails;
                pending.push(i);
            }
            None => pending.push(i),
        }
    }

    let mut trace = TraceState::new(TraceConfig::on());
    let mut wave = 1u64;
    let mut active = pending;
    while !active.is_empty() {
        let wave_cells: Vec<_> = active
            .iter()
            .map(|&i| {
                let id = ids[i].clone();
                let cell = &cells[i];
                let attempt = base_attempts[i] + wave;
                let writer = &writer;
                move || -> Result<String, CellError> {
                    writer.append(&Record::Start {
                        cell: id.clone(),
                        name: cell.name.clone(),
                        attempt,
                    });
                    let payload = (cell.run)()?;
                    // Durable before the result is even collected: a crash
                    // after this append replays the payload, not the run.
                    writer.append(&Record::Done { cell: id, attempt, payload: payload.clone() });
                    Ok(payload)
                }
            })
            .collect();
        let results = run_cells_fallible(opts.jobs, wave_cells);
        let mut next = Vec::new();
        for (slot, result) in active.iter().zip(results) {
            let i = *slot;
            let attempt = base_attempts[i] + wave;
            stats.executed += 1;
            trace.record(TraceEvent::CellStart { cell: i as u64, attempt });
            match result {
                Ok(payload) => {
                    trace.record(TraceEvent::CellDone { cell: i as u64, attempt });
                    outcomes[i] = Some(CellOutcome::Completed {
                        payload,
                        attempts: attempt,
                        replayed: false,
                    });
                }
                Err(failure) => {
                    let (class, message) = match failure {
                        CellFailure::Error(e) => (e.class, e.message),
                        CellFailure::Panic(msg) => (FailureClass::Panic, msg),
                    };
                    writer.append(&Record::Fail {
                        cell: ids[i].clone(),
                        attempt,
                        class: class.as_str().to_string(),
                        error: message.clone(),
                    });
                    if wave < max_attempts {
                        trace.record(TraceEvent::CellRetry { cell: i as u64, attempt });
                        next.push(i);
                    } else {
                        trace.record(TraceEvent::CellQuarantine { cell: i as u64, attempt });
                        writer.append(&Record::Quarantine {
                            cell: ids[i].clone(),
                            attempts: attempt,
                            error: message.clone(),
                        });
                        outcomes[i] =
                            Some(CellOutcome::Quarantined { error: message, attempts: attempt });
                    }
                }
            }
        }
        active = next;
        wave += 1;
    }

    let cells_out: Vec<(String, CellOutcome)> = cells
        .iter()
        .zip(outcomes)
        .map(|(cell, outcome)| {
            // Every index is either replayed or assigned by the wave
            // loop above. tiersim-lint: allow(unwrap)
            (cell.name.clone(), outcome.expect("cell has an outcome"))
        })
        .collect();
    for (_, outcome) in &cells_out {
        match outcome {
            CellOutcome::Completed { attempts, .. } => {
                stats.completed += 1;
                stats.retried += u64::from(*attempts > 1);
            }
            CellOutcome::Quarantined { .. } => stats.quarantined += 1,
        }
    }
    Ok(JournalOutcome { cells: cells_out, stats, trace: trace.log() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::KillMode;
    use crate::sweep::SweepAbort;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch(tag: &str) -> PathBuf {
        let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("tiersim-jrunner-{}-{tag}-{n}", std::process::id()))
    }

    fn ok_cell(name: &str, payload: &str, counter: &Arc<AtomicU64>) -> JournalCell {
        let payload = payload.to_string();
        let counter = Arc::clone(counter);
        JournalCell {
            name: name.to_string(),
            run: Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                Ok(payload.clone())
            }),
        }
    }

    fn failing_cell(name: &str, class: FailureClass) -> JournalCell {
        JournalCell {
            name: name.to_string(),
            run: Box::new(move || {
                Err(CellError { class, message: format!("always fails ({})", class.as_str()) })
            }),
        }
    }

    /// Fails `fail_times` times, then succeeds.
    fn flaky_cell(name: &str, fail_times: u64, counter: &Arc<AtomicU64>) -> JournalCell {
        let counter = Arc::clone(counter);
        let name_owned = name.to_string();
        JournalCell {
            name: name.to_string(),
            run: Box::new(move || {
                let attempt = counter.fetch_add(1, Ordering::Relaxed) + 1;
                if attempt <= fail_times {
                    Err(CellError {
                        class: FailureClass::Error,
                        message: format!("{name_owned} flake {attempt}"),
                    })
                } else {
                    Ok(format!("{name_owned} payload"))
                }
            }),
        }
    }

    #[test]
    fn clean_sweep_completes_and_is_resumable_as_a_noop() {
        let path = scratch("clean");
        let counters: Vec<Arc<AtomicU64>> = (0..3).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let make = |counters: &[Arc<AtomicU64>]| {
            vec![
                ok_cell("a", "payload-a", &counters[0]),
                ok_cell("b", "payload-b", &counters[1]),
                ok_cell("c", "payload-c", &counters[2]),
            ]
        };
        let out = run_journaled(&path, "fp", make(&counters), RunnerOptions::default()).unwrap();
        assert_eq!(out.stats.completed, 3);
        assert_eq!(out.stats.executed, 3);
        assert_eq!(out.stats.replayed, 0);
        assert_eq!(out.stats.quarantined, 0);
        assert!(!out.trace.records.is_empty());
        // Resume over a complete journal: everything replays, nothing runs.
        let again = run_journaled(&path, "fp", make(&counters), RunnerOptions::default()).unwrap();
        assert_eq!(again.stats.replayed, 3);
        assert_eq!(again.stats.executed, 0);
        for c in &counters {
            assert_eq!(c.load(Ordering::Relaxed), 1, "each cell executed exactly once ever");
        }
        let payloads: Vec<&str> = again
            .cells
            .iter()
            .map(|(_, o)| match o {
                CellOutcome::Completed { payload, .. } => payload.as_str(),
                CellOutcome::Quarantined { .. } => "",
            })
            .collect();
        assert_eq!(payloads, ["payload-a", "payload-b", "payload-c"]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn panicking_and_failing_cells_are_quarantined_while_others_complete() {
        for jobs in [1, 4] {
            let path = scratch("quarantine");
            let counter = Arc::new(AtomicU64::new(0));
            let cells = vec![
                ok_cell("good-1", "one", &counter),
                failing_cell("always-err", FailureClass::Error),
                JournalCell {
                    name: "panics".to_string(),
                    run: Box::new(|| panic!("cell exploded")),
                },
                failing_cell("stuck-cell", FailureClass::Stuck),
                ok_cell("good-2", "two", &counter),
            ];
            let opts = RunnerOptions { jobs, max_attempts: 2, kill: None };
            let out = run_journaled(&path, "fp", cells, opts).unwrap();
            assert_eq!(out.stats.completed, 2, "jobs={jobs}");
            assert_eq!(out.stats.quarantined, 3);
            // 2 goods × 1 attempt + 3 bads × 2 attempts.
            assert_eq!(out.stats.executed, 8);
            assert!(matches!(out.cells[2].1, CellOutcome::Quarantined { .. }));
            match &out.cells[3].1 {
                CellOutcome::Quarantined { error, attempts } => {
                    assert!(error.contains("stuck"));
                    assert_eq!(*attempts, 2);
                }
                other => panic!("expected quarantine, got {other:?}"),
            }
            // The journal recorded the classes faithfully.
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.contains("\"class\":\"panic\""));
            assert!(text.contains("\"class\":\"error\""));
            assert!(text.contains("\"class\":\"stuck\""));
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn flaky_cell_retries_and_counts_as_retried() {
        let path = scratch("flaky");
        let counter = Arc::new(AtomicU64::new(0));
        let ok = Arc::new(AtomicU64::new(0));
        let cells = vec![flaky_cell("flaky", 1, &counter), ok_cell("solid", "s", &ok)];
        let out = run_journaled(&path, "fp", cells, RunnerOptions::default()).unwrap();
        assert_eq!(out.stats.completed, 2);
        assert_eq!(out.stats.retried, 1);
        assert_eq!(out.stats.quarantined, 0);
        assert_eq!(counter.load(Ordering::Relaxed), 2);
        match &out.cells[0].1 {
            CellOutcome::Completed { attempts, .. } => assert_eq!(*attempts, 2),
            other => panic!("expected completion, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn kill_and_resume_never_reexecutes_completed_cells() {
        // Serial execution appends deterministically: meta, then per cell
        // start+done. Kill at every append index and check the invariant.
        let total_appends = 1 + 2 * 4; // meta + 4 cells × (start, done)
        for kill_at in 1..=total_appends {
            let path = scratch(&format!("killsweep-{kill_at}"));
            let counters: Vec<Arc<AtomicU64>> =
                (0..4).map(|_| Arc::new(AtomicU64::new(0))).collect();
            let make = |counters: &[Arc<AtomicU64>]| {
                (0..4)
                    .map(|i| ok_cell(&format!("cell-{i}"), &format!("p{i}"), &counters[i]))
                    .collect::<Vec<_>>()
            };
            let kill = KillSpec {
                at_append: kill_at as u64,
                torn: kill_at % 2 == 0, // alternate torn and clean kills
                mode: KillMode::Panic,
            };
            let opts = RunnerOptions { jobs: 1, max_attempts: 3, kill: Some(kill) };
            let died = catch_unwind(AssertUnwindSafe(|| {
                run_journaled(&path, "fp", make(&counters), opts)
            }));
            assert!(died.is_err(), "kill_at={kill_at} must abort the run");
            assert!(
                died.unwrap_err().is::<SweepAbort>(),
                "kill_at={kill_at} aborts via SweepAbort"
            );
            // Resume without a kill: the sweep completes.
            let out =
                run_journaled(&path, "fp", make(&counters), RunnerOptions::default()).unwrap();
            assert_eq!(out.stats.completed, 4, "kill_at={kill_at}");
            assert_eq!(out.stats.quarantined, 0);
            assert_eq!(
                out.stats.replayed + out.stats.executed,
                4,
                "kill_at={kill_at}: every cell replayed xor executed"
            );
            let payloads: Vec<String> = out
                .cells
                .iter()
                .map(|(_, o)| match o {
                    CellOutcome::Completed { payload, .. } => payload.clone(),
                    CellOutcome::Quarantined { .. } => String::new(),
                })
                .collect();
            assert_eq!(payloads, ["p0", "p1", "p2", "p3"], "kill_at={kill_at}");
            // The core invariant: a cell whose `done` record landed before
            // the kill is never executed again.
            for (i, c) in counters.iter().enumerate() {
                let execs = c.load(Ordering::Relaxed);
                assert!(
                    (1..=2).contains(&execs),
                    "kill_at={kill_at} cell {i}: executed {execs} times"
                );
            }
            let total_execs: u64 = counters.iter().map(|c| c.load(Ordering::Relaxed)).sum();
            // At most one cell (the one in flight at the kill) re-executes.
            assert!(total_execs <= 5, "kill_at={kill_at}: {total_execs} executions");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn resume_refuses_a_different_fingerprint() {
        let path = scratch("fp-mismatch");
        let c = Arc::new(AtomicU64::new(0));
        run_journaled(&path, "fp-a", vec![ok_cell("x", "p", &c)], RunnerOptions::default())
            .unwrap();
        let err =
            run_journaled(&path, "fp-b", vec![ok_cell("x", "p", &c)], RunnerOptions::default())
                .unwrap_err();
        assert!(matches!(err, JournalError::FingerprintMismatch { .. }));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_cell_names_are_rejected() {
        let path = scratch("dup");
        let c = Arc::new(AtomicU64::new(0));
        let cells = vec![ok_cell("same", "1", &c), ok_cell("same", "2", &c)];
        let err = run_journaled(&path, "fp", cells, RunnerOptions::default()).unwrap_err();
        assert!(matches!(err, JournalError::DuplicateCell(_)));
        assert!(!path.exists(), "rejected before any journal I/O");
    }

    #[test]
    fn quarantined_cells_rerun_on_resume() {
        let path = scratch("requarantine");
        // First session: the cell always fails -> quarantined.
        let out = run_journaled(
            &path,
            "fp",
            vec![failing_cell("heals", FailureClass::Error)],
            RunnerOptions { jobs: 1, max_attempts: 2, kill: None },
        )
        .unwrap();
        assert_eq!(out.stats.quarantined, 1);
        // Second session: the cell heals (e.g. a config fix re-ran it).
        let c = Arc::new(AtomicU64::new(0));
        let out2 = run_journaled(
            &path,
            "fp",
            vec![ok_cell("heals", "recovered", &c)],
            RunnerOptions::default(),
        )
        .unwrap();
        assert_eq!(out2.stats.completed, 1);
        assert_eq!(out2.stats.executed, 1, "quarantined cells re-run on resume");
        assert_eq!(c.load(Ordering::Relaxed), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
