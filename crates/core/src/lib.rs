//! # tiersim-core — machine assembly, workload runner, experiments
//!
//! Ties the substrates together into the system the paper studies:
//!
//! - [`Machine`] wires the memory simulator (`tiersim-mem`), the Linux-MM
//!   model (`tiersim-os`) and the profiler (`tiersim-profile`) behind one
//!   [`tiersim_mem::MemBackend`], so the GAPBS-like workloads of
//!   `tiersim-graph` run on it unchanged.
//! - [`run_workload`] executes a full run — file load through the page
//!   cache, CSR build, kernel trials — and produces a [`RunReport`] with
//!   samples, allocations, counters and per-second timelines.
//! - [`experiments`] derives every table and figure of the paper's
//!   evaluation from those reports; `tiersim-bench` exposes one
//!   reproduction binary per experiment.
//!
//! ## Quickstart
//!
//! ```no_run
//! use tiersim_core::{run_workload, Dataset, Kernel, MachineConfig, WorkloadConfig};
//! use tiersim_policy::TieringMode;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = WorkloadConfig::new(Kernel::Bfs, Dataset::Kron).scale(14);
//! let machine = MachineConfig::scaled_default(workload.steady_app_bytes(), TieringMode::AutoNuma);
//! let report = run_workload(machine, workload)?;
//! println!("exec time: {:.3}s, NVM samples: {}", report.exec_secs(), report.nvm_samples());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod error;
pub mod experiments;
pub mod journal;
mod machine;
pub mod render;
mod report;
mod runner;
pub mod sweep;
mod timeline;
pub mod tune;
mod workload;

pub use config::{FaultConfig, MachineConfig};
pub use error::{CoreError, RunError};
pub use experiments::ExperimentConfig;
pub use machine::Machine;
pub use report::RunReport;
pub use runner::{generate, plan_from_report, run_autonuma_vs_static, run_workload};
pub use tiersim_mem::{CycleWindow, FaultPlan, FaultStats, RATE_ONE};
pub use tiersim_trace::{
    to_csv as trace_to_csv, to_jsonl as trace_to_jsonl, TraceConfig, TraceEvent, TraceLog,
    TraceRecord, CSV_HEADER as TRACE_CSV_HEADER,
};
pub use timeline::{TimelineOps, TimelineSnapshot};
pub use workload::{Dataset, Kernel, LoadMode, WorkloadConfig};
