//! The assembled machine: memory system + OS model + profiler behind one
//! [`MemBackend`].

use crate::config::MachineConfig;
use crate::error::{CoreError, RunError};
use crate::timeline::TimelineSnapshot;
use tiersim_mem::{
    AccessError, AccessKind, MemBackend, MemPolicy, MemorySystem, ThreadId, Tier, TraceLog,
    VirtAddr, PAGE_SIZE,
};
use tiersim_os::{AutoNuma, NumaStat};
use tiersim_policy::{
    aggregate_by_label, plan_static, DynamicObjectConfig, Placement, TieringMode,
};
use tiersim_profile::{AllocTracker, Sampler};

/// Syscall overhead charged per `mmap`/`munmap`, in cycles (~0.5 µs).
const SYSCALL_COST_CYCLES: u64 = 1_300;

/// Elements per batched run chunk ([`Machine::run`]): large enough to
/// amortize the run-engine dispatch, small enough that OS housekeeping —
/// which runs at chunk boundaries in batched mode — stays timely.
const RUN_CHUNK_ELEMS: u64 = 4_096;

/// The simulated machine for one run.
///
/// `Machine` implements [`MemBackend`], so graph workloads written against
/// `tiersim-graph` run on it unchanged. Every load/store goes through the
/// TLB/cache/device pipeline, drives the AutoNUMA engine (faults, hint
/// faults, periodic work), feeds the PEBS-style sampler, and advances the
/// simulated clock by `cost / threads` (an ideal parallel interleave of
/// the logical threads).
///
/// # Examples
///
/// ```
/// use tiersim_core::{Machine, MachineConfig};
/// use tiersim_mem::{MemBackend, SimVec};
/// use tiersim_policy::TieringMode;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = MachineConfig::scaled_default(1 << 20, TieringMode::AutoNuma);
/// let mut m = Machine::new(cfg)?;
/// let mut v = SimVec::new(&mut m, "data", 1024, 0u64);
/// v.set(&mut m, 7, 42);
/// assert_eq!(v.get(&mut m, 7), 42);
/// assert!(m.now_cycles() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    mem: MemorySystem,
    os: AutoNuma,
    sampler: Sampler,
    tracker: AllocTracker,
    clock_cycles: u64,
    /// Remainder accumulator for the cost/threads division.
    clock_rem: u64,
    cur_thread: ThreadId,
    os_next_event: u64,
    /// OS engine ticks taken so far — the stuck-cell watchdog's meter.
    os_ticks: u64,
    // Timeline machinery.
    timeline: Vec<TimelineSnapshot>,
    next_snapshot: u64,
    window_busy_cycles: u64,
    window_start_cycles: u64,
    // Dynamic object-level tiering (extension).
    dynamic: Option<DynamicObjectConfig>,
    next_replan: u64,
    replan_sample_idx: usize,
    dynamic_migrated_pages: u64,
    // Totals.
    io_wait_cycles: u64,
    busy_cycles: u64,
}

impl Machine {
    /// Builds a machine from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] (or wrapped mem/os errors) if
    /// the configuration is inconsistent.
    pub fn new(cfg: MachineConfig) -> Result<Machine, CoreError> {
        cfg.validate()?;
        let mut os_cfg = cfg.os.clone();
        os_cfg.autonuma_enabled = cfg.mode.autonuma_enabled();
        let mut mem_cfg = cfg.mem.clone();
        if matches!(cfg.mode, TieringMode::MemoryMode) {
            mem_cfg.memory_mode = true;
        }
        let mem = MemorySystem::new(mem_cfg)?;
        let os = AutoNuma::new(os_cfg)?;
        let os_next_event = os.next_event();
        let next_snapshot = cfg.timeline_period_cycles;
        let dynamic = match &cfg.mode {
            TieringMode::DynamicObject(d) => {
                d.validate()
                    .map_err(|what| CoreError::InvalidConfig { what, got: format!("{d:?}") })?;
                Some(*d)
            }
            _ => None,
        };
        Ok(Machine {
            mem,
            os,
            sampler: Sampler::new(cfg.sample_period),
            tracker: AllocTracker::new(),
            clock_cycles: 0,
            clock_rem: 0,
            cur_thread: ThreadId(0),
            os_next_event,
            os_ticks: 0,
            timeline: Vec::new(),
            next_snapshot,
            next_replan: dynamic.map_or(u64::MAX, |d| d.replan_interval_cycles),
            dynamic,
            replan_sample_idx: 0,
            dynamic_migrated_pages: 0,
            window_busy_cycles: 0,
            window_start_cycles: 0,
            io_wait_cycles: 0,
            busy_cycles: 0,
            cfg,
        })
    }

    /// The configuration this machine runs with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated time in cycles.
    pub fn now_cycles(&self) -> u64 {
        self.clock_cycles
    }

    /// Current simulated time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.cfg.mem.cycles_to_secs(self.clock_cycles)
    }

    /// OS engine ticks taken so far — the deterministic progress meter
    /// behind the stuck-cell watchdog and the tuner's rung budgets.
    pub fn os_ticks(&self) -> u64 {
        self.os_ticks
    }

    /// The memory system (read-only observability).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// The OS engine (read-only observability).
    pub fn os(&self) -> &AutoNuma {
        &self.os
    }

    /// Runs the tiersim-audit invariant checks (frame ownership, tier
    /// capacity, TLB coherence, VMA coverage, counter conservation laws)
    /// against the current machine state. Read-only; works in any build.
    pub fn audit(&self) -> tiersim_os::AuditReport {
        self.os.audit(&self.mem)
    }

    /// Samples recorded so far.
    pub fn samples(&self) -> &[tiersim_profile::MemSample] {
        self.sampler.samples()
    }

    /// Total accesses the sampler observed (sampled or not).
    pub fn sampler_observed(&self) -> u64 {
        self.sampler.observed()
    }

    /// The allocation tracker.
    pub fn tracker(&self) -> &AllocTracker {
        &self.tracker
    }

    /// Timeline snapshots recorded so far.
    pub fn timeline(&self) -> &[TimelineSnapshot] {
        &self.timeline
    }

    /// Total cycles the workload threads spent busy (compute + memory
    /// stalls), across all threads.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Total wall cycles spent waiting on simulated disk I/O.
    pub fn io_wait_cycles(&self) -> u64 {
        self.io_wait_cycles
    }

    /// Advances the wall clock by `cost` thread-cycles of parallel work.
    fn advance_parallel(&mut self, cost: u64) {
        self.busy_cycles += cost;
        self.window_busy_cycles += cost;
        let total = cost + self.clock_rem;
        self.clock_cycles += total / self.cfg.threads as u64;
        self.clock_rem = total % self.cfg.threads as u64;
        self.housekeeping();
    }

    /// Advances the wall clock by `cycles` of single-threaded wall time
    /// (I/O wait: other threads idle).
    fn advance_wall(&mut self, cycles: u64) {
        self.clock_cycles += cycles;
        self.housekeeping();
    }

    fn housekeeping(&mut self) {
        if self.clock_cycles >= self.os_next_event {
            self.os.tick(&mut self.mem, self.clock_cycles);
            self.os_next_event = self.os.next_event();
            self.os_ticks += 1;
            // Deterministic stuck-cell watchdog: OS engine ticks are a pure
            // function of simulated progress, so the same runaway workload
            // trips the budget at the same tick on every host and `--jobs`.
            if self.cfg.tick_budget > 0 && self.os_ticks > self.cfg.tick_budget {
                std::panic::panic_any(RunError::Stuck {
                    ticks: self.os_ticks,
                    budget: self.cfg.tick_budget,
                });
            }
        }
        if self.clock_cycles >= self.next_snapshot {
            self.snapshot();
            self.next_snapshot = self.clock_cycles + self.cfg.timeline_period_cycles;
        }
        if self.clock_cycles >= self.next_replan {
            self.replan_objects();
        }
    }

    /// One pass of the dynamic object-level tierer (extension): re-rank
    /// live objects from the samples collected since the previous pass and
    /// migrate whole objects toward the new plan, bounded by the
    /// per-interval page budget.
    fn replan_objects(&mut self) {
        let Some(dcfg) = self.dynamic else { return };
        self.next_replan = self.clock_cycles + dcfg.replan_interval_cycles;
        let window = &self.sampler.samples()[self.replan_sample_idx..];
        self.replan_sample_idx = self.sampler.samples().len();
        if window.is_empty() {
            return;
        }
        let mapped = tiersim_profile::map_samples(&self.tracker, window);
        let stats = aggregate_by_label(&mapped);
        let budget = (self.cfg.mem.dram_capacity as f64 * dcfg.dram_headroom) as u64;
        let plan = plan_static(&stats, budget, true);

        // Snapshot the live objects before mutating the memory system.
        let live: Vec<(VirtAddr, u64, std::sync::Arc<str>)> = self
            .tracker
            .records()
            .iter()
            .filter(|r| r.free_time.is_none())
            .map(|r| (r.addr, r.len, std::sync::Arc::clone(&r.site)))
            .collect();

        let mut migrated = 0u64;
        let mut bg_cycles = 0u64;
        'objects: for (base, len, site) in live {
            let placement = plan.placement.placement_for(&site);
            let pages = tiersim_mem::pages_for(len);
            for i in 0..pages {
                if migrated >= dcfg.max_migrate_pages {
                    break 'objects;
                }
                let pn = (base + i * PAGE_SIZE).page();
                let Some(info) = self.mem.page(pn) else { continue };
                let want = match placement {
                    Placement::Dram => Tier::Dram,
                    Placement::Nvm => Tier::Nvm,
                    Placement::Split { dram_bytes } => {
                        if i * PAGE_SIZE < dram_bytes {
                            Tier::Dram
                        } else {
                            Tier::Nvm
                        }
                    }
                };
                if info.tier != want {
                    if let Ok(copy) = self.mem.migrate_page(pn, want) {
                        migrated += 1;
                        bg_cycles += copy + dcfg.migrate_overhead_cycles;
                    }
                }
            }
        }
        self.dynamic_migrated_pages += migrated;
        // move_pages runs on the calling thread: charge it as parallel
        // work so the replan pass costs simulated time.
        if bg_cycles > 0 {
            self.busy_cycles += bg_cycles;
            let total = bg_cycles + self.clock_rem;
            self.clock_cycles += total / self.cfg.threads as u64;
            self.clock_rem = total % self.cfg.threads as u64;
        }
    }

    /// Pages migrated by the dynamic object-level tierer so far.
    pub fn dynamic_migrated_pages(&self) -> u64 {
        self.dynamic_migrated_pages
    }

    fn snapshot(&mut self) {
        let wall = (self.clock_cycles - self.window_start_cycles).max(1);
        let util =
            (self.window_busy_cycles as f64 / (wall as f64 * self.cfg.threads as f64)).min(1.0);
        let threshold_cycles = self.os.threshold_cycles();
        let rate_tokens_bytes = self.os.rate_available_bytes(self.clock_cycles);
        self.timeline.push(TimelineSnapshot {
            time_secs: self.cfg.mem.cycles_to_secs(self.clock_cycles),
            numastat: NumaStat::collect(&self.mem),
            counters: self.os.counters(),
            cpu_util: util,
            threshold_cycles,
            rate_tokens_bytes,
        });
        // Mirror the per-interval state into the trace's metrics registry
        // so exported traces carry the same series as the timeline.
        let trace = self.mem.trace_mut();
        trace.set_now(self.clock_cycles);
        trace.set_gauge("threshold_cycles", threshold_cycles);
        trace.set_gauge("rate_tokens_bytes", rate_tokens_bytes);
        trace.snapshot_metrics();
        self.window_busy_cycles = 0;
        self.window_start_cycles = self.clock_cycles;
    }

    /// Forces a snapshot now (the runner marks phase ends).
    pub fn snapshot_now(&mut self) {
        self.snapshot();
        self.next_snapshot = self.clock_cycles + self.cfg.timeline_period_cycles;
    }

    /// Reads `bytes` from the simulated graph file through the OS page
    /// cache, advancing the clock by the I/O wait (single-threaded, low
    /// CPU — the paper's load phase in Figure 9).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Os`] on unrecoverable placement failure.
    pub fn file_read(&mut self, bytes: u64) -> Result<(), CoreError> {
        // Read in 1 MiB slices so page-cache pressure and reclaim
        // interleave as they would during a long streaming read.
        let mut remaining = bytes;
        while remaining > 0 {
            let chunk = remaining.min(1 << 20);
            let (_, wait) = self.os.file_read(&mut self.mem, chunk, self.clock_cycles)?;
            self.advance_wall(wait);
            remaining -= chunk;
        }
        self.io_wait_cycles += self.cfg.os.disk_read_cycles_per_page * bytes.div_ceil(PAGE_SIZE);
        Ok(())
    }

    /// Applies the static-object placement (if any) to a fresh mapping.
    fn apply_placement(&mut self, addr: VirtAddr, len: u64, label: &str) {
        let placement = match &self.cfg.mode {
            TieringMode::StaticObject(plan) => plan.placement.placement_for(label),
            TieringMode::AllDram => Placement::Dram,
            // Memory Mode: all pages nominally live on NVM; the DRAM line
            // cache inside the memory system does the rest.
            TieringMode::AllNvm | TieringMode::MemoryMode => Placement::Nvm,
            // Dynamic mode starts from first-touch; the replanner moves
            // objects once samples accumulate.
            TieringMode::AutoNuma | TieringMode::FirstTouch | TieringMode::DynamicObject(_) => {
                return
            }
        };
        let rounded = tiersim_mem::pages_for(len) * PAGE_SIZE;
        let result = match placement {
            Placement::Dram => {
                self.mem.set_policy_range(addr, rounded, MemPolicy::Bind(Tier::Dram))
            }
            Placement::Nvm => self.mem.set_policy_range(addr, rounded, MemPolicy::Bind(Tier::Nvm)),
            Placement::Split { dram_bytes } => {
                let head = (dram_bytes / PAGE_SIZE * PAGE_SIZE).min(rounded);
                if head > 0 {
                    self.mem
                        .set_policy_range(addr, head, MemPolicy::Bind(Tier::Dram))
                        // tiersim-lint: allow(unwrap) — the mapping was created just above.
                        .expect("fresh mapping accepts policy");
                }
                if head < rounded {
                    self.mem.set_policy_range(
                        addr + head,
                        rounded - head,
                        MemPolicy::Bind(Tier::Nvm),
                    )
                } else {
                    Ok(())
                }
            }
        };
        // tiersim-lint: allow(unwrap) — the mapping was created just above.
        result.expect("fresh mapping accepts policy");
    }

    fn op(&mut self, addr: VirtAddr, kind: AccessKind) {
        let outcome = loop {
            match self.mem.access(addr, kind, self.clock_cycles) {
                Ok(o) => break o,
                Err(AccessError::Fault(pf)) => {
                    let res = match self.os.handle_fault(&mut self.mem, pf, self.clock_cycles) {
                        Ok(res) => res,
                        // The access path sits below the infallible
                        // `MemBackend` trait, so raise a typed payload that
                        // `run_workload` converts into `CoreError::Run` —
                        // the cell fails, the process survives (ISSUE 7).
                        Err(e) => std::panic::panic_any(RunError::UnrecoverableFault {
                            addr: addr.to_string(),
                            mode: self.cfg.mode.to_string(),
                            source: e,
                        }),
                    };
                    self.advance_parallel(res.cost_cycles);
                }
                Err(AccessError::Segfault { addr }) => {
                    std::panic::panic_any(RunError::Segfault { addr: addr.to_string() })
                }
            }
        };
        let os_cost = self.os.on_access(&mut self.mem, &outcome, self.clock_cycles);
        self.sampler.observe(kind, &outcome, addr, self.cur_thread, self.clock_cycles);
        self.advance_parallel(self.cfg.cpu_cycles_per_op + outcome.cycles + os_cost);
    }

    /// Batched execution of a sequential run — the engine behind
    /// [`MemBackend::load_run`]/[`MemBackend::store_run`] on the full
    /// machine.
    ///
    /// Elements that can do something *special* — fault on a non-resident
    /// page, raise an AutoNUMA hint fault, or land on the sampler's next
    /// due sample — take the exact per-element [`Machine::op`] path one at
    /// a time. Everything else is provably plain (resident hint-free
    /// pages, sampler not due, so `AutoNuma::on_access` would be an exact
    /// no-op) and is dispatched in chunks to
    /// [`MemorySystem::access_run`], which applies its per-line fast lane
    /// and closed-form interval engine.
    ///
    /// Semantic note (DESIGN.md §12): within a chunk the clock is frozen
    /// at the chunk's start and OS housekeeping runs at chunk boundaries,
    /// so periodic OS events can fire up to one chunk late relative to
    /// the per-element machine. The schedule remains a pure function of
    /// workload + configuration: identical across hosts and `--jobs`
    /// values.
    fn run(&mut self, addr: VirtAddr, stride: u32, count: u64, kind: AccessKind) {
        let stride64 = u64::from(stride.max(1));
        let mut i = 0u64;
        while i < count {
            let a = addr + i * stride64;
            // Cap the plain-page scan at what a full chunk could touch.
            let cap = ((RUN_CHUNK_ELEMS * stride64) >> tiersim_mem::PAGE_SHIFT) as usize + 2;
            let window_pages = self.mem.plain_window(a.page(), cap);
            let due = if self.sampler.is_enabled() { self.sampler.until_due() } else { u64::MAX };
            if window_pages == 0 || due == 1 {
                // Non-resident or hinted first page, or the next access
                // records a sample: exact path for this element.
                self.op(a, kind);
                i += 1;
                continue;
            }
            let window_end = (a.page().index() + window_pages as u64) << tiersim_mem::PAGE_SHIFT;
            let max_in_window = (window_end - 1 - a.raw()) / stride64 + 1;
            let chunk = (count - i).min(RUN_CHUNK_ELEMS).min(max_in_window).min(due - 1);
            match self.mem.access_run(a, stride, chunk, kind, self.clock_cycles) {
                Ok(out) => {
                    debug_assert_eq!(out.elems, chunk);
                    debug_assert_eq!(out.hint_faults, 0, "hint fault inside a plain window");
                    self.sampler.observe_gap(out.elems);
                    self.advance_parallel(self.cfg.cpu_cycles_per_op * out.elems + out.cycles);
                    i += out.elems;
                }
                Err(rf) => {
                    // The window held only resident pages and nothing in
                    // access_run unmaps them.
                    // tiersim-analyze: allow(panic-reach) — window residency is established above
                    unreachable!("fault inside a resident plain window: {:?}", rf.error)
                }
            }
        }
    }

    /// Decomposes the machine into its profiling artifacts:
    /// `(samples, tracker, timeline, trace)`.
    pub fn into_artifacts(
        self,
    ) -> (Vec<tiersim_profile::MemSample>, AllocTracker, Vec<TimelineSnapshot>, TraceLog) {
        (self.sampler.into_samples(), self.tracker, self.timeline, self.mem.trace().log())
    }
}

impl MemBackend for Machine {
    fn mmap(&mut self, len: u64, label: &str) -> VirtAddr {
        // MemBackend::mmap is infallible by contract; exhausting the
        // 2^47-byte virtual space is a workload-authoring bug.
        let addr =
            self.mem.mmap(len, MemPolicy::Default, label).expect("virtual address space exhausted"); // tiersim-lint: allow(unwrap)
        self.apply_placement(addr, len, label);
        self.tracker.on_mmap(addr, len, label, self.clock_cycles);
        self.advance_parallel(SYSCALL_COST_CYCLES);
        addr
    }

    fn munmap(&mut self, addr: VirtAddr) {
        // Unmapping an address the workload never mapped is a
        // workload-authoring bug, not a runtime condition.
        // tiersim-lint: allow(unwrap)
        self.mem.munmap(addr).expect("munmap of unknown region");
        self.tracker.on_munmap(addr, self.clock_cycles);
        self.advance_parallel(SYSCALL_COST_CYCLES);
    }

    fn load(&mut self, addr: VirtAddr, _bytes: u32) {
        self.op(addr, AccessKind::Load);
    }

    fn store(&mut self, addr: VirtAddr, _bytes: u32) {
        self.op(addr, AccessKind::Store);
    }

    fn load_run(&mut self, addr: VirtAddr, stride: u32, count: u64) {
        self.run(addr, stride, count, AccessKind::Load);
    }

    fn store_run(&mut self, addr: VirtAddr, stride: u32, count: u64) {
        self.run(addr, stride, count, AccessKind::Store);
    }

    fn set_thread(&mut self, tid: ThreadId) {
        self.cur_thread = tid;
    }

    fn cpu_work(&mut self, cycles: u64) {
        self.advance_parallel(cycles);
    }

    fn now_cycles(&self) -> u64 {
        self.clock_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim_mem::SimVec;
    use tiersim_policy::{plan_static, LabelStats};

    fn machine(mode: TieringMode) -> Machine {
        Machine::new(MachineConfig::scaled_default(4 << 20, mode)).unwrap()
    }

    #[test]
    fn clock_advances_with_work() {
        let mut m = machine(TieringMode::AutoNuma);
        let t0 = m.now_cycles();
        let mut v = SimVec::new(&mut m, "v", 4096, 0u8);
        for i in 0..4096 {
            v.set(&mut m, i, 1);
        }
        assert!(m.now_cycles() > t0);
        assert!(m.busy_cycles() > 0);
    }

    #[test]
    fn default_mode_places_dram_first() {
        let mut m = machine(TieringMode::AutoNuma);
        let mut v = SimVec::new(&mut m, "v", 1024, 0u64);
        v.set(&mut m, 0, 1);
        assert_eq!(m.mem().used_pages(Tier::Dram), 1);
        assert_eq!(m.mem().used_pages(Tier::Nvm), 0);
    }

    #[test]
    fn static_plan_binds_objects() {
        let stats = vec![
            LabelStats { label: "hot".into(), bytes: PAGE_SIZE, samples: 100, nvm_samples: 0 },
            LabelStats { label: "cold".into(), bytes: PAGE_SIZE, samples: 1, nvm_samples: 0 },
        ];
        let plan = plan_static(&stats, PAGE_SIZE, false);
        let mut m = machine(TieringMode::StaticObject(plan));
        let mut hot = SimVec::new(&mut m, "hot", 100, 0u8);
        let mut cold = SimVec::new(&mut m, "cold", 100, 0u8);
        hot.set(&mut m, 0, 1);
        cold.set(&mut m, 0, 1);
        assert_eq!(m.mem().page(hot.base().page()).unwrap().tier, Tier::Dram);
        assert_eq!(m.mem().page(cold.base().page()).unwrap().tier, Tier::Nvm);
    }

    #[test]
    fn split_placement_spans_tiers() {
        let mut plan = plan_static(&[], 0, false);
        plan.placement
            .insert("split", tiersim_policy::Placement::Split { dram_bytes: 2 * PAGE_SIZE });
        let mut m = machine(TieringMode::StaticObject(plan));
        let mut v = SimVec::new(&mut m, "split", 4 * PAGE_SIZE as usize, 0u8);
        for p in 0..4 {
            v.set(&mut m, p * PAGE_SIZE as usize, 1);
        }
        let base = v.base();
        assert_eq!(m.mem().page(base.page()).unwrap().tier, Tier::Dram);
        assert_eq!(m.mem().page((base + PAGE_SIZE).page()).unwrap().tier, Tier::Dram);
        assert_eq!(m.mem().page((base + 2 * PAGE_SIZE).page()).unwrap().tier, Tier::Nvm);
        assert_eq!(m.mem().page((base + 3 * PAGE_SIZE).page()).unwrap().tier, Tier::Nvm);
    }

    #[test]
    fn all_nvm_mode_binds_everything() {
        let mut m = machine(TieringMode::AllNvm);
        let mut v = SimVec::new(&mut m, "v", 100, 0u8);
        v.set(&mut m, 0, 1);
        assert_eq!(m.mem().used_pages(Tier::Dram), 0);
        assert_eq!(m.mem().used_pages(Tier::Nvm), 1);
    }

    #[test]
    fn file_read_advances_time_and_fills_cache() {
        let mut m = machine(TieringMode::AutoNuma);
        let t0 = m.now_cycles();
        m.file_read(64 * PAGE_SIZE).unwrap();
        assert!(m.now_cycles() > t0);
        assert!(m.io_wait_cycles() > 0);
        assert_eq!(m.os().counters().page_cache_filled, 64);
    }

    #[test]
    fn sampler_records_loads() {
        let mut m = Machine::new({
            let mut c = MachineConfig::scaled_default(4 << 20, TieringMode::AutoNuma);
            c.sample_period = 10;
            c
        })
        .unwrap();
        let v = SimVec::new(&mut m, "v", 4096, 0u8);
        for i in 0..1000 {
            v.get(&mut m, i);
        }
        assert!(m.samples().len() >= 99, "got {}", m.samples().len());
    }

    #[test]
    fn batched_scans_still_service_hint_faults() {
        // The batched run path must stop at HINT-marked pages so the exact
        // per-element path services the NUMA hint fault: a workload that
        // only ever uses `scan`/`fill` (load_run/store_run) still produces
        // hint faults once the AutoNUMA scanner has marked its pages.
        let mut m = machine(TieringMode::AutoNuma);
        let mut v = SimVec::new(&mut m, "v", 1 << 15, 0u64); // 64 pages
        v.fill(&mut m, 1);
        let mut scans = 0;
        while m.os().counters().numa_hint_faults == 0 && scans < 500 {
            v.scan(&mut m, |_, _| {});
            scans += 1;
        }
        assert!(
            m.os().counters().numa_hint_faults > 0,
            "no hint faults serviced after {scans} batched scans"
        );
    }

    #[test]
    fn batched_scan_samples_match_per_element() {
        // Sampling is exact under batching: the run path bulk-skips the
        // inter-sample gap and routes each due element through the exact
        // per-element path, so the sampled address sequence is identical
        // to a machine that never batches.
        let cfg = || {
            let mut c = MachineConfig::scaled_default(4 << 20, TieringMode::AutoNuma);
            c.sample_period = 13;
            c
        };
        let mut batched = Machine::new(cfg()).unwrap();
        let mut element = Machine::new(cfg()).unwrap();
        let vb = SimVec::new(&mut batched, "v", 1 << 15, 0u64);
        let ve = SimVec::new(&mut element, "v", 1 << 15, 0u64);
        for _ in 0..2 {
            vb.scan(&mut batched, |_, _| {});
        }
        for _ in 0..2 {
            for i in 0..ve.len() {
                ve.get(&mut element, i);
            }
        }
        let ab: Vec<_> = batched.samples().iter().map(|s| s.addr).collect();
        let ae: Vec<_> = element.samples().iter().map(|s| s.addr).collect();
        assert!(!ab.is_empty());
        assert_eq!(ab, ae);
        assert_eq!(batched.sampler_observed(), element.sampler_observed());
        // Under demand paging every page's first touch precedes the bulk
        // sweep over it, so the line footprint overlaps and the machine
        // correctly stays on the per-line fast lane (the closed-form
        // interval engine requires provably-cold spans — pre-mapped
        // regions, as in the streaming benchmark). Both machines must
        // agree that the interval engine never fired here.
        assert_eq!(batched.mem().interval_stats().runs, 0);
        assert_eq!(element.mem().interval_stats().runs, 0);
    }

    #[test]
    fn dynamic_mode_migrates_objects_toward_plan() {
        let dcfg = tiersim_policy::DynamicObjectConfig {
            replan_interval_cycles: 50_000,
            ..Default::default()
        };
        let mut cfg = MachineConfig::scaled_default(2 << 20, TieringMode::DynamicObject(dcfg));
        cfg.sample_period = 13; // dense samples so the window sees the object
        let mut m = Machine::new(cfg).unwrap();
        // A hot object faulted onto NVM (DRAM-first will place it in DRAM,
        // so pre-fill DRAM with a cold filler first).
        let filler = SimVec::new(&mut m, "cold.filler", (2 << 20) as usize, 0u8);
        for i in (0..filler.len()).step_by(PAGE_SIZE as usize) {
            filler.get(&mut m, i);
        }
        let hot = SimVec::new(&mut m, "hot.array", 16 * PAGE_SIZE as usize, 0u8);
        for round in 0..2000 {
            let i = (round * 97) % hot.len();
            hot.get(&mut m, i);
        }
        assert!(m.dynamic_migrated_pages() > 0, "replanner should have migrated pages");
        // The hot object's touched pages should now be DRAM-resident.
        let dram_pages = (0..16)
            .filter(|&i| {
                m.mem()
                    .page((hot.base() + i * PAGE_SIZE).page())
                    .is_some_and(|p| p.tier == Tier::Dram)
            })
            .count();
        assert!(dram_pages >= 8, "most hot pages in DRAM, got {dram_pages}");
    }

    #[test]
    fn timeline_snapshots_accumulate() {
        let mut m = Machine::new({
            let mut c = MachineConfig::scaled_default(4 << 20, TieringMode::AutoNuma);
            c.timeline_period_cycles = 10_000;
            c
        })
        .unwrap();
        let mut v = SimVec::new(&mut m, "v", 1 << 16, 0u64);
        for i in 0..(1 << 16) {
            v.set(&mut m, i, 1);
        }
        assert!(m.timeline().len() >= 2);
        let t: Vec<f64> = m.timeline().iter().map(|s| s.time_secs).collect();
        assert!(t.windows(2).all(|w| w[0] < w[1]), "snapshots in time order");
    }
}
