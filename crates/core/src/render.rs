//! Plain-text table rendering for the reproduction harness.

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use tiersim_core::render::TextTable;
///
/// let mut t = TextTable::new(vec!["Workload", "Outside Cache"]);
/// t.row(vec!["bc_kron".into(), "49.1%".into()]);
/// let s = t.render();
/// assert!(s.contains("bc_kron"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<&str>) -> Self {
        TextTable { header: header.into_iter().map(String::from).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(c, s)| format!("{:width$}", s, width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (no quoting; cells must not contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `"49.1%"`.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats seconds with three decimals.
pub fn secs(s: f64) -> String {
    format!("{s:.3}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(vec!["w", "v"]);
        t.row(vec!["bc".into(), "1.5".into()]);
        assert_eq!(t.to_csv(), "w,v\nbc,1.5\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.4911), "49.1%");
        assert_eq!(secs(1.23456), "1.235s");
    }
}
