//! Run reports: everything an experiment needs from one workload run.

use crate::timeline::TimelineSnapshot;
use crate::workload::WorkloadConfig;
use std::io::{self, Write};
use tiersim_mem::{AccessStats, FaultStats, Tier, TraceLog};
use tiersim_os::VmCounters;
use tiersim_profile::{map_samples, AllocTracker, MappedProfile, MemSample};

/// The complete observable record of one workload run.
#[derive(Debug)]
pub struct RunReport {
    /// The workload that ran.
    pub workload: WorkloadConfig,
    /// The tiering mode's stable name.
    pub mode_name: String,
    /// End of the file-load phase, seconds.
    pub load_end_secs: f64,
    /// End of the CSR build phase, seconds.
    pub build_end_secs: f64,
    /// Per-trial kernel execution times, seconds.
    pub trial_secs: Vec<f64>,
    /// Total simulated run time, seconds.
    pub total_secs: f64,
    /// PEBS-style samples over the whole run.
    pub samples: Vec<MemSample>,
    /// Allocation log.
    pub tracker: AllocTracker,
    /// Final cumulative vmstat counters.
    pub counters: VmCounters,
    /// Per-second timeline snapshots.
    pub timeline: Vec<TimelineSnapshot>,
    /// Ground-truth access totals from the memory system.
    pub mem_stats: AccessStats,
    /// Injected-fault totals (all zero when the fault plan is empty).
    pub fault_stats: FaultStats,
    /// NVM write-amplification factor over the run.
    pub nvm_write_amplification: f64,
    /// OS engine ticks the run took — the deterministic progress meter
    /// the tuner uses as its throughput objective and rung budget unit
    /// (wall-clock-free, unlike `total_secs` it never divides away small
    /// differences).
    pub os_ticks: u64,
    /// Event trace and metrics snapshots (empty unless the machine ran
    /// with tracing enabled).
    pub trace: TraceLog,
}

impl RunReport {
    /// Kernel execution time: the sum of trial times — the quantity the
    /// paper's Figure 11 compares.
    pub fn exec_secs(&self) -> f64 {
        self.trial_secs.iter().sum()
    }

    /// Mean trial time.
    pub fn mean_trial_secs(&self) -> f64 {
        if self.trial_secs.is_empty() {
            return 0.0;
        }
        self.exec_secs() / self.trial_secs.len() as f64
    }

    /// Joins samples with allocations into per-object profiles.
    pub fn mapped(&self) -> MappedProfile {
        map_samples(&self.tracker, &self.samples)
    }

    /// Load samples that hit NVM (the quantity the object-level policy
    /// minimizes; the paper reports a 79% reduction for `bc_kron`).
    pub fn nvm_samples(&self) -> u64 {
        self.samples.iter().filter(|s| !s.is_store && s.level == tiersim_mem::MemLevel::Nvm).count()
            as u64
    }

    /// Whether the run degraded under injected faults: any migration gave
    /// up after retries (its page stayed on NVM) or any allocation had to
    /// fall back to the other tier. Always `false` with an empty plan.
    pub fn ran_degraded(&self) -> bool {
        self.counters.pgmigrate_fail > 0 || self.fault_stats.dram_alloc_failures > 0
    }

    /// Writes the per-second timeline as CSV (the series behind the
    /// paper's Figures 9 and 10), one row per snapshot.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn write_timeline_csv<W: Write>(&self, mut out: W) -> io::Result<()> {
        writeln!(
            out,
            "time_secs,dram_app_pages,dram_file_pages,nvm_app_pages,nvm_file_pages,\
             pgpromote_success,pgdemote_kswapd,pgdemote_direct,cpu_util,threshold_cycles,\
             rate_tokens_bytes"
        )?;
        for s in &self.timeline {
            writeln!(
                out,
                "{:.6},{},{},{},{},{},{},{},{:.4},{},{}",
                s.time_secs,
                s.numastat.anon_pages[Tier::Dram.index()],
                s.numastat.file_pages[Tier::Dram.index()],
                s.numastat.anon_pages[Tier::Nvm.index()],
                s.numastat.file_pages[Tier::Nvm.index()],
                s.counters.pgpromote_success,
                s.counters.pgdemote_kswapd,
                s.counters.pgdemote_direct,
                s.cpu_util,
                s.threshold_cycles,
                s.rate_tokens_bytes,
            )?;
        }
        Ok(())
    }

    /// Writes a one-row run summary as CSV (header + row), the format the
    /// paper's `allocations.csv`/result files roll up into.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn write_summary_csv<W: Write>(&self, mut out: W) -> io::Result<()> {
        writeln!(
            out,
            "workload,mode,total_secs,exec_secs,load_secs,samples,nvm_samples,\
             pgpromote_success,pgdemote_total,pgalloc_dram,pgalloc_nvm,\
             pgmigrate_fail,pgmigrate_retry,fault_alloc_fail,fault_migrate_busy,\
             fault_nvm_spiked,fault_reclaim_stalls"
        )?;
        writeln!(
            out,
            "{},{},{:.6},{:.6},{:.6},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.workload.name(),
            self.mode_name,
            self.total_secs,
            self.exec_secs(),
            self.load_end_secs,
            self.samples.len(),
            self.nvm_samples(),
            self.counters.pgpromote_success,
            self.counters.pgdemote_total(),
            self.counters.pgalloc_dram,
            self.counters.pgalloc_nvm,
            self.counters.pgmigrate_fail,
            self.counters.pgmigrate_retry,
            self.fault_stats.dram_alloc_failures,
            self.fault_stats.migrate_busy_failures,
            self.fault_stats.nvm_spiked_ops,
            self.fault_stats.reclaim_stalls,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Dataset, Kernel};

    fn report(trials: Vec<f64>) -> RunReport {
        RunReport {
            workload: WorkloadConfig::new(Kernel::Bfs, Dataset::Kron),
            mode_name: "autonuma".into(),
            load_end_secs: 0.1,
            build_end_secs: 0.2,
            trial_secs: trials,
            total_secs: 1.0,
            samples: Vec::new(),
            tracker: AllocTracker::new(),
            counters: VmCounters::default(),
            timeline: Vec::new(),
            mem_stats: AccessStats::default(),
            fault_stats: FaultStats::default(),
            nvm_write_amplification: 0.0,
            os_ticks: 0,
            trace: TraceLog::default(),
        }
    }

    #[test]
    fn exec_time_sums_trials() {
        let r = report(vec![0.1, 0.2, 0.3]);
        assert!((r.exec_secs() - 0.6).abs() < 1e-12);
        assert!((r.mean_trial_secs() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn csv_writers_emit_header_and_rows() {
        let r = report(vec![0.5]);
        let mut buf = Vec::new();
        r.write_summary_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("bfs_kron,autonuma"));
        let mut buf = Vec::new();
        r.write_timeline_csv(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().lines().count(), 1); // header only
    }

    #[test]
    fn summary_carries_degraded_mode_counters() {
        let mut r = report(vec![0.5]);
        assert!(!r.ran_degraded());
        r.counters.pgmigrate_fail = 3;
        r.counters.pgmigrate_retry = 9;
        r.fault_stats.dram_alloc_failures = 2;
        assert!(r.ran_degraded());
        let mut buf = Vec::new();
        r.write_summary_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().next().unwrap().contains("pgmigrate_fail"));
        let row = text.lines().nth(1).unwrap();
        let cols: Vec<&str> = row.split(',').collect();
        let header_cols = text.lines().next().unwrap().split(',').count();
        assert_eq!(cols.len(), header_cols, "row width matches header");
        assert!(row.ends_with(",3,9,2,0,0,0"), "degraded columns emitted: {row}");
    }

    #[test]
    fn empty_trials_are_zero() {
        let r = report(vec![]);
        assert_eq!(r.exec_secs(), 0.0);
        assert_eq!(r.mean_trial_secs(), 0.0);
        assert_eq!(r.nvm_samples(), 0);
    }
}
