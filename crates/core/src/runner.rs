//! The workload runner: generate → load → build → run trials → report.

use crate::config::MachineConfig;
use crate::error::CoreError;
use crate::machine::Machine;
use crate::report::RunReport;
use crate::workload::{Dataset, Kernel, WorkloadConfig};
use tiersim_graph::{
    bc, bfs, build_sim_csr, build_sim_weights, cc_afforest, cc_sv, load_sim_csr_streamed, pr,
    sg_file_bytes, sssp, tc, BfsParams, EdgeList, KroneckerGenerator, PrParams, SimCsrGraph,
    SourcePicker, UniformGenerator,
};
use tiersim_policy::{aggregate_by_label, plan_static, StaticPlan, TieringMode};

/// Generates a workload's edge list (host-side; in the paper this is the
/// offline GAPBS `converter` step that produces the `.sg` file).
pub fn generate(workload: &WorkloadConfig) -> EdgeList {
    match workload.dataset {
        Dataset::Kron => {
            KroneckerGenerator::new(workload.scale, workload.degree).seed(workload.seed).generate()
        }
        Dataset::Urand => {
            UniformGenerator::new(workload.scale, workload.degree).seed(workload.seed).generate()
        }
        Dataset::Road => {
            // Lattices need an even scale; round up.
            tiersim_graph::GridGenerator::new(workload.scale + workload.scale % 2).generate()
        }
    }
}

fn run_trials(
    m: &mut Machine,
    g: &SimCsrGraph,
    workload: &WorkloadConfig,
    threads: usize,
) -> Vec<f64> {
    let mut picker = SourcePicker::new(workload.seed ^ 0x5eed);
    let mut trial_secs = Vec::with_capacity(workload.trials);
    let mut timed = |m: &mut Machine, f: &mut dyn FnMut(&mut Machine)| {
        let t0 = m.now_secs();
        f(m);
        trial_secs.push(m.now_secs() - t0);
    };
    match workload.kernel {
        Kernel::Bfs => {
            for _ in 0..workload.trials {
                let source = picker.pick(g);
                timed(m, &mut |m| {
                    let r = bfs(m, g, source, threads, BfsParams::default());
                    r.dist.into_host(m);
                });
            }
        }
        Kernel::Bc => {
            // GAPBS BC runs `trials` timed executions, each allocating
            // fresh per-vertex arrays — the allocation churn behind the
            // paper's Figure 7.
            for _ in 0..workload.trials {
                let source = picker.pick(g);
                timed(m, &mut |m| {
                    let scores = bc(m, g, &[source], threads);
                    scores.into_host(m);
                });
            }
        }
        Kernel::Cc => {
            for _ in 0..workload.trials {
                timed(m, &mut |m| {
                    let comp = cc_sv(m, g, threads);
                    comp.into_host(m);
                });
            }
        }
        Kernel::CcAff => {
            for _ in 0..workload.trials {
                timed(m, &mut |m| {
                    let comp = cc_afforest(m, g, 2, threads);
                    comp.into_host(m);
                });
            }
        }
        Kernel::Pr => {
            for _ in 0..workload.trials {
                timed(m, &mut |m| {
                    let scores = pr(m, g, PrParams::default(), threads);
                    scores.into_host(m);
                });
            }
        }
        Kernel::Sssp => {
            let weights = build_sim_weights(m, g, threads);
            for _ in 0..workload.trials {
                let source = picker.pick(g);
                timed(m, &mut |m| {
                    let dist = sssp(m, g, &weights, source, 32, threads);
                    dist.into_host(m);
                });
            }
            weights.into_host(m);
        }
        Kernel::Tc => {
            for _ in 0..workload.trials {
                timed(m, &mut |m| {
                    tc(m, g, threads);
                });
            }
        }
    }
    trial_secs
}

/// Runs one workload on one machine configuration, producing a full
/// [`RunReport`].
///
/// Phases mirror the paper's runs: the graph file streams through the
/// page cache (I/O-bound, low CPU), the CSR build allocates and frees the
/// transient objects, then the kernel trials run.
///
/// # Errors
///
/// Returns [`CoreError`] on invalid configuration; a run that dies
/// mid-flight (unrecoverable OOM, segfault, or the stuck-cell watchdog)
/// comes back as [`CoreError::Run`] instead of unwinding — the machine's
/// access path raises a typed [`crate::RunError`] panic payload and this
/// boundary catches it, so a poisoned sweep cell is a recordable failure,
/// not a process abort. Foreign panics (plain `panic!`, assertion
/// failures) still unwind unchanged.
pub fn run_workload(
    machine_cfg: MachineConfig,
    workload: WorkloadConfig,
) -> Result<RunReport, CoreError> {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    match catch_unwind(AssertUnwindSafe(|| run_workload_inner(machine_cfg, workload))) {
        Ok(result) => result,
        Err(payload) => match payload.downcast::<crate::error::RunError>() {
            Ok(run_err) => Err(CoreError::Run(*run_err)),
            Err(other) => resume_unwind(other),
        },
    }
}

fn run_workload_inner(
    machine_cfg: MachineConfig,
    workload: WorkloadConfig,
) -> Result<RunReport, CoreError> {
    let threads = machine_cfg.threads;
    let mode_name = machine_cfg.mode.name().to_string();
    let mut m = Machine::new(machine_cfg)?;
    let el = generate(&workload);

    // Phases 1+2: get the graph into simulated memory.
    let (g, load_end_secs) = match workload.load {
        crate::workload::LoadMode::SgFile => {
            // The paper's artifact flow: the converter built the `.sg`
            // offline; the run streams it through the page cache and
            // copies it into the CSR arrays.
            let mut host = tiersim_graph::CsrGraph::from_edges(&el, true);
            drop(el);
            if workload.kernel == Kernel::Tc {
                // GAPBS preprocesses TC inputs: sorted, deduplicated lists.
                host.sort_neighbors();
                host.dedup_neighbors();
            }
            let _total = sg_file_bytes(host.num_nodes(), host.num_edges());
            // The read() loop interleaves 1 MiB file reads with the
            // copy-out, so page cache and CSR growth compete for DRAM
            // concurrently, as in the paper's long load phase.
            let g = load_sim_csr_streamed(&mut m, &host, threads, 1 << 20, |m, bytes| {
                m.file_read(bytes)
            })?;
            let load_end = m.now_secs();
            m.snapshot_now();
            (g, load_end)
        }
        crate::workload::LoadMode::GenerateAndBuild => {
            m.file_read(el.serialized_bytes())?;
            let load_end = m.now_secs();
            m.snapshot_now();
            (build_sim_csr(&mut m, &el, true, threads), load_end)
        }
    };
    let build_end_secs = m.now_secs();
    m.snapshot_now();

    // Phase 3: kernel trials.
    let trial_secs = run_trials(&mut m, &g, &workload, threads);
    g.unmap(&mut m);
    m.snapshot_now();

    let total_secs = m.now_secs();
    let counters = m.os().counters();
    let mem_stats = *m.mem().stats();
    let fault_stats = m.mem().fault_stats();
    let nvm_write_amplification = m.mem().nvm_write_amplification();
    let os_ticks = m.os_ticks();
    let (samples, tracker, timeline, trace) = m.into_artifacts();
    Ok(RunReport {
        workload,
        mode_name,
        load_end_secs,
        build_end_secs,
        trial_secs,
        total_secs,
        samples,
        tracker,
        counters,
        timeline,
        mem_stats,
        fault_stats,
        nvm_write_amplification,
        os_ticks,
        trace,
    })
}

/// Builds the paper's §7 static object plan from a profiling run: fold the
/// run's samples by label, rank by density, and pack into
/// `plan_dram_headroom × DRAM`.
pub fn plan_from_report(
    report: &RunReport,
    machine_cfg: &MachineConfig,
    spill: bool,
) -> StaticPlan {
    let mapped = report.mapped();
    let stats = aggregate_by_label(&mapped);
    let budget = (machine_cfg.mem.dram_capacity as f64 * machine_cfg.plan_dram_headroom) as u64;
    plan_static(&stats, budget, spill)
}

/// Convenience: run `workload` under AutoNUMA, then under the
/// profile-derived static object plan. Returns `(autonuma, static)`
/// reports. The AutoNUMA run doubles as the profiling run, as in the
/// paper's offline methodology.
///
/// # Errors
///
/// Propagates [`CoreError`] from either run.
pub fn run_autonuma_vs_static(
    workload: WorkloadConfig,
    spill: bool,
) -> Result<(RunReport, RunReport), CoreError> {
    let base_cfg =
        MachineConfig::scaled_default(workload.steady_app_bytes(), TieringMode::AutoNuma);
    let auto = run_workload(base_cfg.clone(), workload)?;
    let plan = plan_from_report(&auto, &base_cfg, spill);
    let mut static_cfg = base_cfg;
    static_cfg.mode = TieringMode::StaticObject(plan);
    let stat = run_workload(static_cfg, workload)?;
    Ok((auto, stat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim_graph::reference;

    fn tiny(kernel: Kernel, dataset: Dataset) -> WorkloadConfig {
        WorkloadConfig::new(kernel, dataset).scale(10).trials(2)
    }

    fn cfg(workload: &WorkloadConfig, mode: TieringMode) -> MachineConfig {
        MachineConfig::scaled_default(workload.steady_app_bytes(), mode)
    }

    #[test]
    fn bfs_run_produces_report() {
        let w = tiny(Kernel::Bfs, Dataset::Kron);
        let r = run_workload(cfg(&w, TieringMode::AutoNuma), w).unwrap();
        assert_eq!(r.trial_secs.len(), 2);
        assert!(r.exec_secs() > 0.0);
        assert!(r.load_end_secs > 0.0);
        // With the streamed .sg loader, load and deserialize are one
        // phase; the explicit build phase exists under GenerateAndBuild.
        assert!(r.build_end_secs >= r.load_end_secs);
        assert!(r.total_secs >= r.build_end_secs);
        assert!(!r.samples.is_empty());
        assert!(r.tracker.len() >= 5, "build + kernel objects tracked");
        assert!(r.mem_stats.total() > 0);
    }

    #[test]
    fn bc_runs_one_timed_pass_per_trial() {
        let w = tiny(Kernel::Bc, Dataset::Urand);
        let r = run_workload(cfg(&w, TieringMode::AutoNuma), w).unwrap();
        // GAPBS BC re-allocates its arrays every trial, so each trial is a
        // separate timed execution and leaves its own tracked objects.
        assert_eq!(r.trial_secs.len(), 2);
        let sigma_count = r.tracker.records().iter().filter(|rec| &*rec.site == "bc.sigma").count();
        assert_eq!(sigma_count, 2);
    }

    #[test]
    fn all_kernels_run_under_autonuma() {
        for kernel in [Kernel::Cc, Kernel::CcAff, Kernel::Pr, Kernel::Sssp, Kernel::Tc] {
            let w = tiny(kernel, Dataset::Kron).trials(1);
            let r = run_workload(cfg(&w, TieringMode::AutoNuma), w).unwrap();
            assert!(r.exec_secs() > 0.0, "{kernel}");
        }
    }

    #[test]
    fn first_touch_has_zero_migrations() {
        let w = tiny(Kernel::Bfs, Dataset::Urand);
        let r = run_workload(cfg(&w, TieringMode::FirstTouch), w).unwrap();
        assert!(r.counters.no_migrations());
    }

    #[test]
    fn deterministic_given_same_config() {
        let w = tiny(Kernel::Cc, Dataset::Kron).trials(1);
        let a = run_workload(cfg(&w, TieringMode::AutoNuma), w).unwrap();
        let b = run_workload(cfg(&w, TieringMode::AutoNuma), w).unwrap();
        assert_eq!(a.total_secs, b.total_secs);
        assert_eq!(a.samples.len(), b.samples.len());
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn sim_results_match_reference_through_runner_graph() {
        // The runner's generated graph produces verified BFS distances.
        let w = tiny(Kernel::Bfs, Dataset::Kron);
        let el = generate(&w);
        let mut null = tiersim_mem::NullBackend::new();
        let g = build_sim_csr(&mut null, &el, true, 2);
        let host = g.to_host_csr();
        let r = tiersim_graph::bfs(&mut null, &g, 1, 2, BfsParams::default());
        assert_eq!(r.dist.host(), reference::bfs_ref(&host, 1).as_slice());
    }

    #[test]
    fn generate_and_build_mode_has_build_phase() {
        let mut w = tiny(Kernel::Bfs, Dataset::Kron);
        w.load = crate::workload::LoadMode::GenerateAndBuild;
        let r = run_workload(cfg(&w, TieringMode::AutoNuma), w).unwrap();
        // The in-process build is a distinct phase and leaves the builder
        // temporaries in the allocation log (freed before the trials).
        assert!(r.build_end_secs > r.load_end_secs);
        let edge_list = r
            .tracker
            .records()
            .iter()
            .find(|rec| &*rec.site == "builder.edge_list")
            .expect("edge list tracked");
        assert!(edge_list.free_time.is_some(), "edge list freed after build");
    }

    #[test]
    fn dram_squeeze_completes_via_demotion_fallback() {
        // DRAM well below the workload footprint: the run must complete by
        // demoting to NVM and falling back on allocation, never panicking.
        let w = tiny(Kernel::Bfs, Dataset::Kron).trials(1);
        let mut c = cfg(&w, TieringMode::AutoNuma);
        let page = tiersim_mem::PAGE_SIZE;
        c.mem.dram_capacity = (c.mem.dram_capacity / 8 / page).max(64) * page;
        let r = run_workload(c, w).unwrap();
        assert!(r.exec_secs() > 0.0);
        assert!(r.counters.pgdemote_total() > 0, "squeeze forces demotions");
        assert!(r.counters.pgalloc_nvm > 0, "overflow lands on NVM");
    }

    #[test]
    fn seeded_fault_plan_is_deterministic_and_survivable() {
        use crate::config::FaultConfig;
        use tiersim_mem::RATE_ONE;
        let w = tiny(Kernel::Bfs, Dataset::Kron).trials(1);
        let plan = FaultConfig {
            seed: 0xfau64 << 32 | 0x17,
            dram_alloc_fail_per_64k: RATE_ONE / 16,
            migrate_busy_per_64k: RATE_ONE / 2,
            reclaim_stall_per_64k: RATE_ONE / 8,
            reclaim_stall_cycles: 10_000,
            ..FaultConfig::none()
        };
        let mut c = cfg(&w, TieringMode::AutoNuma).with_fault(plan);
        c.os.migrate_max_retries = 1;
        let a = run_workload(c.clone(), w).unwrap();
        let b = run_workload(c, w).unwrap();
        // Faults fired and the run degraded gracefully instead of dying.
        assert!(a.counters.pgmigrate_fail > 0, "some migrations gave up");
        assert!(a.counters.pgmigrate_retry > 0, "some migrations retried");
        assert!(a.fault_stats.migrate_busy_failures > 0);
        assert!(a.ran_degraded());
        assert!(a.exec_secs() > 0.0);
        // Same seed, same config: bit-for-bit identical reports.
        assert_eq!(a.total_secs, b.total_secs);
        assert_eq!(a.trial_secs, b.trial_secs);
        assert_eq!(a.samples.len(), b.samples.len());
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.fault_stats, b.fault_stats);
        assert_eq!(a.mem_stats, b.mem_stats);
        let (mut ca, mut cb) = (Vec::new(), Vec::new());
        a.write_summary_csv(&mut ca).unwrap();
        b.write_summary_csv(&mut cb).unwrap();
        assert_eq!(ca, cb, "summary CSV is byte-identical");
    }

    #[test]
    fn empty_fault_plan_leaves_reports_unchanged() {
        use crate::config::FaultConfig;
        let w = tiny(Kernel::Cc, Dataset::Kron).trials(1);
        let plain = run_workload(cfg(&w, TieringMode::AutoNuma), w).unwrap();
        let with_none =
            run_workload(cfg(&w, TieringMode::AutoNuma).with_fault(FaultConfig::none()), w)
                .unwrap();
        assert_eq!(plain.total_secs, with_none.total_secs);
        assert_eq!(plain.counters, with_none.counters);
        assert_eq!(plain.mem_stats, with_none.mem_stats);
        assert_eq!(plain.fault_stats, with_none.fault_stats);
        assert_eq!(plain.fault_stats, Default::default());
    }

    #[test]
    fn tracing_does_not_change_simulation() {
        use tiersim_mem::TraceConfig;
        let w = tiny(Kernel::Cc, Dataset::Kron).trials(1);
        let plain = run_workload(cfg(&w, TieringMode::AutoNuma), w).unwrap();
        let traced =
            run_workload(cfg(&w, TieringMode::AutoNuma).with_trace(TraceConfig::on()), w).unwrap();
        // Observer effect must be zero: tracing records, never perturbs.
        assert_eq!(plain.total_secs, traced.total_secs);
        assert_eq!(plain.counters, traced.counters);
        assert_eq!(plain.mem_stats, traced.mem_stats);
        assert!(plain.trace.is_empty(), "tracing off records nothing");
        assert!(!traced.trace.is_empty(), "tracing on records the run");
        assert!(traced.trace.recorded > 0);
        // Every counter the trace covers is conserved (nothing dropped at
        // this scale: the default ring outlives the tiny run).
        assert_eq!(traced.trace.dropped, 0);
        assert!(
            tiersim_os::replay_matches(&traced.trace.records, &traced.counters),
            "trace replay must reproduce the counters"
        );
    }

    #[test]
    fn stuck_watchdog_returns_typed_error_instead_of_hanging() {
        use crate::error::RunError;
        let w = tiny(Kernel::Bfs, Dataset::Kron).trials(1);
        // A fast kswapd cadence makes the engine tick constantly, so a
        // budget of one tick is far below what the run needs and the
        // watchdog fires early and deterministically.
        let mut c = cfg(&w, TieringMode::AutoNuma).with_tick_budget(1);
        c.os.kswapd_period_cycles = 1_000;
        let got = run_workload(c.clone(), w);
        match got {
            Err(CoreError::Run(RunError::Stuck { ticks, budget })) => {
                assert_eq!(budget, 1);
                assert!(ticks > budget);
            }
            other => panic!("expected a stuck-cell error, got {other:?}"),
        }
        // Same config, same typed failure: even aborts are deterministic.
        assert_eq!(run_workload(c.clone(), w).unwrap_err(), run_workload(c, w).unwrap_err());
    }

    #[test]
    fn zero_tick_budget_disables_the_watchdog() {
        let w = tiny(Kernel::Bfs, Dataset::Kron).trials(1);
        let plain = run_workload(cfg(&w, TieringMode::AutoNuma), w).unwrap();
        let armed_high =
            run_workload(cfg(&w, TieringMode::AutoNuma).with_tick_budget(u64::MAX), w).unwrap();
        // A budget the run never reaches must not perturb the simulation.
        assert_eq!(plain.total_secs, armed_high.total_secs);
        assert_eq!(plain.counters, armed_high.counters);
    }

    #[test]
    fn static_plan_pipeline_runs() {
        let w = tiny(Kernel::Bfs, Dataset::Kron);
        let (auto, stat) = run_autonuma_vs_static(w, false).unwrap();
        assert_eq!(auto.mode_name, "autonuma");
        assert_eq!(stat.mode_name, "static_object");
        assert!(stat.counters.no_migrations(), "static mapping never migrates");
    }
}
