//! Deterministic parallel execution of independent experiment cells.
//!
//! Experiment cells (one `run_workload` invocation, one AutoNUMA/static
//! pair, …) are independent deterministic simulations: they share no
//! mutable state and each produces the same bytes no matter when or where
//! it runs. [`run_cells`] exploits that: a fixed-size pool of scoped
//! workers drains the cells in whatever order scheduling dictates, but
//! every result lands in a slot keyed by its *cell index*, so callers
//! render reports and CSVs in exactly the serial order. The determinism
//! contract (DESIGN.md §10) follows: output bytes are a function of the
//! cells alone, never of `jobs`.
//!
//! This module is the **only** place in the workspace allowed to start
//! threads — the `thread-spawn` lint rule (`cargo xtask lint`) enforces
//! that, and `std::thread::scope` guarantees every worker is joined
//! before `run_cells` returns, so no simulation ever outlives the sweep
//! that launched it.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Panic payload that aborts an entire sweep instead of being captured as
/// one cell's failure.
///
/// [`run_cells_fallible`] contains every ordinary panic inside its cell —
/// that is the whole point of the fallible lane. A few events, though,
/// must behave like the *process* dying, not like one cell failing: the
/// journal's deterministic kill-point injector (`crate::journal`) models a
/// SIGKILL by panicking with this payload, and every worker that touches
/// the dead journal afterwards raises it too. The fallible lane re-raises
/// `SweepAbort` payloads unchanged, so they unwind through the sweep the
/// way a real crash would end it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepAbort(
    /// Why the sweep was aborted (e.g. `"kill-point"`).
    pub &'static str,
);

/// Why a fallible sweep cell did not produce a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellFailure<E> {
    /// The cell ran to completion and returned an error.
    Error(E),
    /// The cell panicked; the payload rendered as a message.
    Panic(String),
}

impl<E: std::fmt::Display> std::fmt::Display for CellFailure<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellFailure::Error(e) => write!(f, "{e}"),
            CellFailure::Panic(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

/// Renders a caught panic payload as a message: `&str` and `String`
/// payloads verbatim, a typed [`crate::error::RunError`] via its
/// `Display`, anything else as `"unknown panic"`.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    if let Some(e) = payload.downcast_ref::<crate::error::RunError>() {
        return e.to_string();
    }
    "unknown panic".to_string()
}

/// Runs every cell, isolating failures: the fallible sweep lane.
///
/// Like [`run_cells`], but a cell that returns `Err` or panics yields
/// `Err(CellFailure)` in its slot instead of killing the sweep — the other
/// cells' results survive. Results come back in cell-index order and are
/// byte-identical for every `jobs` value, exactly as in the infallible
/// lane.
///
/// # Panics
///
/// Panics whose payload is a [`SweepAbort`] are *not* captured: they model
/// the whole runner dying (the journal kill-point injector) and are
/// re-raised after all workers have been joined, lowest index first.
pub fn run_cells_fallible<T, E, F>(jobs: usize, cells: Vec<F>) -> Vec<Result<T, CellFailure<E>>>
where
    T: Send,
    E: Send,
    F: FnOnce() -> Result<T, E> + Send,
{
    let wrapped: Vec<_> = cells
        .into_iter()
        .map(|cell| {
            move || match catch_unwind(AssertUnwindSafe(cell)) {
                Ok(Ok(value)) => Ok(value),
                Ok(Err(e)) => Err(CellFailure::Error(e)),
                Err(payload) if payload.is::<SweepAbort>() => resume_unwind(payload),
                Err(payload) => Err(CellFailure::Panic(panic_message(payload.as_ref()))),
            }
        })
        .collect();
    run_cells(jobs, wrapped)
}

/// The default worker count: the host's available parallelism, falling
/// back to 1 when it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// Mutex lock that shrugs off poisoning: a poisoned cell slot only means
/// another worker panicked, and panics are re-raised deterministically
/// after the sweep — the data under the lock is still valid.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs every cell and returns the results in cell-index order.
///
/// With `jobs <= 1` (or fewer than two cells) the cells run serially on
/// the calling thread in index order — the exact pre-parallelism
/// behavior, with zero thread overhead. Otherwise `min(jobs, cells)`
/// scoped workers claim cell indices from an atomic counter; results are
/// written to per-cell slots, so the returned vector is identical to the
/// serial one regardless of scheduling.
///
/// # Panics
///
/// If any cell panics, the payload of the **lowest-index** panicking cell
/// is re-raised once all workers have finished — the same cell a serial
/// run would have panicked at, keeping even failure behavior independent
/// of `jobs`.
pub fn run_cells<T, F>(jobs: usize, cells: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if jobs <= 1 || cells.len() <= 1 {
        return cells.into_iter().map(|f| f()).collect();
    }
    let n = cells.len();
    let work: Vec<Mutex<Option<F>>> = cells.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<std::thread::Result<T>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.min(n);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Run the cell *outside* the slot locks so a panicking
                // cell can never poison them mid-execution.
                let Some(cell) = lock(&work[i]).take() else { continue };
                let outcome = catch_unwind(AssertUnwindSafe(cell));
                *lock(&results[i]) = Some(outcome);
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    let mut first_panic = None;
    for slot in results {
        match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(Ok(value)) => out.push(value),
            Some(Err(payload)) => {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
            // Unreachable: the atomic counter hands every index < n to
            // exactly one worker, and scope() joins them all.
            // tiersim-analyze: allow(panic-reach) — every slot is filled before scope() returns
            None => unreachable!("sweep cell was never executed"),
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_results_are_identical() {
        let make = || (0..64).map(|i| move || i * i).collect::<Vec<_>>();
        let serial = run_cells(1, make());
        for jobs in [2, 3, 4, 8, 64, 1000] {
            assert_eq!(run_cells(jobs, make()), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_cell_sweeps_work() {
        let empty: Vec<fn() -> u32> = Vec::new();
        assert!(run_cells(8, empty).is_empty());
        assert_eq!(run_cells(8, vec![|| 41 + 1]), vec![42]);
    }

    #[test]
    fn results_preserve_index_order_under_skewed_cell_costs() {
        // Early cells are the slowest, so parallel completion order is
        // roughly reversed — results must still come back by index.
        let cells: Vec<_> = (0..16u64)
            .map(|i| {
                move || {
                    let mut acc = 0u64;
                    for k in 0..(16 - i) * 20_000 {
                        acc = acc.wrapping_mul(31).wrapping_add(k);
                    }
                    (i, acc)
                }
            })
            .collect();
        let got = run_cells(4, cells);
        let idx: Vec<u64> = got.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn lowest_index_panic_wins() {
        for jobs in [1, 4] {
            let cells: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
                Box::new(|| 0),
                Box::new(|| panic!("cell one")),
                Box::new(|| 2),
                Box::new(|| panic!("cell three")),
            ];
            let err = catch_unwind(AssertUnwindSafe(|| run_cells(jobs, cells))).unwrap_err();
            let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
            assert_eq!(msg, "cell one", "jobs={jobs}");
        }
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    /// ISSUE 7 regression: one panicking cell no longer kills the other
    /// cells' results — the fallible lane records it in its own slot.
    #[test]
    fn fallible_lane_isolates_panics_and_errors() {
        for jobs in [1, 4] {
            let cells: Vec<Box<dyn FnOnce() -> Result<u32, String> + Send>> = vec![
                Box::new(|| Ok(10)),
                Box::new(|| panic!("cell one exploded")),
                Box::new(|| Err("cell two declined".to_string())),
                Box::new(|| Ok(30)),
            ];
            let got = run_cells_fallible(jobs, cells);
            assert_eq!(got.len(), 4, "jobs={jobs}");
            assert_eq!(got[0], Ok(10));
            assert_eq!(got[1], Err(CellFailure::Panic("cell one exploded".to_string())));
            assert_eq!(got[2], Err(CellFailure::Error("cell two declined".to_string())));
            assert_eq!(got[3], Ok(30), "cells after a panic still ran (jobs={jobs})");
        }
    }

    #[test]
    fn fallible_lane_matches_infallible_on_clean_cells() {
        let make = || (0..32).map(|i| move || Ok::<_, String>(i * 3)).collect::<Vec<_>>();
        let serial = run_cells_fallible(1, make());
        let parallel = run_cells_fallible(4, make());
        assert_eq!(serial, parallel);
        assert!(serial.iter().all(Result::is_ok));
    }

    #[test]
    fn sweep_abort_payloads_pass_through_the_fallible_lane() {
        for jobs in [1, 4] {
            let cells: Vec<Box<dyn FnOnce() -> Result<u32, String> + Send>> = vec![
                Box::new(|| Ok(1)),
                Box::new(|| std::panic::panic_any(SweepAbort("kill-point"))),
                Box::new(|| Ok(3)),
            ];
            let err =
                catch_unwind(AssertUnwindSafe(|| run_cells_fallible(jobs, cells))).unwrap_err();
            let abort = err.downcast_ref::<SweepAbort>();
            assert_eq!(abort, Some(&SweepAbort("kill-point")), "jobs={jobs}");
        }
    }

    #[test]
    fn panic_message_renders_known_payload_shapes() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&"boom".to_string()), "boom");
        let e = crate::error::RunError::Stuck { ticks: 9, budget: 4 };
        assert!(panic_message(&e).contains("stuck"), "{}", panic_message(&e));
        assert_eq!(panic_message(&42u32), "unknown panic");
    }
}
