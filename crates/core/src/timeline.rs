//! Periodic run-state snapshots (the paper's once-per-second
//! numastat/vmstat/CPU polling behind Figures 9 and 10).

use tiersim_os::{NumaStat, VmCounters};

/// One timeline snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineSnapshot {
    /// Simulated time in seconds.
    pub time_secs: f64,
    /// numastat-style memory usage.
    pub numastat: NumaStat,
    /// Cumulative vmstat counters at this moment.
    pub counters: VmCounters,
    /// CPU utilization in `[0, 1]` over the window ending here (busy
    /// cycles across all threads / wall cycles × threads).
    pub cpu_util: f64,
    /// Current dynamic hot threshold in cycles.
    pub threshold_cycles: u64,
    /// Whole bytes left in the promotion rate limiter's token bucket.
    pub rate_tokens_bytes: u64,
}

/// Helpers over a snapshot series.
pub trait TimelineOps {
    /// Per-window deltas of `f(counters)` between consecutive snapshots,
    /// as `(time_secs, delta)` (first window measures from zero).
    fn counter_deltas(&self, f: impl Fn(&VmCounters) -> u64) -> Vec<(f64, u64)>;
}

impl TimelineOps for [TimelineSnapshot] {
    fn counter_deltas(&self, f: impl Fn(&VmCounters) -> u64) -> Vec<(f64, u64)> {
        let mut prev = 0u64;
        self.iter()
            .map(|s| {
                let cur = f(&s.counters);
                let d = cur.saturating_sub(prev);
                prev = cur;
                (s.time_secs, d)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(t: f64, promoted: u64) -> TimelineSnapshot {
        let counters = VmCounters { pgpromote_success: promoted, ..Default::default() };
        TimelineSnapshot {
            time_secs: t,
            numastat: NumaStat::default(),
            counters,
            cpu_util: 0.5,
            threshold_cycles: 0,
            rate_tokens_bytes: 0,
        }
    }

    #[test]
    fn deltas_between_snapshots() {
        let series = [snap(1.0, 5), snap(2.0, 5), snap(3.0, 12)];
        let d = series.counter_deltas(|c| c.pgpromote_success);
        assert_eq!(d, vec![(1.0, 5), (2.0, 0), (3.0, 7)]);
    }

    #[test]
    fn empty_series_yields_empty_deltas() {
        let series: [TimelineSnapshot; 0] = [];
        assert!(series.counter_deltas(|c| c.pgdemote_kswapd).is_empty());
    }
}
