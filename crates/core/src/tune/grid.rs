//! The knob search space: rational multipliers over the machine's
//! post-dilation AutoNUMA defaults.
//!
//! The three paper knobs — `hot_threshold_cycles`, `scan_period_cycles`
//! and `promo_rate_limit_bytes_per_sec` — span orders of magnitude, so
//! the grid sweeps *multipliers* of the already-dilated defaults rather
//! than absolute values: the same grid is meaningful at every scale and
//! frequency. Multipliers are exact rationals evaluated in `u128`, so
//! cell configurations (and therefore cell names, journal ids and
//! report bytes) never depend on float rounding.

use crate::config::MachineConfig;
use tiersim_mem::PAGE_SIZE;

/// An exact rational multiplier `num/den`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mult {
    /// Numerator (never zero).
    pub num: u32,
    /// Denominator (never zero).
    pub den: u32,
}

impl Mult {
    /// The identity multiplier: the machine's default knob value.
    pub const ONE: Mult = Mult { num: 1, den: 1 };

    /// `v * num / den` in `u128`, floored, clamped to at least 1 so a
    /// small default divided by a large denominator can never produce
    /// the degenerate zero knob that `OsConfig::validate` rejects.
    #[must_use]
    pub fn apply(self, v: u64) -> u64 {
        let num = u128::from(self.num.max(1));
        let den = u128::from(self.den.max(1));
        let scaled = (u128::from(v) * num) / den;
        u64::try_from(scaled).unwrap_or(u64::MAX).max(1)
    }

    /// Compact stable token for cell names and report keys: `"2"` for
    /// ×2, `"1d4"` for ×1/4.
    #[must_use]
    pub fn key(self) -> String {
        if self.den == 1 {
            format!("{}", self.num)
        } else {
            format!("{}d{}", self.num, self.den)
        }
    }
}

/// One grid cell: a multiplier per paper knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnobPoint {
    /// Multiplier on `hot_threshold_cycles`.
    pub hot: Mult,
    /// Multiplier on `scan_period_cycles`.
    pub scan: Mult,
    /// Multiplier on `promo_rate_limit_bytes_per_sec`.
    pub rate: Mult,
}

impl KnobPoint {
    /// The untouched-defaults point — the baseline every Pareto report
    /// compares against.
    pub const DEFAULT: KnobPoint = KnobPoint { hot: Mult::ONE, scan: Mult::ONE, rate: Mult::ONE };

    /// Whether this is the defaults point.
    #[must_use]
    pub fn is_default(self) -> bool {
        self == KnobPoint::DEFAULT
    }

    /// Stable key naming this point in cell names, reports and traces:
    /// `h<hot>.s<scan>.r<rate>`.
    #[must_use]
    pub fn key(self) -> String {
        format!("h{}.s{}.r{}", self.hot.key(), self.scan.key(), self.rate.key())
    }

    /// Applies the multipliers to `base`'s OS knobs, keeping the derived
    /// constraints (`validate`) satisfiable: the adaptive scan ceiling
    /// never drops below the swept period and the promotion rate never
    /// goes below one page per second.
    ///
    /// The hot multiplier scales the *whole* threshold band — initial
    /// value and both clamps. The dynamic controller walks the threshold
    /// away from any initial value within a few adjust periods, so
    /// scaling only `hot_threshold_cycles` is a dead knob: the controller
    /// converges to the same trajectory regardless. Scaling the
    /// `[min, max]` band moves the region the controller is *allowed* to
    /// live in, which is the lever that actually changes promotion
    /// behavior (and is how the paper pins the threshold for its sweeps).
    #[must_use]
    pub fn apply(self, base: &MachineConfig) -> MachineConfig {
        let mut cfg = base.clone();
        cfg.os.hot_threshold_cycles = self.hot.apply(base.os.hot_threshold_cycles);
        cfg.os.hot_threshold_min_cycles =
            self.hot.apply(base.os.hot_threshold_min_cycles).min(cfg.os.hot_threshold_cycles);
        cfg.os.hot_threshold_max_cycles =
            self.hot.apply(base.os.hot_threshold_max_cycles).max(cfg.os.hot_threshold_cycles);
        cfg.os.scan_period_cycles = self.scan.apply(base.os.scan_period_cycles);
        cfg.os.scan_period_max_cycles =
            cfg.os.scan_period_max_cycles.max(cfg.os.scan_period_cycles);
        cfg.os.promo_rate_limit_bytes_per_sec =
            self.rate.apply(base.os.promo_rate_limit_bytes_per_sec).max(PAGE_SIZE);
        cfg
    }
}

/// Which grid seeds the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridSpec {
    /// 2×2×2 = 8 cells — the CI smoke grid.
    Tiny,
    /// 6×6×6 = 216 cells — the paper-style search.
    Paper,
}

/// Paper-grid hot-threshold band multipliers. The band is swept in
/// powers of four on both sides of the default: the controller's
/// dynamics (×0.8 / ×1.2 steps) cross a ×4 band shift in a handful of
/// adjust periods, so finer steps collapse to identical trajectories.
const PAPER_HOT: [Mult; 6] = [
    Mult { num: 1, den: 16 },
    Mult { num: 1, den: 4 },
    Mult::ONE,
    Mult { num: 4, den: 1 },
    Mult { num: 16, den: 1 },
    Mult { num: 64, den: 1 },
];

/// Paper-grid scan-period multipliers, symmetric around the default —
/// the cadence knob the paper sweeps most finely.
const PAPER_SCAN: [Mult; 6] = [
    Mult { num: 1, den: 4 },
    Mult { num: 1, den: 2 },
    Mult::ONE,
    Mult { num: 2, den: 1 },
    Mult { num: 4, den: 1 },
    Mult { num: 8, den: 1 },
];

/// Paper-grid promotion-rate multipliers. The kernel default is
/// effectively unlimited (65536 MB/s), so — like the paper, which sweeps
/// absolute MB/s values decades below it — the ladder only descends, in
/// powers of four down to ×1/65536, bracketing the regime where the
/// token bucket and the threshold controller's candidate budget bind on
/// a scaled workload's promotion demand.
const PAPER_RATE: [Mult; 6] = [
    Mult { num: 1, den: 65_536 },
    Mult { num: 1, den: 16_384 },
    Mult { num: 1, den: 4096 },
    Mult { num: 1, den: 1024 },
    Mult { num: 1, den: 256 },
    Mult::ONE,
];

/// Tiny-grid ladders: one non-default value per knob, picked from the
/// binding regime so even the smoke search sees differentiated scores.
const TINY_HOT: [Mult; 2] = [Mult { num: 1, den: 4 }, Mult::ONE];
const TINY_SCAN: [Mult; 2] = [Mult { num: 1, den: 2 }, Mult::ONE];
const TINY_RATE: [Mult; 2] = [Mult { num: 1, den: 16_384 }, Mult::ONE];

impl GridSpec {
    /// Stable name for fingerprints and CLI flags.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GridSpec::Tiny => "tiny",
            GridSpec::Paper => "paper",
        }
    }

    /// The grid's cells in their canonical (hot-major) order. Always
    /// contains [`KnobPoint::DEFAULT`].
    #[must_use]
    pub fn points(self) -> Vec<KnobPoint> {
        let (hots, scans, rates): (&[Mult], &[Mult], &[Mult]) = match self {
            GridSpec::Tiny => (&TINY_HOT, &TINY_SCAN, &TINY_RATE),
            GridSpec::Paper => (&PAPER_HOT, &PAPER_SCAN, &PAPER_RATE),
        };
        let mut v = Vec::with_capacity(hots.len() * scans.len() * rates.len());
        for &hot in hots {
            for &scan in scans {
                for &rate in rates {
                    v.push(KnobPoint { hot, scan, rate });
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim_policy::TieringMode;

    #[test]
    fn mult_applies_exactly_and_never_zeroes() {
        assert_eq!(Mult::ONE.apply(7), 7);
        assert_eq!(Mult { num: 2, den: 1 }.apply(7), 14);
        assert_eq!(Mult { num: 1, den: 2 }.apply(7), 3, "floors");
        assert_eq!(Mult { num: 1, den: 4 }.apply(2), 1, "clamped to >= 1");
        assert_eq!(Mult { num: 1, den: 4 }.apply(0), 1);
        assert_eq!(Mult { num: 8, den: 1 }.apply(u64::MAX), u64::MAX, "saturates");
    }

    #[test]
    fn keys_are_stable_and_unique_per_grid() {
        assert_eq!(Mult::ONE.key(), "1");
        assert_eq!(Mult { num: 1, den: 4 }.key(), "1d4");
        assert_eq!(KnobPoint::DEFAULT.key(), "h1.s1.r1");
        for grid in [GridSpec::Tiny, GridSpec::Paper] {
            let points = grid.points();
            let mut keys: Vec<String> = points.iter().map(|p| p.key()).collect();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), points.len(), "{} keys collide", grid.name());
        }
    }

    #[test]
    fn grids_have_expected_shape_and_contain_default() {
        assert_eq!(GridSpec::Tiny.points().len(), 8);
        assert_eq!(GridSpec::Paper.points().len(), 216);
        for grid in [GridSpec::Tiny, GridSpec::Paper] {
            assert!(grid.points().iter().any(|p| p.is_default()), "{}", grid.name());
        }
    }

    #[test]
    fn apply_scales_knobs_and_keeps_config_valid() {
        let base = MachineConfig::scaled_default(64 << 20, TieringMode::AutoNuma);
        for point in GridSpec::Paper.points() {
            let cfg = point.apply(&base);
            cfg.validate().unwrap_or_else(|e| panic!("{} invalid: {e}", point.key()));
            assert_eq!(cfg.os.hot_threshold_cycles, point.hot.apply(base.os.hot_threshold_cycles));
            assert_eq!(cfg.os.scan_period_cycles, point.scan.apply(base.os.scan_period_cycles));
            assert!(cfg.os.scan_period_max_cycles >= cfg.os.scan_period_cycles);
            assert!(cfg.os.hot_threshold_min_cycles <= cfg.os.hot_threshold_cycles);
            assert!(cfg.os.hot_threshold_max_cycles >= cfg.os.hot_threshold_cycles);
        }
        let default_cfg = KnobPoint::DEFAULT.apply(&base);
        assert_eq!(default_cfg.os.hot_threshold_cycles, base.os.hot_threshold_cycles);
        assert_eq!(default_cfg.os.scan_period_cycles, base.os.scan_period_cycles);
        assert_eq!(
            default_cfg.os.promo_rate_limit_bytes_per_sec,
            base.os.promo_rate_limit_bytes_per_sec
        );
    }
}
