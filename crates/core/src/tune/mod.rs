//! `tiersim-tune`: crash-safe successive-halving search over the three
//! paper knobs (DESIGN.md §16).
//!
//! The search seeds a grid of knob multipliers ([`GridSpec`]), then runs
//! deterministic successive halving: every rung runs the surviving
//! configurations under a *simulated-tick* budget (never wall clock),
//! ranks them on completion ticks and promotion traffic with seeded
//! tie-breaks, keeps the top half, and doubles the budget. The
//! finalists are re-run under the PR 2 fault-injection plan to score
//! robustness, and the report carries the Pareto front over
//! (ticks, promotion bytes, degraded-mode events).
//!
//! Every cell is journaled through [`crate::journal`]: cell names embed
//! the rung and budget, so a `kill -9` at any point resumes without
//! re-running a single completed cell, and the final report bytes are
//! identical to an uninterrupted run's — the same contract the sweep
//! runner proves, extended across the tuner's multiple journal phases.

mod grid;
mod pareto;
mod report;
mod score;

pub use grid::{GridSpec, KnobPoint, Mult};
pub use pareto::{front_indices, Objectives};
pub use report::{CellRow, RungSummary, TuneReport};
pub use score::{CellScore, RobustScore};

use crate::experiments::ExperimentConfig;
use crate::journal::codec::fnv1a64;
use crate::journal::{
    run_journaled, CellOutcome, JournalCell, JournalError, KillSpec, RunnerOptions,
};
use crate::workload::{Dataset, Kernel};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use tiersim_mem::{FaultPlan, RATE_ONE};
use tiersim_policy::TieringMode;
use tiersim_trace::{TraceConfig, TraceEvent, TraceLog, TraceState};

/// Everything that shapes one tuner search (and its fingerprint).
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// The testbed: machine sizing, trials, sampling — shared with every
    /// other experiment.
    pub experiment: ExperimentConfig,
    /// Workload kernel under tuning.
    pub kernel: Kernel,
    /// Workload dataset under tuning.
    pub dataset: Dataset,
    /// The seeding grid.
    pub grid: GridSpec,
    /// Rung-0 tick budget; doubles every rung. Must be nonzero.
    pub rung_budget: u64,
    /// Survivor count at which halving stops and the robustness phase
    /// begins (clamped to at least 1).
    pub finalists: usize,
    /// Seed for ranking tie-breaks and the robustness fault plan.
    pub seed: u64,
}

impl TuneConfig {
    /// A search over `kernel`/`dataset` with smoke-test defaults: the
    /// tiny grid, four finalists, seed 42.
    #[must_use]
    pub fn new(experiment: ExperimentConfig, kernel: Kernel, dataset: Dataset) -> TuneConfig {
        TuneConfig {
            experiment,
            kernel,
            dataset,
            grid: GridSpec::Tiny,
            rung_budget: 2000,
            finalists: 4,
            seed: 42,
        }
    }

    /// The journal fingerprint: every input that shapes cell payloads.
    /// Like [`ExperimentConfig::fingerprint`] it excludes `jobs`.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!(
            "tune;{};workload={};grid={};rung_budget={};finalists={};seed={}",
            self.experiment.fingerprint(),
            self.experiment.workload(self.kernel, self.dataset).name(),
            self.grid.name(),
            self.rung_budget,
            self.finalists.max(1),
            self.seed
        )
    }
}

/// Errors from [`run_tune`].
#[derive(Debug)]
pub enum TuneError {
    /// The journal layer failed (I/O, fingerprint mismatch, corruption).
    Journal(JournalError),
    /// A tuner parameter was rejected.
    Invalid {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        got: String,
    },
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Journal(e) => write!(f, "tune journal: {e}"),
            TuneError::Invalid { what, got } => {
                write!(f, "invalid tune parameter: {what} (got {got})")
            }
        }
    }
}

impl std::error::Error for TuneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TuneError::Journal(e) => Some(e),
            TuneError::Invalid { .. } => None,
        }
    }
}

impl From<JournalError> for TuneError {
    fn from(e: JournalError) -> Self {
        TuneError::Journal(e)
    }
}

/// The result of one tuner search.
#[derive(Debug)]
pub struct TuneOutcome {
    /// The deterministic Pareto report.
    pub report: TuneReport,
    /// The driver's lifecycle trace (`rung_start`/`cell_scored`/
    /// `pareto_update`), for `--trace` export.
    pub trace: TraceLog,
    /// Cell executions performed this session (session-relative: smaller
    /// after a resume).
    pub executed: u64,
    /// Cell payloads replayed from the journal this session.
    pub replayed: u64,
}

/// Lines currently in the journal file (0 when absent): the cross-phase
/// append meter behind `--kill-at` rebasing. Appends are whole lines,
/// so the line-count delta since session start *is* the session's
/// append count.
fn journal_lines(path: &Path) -> u64 {
    std::fs::read_to_string(path).map(|t| t.lines().count() as u64).unwrap_or(0)
}

/// Rebases a session-relative kill point onto the next journal phase:
/// each `run_journaled` call counts appends from zero, so the armed
/// index shrinks by what earlier phases already wrote.
fn rebase_kill(kill: Option<KillSpec>, appended: u64) -> Option<KillSpec> {
    let k = kill?;
    let remaining = k.at_append.saturating_sub(appended);
    if remaining == 0 {
        None
    } else {
        Some(KillSpec { at_append: remaining, ..k })
    }
}

/// Seeded rank tie-break: stuck ties and exact score ties order by this
/// hash, so reshuffling the seed perturbs survivor selection without
/// touching any score.
fn tie_break(seed: u64, key: &str) -> u64 {
    fnv1a64(format!("{seed}:{key}").as_bytes())
}

/// The robustness phase's fault plan: moderate transient failure rates
/// on all three injection sites, armed for the whole run.
fn fault_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        dram_alloc_fail_per_64k: RATE_ONE / 64,
        migrate_busy_per_64k: RATE_ONE / 64,
        reclaim_stall_per_64k: RATE_ONE / 64,
        reclaim_stall_cycles: 20_000,
        ..FaultPlan::none()
    }
}

/// Runs the full search against the journal at `journal`: create it if
/// absent, resume it if present (same fingerprint required).
///
/// `opts.jobs` and `opts.kill` are honored; `max_attempts` is pinned to
/// 1 because every cell is deterministic — a failure would repeat
/// identically, and a stuck verdict is a score, not a failure.
///
/// # Errors
///
/// [`TuneError::Invalid`] on a zero `rung_budget`;
/// [`TuneError::Journal`] on journal I/O, fingerprint mismatch or
/// corruption.
///
/// # Panics
///
/// Raises [`crate::sweep::SweepAbort`] when an armed
/// [`KillMode::Panic`](crate::journal::KillMode) kill-point fires, like
/// the journal runner it wraps.
pub fn run_tune(
    cfg: &TuneConfig,
    journal: &Path,
    opts: RunnerOptions,
) -> Result<TuneOutcome, TuneError> {
    if cfg.rung_budget == 0 {
        return Err(TuneError::Invalid { what: "rung_budget", got: "0 ticks".to_string() });
    }
    let finalist_target = cfg.finalists.max(1);
    let fp = cfg.fingerprint();
    let workload = cfg.experiment.workload(cfg.kernel, cfg.dataset);
    let base = cfg.experiment.machine(TieringMode::AutoNuma);
    let points = cfg.grid.points();
    let mut trace = TraceState::new(TraceConfig::on());
    let start_lines = journal_lines(journal);
    let mut appended: u64 = 0;
    let (mut executed, mut replayed) = (0u64, 0u64);

    let mut active: Vec<usize> = (0..points.len()).collect();
    let mut budget = cfg.rung_budget;
    let mut rung: u64 = 0;
    let mut rungs: Vec<RungSummary> = Vec::new();
    let mut default_score: Option<(u64, u64)> = None;
    let final_active: Vec<usize>;
    let final_scores: BTreeMap<usize, (u64, u64)>;

    loop {
        trace.set_now(rung);
        trace.record(TraceEvent::RungStart {
            rung,
            cells: active.len() as u64,
            budget_ticks: budget,
        });
        let mut cells: Vec<JournalCell> = Vec::with_capacity(active.len());
        let mut cell_points: Vec<usize> = Vec::with_capacity(active.len());
        for &idx in &active {
            let Some(point) = points.get(idx).copied() else { continue };
            let machine = point.apply(&base).with_tick_budget(budget);
            let w = workload;
            cells.push(JournalCell {
                name: format!("r{rung}:b{budget}:{}", point.key()),
                run: Box::new(move || score::run_score_cell(&machine, &w)),
            });
            cell_points.push(idx);
        }
        let phase_opts = RunnerOptions {
            jobs: opts.jobs,
            max_attempts: 1,
            kill: rebase_kill(opts.kill, appended),
        };
        let out = run_journaled(journal, &fp, cells, phase_opts)?;
        executed += out.stats.executed;
        replayed += out.stats.replayed;
        appended = journal_lines(journal).saturating_sub(start_lines);

        let mut finished: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
        let mut stuck: Vec<usize> = Vec::new();
        let mut quarantined = 0u64;
        for (&idx, (_name, outcome)) in cell_points.iter().zip(out.cells.iter()) {
            match outcome {
                CellOutcome::Completed { payload, .. } => match CellScore::decode(payload) {
                    Some(CellScore::Finished { ticks, promo_bytes }) => {
                        trace.record(TraceEvent::CellScored {
                            cell: idx as u64,
                            ticks,
                            promo_bytes,
                        });
                        finished.insert(idx, (ticks, promo_bytes));
                        if points.get(idx).is_some_and(|p| p.is_default()) {
                            default_score = Some((ticks, promo_bytes));
                        }
                    }
                    Some(CellScore::Stuck { .. }) => stuck.push(idx),
                    // A payload this codec never wrote: a foreign or
                    // corrupt journal entry. Count it with the losses.
                    None => quarantined += 1,
                },
                CellOutcome::Quarantined { .. } => quarantined += 1,
            }
        }
        rungs.push(RungSummary {
            rung,
            cells: cell_points.len() as u64,
            budget_ticks: budget,
            finished: finished.len() as u64,
            stuck: stuck.len() as u64,
            quarantined,
        });

        // Rank: finished by (ticks, promotion bytes), then stuck; exact
        // ties break on the seeded hash, then the point index.
        let mut ranked: Vec<(u64, u64, u64, u64, usize)> = Vec::with_capacity(cell_points.len());
        for &idx in &cell_points {
            let key = points.get(idx).map(|p| p.key()).unwrap_or_default();
            let tie = tie_break(cfg.seed, &key);
            if let Some(&(ticks, promo)) = finished.get(&idx) {
                ranked.push((0, ticks, promo, tie, idx));
            } else if stuck.contains(&idx) {
                ranked.push((1, 0, 0, tie, idx));
            }
        }
        ranked.sort_unstable();

        if active.len() <= finalist_target {
            // Final rung: only finished configurations graduate.
            final_active = ranked.iter().filter(|r| r.0 == 0).map(|r| r.4).collect();
            final_scores = finished;
            break;
        }
        let keep = active.len().div_ceil(2).min(ranked.len());
        if keep == 0 {
            final_active = Vec::new();
            final_scores = finished;
            break;
        }
        let mut survivors: Vec<usize> = ranked.iter().take(keep).map(|r| r.4).collect();
        survivors.sort_unstable();
        active = survivors;
        budget = budget.saturating_mul(2);
        rung += 1;
    }

    // Robustness phase: finalists re-run under the seeded fault plan,
    // with single-attempt migrations so EBUSY injections surface as
    // pgmigrate_fail, and doubled budget headroom for the fault costs.
    trace.set_now(rung.saturating_add(1));
    let robust_budget = budget.saturating_mul(2);
    let fault = fault_plan(cfg.seed);
    let mut robust_cells: Vec<JournalCell> = Vec::with_capacity(final_active.len());
    let mut robust_points: Vec<usize> = Vec::with_capacity(final_active.len());
    for &idx in &final_active {
        let Some(point) = points.get(idx).copied() else { continue };
        let mut machine = point.apply(&base).with_tick_budget(robust_budget).with_fault(fault);
        machine.os.migrate_max_retries = 1;
        let w = workload;
        robust_cells.push(JournalCell {
            name: format!("robust:{}", point.key()),
            run: Box::new(move || score::run_robust_cell(&machine, &w)),
        });
        robust_points.push(idx);
    }
    let mut robust: BTreeMap<usize, u64> = BTreeMap::new();
    if !robust_cells.is_empty() {
        let phase_opts = RunnerOptions {
            jobs: opts.jobs,
            max_attempts: 1,
            kill: rebase_kill(opts.kill, appended),
        };
        let out = run_journaled(journal, &fp, robust_cells, phase_opts)?;
        executed += out.stats.executed;
        replayed += out.stats.replayed;
        for (&idx, (_name, outcome)) in robust_points.iter().zip(out.cells.iter()) {
            if let CellOutcome::Completed { payload, .. } = outcome {
                if let Some(RobustScore::Finished { degraded, .. }) = RobustScore::decode(payload) {
                    robust.insert(idx, degraded);
                }
            }
        }
    }

    // Assemble finalist rows (ranked order) and the Pareto front over
    // everything with a full objective vector.
    let mut rows: Vec<CellRow> = Vec::with_capacity(final_active.len());
    let mut row_points: Vec<usize> = Vec::with_capacity(final_active.len());
    for &idx in &final_active {
        let Some(point) = points.get(idx).copied() else { continue };
        let Some(&(ticks, promo_bytes)) = final_scores.get(&idx) else { continue };
        let applied = point.apply(&base);
        let beats_default = default_score.is_some_and(|(dt, dp)| {
            ticks <= dt && promo_bytes <= dp && (ticks < dt || promo_bytes < dp)
        });
        rows.push(CellRow {
            key: point.key(),
            hot_threshold_cycles: applied.os.hot_threshold_cycles,
            scan_period_cycles: applied.os.scan_period_cycles,
            promo_rate_bytes_per_sec: applied.os.promo_rate_limit_bytes_per_sec,
            ticks,
            promo_bytes,
            degraded: robust.get(&idx).copied(),
            on_front: false,
            beats_default,
        });
        row_points.push(idx);
    }
    let eligible: Vec<usize> =
        rows.iter().enumerate().filter(|(_, r)| r.degraded.is_some()).map(|(i, _)| i).collect();
    let objs: Vec<Objectives> = eligible
        .iter()
        .filter_map(|&i| rows.get(i))
        .map(|r| Objectives {
            ticks: r.ticks,
            promo_bytes: r.promo_bytes,
            degraded: r.degraded.unwrap_or(0),
        })
        .collect();
    let mut front_size = 0u64;
    for &oi in &front_indices(&objs) {
        let Some(&row_i) = eligible.get(oi) else { continue };
        let Some(row) = rows.get_mut(row_i) else { continue };
        row.on_front = true;
        front_size += 1;
        let cell = row_points.get(row_i).copied().unwrap_or(0) as u64;
        trace.record(TraceEvent::ParetoUpdate { cell, front: front_size });
    }

    let report = TuneReport {
        workload: workload.name(),
        grid: cfg.grid.name().to_string(),
        seed: cfg.seed,
        rung_budget: cfg.rung_budget,
        rungs,
        default_score,
        finalists: rows,
    };
    Ok(TuneOutcome { report, trace: trace.log(), executed, replayed })
}
