//! Pareto dominance over the tuner's objective vectors.
//!
//! All objectives are minimized. A point *dominates* another when it is
//! no worse on every objective and strictly better on at least one —
//! the report's "strictly dominating" claim uses exactly this
//! definition, so a front member that merely ties the default everywhere
//! does not count as beating it.

/// One cell's objective vector (all minimized).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Objectives {
    /// OS engine ticks to completion.
    pub ticks: u64,
    /// Promotion traffic in bytes.
    pub promo_bytes: u64,
    /// Degraded-mode events under the fault plan.
    pub degraded: u64,
}

impl Objectives {
    /// Whether `self` dominates `other`: `<=` everywhere, `<` somewhere.
    #[must_use]
    pub fn dominates(self, other: Objectives) -> bool {
        let le = self.ticks <= other.ticks
            && self.promo_bytes <= other.promo_bytes
            && self.degraded <= other.degraded;
        le && self != other
    }
}

/// Indices of the non-dominated members of `objs`, in input order.
/// Duplicate vectors are all kept: equal points never dominate each
/// other.
#[must_use]
pub fn front_indices(objs: &[Objectives]) -> Vec<usize> {
    objs.iter()
        .enumerate()
        .filter(|(i, a)| !objs.iter().enumerate().any(|(j, b)| j != *i && b.dominates(**a)))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(ticks: u64, promo_bytes: u64, degraded: u64) -> Objectives {
        Objectives { ticks, promo_bytes, degraded }
    }

    #[test]
    fn dominance_requires_strict_improvement_somewhere() {
        assert!(o(1, 1, 1).dominates(o(2, 1, 1)));
        assert!(o(1, 1, 1).dominates(o(2, 2, 2)));
        assert!(!o(1, 1, 1).dominates(o(1, 1, 1)), "ties do not dominate");
        assert!(!o(1, 2, 1).dominates(o(2, 1, 1)), "trade-offs do not dominate");
        assert!(!o(2, 1, 1).dominates(o(1, 2, 1)));
    }

    #[test]
    fn front_keeps_tradeoffs_and_drops_dominated() {
        let objs = [o(10, 5, 0), o(5, 10, 0), o(10, 10, 0), o(11, 11, 11), o(10, 5, 0)];
        // The third point ties the first on ticks but loses on promo
        // traffic; the fourth loses everywhere; the fifth duplicates the
        // first and stays.
        assert_eq!(front_indices(&objs), vec![0, 1, 4]);
    }

    #[test]
    fn empty_and_singleton_fronts() {
        assert!(front_indices(&[]).is_empty());
        assert_eq!(front_indices(&[o(1, 2, 3)]), vec![0]);
    }

    proptest::proptest! {
        #[test]
        fn front_members_are_mutually_nondominating_and_cover(
            v in proptest::collection::vec((0u64..50, 0u64..50, 0u64..50), 1..40)
        ) {
            let objs: Vec<Objectives> =
                v.iter().map(|&(t, p, d)| o(t, p, d)).collect();
            let front = front_indices(&objs);
            proptest::prop_assert!(!front.is_empty(), "a finite set always has a front");
            for &i in &front {
                for &j in &front {
                    if i != j {
                        proptest::prop_assert!(!objs[i].dominates(objs[j]));
                    }
                }
            }
            // Every non-front member is dominated by some front member.
            for (i, a) in objs.iter().enumerate() {
                if !front.contains(&i) {
                    proptest::prop_assert!(front.iter().any(|&f| objs[f].dominates(*a)));
                }
            }
        }
    }
}
