//! The tuner's output artifact: the Pareto report.
//!
//! One [`TuneReport`] per search, rendered three ways from the same
//! data: hand-emitted JSON (machine-readable, schema below), CSV (one
//! row per finalist) and a [`TextTable`] summary for stdout. All three
//! are pure functions of the search inputs — byte-identical across
//! `--jobs` values and kill/resume splits — and the file writers go
//! through [`crate::journal::atomic_write`], so a crash mid-report
//! never leaves a truncated artifact.

use crate::journal::{atomic_write, codec::escape_json};
use crate::render::TextTable;
use std::path::Path;

/// One successive-halving rung, as run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RungSummary {
    /// Rung index, from 0.
    pub rung: u64,
    /// Cells entering the rung.
    pub cells: u64,
    /// Tick budget each cell ran under.
    pub budget_ticks: u64,
    /// Cells that completed within the budget.
    pub finished: u64,
    /// Cells the watchdog aborted.
    pub stuck: u64,
    /// Cells quarantined on a real error.
    pub quarantined: u64,
}

/// One finalist configuration with its full objective vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRow {
    /// The knob-point key (`h<..>.s<..>.r<..>`).
    pub key: String,
    /// Applied `hot_threshold_cycles`.
    pub hot_threshold_cycles: u64,
    /// Applied `scan_period_cycles`.
    pub scan_period_cycles: u64,
    /// Applied `promo_rate_limit_bytes_per_sec`.
    pub promo_rate_bytes_per_sec: u64,
    /// Completion ticks from the final rung.
    pub ticks: u64,
    /// Promotion traffic from the final rung.
    pub promo_bytes: u64,
    /// Degraded-mode events under the fault plan; `None` when the
    /// robustness re-run did not finish (stuck or quarantined), which
    /// excludes the row from the front.
    pub degraded: Option<u64>,
    /// Whether the row is on the Pareto front.
    pub on_front: bool,
    /// Whether the row strictly dominates the default knobs on
    /// (ticks, promotion bytes).
    pub beats_default: bool,
}

/// The complete, deterministic output of one tuner search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneReport {
    /// Workload name (`bc_kron` style).
    pub workload: String,
    /// Grid name (`tiny`/`paper`).
    pub grid: String,
    /// Search seed (tie-breaks and the fault plan).
    pub seed: u64,
    /// Rung-0 tick budget.
    pub rung_budget: u64,
    /// Every rung, in order.
    pub rungs: Vec<RungSummary>,
    /// The default knob point's throughput score, when it finished at
    /// least one rung.
    pub default_score: Option<(u64, u64)>,
    /// Finalist rows, in ranked order (best throughput first).
    pub finalists: Vec<CellRow>,
}

impl TuneReport {
    /// Finalists on the Pareto front, in ranked order.
    #[must_use]
    pub fn front(&self) -> Vec<&CellRow> {
        self.finalists.iter().filter(|r| r.on_front).collect()
    }

    /// Finalists strictly dominating the default knobs.
    #[must_use]
    pub fn dominating_default(&self) -> Vec<&CellRow> {
        self.finalists.iter().filter(|r| r.beats_default).collect()
    }

    /// The report as one JSON object (hand-emitted, flat arrays).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"workload\":\"{}\",\"grid\":\"{}\",\"seed\":{},\"rung_budget\":{}",
            escape_json(&self.workload),
            escape_json(&self.grid),
            self.seed,
            self.rung_budget
        ));
        match self.default_score {
            Some((ticks, promo)) => {
                out.push_str(&format!(",\"default\":{{\"ticks\":{ticks},\"promo_bytes\":{promo}}}"))
            }
            None => out.push_str(",\"default\":null"),
        }
        out.push_str(",\"rungs\":[");
        for (i, r) in self.rungs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rung\":{},\"cells\":{},\"budget_ticks\":{},\"finished\":{},\"stuck\":{},\
                 \"quarantined\":{}}}",
                r.rung, r.cells, r.budget_ticks, r.finished, r.stuck, r.quarantined
            ));
        }
        out.push_str("],\"finalists\":[");
        for (i, c) in self.finalists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let degraded = c.degraded.map_or_else(|| "null".to_string(), |d| d.to_string());
            out.push_str(&format!(
                "{{\"key\":\"{}\",\"hot_threshold_cycles\":{},\"scan_period_cycles\":{},\
                 \"promo_rate_bytes_per_sec\":{},\"ticks\":{},\"promo_bytes\":{},\
                 \"degraded\":{},\"on_front\":{},\"beats_default\":{}}}",
                escape_json(&c.key),
                c.hot_threshold_cycles,
                c.scan_period_cycles,
                c.promo_rate_bytes_per_sec,
                c.ticks,
                c.promo_bytes,
                degraded,
                c.on_front,
                c.beats_default
            ));
        }
        out.push_str("]}");
        out
    }

    /// The finalist table as CSV (header + one row per finalist).
    #[must_use]
    pub fn to_csv(&self) -> String {
        self.table().to_csv()
    }

    /// Renders the search summary and finalist table for stdout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "tune {} | grid {} ({} cells) | seed {} | rung-0 budget {} ticks\n",
            self.workload,
            self.grid,
            self.rungs.first().map_or(0, |r| r.cells),
            self.seed,
            self.rung_budget
        ));
        for r in &self.rungs {
            out.push_str(&format!(
                "  rung {}: {} cells @ {} ticks -> {} finished, {} stuck, {} quarantined\n",
                r.rung, r.cells, r.budget_ticks, r.finished, r.stuck, r.quarantined
            ));
        }
        match self.default_score {
            Some((ticks, promo)) => out.push_str(&format!(
                "default knobs (h1.s1.r1): {ticks} ticks, {promo} promo bytes\n"
            )),
            None => out.push_str("default knobs (h1.s1.r1): never finished a rung\n"),
        }
        out.push_str(&self.table().render());
        out.push_str(&format!(
            "pareto front: {} of {} finalists; {} strictly dominate the default knobs\n",
            self.front().len(),
            self.finalists.len(),
            self.dominating_default().len()
        ));
        out
    }

    /// Writes `to_json()` to `path` atomically.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the atomic writer.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        let mut text = self.to_json();
        text.push('\n');
        atomic_write(path, text.as_bytes())
    }

    /// Writes `to_csv()` to `path` atomically.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the atomic writer.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        atomic_write(path, self.to_csv().as_bytes())
    }

    fn table(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "config",
            "hot_cycles",
            "scan_cycles",
            "rate_B/s",
            "ticks",
            "promo_bytes",
            "degraded",
            "front",
            "beats_default",
        ]);
        for c in &self.finalists {
            t.row(vec![
                c.key.clone(),
                c.hot_threshold_cycles.to_string(),
                c.scan_period_cycles.to_string(),
                c.promo_rate_bytes_per_sec.to_string(),
                c.ticks.to_string(),
                c.promo_bytes.to_string(),
                c.degraded.map_or_else(|| "-".to_string(), |d| d.to_string()),
                if c.on_front { "*".to_string() } else { String::new() },
                if c.beats_default { "yes".to_string() } else { String::new() },
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TuneReport {
        TuneReport {
            workload: "bc_kron".to_string(),
            grid: "tiny".to_string(),
            seed: 42,
            rung_budget: 1000,
            rungs: vec![RungSummary {
                rung: 0,
                cells: 8,
                budget_ticks: 1000,
                finished: 7,
                stuck: 1,
                quarantined: 0,
            }],
            default_score: Some((500, 8192)),
            finalists: vec![
                CellRow {
                    key: "h1.s2.r1d2".to_string(),
                    hot_threshold_cycles: 100,
                    scan_period_cycles: 200,
                    promo_rate_bytes_per_sec: 4096,
                    ticks: 450,
                    promo_bytes: 4096,
                    degraded: Some(2),
                    on_front: true,
                    beats_default: true,
                },
                CellRow {
                    key: "h1.s1.r1".to_string(),
                    hot_threshold_cycles: 100,
                    scan_period_cycles: 100,
                    promo_rate_bytes_per_sec: 8192,
                    ticks: 500,
                    promo_bytes: 8192,
                    degraded: None,
                    on_front: false,
                    beats_default: false,
                },
            ],
        }
    }

    #[test]
    fn json_carries_every_field() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        for needle in [
            "\"workload\":\"bc_kron\"",
            "\"grid\":\"tiny\"",
            "\"default\":{\"ticks\":500,\"promo_bytes\":8192}",
            "\"rungs\":[{\"rung\":0,\"cells\":8,\"budget_ticks\":1000",
            "\"key\":\"h1.s2.r1d2\"",
            "\"degraded\":2",
            "\"degraded\":null",
            "\"beats_default\":true",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }

    #[test]
    fn csv_and_render_agree_on_rows() {
        let r = sample();
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 3, "header + 2 finalists");
        assert!(csv.lines().next().is_some_and(|h| h.starts_with("config,hot_cycles")));
        let text = r.render();
        assert!(text.contains("rung 0: 8 cells @ 1000 ticks"));
        assert!(text.contains("pareto front: 1 of 2 finalists; 1 strictly dominate"));
        assert!(text.contains("h1.s2.r1d2"));
    }

    #[test]
    fn accessors_filter_flags() {
        let r = sample();
        assert_eq!(r.front().len(), 1);
        assert_eq!(r.dominating_default().len(), 1);
        assert_eq!(r.front()[0].key, "h1.s2.r1d2");
    }

    #[test]
    fn missing_default_renders_as_null() {
        let mut r = sample();
        r.default_score = None;
        assert!(r.to_json().contains("\"default\":null"));
        assert!(r.render().contains("never finished a rung"));
    }
}
