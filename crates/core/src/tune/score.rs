//! Cell execution and the journaled score payload codec.
//!
//! Every tuner cell runs one full workload and serializes its score
//! into the journal payload, so a resumed search re-reads scores
//! instead of re-running workloads. Payloads are tiny `k=v`
//! semicolon-joined strings: trivially stable, greppable in the
//! journal, and free of any JSON-escaping concerns.
//!
//! A *stuck* run (the tick-budget watchdog fired) is encoded as a
//! successful payload, not a cell failure: the watchdog is
//! deterministic, so retrying the cell would burn the whole budget
//! again and produce the same verdict. Only genuine configuration or
//! run errors become [`CellError`]s (and therefore quarantine).

use crate::config::MachineConfig;
use crate::error::{CoreError, RunError};
use crate::journal::{CellError, FailureClass};
use crate::runner::run_workload;
use crate::workload::WorkloadConfig;
use tiersim_mem::PAGE_SIZE;

/// A throughput score from one search cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellScore {
    /// The run completed within its rung budget. `ticks` is the true
    /// completion count — a pure function of the configuration,
    /// independent of the budget that bounded it — so finished scores
    /// are comparable across rungs.
    Finished {
        /// OS engine ticks to completion (lower is better).
        ticks: u64,
        /// Promotion traffic: `pgpromote_success * PAGE_SIZE` (lower is
        /// better).
        promo_bytes: u64,
    },
    /// The watchdog fired: the run needs more than `budget` ticks.
    Stuck {
        /// The rung budget that was exceeded.
        budget: u64,
    },
}

/// A robustness score: the finalist re-run under the fault-injection
/// plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobustScore {
    /// The faulted run completed.
    Finished {
        /// Degraded-mode events: failed migrations + DRAM allocation
        /// fallbacks + injected reclaim stalls (lower is better).
        degraded: u64,
        /// OS engine ticks to completion under faults.
        ticks: u64,
    },
    /// The faulted run blew its (doubled) budget.
    Stuck {
        /// The budget that was exceeded.
        budget: u64,
    },
}

impl CellScore {
    /// Serializes for the journal payload.
    #[must_use]
    pub fn encode(self) -> String {
        match self {
            CellScore::Finished { ticks, promo_bytes } => {
                format!("finished;ticks={ticks};promo_bytes={promo_bytes}")
            }
            CellScore::Stuck { budget } => format!("stuck;budget={budget}"),
        }
    }

    /// Parses a journal payload back; `None` on anything this codec
    /// never wrote (a corrupt or foreign journal).
    #[must_use]
    pub fn decode(payload: &str) -> Option<CellScore> {
        let (tag, rest) = payload.split_once(';')?;
        match tag {
            "finished" => Some(CellScore::Finished {
                ticks: field(rest, "ticks")?,
                promo_bytes: field(rest, "promo_bytes")?,
            }),
            "stuck" => Some(CellScore::Stuck { budget: field(rest, "budget")? }),
            _ => None,
        }
    }
}

impl RobustScore {
    /// Serializes for the journal payload.
    #[must_use]
    pub fn encode(self) -> String {
        match self {
            RobustScore::Finished { degraded, ticks } => {
                format!("robust;degraded={degraded};ticks={ticks}")
            }
            RobustScore::Stuck { budget } => format!("robust_stuck;budget={budget}"),
        }
    }

    /// Parses a journal payload back; `None` on unknown layouts.
    #[must_use]
    pub fn decode(payload: &str) -> Option<RobustScore> {
        let (tag, rest) = payload.split_once(';')?;
        match tag {
            "robust" => Some(RobustScore::Finished {
                degraded: field(rest, "degraded")?,
                ticks: field(rest, "ticks")?,
            }),
            "robust_stuck" => Some(RobustScore::Stuck { budget: field(rest, "budget")? }),
            _ => None,
        }
    }
}

/// Finds `key=value` in a semicolon-joined list and parses the value.
fn field(kvs: &str, key: &str) -> Option<u64> {
    kvs.split(';').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        if k == key {
            v.parse().ok()
        } else {
            None
        }
    })
}

/// Classifies a run failure for the journal: the deterministic watchdog
/// is handled by the callers (it is a score, not a failure), everything
/// else is a plain error.
fn cell_error(e: &CoreError) -> CellError {
    CellError { class: FailureClass::Error, message: e.to_string() }
}

/// Runs one throughput cell: the workload under `cfg`, scored on
/// completion ticks and promotion traffic.
///
/// # Errors
///
/// [`CellError`] on configuration or run errors; a stuck run is an
/// `Ok` payload (see the module docs).
pub fn run_score_cell(cfg: &MachineConfig, w: &WorkloadConfig) -> Result<String, CellError> {
    match run_workload(cfg.clone(), *w) {
        Ok(r) => Ok(CellScore::Finished {
            ticks: r.os_ticks,
            promo_bytes: r.counters.pgpromote_success.saturating_mul(PAGE_SIZE),
        }
        .encode()),
        Err(CoreError::Run(RunError::Stuck { budget, .. })) => {
            Ok(CellScore::Stuck { budget }.encode())
        }
        Err(e) => Err(cell_error(&e)),
    }
}

/// Runs one robustness cell: the workload under `cfg` (which carries
/// the fault plan), scored on degraded-mode events.
///
/// # Errors
///
/// [`CellError`] on configuration or run errors.
pub fn run_robust_cell(cfg: &MachineConfig, w: &WorkloadConfig) -> Result<String, CellError> {
    match run_workload(cfg.clone(), *w) {
        Ok(r) => {
            let degraded = r
                .counters
                .pgmigrate_fail
                .saturating_add(r.fault_stats.dram_alloc_failures)
                .saturating_add(r.fault_stats.reclaim_stalls);
            Ok(RobustScore::Finished { degraded, ticks: r.os_ticks }.encode())
        }
        Err(CoreError::Run(RunError::Stuck { budget, .. })) => {
            Ok(RobustScore::Stuck { budget }.encode())
        }
        Err(e) => Err(cell_error(&e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_codec_roundtrips() {
        for score in [
            CellScore::Finished { ticks: 0, promo_bytes: 0 },
            CellScore::Finished { ticks: u64::MAX, promo_bytes: 4096 },
            CellScore::Stuck { budget: 12345 },
        ] {
            assert_eq!(CellScore::decode(&score.encode()), Some(score));
        }
        for score in
            [RobustScore::Finished { degraded: 7, ticks: 99 }, RobustScore::Stuck { budget: 1 }]
        {
            assert_eq!(RobustScore::decode(&score.encode()), Some(score));
        }
    }

    #[test]
    fn codecs_reject_foreign_payloads() {
        for bad in ["", "garbage", "finished", "finished;ticks=x;promo_bytes=1", "stuck;b=1"] {
            assert_eq!(CellScore::decode(bad), None, "{bad:?}");
        }
        assert_eq!(RobustScore::decode("finished;ticks=1;promo_bytes=1"), None);
        assert_eq!(CellScore::decode("robust;degraded=1;ticks=1"), None);
    }

    proptest::proptest! {
        #[test]
        fn codec_roundtrip_holds_for_all_values(t in 0u64..u64::MAX, p in 0u64..u64::MAX) {
            let s = CellScore::Finished { ticks: t, promo_bytes: p };
            proptest::prop_assert_eq!(CellScore::decode(&s.encode()), Some(s));
            let r = RobustScore::Finished { degraded: p, ticks: t };
            proptest::prop_assert_eq!(RobustScore::decode(&r.encode()), Some(r));
        }
    }
}
