//! Workload definitions: the paper's kernel × dataset grid.

use core::fmt;

/// Graph kernel to run (the paper's BC/BFS/CC plus PR/SSSP extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Kernel {
    /// Betweenness centrality (Brandes).
    Bc,
    /// Breadth-first search (direction-optimizing).
    Bfs,
    /// Connected components (Shiloach–Vishkin, whose full-edge scans
    /// match the paper's observed CC behavior).
    Cc,
    /// Connected components (Afforest, the modern GAPBS default;
    /// extension).
    CcAff,
    /// PageRank (extension; not in the paper's workload set).
    Pr,
    /// Delta-stepping SSSP (extension).
    Sssp,
    /// Triangle counting over sorted adjacency lists (extension).
    Tc,
}

impl Kernel {
    /// The paper's three kernels.
    pub const PAPER: [Kernel; 3] = [Kernel::Bc, Kernel::Bfs, Kernel::Cc];

    /// Short name as used in the paper's workload labels.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Bc => "bc",
            Kernel::Bfs => "bfs",
            Kernel::Cc => "cc",
            Kernel::CcAff => "cc_aff",
            Kernel::Pr => "pr",
            Kernel::Sssp => "sssp",
            Kernel::Tc => "tc",
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Input dataset (GAPBS synthetic generators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Dataset {
    /// Kronecker/RMAT graph (GAPBS `-g`).
    Kron,
    /// Uniform random graph (GAPBS `-u`).
    Urand,
    /// 2D-lattice "road-like" graph (extension): strong spatial locality,
    /// the contrast to the paper's irregular inputs. The paper excluded
    /// the real `road` dataset only for its small footprint.
    Road,
}

impl Dataset {
    /// Both datasets the paper uses (`Road` is an extension, not part of
    /// the paper grid).
    pub const ALL: [Dataset; 2] = [Dataset::Kron, Dataset::Urand];

    /// Short name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Kron => "kron",
            Dataset::Urand => "urand",
            Dataset::Road => "road",
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the graph reaches memory at run start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LoadMode {
    /// Read a pre-built serialized CSR (`.sg`) through the page cache and
    /// copy it out — the paper artifact's flow (`converter` runs offline).
    #[default]
    SgFile,
    /// Read a raw edge-list file and build the CSR in-process (GAPBS `-g`/
    /// `-u` flow with an explicit build phase); kept as an ablation.
    GenerateAndBuild,
}

/// One workload: kernel, dataset, size and trial parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadConfig {
    /// The kernel.
    pub kernel: Kernel,
    /// The dataset generator.
    pub dataset: Dataset,
    /// Graph scale: `2^scale` vertices (paper: 30/31; scaled default 18).
    pub scale: u32,
    /// Average degree (GAPBS `-k`, default 16).
    pub degree: usize,
    /// Number of kernel trials (BFS/SSSP sources, BC/CC repetitions).
    pub trials: usize,
    /// RNG seed for generation and source picking.
    pub seed: u64,
    /// How the graph is loaded.
    pub load: LoadMode,
}

impl WorkloadConfig {
    /// Creates a workload with the scaled experiment defaults
    /// (scale 18, degree 16, 4 trials, `.sg` load).
    pub fn new(kernel: Kernel, dataset: Dataset) -> Self {
        WorkloadConfig {
            kernel,
            dataset,
            scale: 18,
            degree: 16,
            trials: 4,
            seed: 20220917,
            load: LoadMode::SgFile,
        }
    }

    /// Sets the scale (consuming builder style).
    #[must_use]
    pub fn scale(mut self, scale: u32) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the trial count.
    #[must_use]
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The paper's workload label, e.g. `"bc_kron"`.
    pub fn name(&self) -> String {
        format!("{}_{}", self.kernel, self.dataset)
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        1usize << self.scale
    }

    /// Number of generated (directed) edges.
    pub fn num_edges(&self) -> usize {
        match self.dataset {
            // A w×w lattice has 2·w·(w−1) < 2n edges.
            Dataset::Road => 2 * self.num_nodes(),
            _ => self.degree << self.scale,
        }
    }

    /// Rough peak application footprint in bytes (build phase: edge list
    /// + CSR + builder temporaries).
    pub fn peak_app_bytes(&self) -> u64 {
        let n = self.num_nodes() as u64;
        let m = self.num_edges() as u64;
        // Build-phase peak: edge list (8m) + neighbors (2m × 4) + index,
        // degrees, cursor (8n each), plus kernel arrays (~40n).
        16 * m + 64 * n
    }

    /// Rough steady-state application footprint in bytes: the CSR plus the
    /// kernel's working arrays that stay live through the trials. The
    /// scaled machine sizes DRAM below *this* (see
    /// [`MachineConfig::scaled_default`]), reproducing the paper's setup
    /// where the live working set exceeds DRAM for the entire execution.
    ///
    /// [`MachineConfig::scaled_default`]: crate::MachineConfig::scaled_default
    pub fn steady_app_bytes(&self) -> u64 {
        let n = self.num_nodes() as u64;
        let m = self.num_edges() as u64;
        // Symmetrized neighbors (2m × 4) + index (8n) + kernel arrays
        // (BC's five arrays are the largest at ~36n; use 40n).
        8 * m + 48 * n
    }

    /// The six paper workloads at the given scale/trials.
    pub fn paper_grid(scale: u32, trials: usize) -> Vec<WorkloadConfig> {
        let mut v = Vec::new();
        for kernel in Kernel::PAPER {
            for dataset in Dataset::ALL {
                v.push(WorkloadConfig::new(kernel, dataset).scale(scale).trials(trials));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_labels() {
        let w = WorkloadConfig::new(Kernel::Bc, Dataset::Kron);
        assert_eq!(w.name(), "bc_kron");
        assert_eq!(WorkloadConfig::new(Kernel::Cc, Dataset::Urand).name(), "cc_urand");
    }

    #[test]
    fn grid_has_six_workloads() {
        let grid = WorkloadConfig::paper_grid(12, 2);
        assert_eq!(grid.len(), 6);
        let names: Vec<String> = grid.iter().map(|w| w.name()).collect();
        assert!(names.contains(&"bfs_urand".to_string()));
        assert!(grid.iter().all(|w| w.scale == 12 && w.trials == 2));
    }

    #[test]
    fn footprint_grows_with_scale() {
        let small = WorkloadConfig::new(Kernel::Bfs, Dataset::Kron).scale(10);
        let big = WorkloadConfig::new(Kernel::Bfs, Dataset::Kron).scale(14);
        assert!(big.peak_app_bytes() > 8 * small.peak_app_bytes());
    }
}
