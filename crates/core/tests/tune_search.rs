//! End-to-end tuner-search invariants: completion, resume replay,
//! `--jobs` byte-identity, and kill/resume byte-identity at every
//! journal append position.
//!
//! These run the tiny grid on a deliberately small testbed: the scores
//! are degenerate there (runs finish inside one dilated scan period),
//! which is exactly what makes the *mechanical* invariants cheap to
//! prove — ranking falls through to the seeded tie-break, every cell is
//! fast, and byte-identity still covers the full report pipeline.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use tiersim_core::journal::{KillMode, KillSpec, RunnerOptions};
use tiersim_core::tune::{run_tune, TuneConfig, TuneError, TuneOutcome};
use tiersim_core::{Dataset, ExperimentConfig, Kernel};

/// A scratch journal path unique to this test.
fn scratch(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tiersim-tune-{tag}-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// The mechanics testbed: tiny grid, small graph, two finalists.
fn tiny_cfg() -> TuneConfig {
    let experiment = ExperimentConfig {
        scale: 11,
        degree: 8,
        trials: 1,
        jobs: 1,
        ..ExperimentConfig::default()
    };
    TuneConfig {
        rung_budget: 2000,
        finalists: 2,
        ..TuneConfig::new(experiment, Kernel::Bc, Dataset::Kron)
    }
}

/// Canonical bytes of everything a search emits.
fn emitted(out: &TuneOutcome) -> String {
    format!("{}\n---\n{}\n---\n{}", out.report.to_json(), out.report.to_csv(), out.report.render())
}

/// Tiny-grid shape: 8 cells halve 8 → 4 → 2, then 2 robustness runs.
const EXPECTED_EXECUTIONS: u64 = 8 + 4 + 2 + 2;

#[test]
fn search_completes_with_full_report() {
    let path = scratch("complete");
    let out = run_tune(&tiny_cfg(), &path, RunnerOptions::default()).unwrap();
    assert_eq!(out.executed, EXPECTED_EXECUTIONS);
    assert_eq!(out.replayed, 0);
    assert_eq!(out.report.rungs.len(), 3, "8 -> 4 -> 2 takes three rungs");
    assert_eq!(out.report.finalists.len(), 2);
    assert!(out.report.default_score.is_some(), "the default point must finish rung 0");
    assert!(!out.report.front().is_empty(), "a finished finalist set always has a front");
    for row in &out.report.finalists {
        assert!(row.degraded.is_some(), "{}: robustness re-run must have finished", row.key);
    }
    // The driver trace carries the lifecycle events.
    let names: Vec<&str> = out.trace.records.iter().map(|r| r.event.name()).collect();
    assert!(names.contains(&"rung_start"));
    assert!(names.contains(&"cell_scored"));
    assert!(names.contains(&"pareto_update"));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn resume_replays_scores_without_rerunning_workloads() {
    let path = scratch("resume");
    let cfg = tiny_cfg();
    let first = run_tune(&cfg, &path, RunnerOptions::default()).unwrap();
    assert_eq!(first.executed, EXPECTED_EXECUTIONS);
    let second = run_tune(&cfg, &path, RunnerOptions::default()).unwrap();
    assert_eq!(second.executed, 0, "a completed journal replays every cell");
    assert_eq!(second.replayed, EXPECTED_EXECUTIONS);
    assert_eq!(emitted(&second), emitted(&first), "replayed report must be byte-identical");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn parallel_jobs_produce_byte_identical_reports() {
    let cfg = tiny_cfg();
    let serial_path = scratch("jobs1");
    let serial =
        run_tune(&cfg, &serial_path, RunnerOptions { jobs: 1, ..RunnerOptions::default() })
            .unwrap();
    let parallel_path = scratch("jobs4");
    let parallel =
        run_tune(&cfg, &parallel_path, RunnerOptions { jobs: 4, ..RunnerOptions::default() })
            .unwrap();
    assert_eq!(parallel.executed, EXPECTED_EXECUTIONS);
    assert_eq!(emitted(&parallel), emitted(&serial));
    std::fs::remove_file(&serial_path).unwrap();
    std::fs::remove_file(&parallel_path).unwrap();
}

#[test]
fn kill_and_resume_at_every_append_is_byte_identical() {
    let cfg = tiny_cfg();
    let baseline_path = scratch("kill-baseline");
    let baseline = run_tune(&cfg, &baseline_path, RunnerOptions::default()).unwrap();
    let baseline_bytes = emitted(&baseline);
    let total_appends = std::fs::read_to_string(&baseline_path).unwrap().lines().count() as u64;
    std::fs::remove_file(&baseline_path).unwrap();
    assert!(total_appends > EXPECTED_EXECUTIONS, "start + done per executed cell");

    for kill_at in 1..=total_appends {
        let path = scratch(&format!("kill-{kill_at}"));
        let kill = KillSpec {
            at_append: kill_at,
            torn: kill_at % 2 == 0, // alternate torn and clean kills
            mode: KillMode::Panic,
        };
        let opts = RunnerOptions { kill: Some(kill), ..RunnerOptions::default() };
        let died = catch_unwind(AssertUnwindSafe(|| run_tune(&cfg, &path, opts)));
        assert!(died.is_err(), "kill_at={kill_at} must abort the search");
        let resumed = run_tune(&cfg, &path, RunnerOptions::default()).unwrap();
        assert_eq!(
            resumed.executed + resumed.replayed,
            EXPECTED_EXECUTIONS,
            "kill_at={kill_at}: every cell replays xor executes on resume"
        );
        // The armed append itself dies (clean) or tears — it never lands
        // whole. Append 3 is the first cell's `done` record (after the
        // meta line and its `start`), so from kill_at = 4 on at least one
        // completed cell is durable and must replay, not re-run.
        if kill_at >= 4 {
            assert!(
                resumed.executed < EXPECTED_EXECUTIONS,
                "kill_at={kill_at}: a completed cell was re-executed"
            );
        }
        assert_eq!(
            emitted(&resumed),
            baseline_bytes,
            "kill_at={kill_at}: resumed report differs from the uninterrupted run"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn changed_search_parameters_reject_a_stale_journal() {
    let path = scratch("fingerprint");
    let cfg = tiny_cfg();
    run_tune(&cfg, &path, RunnerOptions::default()).unwrap();
    let reseeded = TuneConfig { seed: cfg.seed + 1, ..cfg };
    match run_tune(&reseeded, &path, RunnerOptions::default()) {
        Err(TuneError::Journal(_)) => {}
        other => panic!("expected a fingerprint mismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn zero_rung_budget_is_rejected() {
    let path = scratch("zero-budget");
    let cfg = TuneConfig { rung_budget: 0, ..tiny_cfg() };
    match run_tune(&cfg, &path, RunnerOptions::default()) {
        Err(TuneError::Invalid { what: "rung_budget", .. }) => {}
        other => panic!("expected an invalid-parameter error, got {other:?}"),
    }
}
