//! Betweenness centrality (Brandes algorithm, GAPBS `bc`).

use crate::builder::attribute_thread;
use crate::edgelist::NodeId;
use crate::sim::SimCsrGraph;
use tiersim_mem::{MemBackend, SimVec};

/// Runs Brandes betweenness centrality accumulated over `sources`,
/// charging the full access stream.
///
/// The per-source working set (`bc.depth`, `bc.sigma`, `bc.delta`,
/// `bc.stack`) plus the accumulated `bc.scores` are the mid-sized objects
/// of the paper's `bc_*` workloads; the dominant traffic remains the random
/// walks over `csr.neighbors`.
pub fn bc<B: MemBackend>(
    b: &mut B,
    g: &SimCsrGraph,
    sources: &[NodeId],
    threads: usize,
) -> SimVec<f64> {
    let n = g.num_nodes();
    let mut scores = SimVec::new(b, "bc.scores", n, 0.0f64);
    let mut depth = SimVec::new(b, "bc.depth", n, -1i32);
    let mut sigma = SimVec::new(b, "bc.sigma", n, 0.0f64);
    let mut delta = SimVec::new(b, "bc.delta", n, 0.0f64);
    let mut stack = SimVec::new(b, "bc.stack", n, 0 as NodeId);

    for &s in sources {
        // Reset the per-source arrays (sequential store sweeps, as GAPBS
        // does between iterations).
        depth.fill(b, -1);
        sigma.fill(b, 0.0);
        delta.fill(b, 0.0);

        depth.set(b, s as usize, 0);
        sigma.set(b, s as usize, 1.0);
        stack.set(b, 0, s);
        let mut stack_len = 1usize;
        let mut level_start = 0usize;

        // Forward phase: level-synchronous BFS counting shortest paths.
        while level_start < stack_len {
            let level_end = stack_len;
            for qi in level_start..level_end {
                attribute_thread(b, qi - level_start, level_end - level_start, threads);
                let u = stack.get(b, qi);
                let du = depth.get(b, u as usize);
                let (start, end) = g.neighbor_range(b, u);
                for i in start..end {
                    let v = g.neighbor(b, i) as usize;
                    let dv = depth.get(b, v);
                    if dv == -1 {
                        depth.set(b, v, du + 1);
                        stack.set(b, stack_len, v as NodeId);
                        stack_len += 1;
                        let su = sigma.get(b, u as usize);
                        sigma.update(b, v, |x| x + su);
                    } else if dv == du + 1 {
                        let su = sigma.get(b, u as usize);
                        sigma.update(b, v, |x| x + su);
                    }
                }
            }
            level_start = level_end;
        }

        // Backward phase: dependency accumulation in reverse visit order.
        for qi in (0..stack_len).rev() {
            attribute_thread(b, stack_len - 1 - qi, stack_len, threads);
            let w = stack.get(b, qi);
            let dw = depth.get(b, w as usize);
            let sw = sigma.get(b, w as usize);
            let delta_w = delta.get(b, w as usize);
            let (start, end) = g.neighbor_range(b, w);
            for i in start..end {
                let v = g.neighbor(b, i) as usize;
                if depth.get(b, v) == dw - 1 {
                    let sv = sigma.get(b, v);
                    delta.update(b, v, |x| x + sv / sw * (1.0 + delta_w));
                }
            }
            if w != s {
                scores.update(b, w as usize, |x| x + delta_w);
            }
        }
    }

    depth.into_host(b);
    sigma.into_host(b);
    delta.into_host(b);
    stack.into_host(b);
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_sim_csr;
    use crate::edgelist::EdgeList;
    use crate::generate::KroneckerGenerator;
    use crate::reference::bc_ref;
    use tiersim_mem::NullBackend;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()), "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn bc_matches_reference_on_path() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 2);
        let sources: Vec<NodeId> = (0..4).collect();
        let scores = bc(&mut b, &g, &sources, 2);
        assert_close(scores.host(), &bc_ref(&g.to_host_csr(), &sources));
    }

    #[test]
    fn bc_matches_reference_on_kron() {
        let el = KroneckerGenerator::new(7, 4).seed(5).generate();
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 4);
        let sources = [0u32, 3, 99];
        let scores = bc(&mut b, &g, &sources, 4);
        assert_close(scores.host(), &bc_ref(&g.to_host_csr(), &sources));
    }

    #[test]
    fn single_source_scores_source_zero() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 2)]);
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 1);
        let scores = bc(&mut b, &g, &[0], 1);
        assert_eq!(scores.host()[0], 0.0);
        assert!(scores.host()[1] > 0.0); // vertex 1 lies on 0→2
        assert_eq!(scores.host()[2], 0.0);
    }

    #[test]
    fn empty_sources_yields_zero_scores() {
        let el = EdgeList::new(3, vec![(0, 1)]);
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 1);
        let scores = bc(&mut b, &g, &[], 1);
        assert!(scores.host().iter().all(|&x| x == 0.0));
    }
}
