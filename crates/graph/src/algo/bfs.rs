//! Direction-optimizing breadth-first search (GAPBS `bfs`).

use crate::builder::attribute_thread;
use crate::edgelist::NodeId;
use crate::sim::SimCsrGraph;
use tiersim_mem::{MemBackend, SimVec};

/// Tuning knobs of the direction-optimizing heuristic (GAPBS defaults:
/// α = 15, β = 18).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsParams {
    /// Switch top-down → bottom-up when the frontier's outgoing edges
    /// exceed `edges / alpha`. Larger α switches sooner; `alpha == 1`
    /// effectively disables bottom-up.
    pub alpha: usize,
    /// Switch bottom-up → top-down when the awake count drops below
    /// `nodes / beta`.
    pub beta: usize,
}

impl Default for BfsParams {
    fn default() -> Self {
        BfsParams { alpha: 15, beta: 18 }
    }
}

/// Result of a BFS run.
#[derive(Debug)]
pub struct BfsResult {
    /// Distance from the source per vertex; `-1` = unreachable.
    pub dist: SimVec<i32>,
    /// Number of top-down steps executed.
    pub top_down_steps: usize,
    /// Number of bottom-up steps executed.
    pub bottom_up_steps: usize,
}

/// Runs direction-optimizing BFS from `source`, charging the full access
/// stream (queue traffic, bitmap conversions, neighbor scans) to `b`.
///
/// The irregular top-down scatter and the sequential bottom-up scans are
/// exactly the access mix that produces the paper's single-touch-dominated
/// page profile for `bfs_*` workloads.
pub fn bfs<B: MemBackend>(
    b: &mut B,
    g: &SimCsrGraph,
    source: NodeId,
    threads: usize,
    params: BfsParams,
) -> BfsResult {
    let n = g.num_nodes();
    let m = g.num_edges();
    let mut dist = SimVec::new(b, "bfs.dist", n, -1i32);
    let mut queue = SimVec::new(b, "bfs.queue", n, 0 as NodeId);
    let mut next_queue = SimVec::new(b, "bfs.queue_next", n, 0 as NodeId);
    let mut front_bm = SimVec::new(b, "bfs.bitmap_front", n, 0u8);
    let mut next_bm = SimVec::new(b, "bfs.bitmap_next", n, 0u8);

    dist.set(b, source as usize, 0);
    queue.set(b, 0, source);
    let mut frontier_len = 1usize;
    let mut depth = 0i32;
    let mut scout_count = g.degree(b, source);
    let mut bottom_up = false;
    let (mut td_steps, mut bu_steps) = (0usize, 0usize);

    while frontier_len > 0 {
        depth += 1;
        if !bottom_up && scout_count > m / params.alpha.max(1) {
            // Convert queue → bitmap and switch to bottom-up.
            for i in 0..frontier_len {
                let u = queue.get(b, i);
                front_bm.set(b, u as usize, 1);
            }
            bottom_up = true;
        }
        if bottom_up {
            bu_steps += 1;
            let mut awake_count = 0usize;
            for v in 0..n {
                attribute_thread(b, v, n, threads);
                if dist.get(b, v) != -1 {
                    continue;
                }
                let (start, end) = g.neighbor_range(b, v as NodeId);
                for i in start..end {
                    let u = g.neighbor(b, i);
                    if front_bm.get(b, u as usize) == 1 {
                        dist.set(b, v, depth);
                        next_bm.set(b, v, 1);
                        awake_count += 1;
                        break;
                    }
                }
            }
            // Swap bitmaps; clear the new "next".
            core::mem::swap(&mut front_bm, &mut next_bm);
            for v in 0..n {
                next_bm.set(b, v, 0);
            }
            frontier_len = awake_count;
            if awake_count < n / params.beta.max(1) {
                // Convert bitmap → queue and return to top-down.
                let mut len = 0usize;
                for v in 0..n {
                    attribute_thread(b, v, n, threads);
                    if front_bm.get(b, v) == 1 {
                        queue.set(b, len, v as NodeId);
                        front_bm.set(b, v, 0);
                        len += 1;
                    }
                }
                frontier_len = len;
                bottom_up = false;
                scout_count = 0;
            }
        } else {
            td_steps += 1;
            let mut next_len = 0usize;
            scout_count = 0;
            for i in 0..frontier_len {
                attribute_thread(b, i, frontier_len, threads);
                let u = queue.get(b, i);
                let (start, end) = g.neighbor_range(b, u);
                for j in start..end {
                    let v = g.neighbor(b, j);
                    if dist.get(b, v as usize) == -1 {
                        dist.set(b, v as usize, depth);
                        next_queue.set(b, next_len, v);
                        next_len += 1;
                        scout_count += g.degree(b, v);
                    }
                }
            }
            core::mem::swap(&mut queue, &mut next_queue);
            frontier_len = next_len;
        }
    }

    queue.into_host(b);
    next_queue.into_host(b);
    front_bm.into_host(b);
    next_bm.into_host(b);
    BfsResult { dist, top_down_steps: td_steps, bottom_up_steps: bu_steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_sim_csr;
    use crate::edgelist::EdgeList;
    use crate::generate::UniformGenerator;
    use crate::reference::bfs_ref;
    use tiersim_mem::NullBackend;

    #[test]
    fn bfs_matches_reference_on_path() {
        let el = EdgeList::new(5, vec![(0, 1), (1, 2), (2, 3)]);
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 2);
        let r = bfs(&mut b, &g, 0, 2, BfsParams::default());
        assert_eq!(r.dist.host(), bfs_ref(&g.to_host_csr(), 0).as_slice());
    }

    #[test]
    fn bfs_matches_reference_on_random_graph() {
        let el = UniformGenerator::new(8, 4).seed(11).generate();
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 4);
        let host = g.to_host_csr();
        for source in [0u32, 17, 200] {
            let r = bfs(&mut b, &g, source, 4, BfsParams::default());
            assert_eq!(r.dist.host(), bfs_ref(&host, source).as_slice(), "source {source}");
        }
    }

    #[test]
    fn dense_graph_uses_bottom_up() {
        // A dense random graph triggers the direction switch.
        let el = UniformGenerator::new(7, 24).seed(3).generate();
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 4);
        let r = bfs(&mut b, &g, 0, 4, BfsParams::default());
        assert!(r.bottom_up_steps > 0, "expected bottom-up steps");
        assert_eq!(r.dist.host(), bfs_ref(&g.to_host_csr(), 0).as_slice());
    }

    #[test]
    fn top_down_only_when_alpha_is_one() {
        // alpha = 1 puts the switch threshold at the full edge count,
        // which the scout count can never exceed.
        let el = UniformGenerator::new(7, 24).seed(3).generate();
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 4);
        let r = bfs(&mut b, &g, 0, 4, BfsParams { alpha: 1, beta: 18 });
        assert_eq!(r.bottom_up_steps, 0);
        assert_eq!(r.dist.host(), bfs_ref(&g.to_host_csr(), 0).as_slice());
    }

    #[test]
    fn isolated_source_terminates() {
        let el = EdgeList::new(3, vec![(1, 2)]);
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 1);
        let r = bfs(&mut b, &g, 0, 1, BfsParams::default());
        assert_eq!(r.dist.host(), &[0, -1, -1]);
    }
}
