//! Connected components: Shiloach–Vishkin (GAPBS `cc_sv`) and Afforest
//! (GAPBS default `cc`).

use crate::builder::attribute_thread;
use crate::edgelist::NodeId;
use crate::sim::SimCsrGraph;
use std::collections::HashMap;
use tiersim_mem::{MemBackend, SimVec};

/// Shiloach–Vishkin connected components: alternating hook and
/// pointer-jump (compress) passes over the full edge set until no label
/// changes — the heavy streaming+scatter mix of the paper's `cc_*`
/// workloads.
pub fn cc_sv<B: MemBackend>(b: &mut B, g: &SimCsrGraph, threads: usize) -> SimVec<NodeId> {
    let n = g.num_nodes();
    let mut comp = SimVec::new(b, "cc.comp", n, 0 as NodeId);
    for v in 0..n {
        comp.set(b, v, v as NodeId);
    }
    let mut changed = true;
    while changed {
        changed = false;
        // Hook: for every edge, pull the larger root down to the smaller.
        for u in 0..n {
            attribute_thread(b, u, n, threads);
            let (start, end) = g.neighbor_range(b, u as NodeId);
            for i in start..end {
                let v = g.neighbor(b, i) as usize;
                let cu = comp.get(b, u);
                let cv = comp.get(b, v);
                if cu < cv && cv == comp.get(b, cv as usize) as NodeId {
                    comp.set(b, cv as usize, cu);
                    changed = true;
                }
            }
        }
        // Compress: pointer jumping.
        for v in 0..n {
            attribute_thread(b, v, n, threads);
            loop {
                let cv = comp.get(b, v);
                let ccv = comp.get(b, cv as usize);
                if cv == ccv {
                    break;
                }
                comp.set(b, v, ccv);
            }
        }
    }
    comp
}

/// Links `u` and `v` by repeatedly hooking the larger root under the
/// smaller (GAPBS `Link`).
fn link<B: MemBackend>(b: &mut B, comp: &mut SimVec<NodeId>, u: NodeId, v: NodeId) {
    let mut p1 = comp.get(b, u as usize);
    let mut p2 = comp.get(b, v as usize);
    while p1 != p2 {
        let (high, low) = if p1 > p2 { (p1, p2) } else { (p2, p1) };
        let p_high = comp.get(b, high as usize);
        if p_high == low {
            break;
        }
        if p_high == high {
            comp.set(b, high as usize, low);
            break;
        }
        p1 = comp.get(b, p_high as usize);
        p2 = low;
    }
}

/// Full pointer-jump compression pass (GAPBS `Compress`).
fn compress<B: MemBackend>(b: &mut B, comp: &mut SimVec<NodeId>, n: usize, threads: usize) {
    for v in 0..n {
        attribute_thread(b, v, n, threads);
        loop {
            let cv = comp.get(b, v);
            let ccv = comp.get(b, cv as usize);
            if cv == ccv {
                break;
            }
            comp.set(b, v, ccv);
        }
    }
}

/// Afforest connected components: neighbor-sampled subgraph linking, then
/// skipping the largest intermediate component when finalizing — the
/// sampling optimization GAPBS uses by default.
pub fn cc_afforest<B: MemBackend>(
    b: &mut B,
    g: &SimCsrGraph,
    neighbor_rounds: usize,
    threads: usize,
) -> SimVec<NodeId> {
    let n = g.num_nodes();
    let mut comp = SimVec::new(b, "cc.comp", n, 0 as NodeId);
    for v in 0..n {
        comp.set(b, v, v as NodeId);
    }
    // Phase 1: link each vertex to its first `neighbor_rounds` neighbors.
    for r in 0..neighbor_rounds {
        for u in 0..n {
            attribute_thread(b, u, n, threads);
            let (start, end) = g.neighbor_range(b, u as NodeId);
            if start + r < end {
                let v = g.neighbor(b, start + r);
                link(b, &mut comp, u as NodeId, v);
            }
        }
        compress(b, &mut comp, n, threads);
    }
    // Phase 2: sample to find the most common intermediate component.
    let sample_size = 1024.min(n.max(1));
    let mut counts: HashMap<NodeId, usize> = HashMap::new();
    for k in 0..sample_size {
        let v = (k * 29 + 7) % n.max(1);
        *counts.entry(comp.get(b, v)).or_insert(0) += 1;
    }
    let biggest = counts.into_iter().max_by_key(|&(_, c)| c).map(|(c, _)| c).unwrap_or(0);
    // Phase 3: finish the remaining vertices' full neighbor lists.
    for u in 0..n {
        attribute_thread(b, u, n, threads);
        if comp.get(b, u) == biggest {
            continue;
        }
        let (start, end) = g.neighbor_range(b, u as NodeId);
        for i in (start + neighbor_rounds.min(end - start))..end {
            let v = g.neighbor(b, i);
            link(b, &mut comp, u as NodeId, v);
        }
    }
    compress(b, &mut comp, n, threads);
    comp
}

/// Normalizes component labels so every vertex carries the minimum vertex
/// id of its component (host-side helper for verification).
pub fn canonicalize(labels: &[NodeId]) -> Vec<NodeId> {
    let mut min_of: HashMap<NodeId, NodeId> = HashMap::new();
    for (v, &c) in labels.iter().enumerate() {
        let e = min_of.entry(c).or_insert(v as NodeId);
        *e = (*e).min(v as NodeId);
    }
    labels.iter().map(|c| min_of[c]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_sim_csr;
    use crate::edgelist::EdgeList;
    use crate::generate::{KroneckerGenerator, UniformGenerator};
    use crate::reference::cc_ref;
    use tiersim_mem::NullBackend;

    fn check_partition(el: &EdgeList) {
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, el, true, 3);
        let expected = cc_ref(&g.to_host_csr());
        let sv = cc_sv(&mut b, &g, 3);
        assert_eq!(canonicalize(sv.host()), expected, "shiloach-vishkin");
        let aff = cc_afforest(&mut b, &g, 2, 3);
        assert_eq!(canonicalize(aff.host()), expected, "afforest");
    }

    #[test]
    fn components_on_two_islands() {
        check_partition(&EdgeList::new(7, vec![(0, 1), (1, 2), (4, 5), (5, 6)]));
    }

    #[test]
    fn components_on_kron() {
        check_partition(&KroneckerGenerator::new(7, 4).seed(9).generate());
    }

    #[test]
    fn components_on_urand() {
        check_partition(&UniformGenerator::new(7, 2).seed(9).generate());
    }

    #[test]
    fn singleton_graph() {
        let el = EdgeList::new(3, vec![]);
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 1);
        let sv = cc_sv(&mut b, &g, 1);
        assert_eq!(sv.host(), &[0, 1, 2]);
    }

    proptest::proptest! {
        #[test]
        fn prop_cc_equals_union_find(
            edges in proptest::collection::vec((0u32..24, 0u32..24), 0..120)
        ) {
            let el = EdgeList::new(24, edges);
            check_partition(&el);
        }
    }
}
