//! Simulated graph algorithms (the GAPBS kernels).

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod pr;
pub mod sssp;
pub mod tc;

pub use bc::bc;
pub use bfs::{bfs, BfsParams, BfsResult};
pub use cc::{canonicalize, cc_afforest, cc_sv};
pub use pr::{pr, PrParams};
pub use sssp::sssp;
pub use tc::tc;
