//! PageRank, pull variant (GAPBS `pr`).

use crate::builder::attribute_thread;
use crate::sim::SimCsrGraph;
use tiersim_mem::{MemBackend, SimVec};

/// PageRank parameters (GAPBS defaults: d = 0.85, tol = 1e-4, 20
/// iterations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrParams {
    /// Damping factor.
    pub damping: f64,
    /// L1-error convergence tolerance.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for PrParams {
    fn default() -> Self {
        PrParams { damping: 0.85, tolerance: 1e-4, max_iters: 20 }
    }
}

/// Runs pull-style PageRank, charging the full access stream
/// (`pr.scores`, `pr.contrib`, and the gather over `csr.neighbors`).
pub fn pr<B: MemBackend>(
    b: &mut B,
    g: &SimCsrGraph,
    params: PrParams,
    threads: usize,
) -> SimVec<f64> {
    let n = g.num_nodes();
    let base = (1.0 - params.damping) / n as f64;
    let mut scores = SimVec::new(b, "pr.scores", n, 1.0 / n as f64);
    let mut contrib = SimVec::new(b, "pr.contrib", n, 0.0f64);

    for _ in 0..params.max_iters {
        for u in 0..n {
            attribute_thread(b, u, n, threads);
            let deg = g.degree(b, u as u32);
            let s = scores.get(b, u);
            contrib.set(b, u, if deg > 0 { s / deg as f64 } else { 0.0 });
        }
        let mut err = 0.0;
        for u in 0..n {
            attribute_thread(b, u, n, threads);
            let (start, end) = g.neighbor_range(b, u as u32);
            let mut sum = 0.0;
            for i in start..end {
                let v = g.neighbor(b, i) as usize;
                sum += contrib.get(b, v);
            }
            let new = base + params.damping * sum;
            err += (new - scores.get(b, u)).abs();
            scores.set(b, u, new);
        }
        if err < params.tolerance {
            break;
        }
    }
    contrib.into_host(b);
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_sim_csr;
    use crate::edgelist::EdgeList;
    use crate::generate::KroneckerGenerator;
    use crate::reference::pr_ref;
    use tiersim_mem::NullBackend;

    #[test]
    fn pr_matches_reference() {
        let el = KroneckerGenerator::new(7, 4).seed(2).generate();
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 4);
        let p = PrParams::default();
        let sim = pr(&mut b, &g, p, 4);
        let host = pr_ref(&g.to_host_csr(), p.damping, p.tolerance, p.max_iters);
        for (i, (x, y)) in sim.host().iter().zip(&host).enumerate() {
            assert!((x - y).abs() < 1e-12, "score {i}: {x} vs {y}");
        }
    }

    #[test]
    fn ring_converges_to_uniform() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 1);
        let scores =
            pr(&mut b, &g, PrParams { max_iters: 100, tolerance: 1e-12, ..Default::default() }, 1);
        let first = scores.host()[0];
        assert!(scores.host().iter().all(|s| (s - first).abs() < 1e-9));
        let sum: f64 = scores.host().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn high_degree_vertex_scores_higher() {
        // Star: vertex 0 connected to all others.
        let el = EdgeList::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 1);
        let scores = pr(&mut b, &g, PrParams::default(), 1);
        assert!(scores.host()[0] > scores.host()[1]);
    }
}
