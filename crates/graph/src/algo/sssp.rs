//! Single-source shortest paths via delta-stepping (GAPBS `sssp`).

use crate::builder::attribute_thread;
use crate::edgelist::NodeId;
use crate::sim::SimCsrGraph;
use tiersim_mem::{MemBackend, SimVec};

/// Runs delta-stepping SSSP from `source` over `weights` (aligned with
/// the graph's neighbor array). Returns per-vertex distances
/// (`u64::MAX` = unreachable).
///
/// The distance array lives in simulated memory; the bucket structure is
/// host-side bookkeeping, mirroring GAPBS's thread-local bins whose
/// traffic is negligible next to the graph arrays.
///
/// # Panics
///
/// Panics if `weights` does not align with the neighbor array or `delta`
/// is zero.
pub fn sssp<B: MemBackend>(
    b: &mut B,
    g: &SimCsrGraph,
    weights: &SimVec<u32>,
    source: NodeId,
    delta: u64,
    threads: usize,
) -> SimVec<u64> {
    assert_eq!(weights.len(), g.num_edges(), "weights must align with neighbors");
    assert!(delta > 0, "delta must be positive");
    let n = g.num_nodes();
    let mut dist = SimVec::new(b, "sssp.dist", n, u64::MAX);
    let mut buckets: Vec<Vec<NodeId>> = Vec::new();

    let push = |buckets: &mut Vec<Vec<NodeId>>, d: u64, v: NodeId| {
        let idx = (d / delta) as usize;
        if idx >= buckets.len() {
            buckets.resize(idx + 1, Vec::new());
        }
        buckets[idx].push(v);
    };

    dist.set(b, source as usize, 0);
    push(&mut buckets, 0, source);

    let mut bi = 0usize;
    while bi < buckets.len() {
        // Settle the current bucket to a fixed point (light edges may
        // reinsert into it).
        while let Some(frontier) = {
            let bucket = &mut buckets[bi];
            if bucket.is_empty() {
                None
            } else {
                Some(std::mem::take(bucket))
            }
        } {
            for (k, &u) in frontier.iter().enumerate() {
                attribute_thread(b, k, frontier.len(), threads);
                let du = dist.get(b, u as usize);
                if du / delta < bi as u64 {
                    continue; // already settled in an earlier bucket
                }
                let (start, end) = g.neighbor_range(b, u);
                for i in start..end {
                    let v = g.neighbor(b, i);
                    let w = weights.get(b, i) as u64;
                    let nd = du + w;
                    if nd < dist.get(b, v as usize) {
                        dist.set(b, v as usize, nd);
                        push(&mut buckets, nd, v);
                    }
                }
            }
        }
        bi += 1;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_sim_csr, build_sim_weights};
    use crate::edgelist::EdgeList;
    use crate::generate::UniformGenerator;
    use crate::reference::sssp_ref;
    use tiersim_mem::NullBackend;

    #[test]
    fn sssp_matches_dijkstra_on_random_graph() {
        let el = UniformGenerator::new(7, 6).seed(21).generate();
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 3);
        let w = build_sim_weights(&mut b, &g, 3);
        let host = g.to_host_csr();
        for source in [0u32, 31, 77] {
            for delta in [1u64, 8, 64] {
                let d = sssp(&mut b, &g, &w, source, delta, 3);
                assert_eq!(
                    d.host(),
                    sssp_ref(&host, w.host(), source).as_slice(),
                    "source {source} delta {delta}"
                );
            }
        }
    }

    #[test]
    fn unreachable_stays_max() {
        let el = EdgeList::new(3, vec![(0, 1)]);
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 1);
        let w = build_sim_weights(&mut b, &g, 1);
        let d = sssp(&mut b, &g, &w, 0, 16, 1);
        assert_eq!(d.host()[2], u64::MAX);
        assert_eq!(d.host()[0], 0);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn zero_delta_rejected() {
        let el = EdgeList::new(2, vec![(0, 1)]);
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 1);
        let w = build_sim_weights(&mut b, &g, 1);
        let _ = sssp(&mut b, &g, &w, 0, 0, 1);
    }
}
