//! Triangle counting via sorted-adjacency merge intersection (GAPBS `tc`).

use crate::builder::attribute_thread;
use crate::sim::SimCsrGraph;
use tiersim_mem::MemBackend;

/// Counts triangles in an undirected graph with **sorted** neighbor
/// lists, charging the full access stream: each `u < v` edge triggers a
/// merge intersection of `adj(u)` and `adj(v)` counting common neighbors
/// `w > v`, so each triangle `u < v < w` is counted exactly once.
///
/// GAPBS sorts (and degree-relabels) adjacency lists in a preprocessing
/// step before timing; use [`CsrGraph::sort_neighbors`] on the host graph
/// before loading it into simulated memory.
///
/// [`CsrGraph::sort_neighbors`]: crate::CsrGraph::sort_neighbors
///
/// # Panics
///
/// Panics if any neighbor list is not sorted ascending (checked against
/// the host-side data before the simulated pass begins).
pub fn tc<B: MemBackend>(b: &mut B, g: &SimCsrGraph, threads: usize) -> u64 {
    let host = g.host_neighbors();
    let index = g.host_index();
    let n = g.num_nodes();
    for u in 0..n {
        let lst = &host[index[u] as usize..index[u + 1] as usize];
        assert!(lst.windows(2).all(|w| w[0] <= w[1]), "neighbors of {u} not sorted");
    }

    let mut total = 0u64;
    for u in 0..n {
        attribute_thread(b, u, n, threads);
        let (su, eu) = g.neighbor_range(b, u as u32);
        for i in su..eu {
            let v = g.neighbor(b, i);
            if (v as usize) <= u {
                continue;
            }
            // Merge adj(u) and adj(v), counting matches strictly above v.
            let (sv, ev) = g.neighbor_range(b, v);
            let (mut a, mut c) = (su, sv);
            let (mut wa, mut wc) = (None, None);
            while a < eu && c < ev {
                let x = *wa.get_or_insert_with(|| g.neighbor(b, a));
                let y = *wc.get_or_insert_with(|| g.neighbor(b, c));
                match x.cmp(&y) {
                    core::cmp::Ordering::Less => {
                        a += 1;
                        wa = None;
                    }
                    core::cmp::Ordering::Greater => {
                        c += 1;
                        wc = None;
                    }
                    core::cmp::Ordering::Equal => {
                        if x > v {
                            total += 1;
                        }
                        a += 1;
                        c += 1;
                        wa = None;
                        wc = None;
                    }
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::load_sim_csr;
    use crate::csr::CsrGraph;
    use crate::edgelist::EdgeList;
    use crate::generate::KroneckerGenerator;
    use crate::reference::tc_ref;
    use tiersim_mem::NullBackend;

    fn sim_of(el: &EdgeList) -> (NullBackend, SimCsrGraph) {
        let mut host = CsrGraph::from_edges(el, true);
        host.sort_neighbors();
        let mut b = NullBackend::new();
        let g = load_sim_csr(&mut b, &host, 2);
        (b, g)
    }

    #[test]
    fn triangle_graph_has_one_triangle() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 0), (2, 3)]);
        let (mut b, g) = sim_of(&el);
        assert_eq!(tc(&mut b, &g, 2), 1);
    }

    #[test]
    fn complete_graph_k5() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let (mut b, g) = sim_of(&EdgeList::new(5, edges));
        // C(5,3) = 10 triangles.
        assert_eq!(tc(&mut b, &g, 1), 10);
    }

    #[test]
    fn triangle_free_graph_counts_zero() {
        // A star has no triangles.
        let el = EdgeList::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        let (mut b, g) = sim_of(&el);
        assert_eq!(tc(&mut b, &g, 1), 0);
    }

    #[test]
    fn matches_reference_on_kron() {
        let el = KroneckerGenerator::new(7, 4).seed(13).generate();
        let mut host = CsrGraph::from_edges(&el, true);
        host.sort_neighbors();
        host.dedup_neighbors();
        let expected = tc_ref(&host);
        let mut b = NullBackend::new();
        let g = load_sim_csr(&mut b, &host, 4);
        assert_eq!(tc(&mut b, &g, 4), expected);
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn unsorted_lists_are_rejected() {
        let el = EdgeList::new(3, vec![(0, 2), (0, 1)]);
        let host = CsrGraph::from_edges(&el, false); // neighbors of 0: [2, 1]
        let mut b = NullBackend::new();
        let g = load_sim_csr(&mut b, &host, 1);
        let _ = tc(&mut b, &g, 1);
    }

    proptest::proptest! {
        #[test]
        fn prop_tc_matches_reference(
            edges in proptest::collection::vec((0u32..12, 0u32..12), 0..60)
        ) {
            let el = EdgeList::new(12, edges);
            let mut host = CsrGraph::from_edges(&el, true);
            host.sort_neighbors();
            host.dedup_neighbors();
            let expected = tc_ref(&host);
            let mut b = NullBackend::new();
            let g = load_sim_csr(&mut b, &host, 3);
            proptest::prop_assert_eq!(tc(&mut b, &g, 3), expected);
        }
    }
}
