//! Simulated CSR builder: reproduces GAPBS's build phase as a stream of
//! simulated memory traffic and allocations.
//!
//! The build allocates (and later frees) the temporary objects the paper
//! observes — the deserialized edge list and per-vertex counters — before
//! the long-lived `csr.index`/`csr.neighbors` objects. Freeing the edge
//! list right before the algorithm's own allocations reproduces the
//! "allocation right after a memory release" pattern of Figure 7.

use crate::edgelist::{EdgeList, NodeId};
use crate::sim::SimCsrGraph;
use tiersim_mem::{MemBackend, SimVec, ThreadId};

/// Sets the backend's logical thread from a static partition of `i` over
/// `total` items, mirroring an OpenMP static schedule.
#[inline]
pub(crate) fn attribute_thread<B: MemBackend>(b: &mut B, i: usize, total: usize, threads: usize) {
    if threads > 1 && total > 0 {
        b.set_thread(ThreadId((i * threads / total) as u16));
    }
}

/// Builds a simulated CSR graph from an edge list, charging the full
/// build-phase access stream: edge-array writes, degree counting
/// (scattered increments), prefix sum, and neighbor scattering.
///
/// With `symmetrize`, each edge is inserted in both directions (GAPBS
/// treats kron/urand as undirected). Self-loops are dropped.
///
/// # Examples
///
/// ```
/// use tiersim_graph::{build_sim_csr, EdgeList};
/// use tiersim_mem::NullBackend;
///
/// let el = EdgeList::new(3, vec![(0, 1), (1, 2)]);
/// let mut b = NullBackend::new();
/// let g = build_sim_csr(&mut b, &el, true, 4);
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 4);
/// ```
pub fn build_sim_csr<B: MemBackend>(
    b: &mut B,
    el: &EdgeList,
    symmetrize: bool,
    threads: usize,
) -> SimCsrGraph {
    let n = el.num_nodes;
    let m = el.edges.len();

    // 1. Deserialize the file into the in-memory edge array (the large
    //    transient object the paper sees first).
    let mut edges = SimVec::new(b, "builder.edge_list", m, (0 as NodeId, 0 as NodeId));
    for (i, &e) in el.edges.iter().enumerate() {
        attribute_thread(b, i, m, threads);
        edges.set(b, i, e);
    }

    // 2. Count degrees: sequential edge reads, scattered increments.
    let mut degrees = SimVec::new(b, "builder.degrees", n, 0u64);
    for i in 0..m {
        attribute_thread(b, i, m, threads);
        let (u, v) = edges.get(b, i);
        if u == v {
            continue;
        }
        degrees.update(b, u as usize, |d| d + 1);
        if symmetrize {
            degrees.update(b, v as usize, |d| d + 1);
        }
    }

    // 3. Prefix sum into the long-lived index object.
    let mut index = SimVec::new(b, "csr.index", n + 1, 0u64);
    let mut running = 0u64;
    index.set(b, 0, 0);
    for u in 0..n {
        attribute_thread(b, u, n, threads);
        running += degrees.get(b, u);
        index.set(b, u + 1, running);
    }

    // 4. Scatter neighbors through a cursor array.
    let mut cursor = SimVec::new(b, "builder.cursor", n, 0u64);
    for u in 0..n {
        attribute_thread(b, u, n, threads);
        let start = index.get(b, u);
        cursor.set(b, u, start);
    }
    let total_directed = running as usize;
    let mut neighbors = SimVec::new(b, "csr.neighbors", total_directed, 0 as NodeId);
    for i in 0..m {
        attribute_thread(b, i, m, threads);
        let (u, v) = edges.get(b, i);
        if u == v {
            continue;
        }
        let pos = cursor.update(b, u as usize, |c| c + 1) - 1;
        neighbors.set(b, pos as usize, v);
        if symmetrize {
            let pos = cursor.update(b, v as usize, |c| c + 1) - 1;
            neighbors.set(b, pos as usize, u);
        }
    }

    // 5. Free the transient builder objects (the release the paper's
    //    Figure 7 highlights right before the kernel's allocations).
    cursor.into_host(b);
    degrees.into_host(b);
    edges.into_host(b);

    SimCsrGraph::from_parts(index, neighbors)
}

/// Deserializes a pre-built CSR (a GAPBS `.sg` file that was just read
/// through the page cache) into simulated memory: the `csr.index` and
/// `csr.neighbors` objects are allocated and filled with sequential
/// stores, exactly the copy-out a `read()`-based loader performs.
///
/// This is the load path of the paper's artifact, which converts graphs
/// offline (`converter -g30 -b kron.sg`) and starts every run from the
/// serialized CSR.
pub fn load_sim_csr<B: MemBackend>(
    b: &mut B,
    host: &crate::csr::CsrGraph,
    threads: usize,
) -> SimCsrGraph {
    let n = host.num_nodes();
    let m = host.num_edges();
    let mut index = SimVec::new(b, "csr.index", n + 1, 0u64);
    for (u, &off) in host.offsets().iter().enumerate() {
        attribute_thread(b, u, n + 1, threads);
        index.set(b, u, off);
    }
    let mut neighbors = SimVec::new(b, "csr.neighbors", m, 0 as NodeId);
    for (i, &v) in host.neighbor_array().iter().enumerate() {
        attribute_thread(b, i, m, threads);
        neighbors.set(b, i, v);
    }
    SimCsrGraph::from_parts(index, neighbors)
}

/// Size in bytes of the serialized CSR (`.sg`) form: a small header plus
/// 64-bit offsets and 32-bit neighbor ids, as GAPBS writes it.
pub fn sg_file_bytes(num_nodes: usize, num_directed_edges: usize) -> u64 {
    16 + 8 * (num_nodes as u64 + 1) + 4 * num_directed_edges as u64
}

/// Streamed variant of [`load_sim_csr`]: the loader's `read()` loop
/// interleaves file input with the copy-out, calling `read_chunk(b,
/// bytes)` before each `chunk_bytes` of CSR data is written. This is how
/// real loaders behave and it matters for tiering: page-cache fills and
/// CSR allocations compete for DRAM *concurrently*, so reclaim can demote
/// cache pages while the arrays grow (paper Fig. 9's load phase).
///
/// # Errors
///
/// Stops at the first `read_chunk` error and returns it, like a loader
/// whose `read()` failed. The partially written CSR arrays stay mapped in
/// the backend; a failed run tears the whole machine down anyway.
pub fn load_sim_csr_streamed<B: MemBackend, E>(
    b: &mut B,
    host: &crate::csr::CsrGraph,
    threads: usize,
    chunk_bytes: u64,
    mut read_chunk: impl FnMut(&mut B, u64) -> Result<(), E>,
) -> Result<SimCsrGraph, E> {
    assert!(chunk_bytes >= 8, "chunk must hold at least one element");
    let n = host.num_nodes();
    let m = host.num_edges();
    let mut budget = 0u64;
    let mut refill = |b: &mut B, budget: &mut u64, need: u64| -> Result<(), E> {
        if *budget < need {
            read_chunk(b, chunk_bytes)?;
            *budget += chunk_bytes;
        }
        Ok(())
    };
    let mut index = SimVec::new(b, "csr.index", n + 1, 0u64);
    for (u, &off) in host.offsets().iter().enumerate() {
        refill(b, &mut budget, 8)?;
        budget -= 8;
        attribute_thread(b, u, n + 1, threads);
        index.set(b, u, off);
    }
    let mut neighbors = SimVec::new(b, "csr.neighbors", m, 0 as NodeId);
    for (i, &v) in host.neighbor_array().iter().enumerate() {
        refill(b, &mut budget, 4)?;
        budget -= 4;
        attribute_thread(b, i, m, threads);
        neighbors.set(b, i, v);
    }
    Ok(SimCsrGraph::from_parts(index, neighbors))
}

/// Generates deterministic edge weights in `1..=255` aligned with the
/// neighbor array (GAPBS gives SSSP uniformly random integer weights).
/// The weight of the edge at neighbor-array position `i` is a hash of
/// `i`, so it is stable across runs.
pub fn build_sim_weights<B: MemBackend>(b: &mut B, g: &SimCsrGraph, threads: usize) -> SimVec<u32> {
    let m = g.num_edges();
    let mut w = SimVec::new(b, "csr.weights", m, 0u32);
    for i in 0..m {
        attribute_thread(b, i, m, threads);
        // SplitMix-style scramble for a stable pseudo-random weight.
        let mut x = i as u64 ^ 0x9e37_79b9_7f4a_7c15;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        w.set(b, i, (x % 255) as u32 + 1);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use tiersim_mem::NullBackend;

    #[test]
    fn sim_build_matches_host_build() {
        let el = EdgeList::new(6, vec![(0, 1), (0, 2), (3, 4), (4, 0), (5, 5), (1, 0)]);
        let mut b = NullBackend::new();
        let sim = build_sim_csr(&mut b, &el, true, 4);
        let host = CsrGraph::from_edges(&el, true);
        let from_sim = sim.to_host_csr();
        // Same degree per vertex and same neighbor multisets.
        for u in 0..6 {
            assert_eq!(from_sim.degree(u), host.degree(u), "degree of {u}");
            let mut a = from_sim.neighbors(u).to_vec();
            let mut c = host.neighbors(u).to_vec();
            a.sort_unstable();
            c.sort_unstable();
            assert_eq!(a, c, "neighbors of {u}");
        }
    }

    #[test]
    fn directed_build_preserves_edge_count() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, false, 1);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn transient_objects_are_freed() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 2)]);
        let mut b = NullBackend::new();
        let _g = build_sim_csr(&mut b, &el, true, 1);
        // 5 mmaps (edge_list, degrees, index, cursor, neighbors); the three
        // transients were munmapped. NullBackend only counts mmaps, so we
        // assert the call count here; residency is asserted in the
        // machine-level integration tests.
        assert_eq!(b.mmaps(), 5);
    }

    #[test]
    fn weights_are_deterministic_and_in_range() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 1);
        let w1 = build_sim_weights(&mut b, &g, 2);
        let w2 = build_sim_weights(&mut b, &g, 2);
        assert_eq!(w1.host(), w2.host());
        assert!(w1.host().iter().all(|&w| (1..=255).contains(&w)));
    }

    #[test]
    fn load_sim_csr_round_trips_host_csr() {
        let el = EdgeList::new(8, vec![(0, 1), (1, 2), (3, 4), (6, 7), (2, 0)]);
        let host = CsrGraph::from_edges(&el, true);
        let mut b = NullBackend::new();
        let loaded = load_sim_csr(&mut b, &host, 3);
        assert_eq!(loaded.to_host_csr(), host);
        // Two objects allocated, all elements stored.
        assert_eq!(b.mmaps(), 2);
        assert_eq!(b.stores(), (host.num_nodes() + 1 + host.num_edges()) as u64);
    }

    #[test]
    fn sg_file_size_formula() {
        assert_eq!(sg_file_bytes(3, 4), 16 + 8 * 4 + 4 * 4);
    }

    #[test]
    fn streamed_load_matches_eager_load() {
        let el = EdgeList::new(8, vec![(0, 1), (1, 2), (3, 4), (6, 7), (2, 0)]);
        let host = CsrGraph::from_edges(&el, true);
        let mut b = NullBackend::new();
        let mut chunks = 0u64;
        let loaded = load_sim_csr_streamed(&mut b, &host, 3, 16, |_b, _bytes| {
            chunks += 1;
            Ok::<(), ()>(())
        })
        .unwrap();
        assert_eq!(loaded.to_host_csr(), host);
        assert!(chunks > 1, "small chunks force multiple reads");
    }

    #[test]
    fn streamed_load_propagates_read_errors() {
        let el = EdgeList::new(8, vec![(0, 1), (1, 2), (3, 4), (6, 7), (2, 0)]);
        let host = CsrGraph::from_edges(&el, true);
        let mut b = NullBackend::new();
        let mut chunks = 0;
        let r = load_sim_csr_streamed(&mut b, &host, 3, 16, |_b, _bytes| {
            chunks += 1;
            if chunks == 3 {
                Err("disk on fire")
            } else {
                Ok(())
            }
        });
        assert_eq!(r.unwrap_err(), "disk on fire");
        assert_eq!(chunks, 3, "loader stops at the first failed read");
    }

    proptest::proptest! {
        #[test]
        fn prop_sim_build_equals_host_build(
            edges in proptest::collection::vec((0u32..16, 0u32..16), 1..80)
        ) {
            let el = EdgeList::new(16, edges);
            let mut b = NullBackend::new();
            let sim = build_sim_csr(&mut b, &el, true, 3).to_host_csr();
            let host = CsrGraph::from_edges(&el, true);
            for u in 0..16u32 {
                let mut a = sim.neighbors(u).to_vec();
                let mut c = host.neighbors(u).to_vec();
                a.sort_unstable();
                c.sort_unstable();
                proptest::prop_assert_eq!(a, c);
            }
        }
    }
}
