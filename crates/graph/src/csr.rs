//! Host-side CSR graph (the verification oracle's representation).

use crate::edgelist::{EdgeList, NodeId};

/// A compressed-sparse-row graph living entirely in host memory.
///
/// Used by the reference implementations and as the blueprint the
/// simulated builder reproduces. Graphs are stored directed; undirected
/// graphs are symmetrized at build time as GAPBS does.
///
/// # Examples
///
/// ```
/// use tiersim_graph::{CsrGraph, EdgeList};
///
/// let el = EdgeList::new(3, vec![(0, 1), (1, 2)]);
/// let g = CsrGraph::from_edges(&el, true);
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.degree(1), 2); // symmetrized
/// assert_eq!(g.neighbors(0), &[1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    neighbors: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a CSR from an edge list, dropping self-loops. With
    /// `symmetrize`, every edge is inserted in both directions.
    pub fn from_edges(el: &EdgeList, symmetrize: bool) -> CsrGraph {
        let n = el.num_nodes;
        let mut degrees = vec![0u64; n];
        for &(u, v) in &el.edges {
            if u == v {
                continue;
            }
            degrees[u as usize] += 1;
            if symmetrize {
                degrees[v as usize] += 1;
            }
        }
        let mut offsets = vec![0u64; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degrees[i];
        }
        let mut neighbors = vec![0 as NodeId; offsets[n] as usize];
        let mut cursor = offsets[..n].to_vec();
        for &(u, v) in &el.edges {
            if u == v {
                continue;
            }
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            if symmetrize {
                neighbors[cursor[v as usize] as usize] = u;
                cursor[v as usize] += 1;
            }
        }
        CsrGraph { offsets, neighbors }
    }

    /// Builds directly from parts (used by the simulated builder's
    /// verification path).
    ///
    /// # Panics
    ///
    /// Panics if the offsets are not monotonically increasing or do not
    /// cover `neighbors`.
    pub fn from_parts(offsets: Vec<u64>, neighbors: Vec<NodeId>) -> CsrGraph {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be monotone");
        assert_eq!(offsets[offsets.len() - 1] as usize, neighbors.len(), "offset coverage");
        CsrGraph { offsets, neighbors }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges stored.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Out-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Neighbors of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// The offsets array (length `num_nodes + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The concatenated neighbor array.
    pub fn neighbor_array(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Sorts every neighbor list ascending (GAPBS's triangle-counting
    /// preprocessing step).
    pub fn sort_neighbors(&mut self) {
        for u in 0..self.num_nodes() {
            let (s, e) = (self.offsets[u] as usize, self.offsets[u + 1] as usize);
            self.neighbors[s..e].sort_unstable();
        }
    }

    /// Removes duplicate parallel edges from each (sorted) neighbor list,
    /// rewriting the offsets.
    ///
    /// # Panics
    ///
    /// Panics if the lists are not sorted (call
    /// [`CsrGraph::sort_neighbors`] first).
    pub fn dedup_neighbors(&mut self) {
        let n = self.num_nodes();
        let mut new_offsets = vec![0u64; n + 1];
        let mut new_neighbors = Vec::with_capacity(self.neighbors.len());
        for u in 0..n {
            let (s, e) = (self.offsets[u] as usize, self.offsets[u + 1] as usize);
            let lst = &self.neighbors[s..e];
            assert!(lst.windows(2).all(|w| w[0] <= w[1]), "list of {u} not sorted");
            let mut last = None;
            for &v in lst {
                if last != Some(v) {
                    new_neighbors.push(v);
                    last = Some(v);
                }
            }
            new_offsets[u + 1] = new_neighbors.len() as u64;
        }
        self.offsets = new_offsets;
        self.neighbors = new_neighbors;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> EdgeList {
        EdgeList::new(3, vec![(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn directed_build() {
        let g = CsrGraph::from_edges(&triangle(), false);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn symmetrized_build() {
        let g = CsrGraph::from_edges(&triangle(), true);
        assert_eq!(g.num_edges(), 6);
        let mut n0 = g.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
    }

    #[test]
    fn self_loops_are_dropped() {
        let el = EdgeList::new(2, vec![(0, 0), (0, 1)]);
        let g = CsrGraph::from_edges(&el, true);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let el = EdgeList::new(5, vec![(0, 1)]);
        let g = CsrGraph::from_edges(&el, true);
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbors(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn from_parts_rejects_bad_offsets() {
        let _ = CsrGraph::from_parts(vec![0, 5, 2], vec![0, 0]);
    }

    #[test]
    fn sort_and_dedup() {
        let el = EdgeList::new(3, vec![(0, 2), (0, 1), (0, 2), (1, 2)]);
        let mut g = CsrGraph::from_edges(&el, true);
        g.sort_neighbors();
        assert_eq!(g.neighbors(0), &[1, 2, 2]);
        g.dedup_neighbors();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert_eq!(g.num_edges(), 6);
    }

    proptest::proptest! {
        #[test]
        fn prop_symmetrized_degree_sum_is_twice_edges(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 0..100)
        ) {
            let clean: Vec<_> = edges.into_iter().filter(|(u, v)| u != v).collect();
            let el = EdgeList::new(20, clean.clone());
            let g = CsrGraph::from_edges(&el, true);
            let total: usize = (0..20).map(|u| g.degree(u)).sum();
            proptest::prop_assert_eq!(total, 2 * clean.len());
        }
    }
}
