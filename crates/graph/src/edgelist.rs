//! Edge lists: the on-disk representation GAPBS loads and converts.

/// A vertex identifier.
pub type NodeId = u32;

/// An unweighted directed edge list over `num_nodes` vertices.
///
/// This is the simulated equivalent of a GAPBS `.sg` file: the generator
/// writes one, the loader streams it through the page cache, and the
/// builder converts it to CSR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices (`2^scale` for generated graphs).
    pub num_nodes: usize,
    /// Directed edges `(src, dst)`.
    pub edges: Vec<(NodeId, NodeId)>,
}

impl EdgeList {
    /// Creates an edge list, validating that endpoints are in range.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn new(num_nodes: usize, edges: Vec<(NodeId, NodeId)>) -> Self {
        for &(u, v) in &edges {
            assert!(
                (u as usize) < num_nodes && (v as usize) < num_nodes,
                "edge ({u}, {v}) out of range for {num_nodes} nodes"
            );
        }
        EdgeList { num_nodes, edges }
    }

    /// Number of directed edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if there are no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Size in bytes of the serialized form (8 bytes per edge), used to
    /// model the graph file the loader reads through the page cache.
    pub fn serialized_bytes(&self) -> u64 {
        self.edges.len() as u64 * 8
    }

    /// Removes self-loops in place (GAPBS builder squish step).
    pub fn remove_self_loops(&mut self) {
        self.edges.retain(|&(u, v)| u != v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_endpoints() {
        let el = EdgeList::new(4, vec![(0, 1), (3, 2)]);
        assert_eq!(el.len(), 2);
        assert_eq!(el.serialized_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = EdgeList::new(2, vec![(0, 2)]);
    }

    #[test]
    fn self_loop_removal() {
        let mut el = EdgeList::new(3, vec![(0, 0), (0, 1), (2, 2)]);
        el.remove_self_loops();
        assert_eq!(el.edges, vec![(0, 1)]);
        assert!(!el.is_empty());
    }
}
