//! Synthetic graph generators: Kronecker (`-g`) and uniform random (`-u`),
//! matching the GAPBS converter's datasets used by the paper (`kron` and
//! `urand`).

use crate::edgelist::{EdgeList, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Kronecker (RMAT) generator with the Graph500/GAPBS parameters
/// A=0.57, B=0.19, C=0.19.
///
/// `scale` gives `2^scale` vertices; `degree` gives `degree × 2^scale`
/// edges (GAPBS `-k`, default 16). Vertex labels are permuted so that the
/// heavy-hitter vertices are not clustered at low ids, as GAPBS does.
///
/// # Examples
///
/// ```
/// use tiersim_graph::KroneckerGenerator;
///
/// let el = KroneckerGenerator::new(8, 4).seed(1).generate();
/// assert_eq!(el.num_nodes, 256);
/// assert_eq!(el.len(), 4 * 256);
/// ```
#[derive(Debug, Clone)]
pub struct KroneckerGenerator {
    scale: u32,
    degree: usize,
    seed: u64,
    a: f64,
    b: f64,
    c: f64,
}

impl KroneckerGenerator {
    /// Creates a generator for `2^scale` vertices with average `degree`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is 0 or greater than 31.
    pub fn new(scale: u32, degree: usize) -> Self {
        assert!((1..=31).contains(&scale), "scale must be in 1..=31");
        KroneckerGenerator { scale, degree, seed: 27491095, a: 0.57, b: 0.19, c: 0.19 }
    }

    /// Sets the RNG seed (consuming builder style).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the edge list.
    pub fn generate(&self) -> EdgeList {
        let n = 1usize << self.scale;
        let num_edges = self.degree * n;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        // Label permutation (Fisher–Yates) applied to generated vertices.
        let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let mut edges = Vec::with_capacity(num_edges);
        for _ in 0..num_edges {
            let (mut u, mut v) = (0usize, 0usize);
            for _ in 0..self.scale {
                u <<= 1;
                v <<= 1;
                let r: f64 = rng.gen();
                if r < self.a {
                    // quadrant A: (0, 0)
                } else if r < self.a + self.b {
                    v |= 1; // B: (0, 1)
                } else if r < self.a + self.b + self.c {
                    u |= 1; // C: (1, 0)
                } else {
                    u |= 1;
                    v |= 1; // D: (1, 1)
                }
            }
            edges.push((perm[u], perm[v]));
        }
        EdgeList::new(n, edges)
    }
}

/// Uniform-random (Erdős–Rényi-style) generator: GAPBS `-u`.
///
/// # Examples
///
/// ```
/// use tiersim_graph::UniformGenerator;
///
/// let el = UniformGenerator::new(8, 4).seed(7).generate();
/// assert_eq!(el.num_nodes, 256);
/// assert_eq!(el.len(), 1024);
/// ```
#[derive(Debug, Clone)]
pub struct UniformGenerator {
    scale: u32,
    degree: usize,
    seed: u64,
}

impl UniformGenerator {
    /// Creates a generator for `2^scale` vertices with average `degree`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is 0 or greater than 31.
    pub fn new(scale: u32, degree: usize) -> Self {
        assert!((1..=31).contains(&scale), "scale must be in 1..=31");
        UniformGenerator { scale, degree, seed: 27491095 }
    }

    /// Sets the RNG seed (consuming builder style).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the edge list.
    pub fn generate(&self) -> EdgeList {
        let n = 1u64 << self.scale;
        let num_edges = self.degree * (n as usize);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let edges = (0..num_edges)
            .map(|_| (rng.gen_range(0..n) as NodeId, rng.gen_range(0..n) as NodeId))
            .collect();
        EdgeList::new(n as usize, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn generators_are_deterministic() {
        let a = KroneckerGenerator::new(8, 8).seed(3).generate();
        let b = KroneckerGenerator::new(8, 8).seed(3).generate();
        assert_eq!(a, b);
        let c = KroneckerGenerator::new(8, 8).seed(4).generate();
        assert_ne!(a, c);
        let u1 = UniformGenerator::new(8, 8).seed(3).generate();
        let u2 = UniformGenerator::new(8, 8).seed(3).generate();
        assert_eq!(u1, u2);
    }

    #[test]
    fn kron_is_skewed_uniform_is_not() {
        // Degree concentration: top 1% of vertices should hold far more
        // edge endpoints in kron than in urand.
        let top_share = |el: &EdgeList| {
            let mut deg: HashMap<NodeId, u64> = HashMap::new();
            for &(u, v) in &el.edges {
                *deg.entry(u).or_insert(0) += 1;
                *deg.entry(v).or_insert(0) += 1;
            }
            let mut counts: Vec<u64> = deg.values().copied().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let top = el.num_nodes / 100 + 1;
            let top_sum: u64 = counts.iter().take(top).sum();
            top_sum as f64 / (2 * el.len()) as f64
        };
        let kron = KroneckerGenerator::new(10, 16).seed(1).generate();
        let urand = UniformGenerator::new(10, 16).seed(1).generate();
        assert!(
            top_share(&kron) > 2.0 * top_share(&urand),
            "kron {:.3} should be much more skewed than urand {:.3}",
            top_share(&kron),
            top_share(&urand)
        );
    }

    #[test]
    fn endpoints_in_range() {
        for el in [KroneckerGenerator::new(6, 4).generate(), UniformGenerator::new(6, 4).generate()]
        {
            assert!(el.edges.iter().all(|&(u, v)| (u as usize) < 64 && (v as usize) < 64));
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_edge_counts_match_parameters(scale in 3u32..10, degree in 1usize..8, seed in 0u64..1000) {
            let el = UniformGenerator::new(scale, degree).seed(seed).generate();
            proptest::prop_assert_eq!(el.num_nodes, 1 << scale);
            proptest::prop_assert_eq!(el.len(), degree << scale);
        }
    }
}

/// 2D-grid ("road-like") generator: vertices form a `w × h` lattice with
/// edges to the right and down neighbors. Unlike kron/urand this graph has
/// strong spatial locality and a long diameter — the contrast dataset for
/// studying how much of the paper's findings stem from access
/// *irregularity* (the paper excludes the real `road` input only because
/// its footprint was too small for their machine).
///
/// # Examples
///
/// ```
/// use tiersim_graph::GridGenerator;
///
/// let el = GridGenerator::new(4).generate(); // 2^4 = 16 vertices, 4x4
/// assert_eq!(el.num_nodes, 16);
/// assert_eq!(el.len(), 2 * 4 * 3); // 2 · w · (w - 1) lattice edges
/// ```
#[derive(Debug, Clone)]
pub struct GridGenerator {
    scale: u32,
}

impl GridGenerator {
    /// Creates a generator for a lattice of `2^scale` vertices (`scale`
    /// must be even so the lattice is square).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is odd, zero, or greater than 30.
    pub fn new(scale: u32) -> Self {
        assert!((2..=30).contains(&scale), "scale must be in 2..=30");
        assert!(scale.is_multiple_of(2), "grid scale must be even (square lattice)");
        GridGenerator { scale }
    }

    /// Generates the lattice edge list (deterministic; no RNG involved).
    pub fn generate(&self) -> EdgeList {
        let w = 1usize << (self.scale / 2);
        let n = w * w;
        let mut edges = Vec::with_capacity(2 * w * (w - 1));
        for y in 0..w {
            for x in 0..w {
                let u = (y * w + x) as NodeId;
                if x + 1 < w {
                    edges.push((u, u + 1));
                }
                if y + 1 < w {
                    edges.push((u, u + w as NodeId));
                }
            }
        }
        EdgeList::new(n, edges)
    }
}

#[cfg(test)]
mod grid_tests {
    use super::*;

    #[test]
    fn lattice_shape() {
        let el = GridGenerator::new(6).generate(); // 8x8
        assert_eq!(el.num_nodes, 64);
        assert_eq!(el.len(), 2 * 8 * 7);
        // Corner vertex 0 connects right (1) and down (8) only.
        let deg0 = el.edges.iter().filter(|&&(u, v)| u == 0 || v == 0).count();
        assert_eq!(deg0, 2);
    }

    #[test]
    fn grid_is_connected() {
        let el = GridGenerator::new(6).generate();
        let g = crate::csr::CsrGraph::from_edges(&el, true);
        let comp = crate::reference::cc_ref(&g);
        assert!(comp.iter().all(|&c| c == 0), "a lattice is one component");
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_scale_rejected() {
        let _ = GridGenerator::new(7);
    }
}
