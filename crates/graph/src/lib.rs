//! # tiersim-graph — GAPBS-like graph analytics substrate
//!
//! A from-scratch implementation of the GAP Benchmark Suite pieces the
//! paper evaluates, built to run on simulated tiered memory:
//!
//! - **Generators**: [`KroneckerGenerator`] (`kron`, Graph500 RMAT
//!   parameters) and [`UniformGenerator`] (`urand`), the two datasets the
//!   paper selects for their large footprints.
//! - **Builder**: [`build_sim_csr`] reproduces the GAPBS build phase —
//!   including the transient edge-list/degree objects whose allocation and
//!   release the paper's Figure 7 tracks.
//! - **Algorithms** ([`algo`]): direction-optimizing BFS, Brandes BC, and
//!   two CC variants (Shiloach–Vishkin, Afforest) — the paper's three
//!   kernels — plus PageRank and delta-stepping SSSP as extensions.
//! - **Oracles** ([`mod@reference`]): plain host implementations every
//!   simulated kernel is verified against, including property-based tests.
//!
//! Algorithms are generic over [`tiersim_mem::MemBackend`]: the same code
//! runs on the full machine simulator (charging caches, TLB, devices, OS
//! events) or on a free [`tiersim_mem::NullBackend`] for verification.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algo;
mod builder;
mod csr;
mod edgelist;
mod generate;
pub mod reference;
mod sim;
mod source;
pub mod verify;

pub use algo::{
    bc, bfs, canonicalize, cc_afforest, cc_sv, pr, sssp, tc, BfsParams, BfsResult, PrParams,
};
pub use builder::{
    build_sim_csr, build_sim_weights, load_sim_csr, load_sim_csr_streamed, sg_file_bytes,
};
pub use csr::CsrGraph;
pub use edgelist::{EdgeList, NodeId};
pub use generate::{GridGenerator, KroneckerGenerator, UniformGenerator};
pub use sim::SimCsrGraph;
pub use source::SourcePicker;
