//! Host-speed reference implementations used as verification oracles.

use crate::csr::CsrGraph;
use crate::edgelist::NodeId;
use std::collections::{BinaryHeap, VecDeque};

/// BFS distances from `source` (`-1` = unreachable).
pub fn bfs_ref(g: &CsrGraph, source: NodeId) -> Vec<i32> {
    let mut dist = vec![-1i32; g.num_nodes()];
    dist[source as usize] = 0;
    let mut q = VecDeque::from([source]);
    while let Some(u) = q.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v as usize] == -1 {
                dist[v as usize] = dist[u as usize] + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Brandes betweenness-centrality contributions accumulated over the given
/// sources (unnormalized, matching the simulated kernel).
pub fn bc_ref(g: &CsrGraph, sources: &[NodeId]) -> Vec<f64> {
    let n = g.num_nodes();
    let mut scores = vec![0.0f64; n];
    for &s in sources {
        let mut depth = vec![-1i32; n];
        let mut sigma = vec![0.0f64; n];
        let mut delta = vec![0.0f64; n];
        let mut stack: Vec<NodeId> = Vec::new();
        depth[s as usize] = 0;
        sigma[s as usize] = 1.0;
        let mut q = VecDeque::from([s]);
        while let Some(u) = q.pop_front() {
            stack.push(u);
            for &v in g.neighbors(u) {
                if depth[v as usize] == -1 {
                    depth[v as usize] = depth[u as usize] + 1;
                    q.push_back(v);
                }
                if depth[v as usize] == depth[u as usize] + 1 {
                    sigma[v as usize] += sigma[u as usize];
                }
            }
        }
        for &w in stack.iter().rev() {
            for &v in g.neighbors(w) {
                if depth[v as usize] == depth[w as usize] - 1 {
                    delta[v as usize] +=
                        sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
                }
            }
            if w != s {
                scores[w as usize] += delta[w as usize];
            }
        }
    }
    scores
}

/// Connected-component labels via union-find (labels are canonical: the
/// minimum vertex id in each component).
pub fn cc_ref(g: &CsrGraph) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for u in 0..n as u32 {
        for &v in g.neighbors(u) {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
                parent[hi as usize] = lo;
            }
        }
    }
    (0..n as u32).map(|u| find(&mut parent, u)).collect()
}

/// PageRank scores: pull iteration with damping `d`, run for exactly
/// `max_iters` iterations or until the L1 error drops below `tol`.
pub fn pr_ref(g: &CsrGraph, d: f64, tol: f64, max_iters: usize) -> Vec<f64> {
    let n = g.num_nodes();
    let base = (1.0 - d) / n as f64;
    let mut scores = vec![1.0 / n as f64; n];
    let mut contrib = vec![0.0f64; n];
    for _ in 0..max_iters {
        for u in 0..n {
            let deg = g.degree(u as u32);
            contrib[u] = if deg > 0 { scores[u] / deg as f64 } else { 0.0 };
        }
        let mut err = 0.0;
        for u in 0..n as u32 {
            let sum: f64 = g.neighbors(u).iter().map(|&v| contrib[v as usize]).sum();
            let new = base + d * sum;
            err += (new - scores[u as usize]).abs();
            scores[u as usize] = new;
        }
        if err < tol {
            break;
        }
    }
    scores
}

/// Dijkstra shortest-path distances over `weights` aligned with the
/// graph's neighbor array (`u64::MAX` = unreachable).
pub fn sssp_ref(g: &CsrGraph, weights: &[u32], source: NodeId) -> Vec<u64> {
    assert_eq!(weights.len(), g.num_edges(), "weights must align with neighbors");
    let n = g.num_nodes();
    let mut dist = vec![u64::MAX; n];
    dist[source as usize] = 0;
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, NodeId)>> = BinaryHeap::new();
    heap.push(std::cmp::Reverse((0, source)));
    while let Some(std::cmp::Reverse((du, u))) = heap.pop() {
        if du > dist[u as usize] {
            continue;
        }
        let start = g.offsets()[u as usize] as usize;
        for (i, &v) in g.neighbors(u).iter().enumerate() {
            let nd = du + weights[start + i] as u64;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(std::cmp::Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Triangle count over a graph with sorted, deduplicated neighbor lists
/// (host-speed oracle for the simulated `tc`).
pub fn tc_ref(g: &CsrGraph) -> u64 {
    let mut total = 0u64;
    for u in 0..g.num_nodes() as NodeId {
        for &v in g.neighbors(u) {
            if v <= u {
                continue;
            }
            let (mut a, mut b) = (g.neighbors(u).iter(), g.neighbors(v).iter());
            let (mut x, mut y) = (a.next(), b.next());
            while let (Some(&xv), Some(&yv)) = (x, y) {
                match xv.cmp(&yv) {
                    std::cmp::Ordering::Less => x = a.next(),
                    std::cmp::Ordering::Greater => y = b.next(),
                    std::cmp::Ordering::Equal => {
                        if xv > v {
                            total += 1;
                        }
                        x = a.next();
                        y = b.next();
                    }
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    /// Path 0-1-2-3 plus isolated vertex 4.
    fn path() -> CsrGraph {
        CsrGraph::from_edges(&EdgeList::new(5, vec![(0, 1), (1, 2), (2, 3)]), true)
    }

    #[test]
    fn bfs_distances_on_path() {
        let d = bfs_ref(&path(), 0);
        assert_eq!(d, vec![0, 1, 2, 3, -1]);
    }

    #[test]
    fn bc_on_path_peaks_in_middle() {
        let g = path();
        let sources: Vec<NodeId> = (0..4).collect();
        let s = bc_ref(&g, &sources);
        // On a path, interior vertices carry all shortest paths.
        assert!(s[1] > s[0]);
        assert!(s[2] > s[3]);
        assert_eq!(s[4], 0.0);
        // Symmetric path: ends equal, middles equal.
        assert!((s[1] - s[2]).abs() < 1e-12);
    }

    #[test]
    fn cc_labels_components() {
        let g = CsrGraph::from_edges(&EdgeList::new(6, vec![(0, 1), (1, 2), (4, 5)]), true);
        let c = cc_ref(&g);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[1], c[2]);
        assert_eq!(c[4], c[5]);
        assert_ne!(c[0], c[4]);
        assert_ne!(c[3], c[0]);
        assert_eq!(c[0], 0); // canonical min label
        assert_eq!(c[4], 4);
    }

    #[test]
    fn pr_sums_to_one_on_connected_graph() {
        let g = CsrGraph::from_edges(&EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]), true);
        let s = pr_ref(&g, 0.85, 1e-10, 100);
        let sum: f64 = s.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        // Symmetric ring: all equal.
        assert!(s.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9));
    }

    #[test]
    fn sssp_respects_weights() {
        // 0→1 (w=10), 0→2 (w=1), 2→1 (w=2): shortest 0→1 is 3 via 2.
        let el = EdgeList::new(3, vec![(0, 1), (0, 2), (2, 1)]);
        let g = CsrGraph::from_edges(&el, false);
        // neighbor array order: offsets by source: 0:[1,2], 2:[1]
        let weights = vec![10, 1, 2];
        let d = sssp_ref(&g, &weights, 0);
        assert_eq!(d, vec![0, 3, 1]);
    }
}
