//! Simulated-memory CSR graph.

use crate::csr::CsrGraph;
use crate::edgelist::NodeId;
use tiersim_mem::{MemBackend, SimVec};

/// A CSR graph whose arrays live in simulated memory.
///
/// The two arrays are the memory objects that dominate the paper's object
/// analysis: `csr.index` (offsets, 8 B per vertex) and `csr.neighbors`
/// (4 B per directed edge — the giant, randomly-accessed object that ends
/// up split across DRAM and NVM).
#[derive(Debug)]
pub struct SimCsrGraph {
    index: SimVec<u64>,
    neighbors: SimVec<NodeId>,
}

impl SimCsrGraph {
    /// Assembles a graph from its simulated arrays.
    ///
    /// # Panics
    ///
    /// Panics if `index` is empty or its host contents are not monotone
    /// offsets covering `neighbors`.
    pub fn from_parts(index: SimVec<u64>, neighbors: SimVec<NodeId>) -> Self {
        assert!(!index.is_empty(), "index must have at least one entry");
        assert!(index.host().windows(2).all(|w| w[0] <= w[1]), "offsets must be monotone");
        let host = index.host();
        assert_eq!(
            host[host.len() - 1] as usize,
            neighbors.len(),
            "offsets must cover the neighbor array"
        );
        SimCsrGraph { index, neighbors }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.index.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Reads the neighbor range of `u` (two index loads).
    #[inline]
    pub fn neighbor_range<B: MemBackend>(&self, b: &mut B, u: NodeId) -> (usize, usize) {
        let start = self.index.get(b, u as usize) as usize;
        let end = self.index.get(b, u as usize + 1) as usize;
        (start, end)
    }

    /// Out-degree of `u` (two index loads).
    #[inline]
    pub fn degree<B: MemBackend>(&self, b: &mut B, u: NodeId) -> usize {
        let (s, e) = self.neighbor_range(b, u);
        e - s
    }

    /// Reads the neighbor at position `i` of the concatenated array.
    #[inline]
    pub fn neighbor<B: MemBackend>(&self, b: &mut B, i: usize) -> NodeId {
        self.neighbors.get(b, i)
    }

    /// Host-side offsets, free of simulation charges (experiment setup and
    /// verification only).
    pub fn host_index(&self) -> &[u64] {
        self.index.host()
    }

    /// Host-side neighbor array, free of simulation charges.
    pub fn host_neighbors(&self) -> &[NodeId] {
        self.neighbors.host()
    }

    /// Host-side out-degree (free); used by source pickers.
    pub fn host_degree(&self, u: NodeId) -> usize {
        (self.host_index()[u as usize + 1] - self.host_index()[u as usize]) as usize
    }

    /// Clones the host data into a [`CsrGraph`] for the verification
    /// oracles.
    pub fn to_host_csr(&self) -> CsrGraph {
        CsrGraph::from_parts(self.index.host().to_vec(), self.neighbors.host().to_vec())
    }

    /// Consumes the graph, unmapping both arrays.
    pub fn unmap<B: MemBackend>(self, b: &mut B) {
        self.index.into_host(b);
        self.neighbors.into_host(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim_mem::NullBackend;

    fn tiny(b: &mut NullBackend) -> SimCsrGraph {
        // 0 -> {1, 2}, 1 -> {2}, 2 -> {}
        let index = SimVec::from_vec(b, "csr.index", vec![0u64, 2, 3, 3]);
        let neighbors = SimVec::from_vec(b, "csr.neighbors", vec![1u32, 2, 2]);
        SimCsrGraph::from_parts(index, neighbors)
    }

    #[test]
    fn shape_queries() {
        let mut b = NullBackend::new();
        let g = tiny(&mut b);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(&mut b, 0), 2);
        assert_eq!(g.degree(&mut b, 2), 0);
        assert_eq!(g.neighbor_range(&mut b, 1), (2, 3));
        assert_eq!(g.neighbor(&mut b, 2), 2);
    }

    #[test]
    fn queries_charge_loads() {
        let mut b = NullBackend::new();
        let g = tiny(&mut b);
        let before = b.loads();
        g.degree(&mut b, 0);
        assert_eq!(b.loads() - before, 2);
        g.neighbor(&mut b, 0);
        assert_eq!(b.loads() - before, 3);
    }

    #[test]
    fn host_round_trip() {
        let mut b = NullBackend::new();
        let g = tiny(&mut b);
        let host = g.to_host_csr();
        assert_eq!(host.num_nodes(), 3);
        assert_eq!(host.neighbors(0), &[1, 2]);
        assert_eq!(g.host_degree(0), 2);
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn mismatched_parts_panic() {
        let mut b = NullBackend::new();
        let index = SimVec::from_vec(&mut b, "i", vec![0u64, 5]);
        let neighbors = SimVec::from_vec(&mut b, "n", vec![1u32]);
        let _ = SimCsrGraph::from_parts(index, neighbors);
    }
}
