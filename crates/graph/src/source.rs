//! Deterministic source picking (GAPBS `SourcePicker`).

use crate::edgelist::NodeId;
use crate::sim::SimCsrGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Picks random non-isolated source vertices, as GAPBS does for BFS/BC/
/// SSSP trials. Deterministic for a given seed.
///
/// # Examples
///
/// ```
/// use tiersim_graph::{build_sim_csr, EdgeList, SourcePicker};
/// use tiersim_mem::NullBackend;
///
/// let el = EdgeList::new(4, vec![(1, 2)]);
/// let mut b = NullBackend::new();
/// let g = build_sim_csr(&mut b, &el, true, 1);
/// let mut p = SourcePicker::new(42);
/// let s = p.pick(&g);
/// assert!(s == 1 || s == 2); // only non-isolated vertices
/// ```
#[derive(Debug, Clone)]
pub struct SourcePicker {
    rng: SmallRng,
}

impl SourcePicker {
    /// Creates a picker with the given seed.
    pub fn new(seed: u64) -> Self {
        SourcePicker { rng: SmallRng::seed_from_u64(seed) }
    }

    /// Picks a vertex with non-zero degree (uses the host-side index,
    /// charging no simulated traffic — picking is experiment setup).
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges at all.
    pub fn pick(&mut self, g: &SimCsrGraph) -> NodeId {
        assert!(g.num_edges() > 0, "cannot pick a source in an edgeless graph");
        let n = g.num_nodes();
        loop {
            let v = self.rng.gen_range(0..n) as NodeId;
            if g.host_degree(v) > 0 {
                return v;
            }
        }
    }

    /// Picks `k` sources (with replacement across picks, like GAPBS
    /// trials).
    pub fn pick_many(&mut self, g: &SimCsrGraph, k: usize) -> Vec<NodeId> {
        (0..k).map(|_| self.pick(g)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_sim_csr;
    use crate::edgelist::EdgeList;
    use tiersim_mem::NullBackend;

    #[test]
    fn picker_is_deterministic() {
        let el = EdgeList::new(8, vec![(0, 1), (2, 3), (4, 5)]);
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 1);
        let a = SourcePicker::new(7).pick_many(&g, 5);
        let c = SourcePicker::new(7).pick_many(&g, 5);
        assert_eq!(a, c);
    }

    #[test]
    fn picker_avoids_isolated_vertices() {
        let el = EdgeList::new(100, vec![(0, 1)]);
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 1);
        for s in SourcePicker::new(1).pick_many(&g, 20) {
            assert!(s == 0 || s == 1);
        }
    }

    #[test]
    #[should_panic(expected = "edgeless")]
    fn edgeless_graph_panics() {
        let el = EdgeList::new(4, vec![]);
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 1);
        let _ = SourcePicker::new(0).pick(&g);
    }
}
