//! One-call verification of simulated kernel results against the host
//! oracles (GAPBS ships analogous `-v` verifiers for every kernel).

use crate::csr::CsrGraph;
use crate::edgelist::NodeId;
use crate::reference;

/// Outcome of a verification, carrying a human-readable mismatch report.
pub type VerifyResult = Result<(), String>;

/// Verifies BFS distances against the reference oracle.
///
/// # Examples
///
/// ```
/// use tiersim_graph::{build_sim_csr, bfs, verify, BfsParams, EdgeList};
/// use tiersim_mem::NullBackend;
///
/// let el = EdgeList::new(3, vec![(0, 1), (1, 2)]);
/// let mut b = NullBackend::new();
/// let g = build_sim_csr(&mut b, &el, true, 1);
/// let r = bfs(&mut b, &g, 0, 1, BfsParams::default());
/// verify::bfs(&g.to_host_csr(), 0, r.dist.host()).unwrap();
/// ```
pub fn bfs(host: &CsrGraph, source: NodeId, dist: &[i32]) -> VerifyResult {
    let expected = reference::bfs_ref(host, source);
    if dist == expected.as_slice() {
        return Ok(());
    }
    let Some(first) = dist.iter().zip(&expected).position(|(a, b)| a != b) else {
        return Err(format!(
            "bfs length mismatch: got {}, expected {}",
            dist.len(),
            expected.len()
        ));
    };
    Err(format!(
        "bfs mismatch at vertex {first}: got {}, expected {}",
        dist[first], expected[first]
    ))
}

/// Verifies BC scores (within floating-point tolerance) against Brandes
/// on the host.
pub fn bc(host: &CsrGraph, sources: &[NodeId], scores: &[f64]) -> VerifyResult {
    let expected = reference::bc_ref(host, sources);
    for (v, (got, want)) in scores.iter().zip(&expected).enumerate() {
        if (got - want).abs() > 1e-6 * (1.0 + want.abs()) {
            return Err(format!("bc mismatch at vertex {v}: got {got}, expected {want}"));
        }
    }
    Ok(())
}

/// Verifies connected-component labels: the partition (not the label
/// values) must match union-find on the host.
pub fn cc(host: &CsrGraph, labels: &[NodeId]) -> VerifyResult {
    let canonical = crate::algo::canonicalize(labels);
    let expected = reference::cc_ref(host);
    if canonical == expected {
        return Ok(());
    }
    let Some(first) = canonical.iter().zip(&expected).position(|(a, b)| a != b) else {
        return Err(format!(
            "cc length mismatch: got {}, expected {}",
            canonical.len(),
            expected.len()
        ));
    };
    Err(format!(
        "cc mismatch at vertex {first}: component {} vs expected {}",
        canonical[first], expected[first]
    ))
}

/// Verifies PageRank scores against the host oracle run with the same
/// parameters.
pub fn pr(host: &CsrGraph, damping: f64, tol: f64, iters: usize, scores: &[f64]) -> VerifyResult {
    let expected = reference::pr_ref(host, damping, tol, iters);
    for (v, (got, want)) in scores.iter().zip(&expected).enumerate() {
        if (got - want).abs() > 1e-9 {
            return Err(format!("pr mismatch at vertex {v}: got {got}, expected {want}"));
        }
    }
    Ok(())
}

/// Verifies SSSP distances against Dijkstra on the host.
pub fn sssp(host: &CsrGraph, weights: &[u32], source: NodeId, dist: &[u64]) -> VerifyResult {
    let expected = reference::sssp_ref(host, weights, source);
    if dist == expected.as_slice() {
        return Ok(());
    }
    let Some(first) = dist.iter().zip(&expected).position(|(a, b)| a != b) else {
        return Err(format!(
            "sssp length mismatch: got {}, expected {}",
            dist.len(),
            expected.len()
        ));
    };
    Err(format!(
        "sssp mismatch at vertex {first}: got {}, expected {}",
        dist[first], expected[first]
    ))
}

/// Verifies a triangle count against the host oracle.
pub fn tc(host: &CsrGraph, count: u64) -> VerifyResult {
    let expected = reference::tc_ref(host);
    if count == expected {
        Ok(())
    } else {
        Err(format!("tc mismatch: got {count}, expected {expected}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{self, BfsParams};
    use crate::builder::{build_sim_csr, build_sim_weights};
    use crate::edgelist::EdgeList;
    use crate::generate::UniformGenerator;
    use tiersim_mem::NullBackend;

    #[test]
    fn all_kernels_verify_on_a_random_graph() {
        let el = UniformGenerator::new(7, 6).seed(3).generate();
        let mut b = NullBackend::new();
        let g = build_sim_csr(&mut b, &el, true, 3);
        let host = g.to_host_csr();

        let r = algo::bfs(&mut b, &g, 5, 3, BfsParams::default());
        bfs(&host, 5, r.dist.host()).unwrap();

        let scores = algo::bc(&mut b, &g, &[5, 9], 3);
        bc(&host, &[5, 9], scores.host()).unwrap();

        let labels = algo::cc_sv(&mut b, &g, 3);
        cc(&host, labels.host()).unwrap();

        let p = algo::pr(&mut b, &g, crate::algo::PrParams::default(), 3);
        pr(&host, 0.85, 1e-4, 20, p.host()).unwrap();

        let w = build_sim_weights(&mut b, &g, 3);
        let d = algo::sssp(&mut b, &g, &w, 5, 16, 3);
        sssp(&host, w.host(), 5, d.host()).unwrap();
    }

    #[test]
    fn mismatches_are_reported_with_context() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 2)]);
        let host = CsrGraph::from_edges(&el, true);
        let err = bfs(&host, 0, &[0, 1, 99]).unwrap_err();
        assert!(err.contains("vertex 2"), "{err}");
        assert!(err.contains("99"));
        let err = cc(&host, &[0, 0, 1]).unwrap_err();
        assert!(err.contains("mismatch"));
        let err = tc(&host, 7).unwrap_err();
        assert!(err.contains("expected 0"));
    }
}
