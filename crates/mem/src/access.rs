//! Access-path request/response types.

use crate::addr::{PageNum, VirtAddr};
use crate::error::PageFault;
use crate::tier::{MemLevel, Tier};
use core::fmt;

/// The kind of memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AccessKind {
    /// A load instruction.
    Load,
    /// A store instruction.
    Store,
}

impl AccessKind {
    /// Returns `true` for stores.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => f.write_str("load"),
            AccessKind::Store => f.write_str("store"),
        }
    }
}

/// The result of one simulated memory access.
///
/// Carries everything the OS model and the PEBS-style sampler need: the
/// satisfying level, the total latency, whether the TLB missed, and whether
/// the access tripped a NUMA-hint marking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The accessed page.
    pub page: PageNum,
    /// Level of the hierarchy that satisfied the access.
    pub level: MemLevel,
    /// Tier backing the page (recorded even for cache hits; the paper's
    /// Table 1 asks "when the external access occurred, where was the
    /// page?", which needs this for external levels).
    pub tier: Tier,
    /// Total latency in cycles, including any TLB/page-walk cost.
    pub cycles: u64,
    /// `true` if the access required a page walk (full TLB miss).
    pub tlb_miss: bool,
    /// `true` if the page was hint-marked by the NUMA scanner; the OS
    /// model must treat this access as a hint page fault.
    pub hint_fault: bool,
    /// The scanner timestamp recorded when the page was hint-marked
    /// (meaningful when `hint_fault` is set); used to compute the hint
    /// page-fault latency.
    pub hint_scan_time: u64,
}

/// Why an access could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessError {
    /// The page is mapped by a VMA but not resident: a (major) page fault
    /// the OS model must service by placing the page.
    Fault(PageFault),
    /// No VMA covers the address.
    Segfault {
        /// The faulting address.
        addr: VirtAddr,
    },
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::Fault(pf) => write!(f, "page fault at {} ({})", pf.addr, pf.page),
            AccessError::Segfault { addr } => write!(f, "segmentation fault at {addr}"),
        }
    }
}

impl std::error::Error for AccessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Store.is_store());
        assert!(!AccessKind::Load.is_store());
        assert_eq!(AccessKind::Load.to_string(), "load");
    }

    #[test]
    fn error_display() {
        let e = AccessError::Segfault { addr: VirtAddr::new(0x1234) };
        assert!(e.to_string().contains("0x1234"));
    }
}
