//! Address primitives: virtual addresses, page numbers, cache lines.
//!
//! The simulator models a 64-bit virtual address space with 4 KiB pages and
//! 64-byte cache lines, matching the x86-64 machine used in the paper.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// Size of a simulated page in bytes (4 KiB, x86-64 base pages).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Size of a cache line in bytes.
pub const LINE_SIZE: u64 = 64;
/// log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;
/// Size of a simulated huge page in bytes (2 MiB, x86-64 PMD pages).
pub const HUGE_PAGE_SIZE: u64 = 2 * 1024 * 1024;
/// log2 of [`HUGE_PAGE_SIZE`].
pub const HUGE_PAGE_SHIFT: u32 = 21;
/// Base (4 KiB) pages per huge page.
pub const HUGE_PAGE_PAGES: u64 = HUGE_PAGE_SIZE / PAGE_SIZE;

/// A virtual address in the simulated address space.
///
/// `VirtAddr` is a transparent `u64` newtype ([C-NEWTYPE]): it prevents
/// accidentally mixing simulated addresses with host pointers or plain
/// counters. Arithmetic that makes sense for addresses (offsetting by a byte
/// count) is provided via `Add<u64>`/`Sub<u64>`.
///
/// # Examples
///
/// ```
/// use tiersim_mem::{VirtAddr, PAGE_SIZE};
///
/// let a = VirtAddr::new(3 * PAGE_SIZE + 17);
/// assert_eq!(a.page().index(), 3);
/// assert_eq!(a.page_offset(), 17);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// The null address. Never returned by a successful `mmap`.
    pub const NULL: VirtAddr = VirtAddr(0);

    /// Creates a virtual address from a raw `u64`.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw `u64` value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the page containing this address.
    #[inline]
    pub const fn page(self) -> PageNum {
        PageNum(self.0 >> PAGE_SHIFT)
    }

    /// Returns the byte offset of this address within its page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Returns the cache-line number containing this address.
    #[inline]
    pub const fn line(self) -> u64 {
        self.0 >> LINE_SHIFT
    }

    /// Rounds this address down to its page boundary.
    #[inline]
    pub const fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// Returns `true` if the address is page aligned.
    #[inline]
    pub const fn is_page_aligned(self) -> bool {
        self.0 & (PAGE_SIZE - 1) == 0
    }

    /// Offsets the address by `bytes`, checking for overflow.
    ///
    /// Returns `None` on overflow of the 64-bit address space.
    #[inline]
    pub fn checked_add(self, bytes: u64) -> Option<VirtAddr> {
        self.0.checked_add(bytes).map(VirtAddr)
    }
}

impl Add<u64> for VirtAddr {
    type Output = VirtAddr;
    #[inline]
    fn add(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 + rhs)
    }
}

impl AddAssign<u64> for VirtAddr {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<u64> for VirtAddr {
    type Output = VirtAddr;
    #[inline]
    fn sub(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 - rhs)
    }
}

impl Sub<VirtAddr> for VirtAddr {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: VirtAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

impl From<VirtAddr> for u64 {
    fn from(addr: VirtAddr) -> u64 {
        addr.0
    }
}

/// A virtual page number (virtual address divided by the page size).
///
/// # Examples
///
/// ```
/// use tiersim_mem::{PageNum, VirtAddr, PAGE_SIZE};
///
/// let pn = PageNum::new(7);
/// assert_eq!(pn.base(), VirtAddr::new(7 * PAGE_SIZE));
/// assert_eq!(pn.next().index(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageNum(u64);

impl PageNum {
    /// Creates a page number from a raw index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        PageNum(index)
    }

    /// Returns the raw page index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the first virtual address of this page.
    #[inline]
    pub const fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// Returns the page following this one.
    #[inline]
    pub const fn next(self) -> PageNum {
        PageNum(self.0 + 1)
    }

    /// Rounds this page number down to its 2 MiB huge-page boundary.
    #[inline]
    pub const fn huge_head(self) -> PageNum {
        PageNum(self.0 & !(HUGE_PAGE_PAGES - 1))
    }

    /// Returns `true` if this page is on a 2 MiB huge-page boundary.
    #[inline]
    pub const fn is_huge_head(self) -> bool {
        self.0 & (HUGE_PAGE_PAGES - 1) == 0
    }
}

impl fmt::Display for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{}", self.0)
    }
}

/// Identifier of a simulated (virtual) hardware thread.
///
/// The simulator is single-threaded; `ThreadId` attributes each access in
/// the stream to one of the workload's logical threads, exactly as the
/// paper's perf samples carry the originating hardware thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u16);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Returns the number of pages needed to hold `bytes` (rounding up).
///
/// # Examples
///
/// ```
/// use tiersim_mem::pages_for;
/// assert_eq!(pages_for(1), 1);
/// assert_eq!(pages_for(4096), 1);
/// assert_eq!(pages_for(4097), 2);
/// assert_eq!(pages_for(0), 0);
/// ```
#[inline]
pub const fn pages_for(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_and_offset_roundtrip() {
        let a = VirtAddr::new(5 * PAGE_SIZE + 123);
        assert_eq!(a.page(), PageNum::new(5));
        assert_eq!(a.page_offset(), 123);
        assert_eq!(a.page().base() + a.page_offset(), a);
    }

    #[test]
    fn line_numbering() {
        assert_eq!(VirtAddr::new(0).line(), 0);
        assert_eq!(VirtAddr::new(63).line(), 0);
        assert_eq!(VirtAddr::new(64).line(), 1);
        assert_eq!(VirtAddr::new(PAGE_SIZE).line(), PAGE_SIZE / LINE_SIZE);
    }

    #[test]
    fn alignment_helpers() {
        assert!(VirtAddr::new(PAGE_SIZE).is_page_aligned());
        assert!(!VirtAddr::new(PAGE_SIZE + 1).is_page_aligned());
        assert_eq!(VirtAddr::new(PAGE_SIZE + 1).page_base(), VirtAddr::new(PAGE_SIZE));
    }

    #[test]
    fn address_arithmetic() {
        let a = VirtAddr::new(100);
        assert_eq!((a + 28).raw(), 128);
        assert_eq!((a + 28) - a, 28);
        assert_eq!(VirtAddr::new(u64::MAX).checked_add(1), None);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(2 * PAGE_SIZE), 2);
        assert_eq!(pages_for(2 * PAGE_SIZE + 1), 3);
    }

    #[test]
    fn huge_page_geometry() {
        assert_eq!(HUGE_PAGE_SIZE, 1 << HUGE_PAGE_SHIFT);
        assert_eq!(HUGE_PAGE_PAGES, 512);
        assert_eq!(PageNum::new(512).huge_head(), PageNum::new(512));
        assert_eq!(PageNum::new(1023).huge_head(), PageNum::new(512));
        assert!(PageNum::new(1024).is_huge_head());
        assert!(!PageNum::new(1025).is_huge_head());
    }
}
