//! The `MemBackend` trait: how workloads issue simulated memory traffic.

use crate::addr::{ThreadId, VirtAddr};

/// A sink for simulated memory operations.
///
/// Workload code (graph algorithms, builders) is written against this
/// trait so the same code can run on the full machine (charging caches,
/// TLB, devices, OS events) or on a free "null" backend for verification.
///
/// Implementations are expected to be infallible from the workload's point
/// of view: page faults and reclaim are serviced internally by the machine,
/// exactly as hardware+OS are invisible to a real application.
pub trait MemBackend {
    /// Maps a region of `len` bytes and returns its base address.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the simulated virtual address space is
    /// exhausted (practically unreachable).
    fn mmap(&mut self, len: u64, label: &str) -> VirtAddr;

    /// Unmaps the region based at `addr`.
    fn munmap(&mut self, addr: VirtAddr);

    /// Issues a load of `bytes` bytes at `addr`.
    fn load(&mut self, addr: VirtAddr, bytes: u32);

    /// Issues a store of `bytes` bytes at `addr`.
    fn store(&mut self, addr: VirtAddr, bytes: u32);

    /// Issues `count` sequential loads of one `stride`-byte element each,
    /// element `i` at `addr + i * stride`.
    ///
    /// The default implementation is the plain per-element loop, so every
    /// backend behaves identically by construction; backends with a
    /// batched fast path may override it, but must keep all observable
    /// behavior bit-equal to the loop.
    fn load_run(&mut self, addr: VirtAddr, stride: u32, count: u64) {
        for i in 0..count {
            self.load(addr + i * u64::from(stride), stride);
        }
    }

    /// Issues `count` sequential stores of one `stride`-byte element
    /// each; the batched dual of [`MemBackend::load_run`].
    fn store_run(&mut self, addr: VirtAddr, stride: u32, count: u64) {
        for i in 0..count {
            self.store(addr + i * u64::from(stride), stride);
        }
    }

    /// Sets the logical thread subsequent operations are attributed to.
    fn set_thread(&mut self, _tid: ThreadId) {}

    /// Charges `cycles` of pure compute (no memory) work.
    fn cpu_work(&mut self, _cycles: u64) {}

    /// Current simulated time in cycles (0 for backends without a clock).
    fn now_cycles(&self) -> u64 {
        0
    }
}

/// A backend that performs no simulation: `mmap` hands out distinct
/// addresses and all traffic is merely counted.
///
/// Useful for running the graph algorithms at host speed (reference
/// results) and for unit-testing workload code.
///
/// # Examples
///
/// ```
/// use tiersim_mem::{MemBackend, NullBackend};
///
/// let mut b = NullBackend::new();
/// let a = b.mmap(100, "x");
/// let c = b.mmap(100, "y");
/// assert_ne!(a, c);
/// b.load(a, 8);
/// assert_eq!(b.loads(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NullBackend {
    next: u64,
    loads: u64,
    stores: u64,
    mmaps: u64,
}

impl NullBackend {
    /// Creates a null backend.
    pub fn new() -> Self {
        NullBackend { next: crate::vma::MMAP_BASE, loads: 0, stores: 0, mmaps: 0 }
    }

    /// Number of loads issued.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Number of stores issued.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Number of regions mapped.
    pub fn mmaps(&self) -> u64 {
        self.mmaps
    }
}

impl MemBackend for NullBackend {
    fn mmap(&mut self, len: u64, _label: &str) -> VirtAddr {
        let addr = VirtAddr::new(self.next);
        let len = crate::addr::pages_for(len).max(1) * crate::addr::PAGE_SIZE;
        self.next += len + crate::addr::PAGE_SIZE;
        self.mmaps += 1;
        addr
    }

    fn munmap(&mut self, _addr: VirtAddr) {}

    fn load(&mut self, _addr: VirtAddr, _bytes: u32) {
        self.loads += 1;
    }

    fn store(&mut self, _addr: VirtAddr, _bytes: u32) {
        self.stores += 1;
    }

    fn load_run(&mut self, _addr: VirtAddr, _stride: u32, count: u64) {
        self.loads += count;
    }

    fn store_run(&mut self, _addr: VirtAddr, _stride: u32, count: u64) {
        self.stores += count;
    }
}

impl<B: MemBackend + ?Sized> MemBackend for &mut B {
    fn mmap(&mut self, len: u64, label: &str) -> VirtAddr {
        (**self).mmap(len, label)
    }
    fn munmap(&mut self, addr: VirtAddr) {
        (**self).munmap(addr)
    }
    fn load(&mut self, addr: VirtAddr, bytes: u32) {
        (**self).load(addr, bytes)
    }
    fn store(&mut self, addr: VirtAddr, bytes: u32) {
        (**self).store(addr, bytes)
    }
    fn load_run(&mut self, addr: VirtAddr, stride: u32, count: u64) {
        (**self).load_run(addr, stride, count)
    }
    fn store_run(&mut self, addr: VirtAddr, stride: u32, count: u64) {
        (**self).store_run(addr, stride, count)
    }
    fn set_thread(&mut self, tid: ThreadId) {
        (**self).set_thread(tid)
    }
    fn cpu_work(&mut self, cycles: u64) {
        (**self).cpu_work(cycles)
    }
    fn now_cycles(&self) -> u64 {
        (**self).now_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_backend_hands_out_disjoint_regions() {
        let mut b = NullBackend::new();
        let a = b.mmap(8192, "a");
        let c = b.mmap(1, "b");
        assert!(c.raw() >= a.raw() + 8192);
        assert_eq!(b.mmaps(), 2);
    }

    #[test]
    fn run_defaults_match_per_element_loop() {
        /// Override-free backend: exercises the default `*_run` loops.
        #[derive(Default)]
        struct Plain {
            log: Vec<(u64, u32, bool)>,
        }
        impl MemBackend for Plain {
            fn mmap(&mut self, _len: u64, _label: &str) -> VirtAddr {
                VirtAddr::new(crate::vma::MMAP_BASE)
            }
            fn munmap(&mut self, _addr: VirtAddr) {}
            fn load(&mut self, addr: VirtAddr, bytes: u32) {
                self.log.push((addr.raw(), bytes, false));
            }
            fn store(&mut self, addr: VirtAddr, bytes: u32) {
                self.log.push((addr.raw(), bytes, true));
            }
        }
        let mut a = Plain::default();
        let mut b = Plain::default();
        let base = a.mmap(64, "x");
        a.load_run(base, 8, 5);
        a.store_run(base + 64, 4, 3);
        for i in 0..5 {
            b.load(base + i * 8, 8);
        }
        for i in 0..3 {
            b.store(base + 64 + i * 4, 4);
        }
        assert_eq!(a.log, b.log);
    }

    #[test]
    fn null_backend_bulk_counts_match_loop() {
        let mut bulk = NullBackend::new();
        let mut looped = NullBackend::new();
        let a = bulk.mmap(4096, "a");
        looped.mmap(4096, "a");
        bulk.load_run(a, 8, 100);
        bulk.store_run(a, 8, 40);
        for i in 0..100 {
            looped.load(a + i * 8, 8);
        }
        for i in 0..40 {
            looped.store(a + i * 8, 8);
        }
        assert_eq!(bulk.loads(), looped.loads());
        assert_eq!(bulk.stores(), looped.stores());
    }

    #[test]
    fn counts_traffic() {
        let mut b = NullBackend::new();
        let a = b.mmap(64, "a");
        b.load(a, 4);
        b.store(a, 4);
        b.store(a, 4);
        assert_eq!(b.loads(), 1);
        assert_eq!(b.stores(), 2);
    }

    #[test]
    fn trait_object_and_reference_forwarding() {
        fn use_backend<B: MemBackend>(b: &mut B) -> VirtAddr {
            b.mmap(16, "z")
        }
        let mut b = NullBackend::new();
        let via_ref = use_backend(&mut &mut b);
        assert_ne!(via_ref, VirtAddr::NULL);
        let dyn_b: &mut dyn MemBackend = &mut b;
        dyn_b.load(via_ref, 8);
        assert_eq!(b.loads(), 1);
    }
}
