//! Generic set-associative cache with true-LRU replacement.

use crate::config::CacheGeometry;

/// Result of a cache lookup-with-fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled. If the victim way held a
    /// dirty line, its line number is reported so the caller can write it
    /// back to the next level.
    Miss {
        /// Dirty victim evicted by the fill, if any.
        writeback: Option<u64>,
    },
}

impl CacheOutcome {
    /// Returns `true` on a hit.
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of dirty victims evicted.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total number of lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; `0` if there were no lookups.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// A set-associative, write-back, write-allocate cache over 64-byte lines.
///
/// Tags are full line numbers, so the cache can be indexed with simulated
/// virtual line numbers directly (the simulator has a single address space,
/// so there is no aliasing). Replacement is true LRU per set.
///
/// # Examples
///
/// ```
/// use tiersim_mem::{CacheGeometry, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheGeometry { capacity: 4096, ways: 2, latency: 4 });
/// assert!(!c.access(7, false).is_hit()); // cold miss
/// assert!(c.access(7, false).is_hit());  // now cached
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    ways: usize,
    set_mask: u64,
    /// Tag per (set, way); `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    /// LRU age per (set, way); 0 is most recently used.
    ages: Vec<u8>,
    dirty: Vec<bool>,
    stats: CacheStats,
}

const INVALID: u64 = u64::MAX;

impl SetAssocCache {
    /// Creates a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (use
    /// [`CacheGeometry`] values validated by
    /// [`MemConfig::validate`](crate::MemConfig::validate)) or if
    /// associativity exceeds 255.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.sets();
        let ways = geometry.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!((1..=255).contains(&ways), "associativity must be in 1..=255");
        SetAssocCache {
            geometry,
            ways,
            set_mask: sets as u64 - 1,
            tags: vec![INVALID; sets * ways],
            ages: vec![0; sets * ways],
            dirty: vec![false; sets * ways],
            stats: CacheStats::default(),
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Hit latency in cycles.
    #[inline]
    pub fn latency(&self) -> u64 {
        self.geometry.latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Looks up `line`; on a miss the line is filled, evicting the LRU way.
    ///
    /// `write` marks the line dirty (write-allocate, write-back).
    #[inline]
    pub fn access(&mut self, line: u64, write: bool) -> CacheOutcome {
        debug_assert_ne!(line, INVALID);
        let set = self.set_of(line);
        let base = set * self.ways;
        let ways = &mut self.tags[base..base + self.ways];

        // Hit path.
        if let Some(w) = ways.iter().position(|&t| t == line) {
            self.touch(base, w);
            if write {
                self.dirty[base + w] = true;
            }
            self.stats.hits += 1;
            return CacheOutcome::Hit;
        }

        // Miss: pick victim = invalid way if any, else LRU (max age).
        self.stats.misses += 1;
        let victim = (0..self.ways)
            .find(|&w| self.tags[base + w] == INVALID)
            .or_else(|| (0..self.ways).max_by_key(|&w| self.ages[base + w]))
            .unwrap_or(0);
        let idx = base + victim;
        let writeback = if self.tags[idx] != INVALID && self.dirty[idx] {
            self.stats.writebacks += 1;
            Some(self.tags[idx])
        } else {
            None
        };
        self.tags[idx] = line;
        self.dirty[idx] = write;
        self.fill_touch(base, victim);
        CacheOutcome::Miss { writeback }
    }

    /// Credits `n` additional hits without touching replacement state.
    ///
    /// Used by the sequential fast lane for repeat accesses to the line
    /// just accessed: a repeat [`SetAssocCache::access`] of a set's MRU
    /// line leaves tags, ages and dirty bits unchanged (re-touching the
    /// MRU way is a no-op, and a store re-marks an already-dirty line),
    /// so the bulk credit is exactly equivalent to `n` repeat accesses.
    #[inline]
    pub fn record_hit_run(&mut self, n: u64) {
        self.stats.hits += n;
    }

    /// Returns `true` if `line` is present, without disturbing LRU state.
    pub fn probe(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&line)
    }

    /// Marks `line` dirty if present (used to propagate dirtiness from an
    /// evicted upper-level line). Returns `true` if the line was present.
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.ways;
        if let Some(w) = self.tags[base..base + self.ways].iter().position(|&t| t == line) {
            self.dirty[base + w] = true;
            true
        } else {
            false
        }
    }

    /// Moves way `w` of the set at `base` to MRU position after a hit.
    #[inline]
    fn touch(&mut self, base: usize, w: usize) {
        let cur = self.ages[base + w];
        for age in &mut self.ages[base..base + self.ways] {
            if *age < cur {
                *age += 1;
            }
        }
        self.ages[base + w] = 0;
    }

    /// Moves a freshly filled way to MRU position: unlike [`Self::touch`],
    /// every other way ages (a new line is younger than all of them).
    #[inline]
    fn fill_touch(&mut self, base: usize, w: usize) {
        for age in &mut self.ages[base..base + self.ways] {
            *age = age.saturating_add(1);
        }
        self.ages[base + w] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize, sets: usize) -> SetAssocCache {
        SetAssocCache::new(CacheGeometry { capacity: (ways * sets) as u64 * 64, ways, latency: 1 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny(2, 2);
        assert!(!c.access(10, false).is_hit());
        assert!(c.access(10, false).is_hit());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, 1);
        c.access(0, false);
        c.access(1, false);
        c.access(0, false); // 1 is now LRU
        c.access(2, false); // evicts 1
        assert!(c.probe(0));
        assert!(!c.probe(1));
        assert!(c.probe(2));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny(1, 1);
        c.access(5, true);
        match c.access(6, false) {
            CacheOutcome::Miss { writeback } => assert_eq!(writeback, Some(5)),
            CacheOutcome::Hit => panic!("expected miss"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny(1, 1);
        c.access(5, false);
        match c.access(6, false) {
            CacheOutcome::Miss { writeback } => assert_eq!(writeback, None),
            CacheOutcome::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn lines_map_to_distinct_sets() {
        let mut c = tiny(1, 4);
        for line in 0..4 {
            c.access(line, false);
        }
        for line in 0..4 {
            assert!(c.probe(line));
        }
    }

    #[test]
    fn mark_dirty_propagates() {
        let mut c = tiny(1, 1);
        c.access(9, false);
        assert!(c.mark_dirty(9));
        match c.access(10, false) {
            CacheOutcome::Miss { writeback } => assert_eq!(writeback, Some(9)),
            CacheOutcome::Hit => panic!("expected miss"),
        }
        assert!(!c.mark_dirty(42));
    }

    #[test]
    fn bulk_hit_credit_matches_repeat_accesses() {
        let mut looped = tiny(2, 1);
        looped.access(0, false);
        looped.access(1, true);
        let mut bulk = looped.clone();
        for _ in 0..4 {
            assert!(looped.access(1, true).is_hit());
        }
        assert!(bulk.access(1, true).is_hit());
        bulk.record_hit_run(3);
        assert_eq!(looped.stats(), bulk.stats());
        // Replacement state is untouched either way: line 0 is still the
        // LRU victim, and the dirty victim is still line 1's neighbor.
        looped.access(2, false);
        bulk.access(2, false);
        assert_eq!(looped.stats(), bulk.stats());
        assert!(looped.probe(1) && bulk.probe(1));
        assert!(!looped.probe(0) && !bulk.probe(0));
    }

    #[test]
    fn hit_ratio() {
        let mut c = tiny(2, 2);
        c.access(1, false);
        c.access(1, false);
        c.access(1, false);
        c.access(1, false);
        assert!((c.stats().hit_ratio() - 0.75).abs() < 1e-12);
    }
}
