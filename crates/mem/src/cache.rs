//! Generic set-associative cache with true-LRU replacement.

use crate::config::CacheGeometry;

/// Result of a cache lookup-with-fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled. If the victim way held a
    /// dirty line, its line number is reported so the caller can write it
    /// back to the next level.
    Miss {
        /// Dirty victim evicted by the fill, if any.
        writeback: Option<u64>,
    },
}

impl CacheOutcome {
    /// Returns `true` on a hit.
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of dirty victims evicted.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total number of lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; `0` if there were no lookups.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// A set-associative, write-back, write-allocate cache over 64-byte lines.
///
/// Tags are full line numbers, so the cache can be indexed with simulated
/// virtual line numbers directly (the simulator has a single address space,
/// so there is no aliasing). Replacement is true LRU per set.
///
/// # Examples
///
/// ```
/// use tiersim_mem::{CacheGeometry, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheGeometry { capacity: 4096, ways: 2, latency: 4 });
/// assert!(!c.access(7, false).is_hit()); // cold miss
/// assert!(c.access(7, false).is_hit());  // now cached
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    ways: usize,
    set_mask: u64,
    /// Tag per (set, way); `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    /// Per-set LRU order: `ways` way indices per set, MRU first. The
    /// victim is always the last entry, so a fill is an O(1) pick plus a
    /// small byte rotate instead of an aging sweep — the representation
    /// the interval engine's bulk fills lean on. Initialized with way 0
    /// last, so invalid ways are consumed in index order exactly like a
    /// first-free-way scan.
    order: Vec<u8>,
    dirty: Vec<bool>,
    /// Count of currently dirty lines, maintained incrementally. The
    /// interval engine uses `dirty_lines == 0` as proof that every
    /// eviction during a cold streaming run is clean (no writeback
    /// traffic can occur), which is one of its validity conditions.
    dirty_lines: u64,
    stats: CacheStats,
}

const INVALID: u64 = u64::MAX;

impl SetAssocCache {
    /// Creates a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (use
    /// [`CacheGeometry`] values validated by
    /// [`MemConfig::validate`](crate::MemConfig::validate)) or if
    /// associativity exceeds 255.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.sets();
        let ways = geometry.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!((1..=255).contains(&ways), "associativity must be in 1..=255");
        let mut order = Vec::with_capacity(sets * ways);
        for _ in 0..sets {
            order.extend((0..ways as u8).rev());
        }
        SetAssocCache {
            geometry,
            ways,
            set_mask: sets as u64 - 1,
            tags: vec![INVALID; sets * ways],
            order,
            dirty: vec![false; sets * ways],
            dirty_lines: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Hit latency in cycles.
    #[inline]
    pub fn latency(&self) -> u64 {
        self.geometry.latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Looks up `line`; on a miss the line is filled, evicting the LRU way.
    ///
    /// `write` marks the line dirty (write-allocate, write-back).
    #[inline]
    pub fn access(&mut self, line: u64, write: bool) -> CacheOutcome {
        debug_assert_ne!(line, INVALID);
        let set = self.set_of(line);
        let base = set * self.ways;
        let ways = &mut self.tags[base..base + self.ways];

        // Hit path.
        if let Some(w) = ways.iter().position(|&t| t == line) {
            self.touch(base, w as u8);
            if write && !self.dirty[base + w] {
                self.dirty[base + w] = true;
                self.dirty_lines += 1;
            }
            self.stats.hits += 1;
            return CacheOutcome::Hit;
        }

        // Miss: the victim is the LRU-order tail — an invalid way while
        // any remain (they start at the tail and are never touched), the
        // least recently used line afterwards.
        self.stats.misses += 1;
        let victim = self.pop_lru(base);
        let idx = base + usize::from(victim);
        let writeback = if self.tags[idx] != INVALID && self.dirty[idx] {
            self.stats.writebacks += 1;
            self.dirty_lines -= 1;
            Some(self.tags[idx])
        } else {
            None
        };
        self.tags[idx] = line;
        self.dirty[idx] = write;
        if write {
            self.dirty_lines += 1;
        }
        CacheOutcome::Miss { writeback }
    }

    /// Fills a line the caller has *proved* absent (and whose victim is
    /// provably clean because [`SetAssocCache::dirty_lines`]` == 0`):
    /// exactly [`SetAssocCache::access`]`(line, false)` minus the hit scan
    /// and the writeback branch, both of which are dead under those
    /// preconditions. The interval engine's per-line workhorse.
    #[inline]
    pub fn fill_cold(&mut self, line: u64) {
        debug_assert_ne!(line, INVALID);
        let base = self.set_of(line) * self.ways;
        debug_assert!(
            !self.tags[base..base + self.ways].contains(&line),
            "fill_cold of a line that is present"
        );
        self.stats.misses += 1;
        let victim = self.pop_lru(base);
        debug_assert!(!self.dirty[base + usize::from(victim)], "fill_cold evicting a dirty line");
        self.tags[base + usize::from(victim)] = line;
    }

    /// Fills `n` sequential lines the caller has proved absent (victims
    /// provably clean, as for [`SetAssocCache::fill_cold`]): exactly
    /// equivalent to `n` `fill_cold` calls on `first_line..first_line+n`,
    /// with the stats update hoisted out of the loop. The interval
    /// engine's per-page workhorse.
    pub fn fill_cold_run(&mut self, first_line: u64, n: u64) {
        self.stats.misses += n;
        for line in first_line..first_line + n {
            debug_assert_ne!(line, INVALID);
            let base = self.set_of(line) * self.ways;
            debug_assert!(
                !self.tags[base..base + self.ways].contains(&line),
                "fill_cold_run of a line that is present"
            );
            let victim = self.pop_lru(base);
            debug_assert!(
                !self.dirty[base + usize::from(victim)],
                "fill_cold_run evicting a dirty line"
            );
            self.tags[base + usize::from(victim)] = line;
        }
    }

    /// Number of currently dirty lines.
    #[inline]
    pub fn dirty_lines(&self) -> u64 {
        self.dirty_lines
    }

    /// Credits `n` additional hits without touching replacement state.
    ///
    /// Used by the sequential fast lane for repeat accesses to the line
    /// just accessed: a repeat [`SetAssocCache::access`] of a set's MRU
    /// line leaves tags, ages and dirty bits unchanged (re-touching the
    /// MRU way is a no-op, and a store re-marks an already-dirty line),
    /// so the bulk credit is exactly equivalent to `n` repeat accesses.
    #[inline]
    pub fn record_hit_run(&mut self, n: u64) {
        self.stats.hits += n;
    }

    /// Returns `true` if `line` is present, without disturbing LRU state.
    pub fn probe(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&line)
    }

    /// Marks `line` dirty if present (used to propagate dirtiness from an
    /// evicted upper-level line). Returns `true` if the line was present.
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.ways;
        if let Some(w) = self.tags[base..base + self.ways].iter().position(|&t| t == line) {
            if !self.dirty[base + w] {
                self.dirty[base + w] = true;
                self.dirty_lines += 1;
            }
            true
        } else {
            false
        }
    }

    /// Moves way `w` of the set at `base` to MRU position after a hit.
    #[inline]
    fn touch(&mut self, base: usize, w: u8) {
        let order = &mut self.order[base..base + self.ways];
        // Already MRU: nothing to move. Borrowed from bavy's minimal MMU
        // (SNIPPETS.md §2), whose hit path does zero bookkeeping;
        // streaming workloads re-touch the MRU way constantly.
        if order[0] == w {
            return;
        }
        let pos = order.iter().position(|&o| o == w).unwrap_or(0);
        order.copy_within(0..pos, 1);
        order[0] = w;
    }

    /// Pops the LRU-order tail of the set at `base` and re-inserts it at
    /// the MRU head, returning it — the victim way of a fill. One small
    /// byte rotate; no per-way aging sweep.
    #[inline]
    fn pop_lru(&mut self, base: usize) -> u8 {
        let order = &mut self.order[base..base + self.ways];
        let victim = order[self.ways - 1];
        order.copy_within(0..self.ways - 1, 1);
        order[0] = victim;
        victim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize, sets: usize) -> SetAssocCache {
        SetAssocCache::new(CacheGeometry { capacity: (ways * sets) as u64 * 64, ways, latency: 1 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny(2, 2);
        assert!(!c.access(10, false).is_hit());
        assert!(c.access(10, false).is_hit());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, 1);
        c.access(0, false);
        c.access(1, false);
        c.access(0, false); // 1 is now LRU
        c.access(2, false); // evicts 1
        assert!(c.probe(0));
        assert!(!c.probe(1));
        assert!(c.probe(2));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny(1, 1);
        c.access(5, true);
        match c.access(6, false) {
            CacheOutcome::Miss { writeback } => assert_eq!(writeback, Some(5)),
            CacheOutcome::Hit => panic!("expected miss"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny(1, 1);
        c.access(5, false);
        match c.access(6, false) {
            CacheOutcome::Miss { writeback } => assert_eq!(writeback, None),
            CacheOutcome::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn lines_map_to_distinct_sets() {
        let mut c = tiny(1, 4);
        for line in 0..4 {
            c.access(line, false);
        }
        for line in 0..4 {
            assert!(c.probe(line));
        }
    }

    #[test]
    fn mark_dirty_propagates() {
        let mut c = tiny(1, 1);
        c.access(9, false);
        assert!(c.mark_dirty(9));
        match c.access(10, false) {
            CacheOutcome::Miss { writeback } => assert_eq!(writeback, Some(9)),
            CacheOutcome::Hit => panic!("expected miss"),
        }
        assert!(!c.mark_dirty(42));
    }

    #[test]
    fn bulk_hit_credit_matches_repeat_accesses() {
        let mut looped = tiny(2, 1);
        looped.access(0, false);
        looped.access(1, true);
        let mut bulk = looped.clone();
        for _ in 0..4 {
            assert!(looped.access(1, true).is_hit());
        }
        assert!(bulk.access(1, true).is_hit());
        bulk.record_hit_run(3);
        assert_eq!(looped.stats(), bulk.stats());
        // Replacement state is untouched either way: line 0 is still the
        // LRU victim, and the dirty victim is still line 1's neighbor.
        looped.access(2, false);
        bulk.access(2, false);
        assert_eq!(looped.stats(), bulk.stats());
        assert!(looped.probe(1) && bulk.probe(1));
        assert!(!looped.probe(0) && !bulk.probe(0));
    }

    #[test]
    fn fill_cold_matches_access_on_clean_cache() {
        let mut via_access = tiny(2, 2);
        via_access.access(1, false);
        via_access.access(3, false);
        let mut via_cold = via_access.clone();
        for line in [5, 7, 9, 11] {
            via_access.access(line, false);
            via_cold.fill_cold(line);
        }
        assert_eq!(via_access.stats(), via_cold.stats());
        for line in [1, 5, 7, 9, 11] {
            assert_eq!(via_access.probe(line), via_cold.probe(line), "line {line}");
        }
        // Subsequent normal traffic observes identical replacement state.
        via_access.access(13, false);
        via_cold.access(13, false);
        assert_eq!(via_access.probe(5), via_cold.probe(5));
        assert_eq!(via_access.probe(9), via_cold.probe(9));
    }

    #[test]
    fn fill_cold_run_matches_per_line_fill_cold() {
        // Cover partially filled sets, full sets with LRU eviction, and
        // set reuse within one run (n > sets), across geometries.
        for (ways, sets) in [(2usize, 2usize), (8, 4), (4, 16)] {
            let mut looped = tiny(ways, sets);
            // Pre-populate with a clean, irregular working set.
            for line in [0u64, 3, 7, 1, 3, 0] {
                looped.access(line, false);
            }
            let mut bulk = looped.clone();
            let (first, n) = (5u64, (2 * sets + 1) as u64);
            for line in first..first + n {
                if !looped.probe(line) {
                    looped.fill_cold(line);
                }
            }
            // The bulk path needs the same absent-lines precondition; the
            // range above only collides for the smallest geometry, so
            // filter identically.
            let absent: Vec<u64> = (first..first + n).filter(|&l| !bulk.probe(l)).collect();
            let mut start = absent[0];
            let mut len = 0u64;
            for &l in &absent {
                if l == start + len {
                    len += 1;
                } else {
                    bulk.fill_cold_run(start, len);
                    start = l;
                    len = 1;
                }
            }
            bulk.fill_cold_run(start, len);
            assert_eq!(looped.stats(), bulk.stats(), "{ways}w{sets}s");
            assert_eq!(looped.tags, bulk.tags, "{ways}w{sets}s");
            assert_eq!(looped.order, bulk.order, "{ways}w{sets}s");
        }
    }

    #[test]
    fn dirty_lines_tracks_stores_and_writebacks() {
        let mut c = tiny(1, 2);
        assert_eq!(c.dirty_lines(), 0);
        c.access(0, true);
        assert_eq!(c.dirty_lines(), 1);
        c.access(0, true); // re-dirtying is not double counted
        assert_eq!(c.dirty_lines(), 1);
        c.access(1, false);
        assert!(c.mark_dirty(1));
        assert_eq!(c.dirty_lines(), 2);
        c.access(2, false); // evicts dirty line 0 (set 0)
        assert_eq!(c.dirty_lines(), 1);
        c.access(3, false); // evicts dirty line 1 (set 1)
        assert_eq!(c.dirty_lines(), 0);
        assert_eq!(c.stats().writebacks, 2);
    }

    #[test]
    fn hit_ratio() {
        let mut c = tiny(2, 2);
        c.access(1, false);
        c.access(1, false);
        c.access(1, false);
        c.access(1, false);
        assert!((c.stats().hit_ratio() - 0.75).abs() < 1e-12);
    }
}
