//! Configuration for the simulated memory system.

use crate::error::MemError;
use crate::fault::FaultPlan;
use tiersim_trace::TraceConfig;

/// Geometry of one set-associative cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheGeometry {
    /// Total capacity in bytes. Must be `ways * sets * 64`.
    pub capacity: u64,
    /// Associativity (number of ways per set).
    pub ways: usize,
    /// Hit latency in cycles.
    pub latency: u64,
}

impl CacheGeometry {
    /// Number of sets implied by capacity and associativity.
    pub fn sets(&self) -> usize {
        (self.capacity / crate::addr::LINE_SIZE) as usize / self.ways
    }

    fn validate(&self, what: &'static str) -> Result<(), MemError> {
        let lines = self.capacity / crate::addr::LINE_SIZE;
        if self.ways == 0
            || self.capacity == 0
            || !self.capacity.is_multiple_of(crate::addr::LINE_SIZE)
            || !lines.is_multiple_of(self.ways as u64)
            || !(lines / self.ways as u64).is_power_of_two()
        {
            return Err(MemError::InvalidConfig { what, got: format!("{self:?}") });
        }
        Ok(())
    }
}

/// Geometry of one TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TlbGeometry {
    /// Total number of entries. Must be `ways * sets`.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl TlbGeometry {
    /// Number of sets implied by entries and associativity.
    pub fn sets(&self) -> usize {
        self.entries / self.ways
    }

    fn validate(&self, what: &'static str) -> Result<(), MemError> {
        if self.ways == 0
            || self.entries == 0
            || !self.entries.is_multiple_of(self.ways)
            || !(self.entries / self.ways).is_power_of_two()
        {
            return Err(MemError::InvalidConfig { what, got: format!("{self:?}") });
        }
        Ok(())
    }
}

/// Latency model for the DRAM device (open-row policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DramTimings {
    /// Number of banks (row buffers).
    pub banks: usize,
    /// Row size in bytes.
    pub row_bytes: u64,
    /// Read latency in cycles when the row is open (row-buffer hit).
    pub read_hit: u64,
    /// Read latency in cycles on a row-buffer miss.
    pub read_miss: u64,
    /// Write latency (posted; charged to bandwidth accounting, not to the
    /// requesting instruction) on a row hit.
    pub write_hit: u64,
    /// Write latency on a row miss.
    pub write_miss: u64,
}

/// Latency model for the NVM device.
///
/// Optane serves the media in 256-byte lines through a small internal
/// buffer (the "XPBuffer"); sequential access hits that buffer, random
/// access misses it, producing the paper's ~2x (sequential) vs ~3x (random)
/// read latency vs DRAM (ref \[8\] in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NvmTimings {
    /// Number of 256-byte entries in the internal buffer.
    pub buffer_entries: usize,
    /// Internal media access granularity in bytes (256 for Optane).
    pub block_bytes: u64,
    /// Read latency in cycles when the block is buffered.
    pub read_hit: u64,
    /// Read latency in cycles when the media must be accessed.
    pub read_miss: u64,
    /// Write latency (posted) when the block is buffered.
    pub write_hit: u64,
    /// Write latency when the media must be accessed.
    pub write_miss: u64,
}

/// Full configuration of the simulated memory system.
///
/// Defaults model one socket of the paper's testbed (Xeon Gold 6240,
/// 2.6 GHz) with capacities scaled down ~3000x so that scaled-down GAPBS
/// workloads keep the paper's footprint-to-DRAM ratio (~1.2–1.5x).
///
/// # Examples
///
/// ```
/// use tiersim_mem::MemConfig;
///
/// let cfg = MemConfig::builder()
///     .dram_capacity(64 << 20)
///     .nvm_capacity(512 << 20)
///     .build()?;
/// assert_eq!(cfg.dram_capacity, 64 << 20);
/// # Ok::<(), tiersim_mem::MemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemConfig {
    /// DRAM (tier-1) capacity in bytes.
    pub dram_capacity: u64,
    /// NVM (tier-2) capacity in bytes.
    pub nvm_capacity: u64,
    /// L1 data cache geometry.
    pub l1: CacheGeometry,
    /// L2 cache geometry.
    pub l2: CacheGeometry,
    /// Shared L3 cache geometry.
    pub l3: CacheGeometry,
    /// First-level data TLB geometry.
    pub dtlb: TlbGeometry,
    /// Second-level (shared) TLB geometry.
    pub stlb: TlbGeometry,
    /// Extra cycles charged on an STLB hit (L1 TLB miss).
    pub stlb_hit_penalty: u64,
    /// Fixed page-walk overhead in cycles (paging-structure caches), on top
    /// of the memory access that fetches the leaf PTE.
    pub walk_base_penalty: u64,
    /// DRAM device timings.
    pub dram: DramTimings,
    /// NVM device timings.
    pub nvm: NvmTimings,
    /// CPU frequency in Hz, used to convert cycles to seconds.
    pub freq_hz: u64,
    /// Optane *Memory Mode*: DRAM becomes a transparent direct-mapped
    /// line cache over NVM; page placement is ignored (paper §2.1).
    pub memory_mode: bool,
    /// Deterministic fault-injection plan; [`FaultPlan::none`] (the
    /// default) injects nothing and costs nothing.
    pub fault: FaultPlan,
    /// Event-trace settings; [`TraceConfig::off`] (the default) records
    /// nothing and costs one branch per hook.
    pub trace: TraceConfig,
}

impl MemConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> MemConfigBuilder {
        MemConfigBuilder { cfg: MemConfig::default() }
    }

    /// Validates internal consistency of all geometry parameters.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), MemError> {
        self.l1.validate("l1 geometry")?;
        self.l2.validate("l2 geometry")?;
        self.l3.validate("l3 geometry")?;
        self.dtlb.validate("dtlb geometry")?;
        self.stlb.validate("stlb geometry")?;
        if self.dram_capacity == 0 || !self.dram_capacity.is_multiple_of(crate::addr::PAGE_SIZE) {
            return Err(MemError::InvalidConfig {
                what: "dram capacity",
                got: format!(
                    "{} (must be a nonzero multiple of the page size)",
                    self.dram_capacity
                ),
            });
        }
        if self.nvm_capacity == 0 || !self.nvm_capacity.is_multiple_of(crate::addr::PAGE_SIZE) {
            return Err(MemError::InvalidConfig {
                what: "nvm capacity",
                got: format!("{} (must be a nonzero multiple of the page size)", self.nvm_capacity),
            });
        }
        if self.dram.banks == 0 || !self.dram.row_bytes.is_power_of_two() {
            return Err(MemError::InvalidConfig {
                what: "dram timings",
                got: format!("{:?}", self.dram),
            });
        }
        if self.nvm.buffer_entries == 0 || !self.nvm.block_bytes.is_power_of_two() {
            return Err(MemError::InvalidConfig {
                what: "nvm timings",
                got: format!("{:?}", self.nvm),
            });
        }
        if self.freq_hz == 0 {
            return Err(MemError::InvalidConfig { what: "frequency", got: "0 Hz".to_string() });
        }
        self.fault.validate()?;
        Ok(())
    }

    /// Converts a cycle count to seconds at the configured frequency.
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz as f64
    }

    /// Converts seconds to cycles at the configured frequency.
    pub fn secs_to_cycles(&self, secs: f64) -> u64 {
        (secs * self.freq_hz as f64) as u64
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            dram_capacity: 64 << 20,
            nvm_capacity: 1 << 30,
            l1: CacheGeometry { capacity: 32 << 10, ways: 8, latency: 4 },
            l2: CacheGeometry { capacity: 1 << 20, ways: 16, latency: 14 },
            l3: CacheGeometry { capacity: 24 << 20, ways: 12, latency: 44 },
            dtlb: TlbGeometry { entries: 64, ways: 4 },
            stlb: TlbGeometry { entries: 1536, ways: 12 },
            stlb_hit_penalty: 7,
            walk_base_penalty: 18,
            dram: DramTimings {
                banks: 16,
                row_bytes: 8 << 10,
                read_hit: 160,
                read_miss: 245,
                write_hit: 160,
                write_miss: 245,
            },
            nvm: NvmTimings {
                buffer_entries: 16,
                block_bytes: 256,
                read_hit: 330,
                read_miss: 930,
                write_hit: 420,
                write_miss: 1250,
            },
            freq_hz: 2_600_000_000,
            memory_mode: false,
            fault: FaultPlan::none(),
            trace: TraceConfig::off(),
        }
    }
}

/// Builder for [`MemConfig`] ([C-BUILDER]).
#[derive(Debug, Clone)]
pub struct MemConfigBuilder {
    cfg: MemConfig,
}

impl MemConfigBuilder {
    /// Sets the DRAM capacity in bytes.
    pub fn dram_capacity(mut self, bytes: u64) -> Self {
        self.cfg.dram_capacity = bytes;
        self
    }

    /// Sets the NVM capacity in bytes.
    pub fn nvm_capacity(mut self, bytes: u64) -> Self {
        self.cfg.nvm_capacity = bytes;
        self
    }

    /// Sets the L1 data-cache geometry.
    pub fn l1(mut self, geometry: CacheGeometry) -> Self {
        self.cfg.l1 = geometry;
        self
    }

    /// Sets the L2 cache geometry.
    pub fn l2(mut self, geometry: CacheGeometry) -> Self {
        self.cfg.l2 = geometry;
        self
    }

    /// Sets the L3 cache geometry.
    pub fn l3(mut self, geometry: CacheGeometry) -> Self {
        self.cfg.l3 = geometry;
        self
    }

    /// Sets the first-level TLB geometry.
    pub fn dtlb(mut self, geometry: TlbGeometry) -> Self {
        self.cfg.dtlb = geometry;
        self
    }

    /// Sets the second-level TLB geometry.
    pub fn stlb(mut self, geometry: TlbGeometry) -> Self {
        self.cfg.stlb = geometry;
        self
    }

    /// Sets the DRAM device timings.
    pub fn dram_timings(mut self, timings: DramTimings) -> Self {
        self.cfg.dram = timings;
        self
    }

    /// Sets the NVM device timings.
    pub fn nvm_timings(mut self, timings: NvmTimings) -> Self {
        self.cfg.nvm = timings;
        self
    }

    /// Sets the CPU frequency in Hz.
    pub fn freq_hz(mut self, hz: u64) -> Self {
        self.cfg.freq_hz = hz;
        self
    }

    /// Enables Optane Memory Mode (DRAM as a direct-mapped cache of NVM).
    pub fn memory_mode(mut self, enabled: bool) -> Self {
        self.cfg.memory_mode = enabled;
        self
    }

    /// Sets the fault-injection plan.
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.cfg.fault = plan;
        self
    }

    /// Sets the event-trace settings.
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.cfg.trace = trace;
        self
    }

    /// Finishes the builder, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidConfig`] if any parameter is inconsistent
    /// (non-power-of-two set counts, zero capacities, …).
    pub fn build(self) -> Result<MemConfig, MemError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        MemConfig::default().validate().unwrap();
    }

    #[test]
    fn geometry_sets_computation() {
        let g = CacheGeometry { capacity: 32 << 10, ways: 8, latency: 4 };
        assert_eq!(g.sets(), 64);
        let t = TlbGeometry { entries: 64, ways: 4 };
        assert_eq!(t.sets(), 16);
    }

    #[test]
    fn builder_rejects_bad_geometry() {
        let err = MemConfig::builder()
            .l1(CacheGeometry { capacity: 1000, ways: 3, latency: 4 })
            .build()
            .unwrap_err();
        assert!(matches!(err, MemError::InvalidConfig { .. }));
    }

    #[test]
    fn builder_rejects_unaligned_capacity() {
        let err = MemConfig::builder().dram_capacity(4097).build().unwrap_err();
        assert!(matches!(err, MemError::InvalidConfig { what: "dram capacity", .. }));
        assert!(err.to_string().contains("4097"), "error carries the offending value: {err}");
    }

    #[test]
    fn builder_rejects_bad_fault_plan() {
        let err = MemConfig::builder()
            .fault(FaultPlan { nvm_spike_multiplier: 0, ..FaultPlan::none() })
            .build()
            .unwrap_err();
        assert!(matches!(err, MemError::InvalidConfig { what: "fault nvm spike multiplier", .. }));
    }

    #[test]
    fn cycle_second_roundtrip() {
        let cfg = MemConfig::default();
        let c = cfg.secs_to_cycles(1.5);
        assert!((cfg.cycles_to_secs(c) - 1.5).abs() < 1e-9);
    }
}
