//! DRAM device model with per-bank open-row buffers.

use crate::config::DramTimings;

/// Per-device traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceStats {
    /// Read requests served.
    pub reads: u64,
    /// Write requests served (cache write-backs, migrations).
    pub writes: u64,
    /// Read requests that hit the device's internal buffer (open row for
    /// DRAM, XPBuffer block for NVM).
    pub read_buffer_hits: u64,
    /// Write requests that hit the internal buffer.
    pub write_buffer_hits: u64,
    /// Total cycles spent in read latency.
    pub read_cycles: u64,
    /// Total cycles of write latency (posted; not on the critical path).
    pub write_cycles: u64,
}

impl DeviceStats {
    /// Bytes read (64 B per request).
    pub fn bytes_read(&self) -> u64 {
        self.reads * crate::addr::LINE_SIZE
    }

    /// Bytes written (64 B per request).
    pub fn bytes_written(&self) -> u64 {
        self.writes * crate::addr::LINE_SIZE
    }
}

/// DRAM latency model: open-row policy with one row buffer per bank.
///
/// Consecutive accesses to the same DRAM row hit the open row and are
/// served at `read_hit`; switching rows costs `read_miss` (precharge +
/// activate). This yields the sequential-vs-random latency spread measured
/// for DRAM in the paper's background (§2.1).
///
/// # Examples
///
/// ```
/// use tiersim_mem::{DramModel, DramTimings};
///
/// let t = DramTimings {
///     banks: 2, row_bytes: 4096,
///     read_hit: 160, read_miss: 245, write_hit: 160, write_miss: 245,
/// };
/// let mut d = DramModel::new(t);
/// let first = d.read(0);       // row miss
/// let second = d.read(64);     // same row: hit
/// assert!(first > second);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    timings: DramTimings,
    row_shift: u32,
    /// Open row per bank; `u64::MAX` = closed.
    open_rows: Vec<u64>,
    stats: DeviceStats,
}

impl DramModel {
    /// Creates a DRAM model with the given timings.
    ///
    /// # Panics
    ///
    /// Panics if `row_bytes` is not a power of two or `banks == 0`
    /// (validated configurations never do).
    pub fn new(timings: DramTimings) -> Self {
        assert!(timings.row_bytes.is_power_of_two());
        assert!(timings.banks > 0);
        DramModel {
            timings,
            row_shift: timings.row_bytes.trailing_zeros(),
            open_rows: vec![u64::MAX; timings.banks],
            stats: DeviceStats::default(),
        }
    }

    #[inline]
    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let row = addr >> self.row_shift;
        // Interleave rows across banks so sequential streams engage all banks.
        ((row % self.open_rows.len() as u64) as usize, row)
    }

    /// Serves a 64-byte read at byte address `addr`; returns the latency in
    /// cycles.
    pub fn read(&mut self, addr: u64) -> u64 {
        let (bank, row) = self.bank_and_row(addr);
        let hit = self.open_rows[bank] == row;
        self.open_rows[bank] = row;
        self.stats.reads += 1;
        let cycles = if hit {
            self.stats.read_buffer_hits += 1;
            self.timings.read_hit
        } else {
            self.timings.read_miss
        };
        self.stats.read_cycles += cycles;
        cycles
    }

    /// Serves `lines` sequential 64-byte reads starting at byte address
    /// `addr` (line `i` at `addr + i * 64`); returns the total latency.
    ///
    /// Row-granular closed form of `lines` successive [`DramModel::read`]
    /// calls: within one row, every read after the first provably hits the
    /// row the first one just opened (consecutive lines share the row, and
    /// nothing else touches the bank in between), so only one open-row
    /// check is evaluated per row crossed. Stats, open-row state and total
    /// cycles are bit-equal to the per-line loop.
    pub fn read_run(&mut self, addr: u64, lines: u64) -> u64 {
        let line = crate::addr::LINE_SIZE;
        let mut total = 0;
        let mut a = addr;
        let mut remaining = lines;
        while remaining > 0 {
            let (bank, row) = self.bank_and_row(a);
            let row_end = (row + 1) << self.row_shift;
            let in_row = ((row_end - a) / line).min(remaining);
            let first_hit = self.open_rows[bank] == row;
            self.open_rows[bank] = row;
            self.stats.reads += in_row;
            let follow_hits = in_row - 1;
            self.stats.read_buffer_hits += follow_hits + u64::from(first_hit);
            let first = if first_hit { self.timings.read_hit } else { self.timings.read_miss };
            let cycles = first + follow_hits * self.timings.read_hit;
            self.stats.read_cycles += cycles;
            total += cycles;
            a += in_row * line;
            remaining -= in_row;
        }
        total
    }

    /// Serves a 64-byte write at byte address `addr`; returns the (posted)
    /// latency in cycles.
    pub fn write(&mut self, addr: u64) -> u64 {
        let (bank, row) = self.bank_and_row(addr);
        let hit = self.open_rows[bank] == row;
        self.open_rows[bank] = row;
        self.stats.writes += 1;
        let cycles = if hit {
            self.stats.write_buffer_hits += 1;
            self.timings.write_hit
        } else {
            self.timings.write_miss
        };
        self.stats.write_cycles += cycles;
        cycles
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Resets statistics (row-buffer state kept).
    pub fn reset_stats(&mut self) {
        self.stats = DeviceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DramModel {
        DramModel::new(DramTimings {
            banks: 4,
            row_bytes: 4096,
            read_hit: 100,
            read_miss: 200,
            write_hit: 110,
            write_miss: 210,
        })
    }

    #[test]
    fn sequential_reads_hit_open_row() {
        let mut d = model();
        assert_eq!(d.read(0), 200); // cold
        assert_eq!(d.read(64), 100);
        assert_eq!(d.read(128), 100);
        assert_eq!(d.stats().read_buffer_hits, 2);
    }

    #[test]
    fn row_conflict_in_same_bank_misses() {
        let mut d = model();
        d.read(0); // bank 0, row 0
                   // Row 4 maps to bank 0 (4 % 4 banks) — conflicts with row 0.
        assert_eq!(d.read(4 * 4096), 200);
    }

    #[test]
    fn different_banks_keep_rows_open() {
        let mut d = model();
        d.read(0); // bank 0
        d.read(4096); // bank 1
        assert_eq!(d.read(64), 100); // bank 0 row still open
    }

    #[test]
    fn read_run_matches_per_line_reads() {
        // Pre-warm with scattered traffic, then compare runs of assorted
        // lengths and (mid-row) starting offsets.
        let mut looped = model();
        for a in [0, 5 * 4096, 64, 9 * 4096 + 128] {
            looped.read(a);
            looped.write(a + 64);
        }
        let mut run = looped.clone();
        for (start, lines) in [(0u64, 1u64), (128, 3), (3 * 4096 + 64, 200), (7 * 4096, 64)] {
            let mut want = 0;
            for i in 0..lines {
                want += looped.read(start + i * 64);
            }
            assert_eq!(run.read_run(start, lines), want, "run at {start}+{lines}");
            assert_eq!(run.stats(), looped.stats());
            assert_eq!(run.open_rows, looped.open_rows);
        }
    }

    #[test]
    fn writes_are_counted_separately() {
        let mut d = model();
        d.write(0);
        d.write(64);
        let s = d.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 0);
        assert_eq!(s.bytes_written(), 128);
        assert_eq!(s.write_cycles, 210 + 110);
    }
}
