//! Error types for the memory-system simulator.

use crate::addr::{PageNum, VirtAddr};
use crate::tier::Tier;
use core::fmt;

/// Errors produced by the memory-system simulator.
///
/// All public fallible operations in this crate return
/// `Result<_, MemError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// An access touched an address with no mapped VMA.
    Segfault {
        /// The faulting address.
        addr: VirtAddr,
    },
    /// A frame allocation was requested on a tier with no free capacity.
    TierFull {
        /// The exhausted tier.
        tier: Tier,
    },
    /// Both tiers are exhausted; the simulated machine is out of memory.
    OutOfMemory,
    /// An operation referenced a page that is not resident.
    PageNotResident {
        /// The page in question.
        page: PageNum,
    },
    /// An operation referenced a page that is already resident.
    PageAlreadyResident {
        /// The page in question.
        page: PageNum,
    },
    /// `mmap` was asked for a zero-length or overflowing region.
    InvalidLength {
        /// The requested length in bytes.
        len: u64,
    },
    /// `munmap`/`set_policy_range` referenced an address that is not the
    /// base of (or inside) a mapped region.
    NoSuchMapping {
        /// The address given.
        addr: VirtAddr,
    },
    /// A configuration value was rejected.
    InvalidConfig {
        /// Human-readable description of the offending parameter.
        what: &'static str,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Segfault { addr } => write!(f, "segmentation fault at {addr}"),
            MemError::TierFull { tier } => write!(f, "no free frames on tier {tier}"),
            MemError::OutOfMemory => f.write_str("simulated machine is out of memory"),
            MemError::PageNotResident { page } => write!(f, "page {page} is not resident"),
            MemError::PageAlreadyResident { page } => {
                write!(f, "page {page} is already resident")
            }
            MemError::InvalidLength { len } => write!(f, "invalid mapping length {len}"),
            MemError::NoSuchMapping { addr } => write!(f, "no mapping at {addr}"),
            MemError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for MemError {}

/// Information about a page fault raised on the access path.
///
/// The memory system is *mechanism only*: when an access touches a
/// non-resident page it does not place the page itself, it raises a
/// `PageFault` so the OS model (policy) can decide the target tier —
/// mirroring how Linux's fault handler consults the task mempolicy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFault {
    /// The non-resident page that was touched.
    pub page: PageNum,
    /// The faulting address.
    pub addr: VirtAddr,
    /// The memory policy of the VMA containing the address.
    pub policy: crate::vma::MemPolicy,
    /// Identifier of the VMA containing the address.
    pub vma: crate::vma::VmaId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs = [
            MemError::Segfault { addr: VirtAddr::new(0x1000) },
            MemError::TierFull { tier: Tier::Dram },
            MemError::OutOfMemory,
            MemError::PageNotResident { page: PageNum::new(1) },
            MemError::InvalidLength { len: 0 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }
}
