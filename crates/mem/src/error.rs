//! Error types for the memory-system simulator.

use crate::addr::{PageNum, VirtAddr};
use crate::tier::Tier;
use core::fmt;

/// Errors produced by the memory-system simulator.
///
/// All public fallible operations in this crate return
/// `Result<_, MemError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// An access touched an address with no mapped VMA.
    Segfault {
        /// The faulting address.
        addr: VirtAddr,
    },
    /// A frame allocation was requested on a tier with no free capacity.
    TierFull {
        /// The exhausted tier.
        tier: Tier,
    },
    /// Both tiers are exhausted; the simulated machine is out of memory.
    OutOfMemory,
    /// An operation referenced a page that is not resident.
    PageNotResident {
        /// The page in question.
        page: PageNum,
    },
    /// An operation referenced a page that is already resident.
    PageAlreadyResident {
        /// The page in question.
        page: PageNum,
    },
    /// `mmap` was asked for a zero-length or overflowing region.
    InvalidLength {
        /// The requested length in bytes.
        len: u64,
    },
    /// `munmap`/`set_policy_range` referenced an address that is not the
    /// base of (or inside) a mapped region.
    NoSuchMapping {
        /// The address given.
        addr: VirtAddr,
    },
    /// A frame allocation failed transiently (injected fault modelling
    /// the kernel's `__alloc_pages` returning `NULL` under pressure).
    /// Retryable: the caller may back off and retry, or fall back to
    /// the other tier.
    AllocTransient {
        /// The tier whose allocation failed.
        tier: Tier,
    },
    /// A page migration failed with EBUSY (injected fault modelling a
    /// pinned or temporarily busy page that `migrate_pages()` refuses
    /// to move). Retryable: the page stays put and may be retried.
    MigrateBusy {
        /// The page that could not be migrated.
        page: PageNum,
    },
    /// A per-4K operation (migration) referenced a page that is part of a
    /// collapsed 2 MiB mapping. Not transient: the caller must split the
    /// huge mapping first ([`MemorySystem::split_huge`]), mirroring how
    /// the kernel splits a THP before migrating its subpages.
    ///
    /// [`MemorySystem::split_huge`]: crate::MemorySystem::split_huge
    HugeMapped {
        /// The huge-mapped page.
        page: PageNum,
    },
    /// A configuration value was rejected.
    InvalidConfig {
        /// Which parameter was rejected.
        what: &'static str,
        /// The offending value (and, where useful, the accepted range).
        got: String,
    },
}

impl MemError {
    /// Whether the error is transient: retrying the same operation
    /// later (or with backoff) may succeed. Only the injected-fault
    /// variants qualify; everything else reflects stable state.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, MemError::AllocTransient { .. } | MemError::MigrateBusy { .. })
    }
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Segfault { addr } => write!(f, "segmentation fault at {addr}"),
            MemError::TierFull { tier } => write!(f, "no free frames on tier {tier}"),
            MemError::OutOfMemory => f.write_str("simulated machine is out of memory"),
            MemError::PageNotResident { page } => write!(f, "page {page} is not resident"),
            MemError::PageAlreadyResident { page } => {
                write!(f, "page {page} is already resident")
            }
            MemError::InvalidLength { len } => write!(f, "invalid mapping length {len}"),
            MemError::NoSuchMapping { addr } => write!(f, "no mapping at {addr}"),
            MemError::AllocTransient { tier } => {
                write!(f, "transient allocation failure on tier {tier} (retryable)")
            }
            MemError::MigrateBusy { page } => {
                write!(f, "page {page} is busy and cannot be migrated (retryable)")
            }
            MemError::HugeMapped { page } => {
                write!(f, "page {page} is part of a 2 MiB mapping; split it first")
            }
            MemError::InvalidConfig { what, got } => {
                write!(f, "invalid configuration: {what} (got {got})")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Information about a page fault raised on the access path.
///
/// The memory system is *mechanism only*: when an access touches a
/// non-resident page it does not place the page itself, it raises a
/// `PageFault` so the OS model (policy) can decide the target tier —
/// mirroring how Linux's fault handler consults the task mempolicy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFault {
    /// The non-resident page that was touched.
    pub page: PageNum,
    /// The faulting address.
    pub addr: VirtAddr,
    /// The memory policy of the VMA containing the address.
    pub policy: crate::vma::MemPolicy,
    /// Identifier of the VMA containing the address.
    pub vma: crate::vma::VmaId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs = [
            MemError::Segfault { addr: VirtAddr::new(0x1000) },
            MemError::TierFull { tier: Tier::Dram },
            MemError::OutOfMemory,
            MemError::PageNotResident { page: PageNum::new(1) },
            MemError::InvalidLength { len: 0 },
            MemError::AllocTransient { tier: Tier::Dram },
            MemError::MigrateBusy { page: PageNum::new(2) },
            MemError::HugeMapped { page: PageNum::new(3) },
            MemError::InvalidConfig { what: "x", got: "0".to_string() },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }

    #[test]
    fn only_injected_faults_are_transient() {
        assert!(MemError::AllocTransient { tier: Tier::Dram }.is_transient());
        assert!(MemError::MigrateBusy { page: PageNum::new(1) }.is_transient());
        assert!(!MemError::OutOfMemory.is_transient());
        assert!(!MemError::TierFull { tier: Tier::Nvm }.is_transient());
        assert!(!MemError::HugeMapped { page: PageNum::new(1) }.is_transient());
    }
}
