//! Deterministic fault injection for the memory system.
//!
//! A [`FaultPlan`] describes *which* faults to inject — transient DRAM
//! allocation failures, EBUSY-style migration failures, NVM latency
//! spikes over a chosen page range, and reclaim stalls — and *when*:
//! each fault has a rate (out of [`RATE_ONE`]) and a simulated-cycle
//! window. A [`FaultState`] turns the plan into a deterministic stream
//! of injection decisions: every probabilistic decision is a hash of
//! the plan seed, an injection-site constant, and a per-site draw
//! counter, so two runs with identical configurations inject exactly
//! the same faults at exactly the same points and produce
//! byte-identical reports.
//!
//! The empty plan ([`FaultPlan::none`], also `Default`) is free: the
//! state caches an `enabled` flag and every hook is a branch on it, so
//! fault-free runs take no hash draws and behave exactly as before the
//! subsystem existed.

use crate::addr::PageNum;
use crate::error::MemError;
use crate::tier::Tier;

/// Denominator for all fault rates: a rate of `RATE_ONE` fires on
/// every draw, `RATE_ONE / 2` on roughly half of them.
pub const RATE_ONE: u32 = 65_536;

/// SplitMix64 finalizer; decorrelates (seed, site, counter) triples.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Injection-site constants keep the per-site draw streams independent:
/// adding a draw at one site never perturbs another site's stream.
const SITE_DRAM_ALLOC: u64 = 0x5f4a_0001;
const SITE_MIGRATE: u64 = 0x5f4a_0002;
const SITE_RECLAIM: u64 = 0x5f4a_0003;
const SITES: usize = 3;

/// A half-open window `[start, end)` of simulated cycles during which a
/// fault is armed. The default window covers the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CycleWindow {
    /// First cycle (inclusive) at which the fault may fire.
    pub start: u64,
    /// First cycle at which the fault no longer fires.
    pub end: u64,
}

impl CycleWindow {
    /// A window spanning the entire run.
    pub const ALWAYS: CycleWindow = CycleWindow { start: 0, end: u64::MAX };

    /// Whether `now` falls inside the window.
    #[must_use]
    pub fn contains(self, now: u64) -> bool {
        now >= self.start && now < self.end
    }
}

impl Default for CycleWindow {
    fn default() -> Self {
        CycleWindow::ALWAYS
    }
}

/// A seeded, fully deterministic fault-injection plan.
///
/// All rates are out of [`RATE_ONE`]; a rate of 0 disables that fault.
/// The all-zero-rate plan ([`FaultPlan::none`]) injects nothing and
/// costs nothing.
///
/// # Examples
///
/// ```
/// use tiersim_mem::{FaultPlan, RATE_ONE};
///
/// let plan = FaultPlan { seed: 42, migrate_busy_per_64k: RATE_ONE / 8, ..FaultPlan::none() };
/// assert!(!plan.is_none());
/// plan.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultPlan {
    /// Seed for every probabilistic draw; identical seeds (with
    /// identical configs) reproduce identical fault streams.
    pub seed: u64,
    /// Rate of transient DRAM frame-allocation failures (the real
    /// kernel's `__alloc_pages` returning `NULL` under pressure).
    pub dram_alloc_fail_per_64k: u32,
    /// Window during which DRAM allocation failures are armed.
    pub dram_alloc_window: CycleWindow,
    /// Rate of EBUSY-style page-migration failures (a pinned or
    /// temporarily busy page that `migrate_pages()` refuses to move).
    pub migrate_busy_per_64k: u32,
    /// Window during which migration failures are armed.
    pub migrate_busy_window: CycleWindow,
    /// Latency multiplier applied to NVM device traffic touching the
    /// spike page range. `1` means no spike.
    pub nvm_spike_multiplier: u32,
    /// First page (by page number) of the NVM latency-spike range.
    pub nvm_spike_first_page: u64,
    /// Number of pages in the spike range; `0` disables the spike.
    pub nvm_spike_pages: u64,
    /// Window during which the NVM latency spike is armed.
    pub nvm_spike_window: CycleWindow,
    /// Rate of injected reclaim stalls (a demotion pass blocking on
    /// writeback or lock contention).
    pub reclaim_stall_per_64k: u32,
    /// Extra simulated cycles charged per injected reclaim stall.
    pub reclaim_stall_cycles: u64,
    /// Window during which reclaim stalls are armed.
    pub reclaim_stall_window: CycleWindow,
}

impl FaultPlan {
    /// The empty plan: nothing injected, zero overhead.
    #[must_use]
    pub const fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            dram_alloc_fail_per_64k: 0,
            dram_alloc_window: CycleWindow::ALWAYS,
            migrate_busy_per_64k: 0,
            migrate_busy_window: CycleWindow::ALWAYS,
            nvm_spike_multiplier: 1,
            nvm_spike_first_page: 0,
            nvm_spike_pages: 0,
            nvm_spike_window: CycleWindow::ALWAYS,
            reclaim_stall_per_64k: 0,
            reclaim_stall_cycles: 0,
            reclaim_stall_window: CycleWindow::ALWAYS,
        }
    }

    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.dram_alloc_fail_per_64k == 0
            && self.migrate_busy_per_64k == 0
            && (self.nvm_spike_multiplier <= 1 || self.nvm_spike_pages == 0)
            && self.reclaim_stall_per_64k == 0
    }

    /// Checks the plan for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidConfig`] if a rate exceeds
    /// [`RATE_ONE`], the spike multiplier is zero, or a window is
    /// inverted.
    pub fn validate(&self) -> Result<(), MemError> {
        let rates = [
            ("fault dram alloc rate", self.dram_alloc_fail_per_64k),
            ("fault migrate busy rate", self.migrate_busy_per_64k),
            ("fault reclaim stall rate", self.reclaim_stall_per_64k),
        ];
        for (what, rate) in rates {
            if rate > RATE_ONE {
                return Err(MemError::InvalidConfig { what, got: format!("{rate} > {RATE_ONE}") });
            }
        }
        if self.nvm_spike_multiplier == 0 {
            return Err(MemError::InvalidConfig {
                what: "fault nvm spike multiplier",
                got: "0 (must be >= 1)".to_string(),
            });
        }
        let windows = [
            ("fault dram alloc window", self.dram_alloc_window),
            ("fault migrate busy window", self.migrate_busy_window),
            ("fault nvm spike window", self.nvm_spike_window),
            ("fault reclaim stall window", self.reclaim_stall_window),
        ];
        for (what, w) in windows {
            if w.start >= w.end {
                return Err(MemError::InvalidConfig {
                    what,
                    got: format!("[{}, {}) is empty", w.start, w.end),
                });
            }
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Counts of faults actually injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultStats {
    /// Transient DRAM allocation failures injected.
    pub dram_alloc_failures: u64,
    /// EBUSY migration failures injected.
    pub migrate_busy_failures: u64,
    /// NVM device operations slowed by the latency spike.
    pub nvm_spiked_ops: u64,
    /// Reclaim stalls injected.
    pub reclaim_stalls: u64,
}

/// Runtime state of the fault injector: the plan plus per-site draw
/// counters and injected-fault statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultState {
    plan: FaultPlan,
    /// Cached `!plan.is_none()`: the hot-path hooks are a single branch
    /// on this flag when injection is disabled.
    enabled: bool,
    /// Simulated clock, refreshed by the access/fault paths; hooks on
    /// clock-less paths (device traffic, migration) evaluate their
    /// windows against this.
    now: u64,
    draws: [u64; SITES],
    stats: FaultStats,
}

impl FaultState {
    /// Builds the injector state for `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> FaultState {
        FaultState {
            enabled: !plan.is_none(),
            plan,
            now: 0,
            draws: [0; SITES],
            stats: FaultStats::default(),
        }
    }

    /// The plan driving this state.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any fault is armed at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Counts of faults injected so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Advances the injector's view of the simulated clock. Monotonic:
    /// stale timestamps from out-of-order callers are ignored.
    pub fn set_now(&mut self, now: u64) {
        if now > self.now {
            self.now = now;
        }
    }

    /// One deterministic draw at `site`: hashes (seed, site, counter)
    /// and fires when the low 16 bits land under `rate`.
    fn draw(&mut self, site: u64, idx: usize, rate: u32) -> bool {
        let n = self.draws[idx];
        self.draws[idx] += 1;
        let h = mix(self.plan.seed ^ site.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ n);
        (h & 0xffff) < u64::from(rate)
    }

    /// Should this DRAM frame allocation fail transiently?
    pub fn dram_alloc_fails(&mut self, tier: Tier) -> bool {
        if !self.enabled
            || tier != Tier::Dram
            || self.plan.dram_alloc_fail_per_64k == 0
            || !self.plan.dram_alloc_window.contains(self.now)
        {
            return false;
        }
        let fires = self.draw(SITE_DRAM_ALLOC, 0, self.plan.dram_alloc_fail_per_64k);
        if fires {
            self.stats.dram_alloc_failures += 1;
        }
        fires
    }

    /// Should this page migration fail with EBUSY?
    pub fn migrate_busy(&mut self, _page: PageNum) -> bool {
        if !self.enabled
            || self.plan.migrate_busy_per_64k == 0
            || !self.plan.migrate_busy_window.contains(self.now)
        {
            return false;
        }
        let fires = self.draw(SITE_MIGRATE, 1, self.plan.migrate_busy_per_64k);
        if fires {
            self.stats.migrate_busy_failures += 1;
        }
        fires
    }

    /// Latency multiplier for NVM device traffic at byte address
    /// `addr`. Returns 1 unless the address falls in the spike range
    /// inside the spike window.
    pub fn nvm_multiplier(&mut self, addr: u64) -> u64 {
        if !self.enabled || self.plan.nvm_spike_pages == 0 || self.plan.nvm_spike_multiplier <= 1 {
            return 1;
        }
        if !self.plan.nvm_spike_window.contains(self.now) {
            return 1;
        }
        let page = addr >> crate::addr::PAGE_SHIFT;
        let first = self.plan.nvm_spike_first_page;
        if page >= first && page - first < self.plan.nvm_spike_pages {
            self.stats.nvm_spiked_ops += 1;
            u64::from(self.plan.nvm_spike_multiplier)
        } else {
            1
        }
    }

    /// Whether NVM traffic to the `pages`-page range starting at
    /// `first_page` is provably unaffected by the latency spike *right
    /// now*: the spike is disabled, its window is closed at the current
    /// clock, or its page range does not overlap. [`nvm_multiplier`] is
    /// then exactly 1 for every address in the range and takes no draws
    /// and no stats, so a batched path may skip the calls entirely.
    ///
    /// [`nvm_multiplier`]: FaultState::nvm_multiplier
    #[must_use]
    pub fn nvm_spike_quiescent(&self, first_page: u64, pages: u64) -> bool {
        if !self.enabled || self.plan.nvm_spike_pages == 0 || self.plan.nvm_spike_multiplier <= 1 {
            return true;
        }
        if !self.plan.nvm_spike_window.contains(self.now) {
            return true;
        }
        let spike_first = self.plan.nvm_spike_first_page;
        let spike_end = spike_first.saturating_add(self.plan.nvm_spike_pages);
        let end = first_page.saturating_add(pages);
        end <= spike_first || first_page >= spike_end
    }

    /// Extra cycles to charge this reclaim pass (0 when no stall is
    /// injected).
    pub fn reclaim_stall_cycles(&mut self) -> u64 {
        if !self.enabled
            || self.plan.reclaim_stall_per_64k == 0
            || !self.plan.reclaim_stall_window.contains(self.now)
        {
            return 0;
        }
        if self.draw(SITE_RECLAIM, 2, self.plan.reclaim_stall_per_64k) {
            self.stats.reclaim_stalls += 1;
            self.plan.reclaim_stall_cycles
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_none_and_validates() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        plan.validate().unwrap();
        assert_eq!(plan, FaultPlan::default());
        let mut st = FaultState::new(plan);
        assert!(!st.enabled());
        assert!(!st.dram_alloc_fails(Tier::Dram));
        assert!(!st.migrate_busy(PageNum::new(1)));
        assert_eq!(st.nvm_multiplier(0), 1);
        assert_eq!(st.reclaim_stall_cycles(), 0);
        assert_eq!(st.stats(), FaultStats::default());
        // No draws consumed: the disabled path is draw-free.
        assert_eq!(st.draws, [0; SITES]);
    }

    #[test]
    fn validate_rejects_bad_rates_multiplier_and_windows() {
        let over = FaultPlan { migrate_busy_per_64k: RATE_ONE + 1, ..FaultPlan::none() };
        assert!(matches!(
            over.validate(),
            Err(MemError::InvalidConfig { what: "fault migrate busy rate", .. })
        ));
        let zero_mult = FaultPlan { nvm_spike_multiplier: 0, ..FaultPlan::none() };
        assert!(zero_mult.validate().is_err());
        let inverted = FaultPlan {
            reclaim_stall_window: CycleWindow { start: 10, end: 10 },
            ..FaultPlan::none()
        };
        assert!(matches!(
            inverted.validate(),
            Err(MemError::InvalidConfig { what: "fault reclaim stall window", .. })
        ));
    }

    #[test]
    fn same_seed_same_stream() {
        let plan = FaultPlan { seed: 7, migrate_busy_per_64k: RATE_ONE / 4, ..FaultPlan::none() };
        let mut a = FaultState::new(plan);
        let mut b = FaultState::new(plan);
        let pa: Vec<bool> = (0..256).map(|i| a.migrate_busy(PageNum::new(i))).collect();
        let pb: Vec<bool> = (0..256).map(|i| b.migrate_busy(PageNum::new(i))).collect();
        assert_eq!(pa, pb);
        assert!(pa.iter().any(|&x| x), "rate 1/4 over 256 draws should fire");
        assert!(!pa.iter().all(|&x| x), "rate 1/4 should not always fire");
        assert_eq!(a.stats().migrate_busy_failures, pa.iter().filter(|&&x| x).count() as u64);
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| FaultPlan { seed, migrate_busy_per_64k: RATE_ONE / 2, ..FaultPlan::none() };
        let mut a = FaultState::new(mk(1));
        let mut b = FaultState::new(mk(2));
        let pa: Vec<bool> = (0..128).map(|i| a.migrate_busy(PageNum::new(i))).collect();
        let pb: Vec<bool> = (0..128).map(|i| b.migrate_busy(PageNum::new(i))).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn sites_draw_independently() {
        // Consuming migrate draws must not shift the reclaim stream.
        let plan = FaultPlan {
            seed: 3,
            migrate_busy_per_64k: RATE_ONE / 2,
            reclaim_stall_per_64k: RATE_ONE / 2,
            reclaim_stall_cycles: 100,
            ..FaultPlan::none()
        };
        let mut interleaved = FaultState::new(plan);
        let mut alone = FaultState::new(plan);
        let mut got = Vec::new();
        for i in 0..64 {
            interleaved.migrate_busy(PageNum::new(i));
            got.push(interleaved.reclaim_stall_cycles());
        }
        let want: Vec<u64> = (0..64).map(|_| alone.reclaim_stall_cycles()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn windows_gate_injection() {
        let plan = FaultPlan {
            seed: 1,
            dram_alloc_fail_per_64k: RATE_ONE,
            dram_alloc_window: CycleWindow { start: 100, end: 200 },
            ..FaultPlan::none()
        };
        let mut st = FaultState::new(plan);
        assert!(!st.dram_alloc_fails(Tier::Dram), "before the window");
        st.set_now(150);
        assert!(st.dram_alloc_fails(Tier::Dram), "inside the window");
        assert!(!st.dram_alloc_fails(Tier::Nvm), "NVM allocations unaffected");
        st.set_now(250);
        assert!(!st.dram_alloc_fails(Tier::Dram), "after the window");
        // set_now is monotonic: stale timestamps cannot rewind.
        st.set_now(10);
        assert!(!st.dram_alloc_fails(Tier::Dram));
    }

    #[test]
    fn nvm_spike_targets_page_range() {
        use crate::addr::PAGE_SIZE;
        let plan = FaultPlan {
            nvm_spike_multiplier: 8,
            nvm_spike_first_page: 4,
            nvm_spike_pages: 2,
            ..FaultPlan::none()
        };
        let mut st = FaultState::new(plan);
        assert_eq!(st.nvm_multiplier(3 * PAGE_SIZE), 1);
        assert_eq!(st.nvm_multiplier(4 * PAGE_SIZE), 8);
        assert_eq!(st.nvm_multiplier(5 * PAGE_SIZE + 64), 8);
        assert_eq!(st.nvm_multiplier(6 * PAGE_SIZE), 1);
        assert_eq!(st.stats().nvm_spiked_ops, 2);
    }

    #[test]
    fn quiescence_matches_multiplier_behavior() {
        let plan = FaultPlan {
            nvm_spike_multiplier: 8,
            nvm_spike_first_page: 4,
            nvm_spike_pages: 2,
            nvm_spike_window: CycleWindow { start: 100, end: 200 },
            ..FaultPlan::none()
        };
        let mut st = FaultState::new(plan);
        // Window closed: everything quiescent.
        assert!(st.nvm_spike_quiescent(4, 2));
        st.set_now(150);
        assert!(!st.nvm_spike_quiescent(4, 2));
        assert!(!st.nvm_spike_quiescent(0, 5), "overlap at page 4");
        assert!(!st.nvm_spike_quiescent(5, 10), "overlap at page 5");
        assert!(st.nvm_spike_quiescent(0, 4), "ends before the spike");
        assert!(st.nvm_spike_quiescent(6, 10), "starts after the spike");
        // The empty plan is always quiescent.
        assert!(FaultState::new(FaultPlan::none()).nvm_spike_quiescent(0, u64::MAX));
    }

    #[test]
    fn reclaim_stall_charges_cycles() {
        let plan = FaultPlan {
            seed: 9,
            reclaim_stall_per_64k: RATE_ONE,
            reclaim_stall_cycles: 777,
            ..FaultPlan::none()
        };
        let mut st = FaultState::new(plan);
        assert_eq!(st.reclaim_stall_cycles(), 777);
        assert_eq!(st.stats().reclaim_stalls, 1);
    }
}
