//! Physical-frame accounting per tier.

use crate::addr::PAGE_SIZE;
use crate::error::MemError;
use crate::tier::Tier;

/// Tracks frame usage for one tier.
///
/// The simulator does not model physical frame identity (page contents live
/// host-side); what matters for tiering decisions is *how many* frames each
/// tier has left, which is exactly what this allocator accounts.
///
/// # Examples
///
/// ```
/// use tiersim_mem::{FrameAllocator, Tier};
///
/// let mut f = FrameAllocator::new(Tier::Dram, 2 * 4096);
/// assert_eq!(f.free_pages(), 2);
/// f.alloc()?;
/// f.alloc()?;
/// assert!(f.alloc().is_err());
/// f.free();
/// assert_eq!(f.free_pages(), 1);
/// # Ok::<(), tiersim_mem::MemError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameAllocator {
    tier: Tier,
    capacity_pages: u64,
    used_pages: u64,
    /// High-water mark of used pages.
    peak_pages: u64,
}

impl FrameAllocator {
    /// Creates an allocator for `tier` with `capacity_bytes` of memory.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is not page aligned (validated configs
    /// never are).
    pub fn new(tier: Tier, capacity_bytes: u64) -> Self {
        assert_eq!(capacity_bytes % PAGE_SIZE, 0, "capacity must be page aligned");
        FrameAllocator {
            tier,
            capacity_pages: capacity_bytes / PAGE_SIZE,
            used_pages: 0,
            peak_pages: 0,
        }
    }

    /// The tier this allocator manages.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Total capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Currently used pages.
    pub fn used_pages(&self) -> u64 {
        self.used_pages
    }

    /// Currently free pages.
    pub fn free_pages(&self) -> u64 {
        self.capacity_pages - self.used_pages
    }

    /// Highest number of pages ever in use.
    pub fn peak_pages(&self) -> u64 {
        self.peak_pages
    }

    /// Currently used bytes.
    pub fn used_bytes(&self) -> u64 {
        self.used_pages * PAGE_SIZE
    }

    /// Claims one frame.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::TierFull`] when the tier is exhausted.
    pub fn alloc(&mut self) -> Result<(), MemError> {
        if self.used_pages == self.capacity_pages {
            return Err(MemError::TierFull { tier: self.tier });
        }
        self.used_pages += 1;
        self.peak_pages = self.peak_pages.max(self.used_pages);
        Ok(())
    }

    /// Releases one frame.
    ///
    /// # Panics
    ///
    /// Panics if no frames are in use (a simulator accounting bug).
    pub fn free(&mut self) {
        assert!(self.used_pages > 0, "freeing a frame on an empty tier");
        self.used_pages -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_full() {
        let mut f = FrameAllocator::new(Tier::Nvm, 3 * PAGE_SIZE);
        for _ in 0..3 {
            f.alloc().unwrap();
        }
        assert_eq!(f.free_pages(), 0);
        assert_eq!(f.alloc(), Err(MemError::TierFull { tier: Tier::Nvm }));
    }

    #[test]
    fn free_returns_capacity() {
        let mut f = FrameAllocator::new(Tier::Dram, 2 * PAGE_SIZE);
        f.alloc().unwrap();
        f.free();
        assert_eq!(f.used_pages(), 0);
        assert_eq!(f.free_pages(), 2);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut f = FrameAllocator::new(Tier::Dram, 4 * PAGE_SIZE);
        f.alloc().unwrap();
        f.alloc().unwrap();
        f.free();
        f.alloc().unwrap();
        assert_eq!(f.peak_pages(), 2);
    }

    #[test]
    #[should_panic(expected = "freeing a frame")]
    fn double_free_panics() {
        let mut f = FrameAllocator::new(Tier::Dram, PAGE_SIZE);
        f.free();
    }
}
