//! # tiersim-mem — tiered-memory system simulator
//!
//! Deterministic model of one socket of the machine used in the paper
//! *"Performance Characterization of AutoNUMA Memory Tiering on Graph
//! Analytics"* (IISWC 2022): a cache hierarchy, a two-level TLB with page
//! walks, and two memory tiers — DRAM with open-row banks and an
//! Optane-like NVM with a 256-byte internal buffer.
//!
//! The crate is **mechanism only**: it translates, caches, charges cycles
//! and tracks page residency, but never decides *where* pages go. Placement
//! and migration policy (AutoNUMA tiering, object-level binding) live in
//! the `tiersim-os` and `tiersim-policy` crates.
//!
//! ## Quick tour
//!
//! ```
//! use tiersim_mem::{
//!     AccessError, AccessKind, MemConfig, MemLevel, MemPolicy, MemorySystem, Tier,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sys = MemorySystem::new(MemConfig::default())?;
//! let buf = sys.mmap(1 << 20, MemPolicy::Default, "edges")?;
//!
//! // First touch raises a page fault; an OS model would place the page.
//! match sys.access(buf, AccessKind::Load, 0) {
//!     Err(AccessError::Fault(pf)) => sys.map_page(pf.page, Tier::Nvm, 0)?,
//!     other => panic!("expected a fault, got {other:?}"),
//! }
//!
//! // The retried access misses the caches and reaches the NVM device.
//! let out = sys.access(buf, AccessKind::Load, 0)?;
//! assert_eq!(out.level, MemLevel::Nvm);
//! # Ok(())
//! # }
//! ```
//!
//! Workload code does not talk to [`MemorySystem`] directly; it is written
//! against the [`MemBackend`] trait and the [`SimVec`] container, so the
//! same algorithm runs on the full machine or on a free [`NullBackend`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod access;
mod addr;
mod backend;
mod cache;
mod config;
mod dram;
mod error;
mod fault;
mod frame;
mod memory_mode;
mod nvm;
mod page;
mod page_table;
mod simvec;
mod stats;
mod system;
mod tier;
mod tlb;
mod vma;

pub use access::{AccessError, AccessKind, AccessOutcome};
pub use addr::{
    pages_for, PageNum, ThreadId, VirtAddr, HUGE_PAGE_PAGES, HUGE_PAGE_SHIFT, HUGE_PAGE_SIZE,
    LINE_SHIFT, LINE_SIZE, PAGE_SHIFT, PAGE_SIZE,
};
pub use backend::{MemBackend, NullBackend};
pub use cache::{CacheOutcome, CacheStats, SetAssocCache};
pub use config::{
    CacheGeometry, DramTimings, MemConfig, MemConfigBuilder, NvmTimings, TlbGeometry,
};
pub use dram::{DeviceStats, DramModel};
pub use error::{MemError, PageFault};
pub use fault::{CycleWindow, FaultPlan, FaultState, FaultStats, RATE_ONE};
pub use frame::FrameAllocator;
pub use memory_mode::{MemoryModeCache, MemoryModeOutcome};
pub use nvm::NvmModel;
pub use page::{PageFlags, PageInfo};
pub use page_table::PageTable;
pub use simvec::SimVec;
pub use stats::AccessStats;
pub use system::{IntervalStats, MemorySystem, RunFault, RunOutcome, UnmapReport};
pub use tier::{MemLevel, Tier};
pub use tiersim_trace::{
    FaultSite, RejectReason, TraceConfig, TraceEvent, TraceLog, TraceRecord, TraceState,
};
pub use tlb::{Tlb, TlbOutcome, TlbStats};
pub use vma::{MemPolicy, Vma, VmaId, VmaTable, MMAP_BASE};
