//! Memory Mode: DRAM as a transparent direct-mapped cache over NVM.
//!
//! The paper's §2.1 describes Optane's two modes; in *Memory Mode* the
//! DRAM is not a NUMA node but a hardware-managed, direct-mapped cache of
//! the (large) NVM, invisible to the OS. The paper chooses App Direct mode
//! because Memory Mode offers no placement control; this model exists so
//! that choice can be quantified (see the `ablations` benches).

use crate::cache::CacheStats;

/// A direct-mapped, line-granularity DRAM cache in front of NVM.
///
/// Tags are full line numbers; the set index is `line mod lines` (any
/// DRAM size works). Dirty victims must be written back to NVM by the
/// caller.
///
/// # Examples
///
/// ```
/// use tiersim_mem::MemoryModeCache;
///
/// let mut c = MemoryModeCache::new(1 << 20); // 1 MiB of DRAM cache
/// assert!(!c.access(5, false).hit);
/// assert!(c.access(5, false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryModeCache {
    tags: Vec<u64>,
    dirty: Vec<bool>,
    lines: u64,
    stats: CacheStats,
}

/// Result of a Memory-Mode cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryModeOutcome {
    /// `true` if the line was cached in DRAM.
    pub hit: bool,
    /// Dirty victim line that must be written back to NVM, if any.
    pub writeback: Option<u64>,
}

const INVALID: u64 = u64::MAX;

impl MemoryModeCache {
    /// Creates a cache backed by `dram_bytes` of DRAM.
    ///
    /// # Panics
    ///
    /// Panics if `dram_bytes` holds no full line.
    pub fn new(dram_bytes: u64) -> Self {
        let lines = dram_bytes / crate::addr::LINE_SIZE;
        assert!(lines > 0, "memory-mode cache needs at least one line");
        MemoryModeCache {
            tags: vec![INVALID; lines as usize],
            dirty: vec![false; lines as usize],
            lines,
            stats: CacheStats::default(),
        }
    }

    /// Looks up `line`, filling on miss and reporting any dirty victim.
    pub fn access(&mut self, line: u64, write: bool) -> MemoryModeOutcome {
        let idx = (line % self.lines) as usize;
        if self.tags[idx] == line {
            self.stats.hits += 1;
            self.dirty[idx] |= write;
            return MemoryModeOutcome { hit: true, writeback: None };
        }
        self.stats.misses += 1;
        let writeback = (self.tags[idx] != INVALID && self.dirty[idx]).then(|| {
            self.stats.writebacks += 1;
            self.tags[idx]
        });
        self.tags[idx] = line;
        self.dirty[idx] = write;
        MemoryModeOutcome { hit: false, writeback }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (contents kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_hit() {
        let mut c = MemoryModeCache::new(64 * 4);
        assert!(!c.access(1, false).hit);
        assert!(c.access(1, false).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = MemoryModeCache::new(64 * 4); // 4 lines
        c.access(0, false);
        c.access(4, false); // maps to the same slot
        assert!(!c.access(0, false).hit, "conflict must have evicted line 0");
    }

    #[test]
    fn dirty_victim_is_reported_once() {
        let mut c = MemoryModeCache::new(64 * 4);
        c.access(2, true); // dirty
        let out = c.access(6, false); // conflicts with 2
        assert_eq!(out.writeback, Some(2));
        // The new occupant is clean; evicting it reports nothing.
        assert_eq!(c.access(2, false).writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = MemoryModeCache::new(64 * 2);
        c.access(0, false);
        c.access(0, true); // hit, now dirty
        assert_eq!(c.access(2, false).writeback, Some(0));
    }
}
