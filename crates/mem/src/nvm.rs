//! NVM (Optane-like) device model with a 256-byte internal buffer.

use crate::config::NvmTimings;
use crate::dram::DeviceStats;

/// NVM latency model: a small fully-associative buffer of 256-byte media
/// blocks (the Optane "XPBuffer") in front of slow media.
///
/// Sequential streams reuse buffered blocks (four 64 B lines per block) and
/// see roughly 2x DRAM latency; random accesses miss the buffer and see
/// roughly 3x, matching the measurements the paper cites (ref \[8\]). Writes
/// are more expensive than reads and sub-256 B writes cause write
/// amplification, which is tracked in [`NvmModel::media_blocks_written`].
///
/// # Examples
///
/// ```
/// use tiersim_mem::{NvmModel, NvmTimings};
///
/// let t = NvmTimings {
///     buffer_entries: 4, block_bytes: 256,
///     read_hit: 330, read_miss: 930, write_hit: 420, write_miss: 1250,
/// };
/// let mut n = NvmModel::new(t);
/// assert_eq!(n.read(0), 930);   // media access
/// assert_eq!(n.read(64), 330);  // same 256B block: buffered
/// ```
#[derive(Debug, Clone)]
pub struct NvmModel {
    timings: NvmTimings,
    block_shift: u32,
    /// Fully-associative LRU buffer of block numbers; front = MRU.
    buffer: Vec<u64>,
    stats: DeviceStats,
    media_blocks_written: u64,
}

impl NvmModel {
    /// Creates an NVM model with the given timings.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two or
    /// `buffer_entries == 0` (validated configurations never do).
    pub fn new(timings: NvmTimings) -> Self {
        assert!(timings.block_bytes.is_power_of_two());
        assert!(timings.buffer_entries > 0);
        NvmModel {
            timings,
            block_shift: timings.block_bytes.trailing_zeros(),
            buffer: Vec::with_capacity(timings.buffer_entries),
            stats: DeviceStats::default(),
            media_blocks_written: 0,
        }
    }

    /// Number of 256-byte media blocks written, including write
    /// amplification: every 64 B line written to an unbuffered block costs a
    /// whole media block (the read-modify-write the paper's §2.1 describes).
    pub fn media_blocks_written(&self) -> u64 {
        self.media_blocks_written
    }

    /// Write-amplification factor: media bytes written / requested bytes.
    pub fn write_amplification(&self) -> f64 {
        let requested = self.stats.bytes_written();
        if requested == 0 {
            return 0.0;
        }
        (self.media_blocks_written * self.timings.block_bytes) as f64 / requested as f64
    }

    /// `true` if the block was buffered; updates LRU order, inserting on miss.
    fn touch_buffer(&mut self, block: u64) -> bool {
        if let Some(pos) = self.buffer.iter().position(|&b| b == block) {
            let b = self.buffer.remove(pos);
            self.buffer.insert(0, b);
            true
        } else {
            if self.buffer.len() == self.timings.buffer_entries {
                self.buffer.pop();
            }
            self.buffer.insert(0, block);
            false
        }
    }

    /// Serves a 64-byte read at byte address `addr`; returns the latency in
    /// cycles.
    pub fn read(&mut self, addr: u64) -> u64 {
        let block = addr >> self.block_shift;
        let hit = self.touch_buffer(block);
        self.stats.reads += 1;
        let cycles = if hit {
            self.stats.read_buffer_hits += 1;
            self.timings.read_hit
        } else {
            self.timings.read_miss
        };
        self.stats.read_cycles += cycles;
        cycles
    }

    /// Serves `lines` sequential 64-byte reads starting at byte address
    /// `addr` (line `i` at `addr + i * 64`); returns the total latency.
    ///
    /// Block-granular closed form of `lines` successive [`NvmModel::read`]
    /// calls: one real LRU [`touch_buffer`](Self::touch_buffer) per
    /// 256-byte block crossed, because every read after the first within a
    /// block provably hits the block the first one just made MRU (and
    /// re-touching the MRU entry leaves the buffer order unchanged).
    /// Stats, buffer state and total cycles are bit-equal to the per-line
    /// loop.
    pub fn read_run(&mut self, addr: u64, lines: u64) -> u64 {
        let line = crate::addr::LINE_SIZE;
        let lines_per_block = self.timings.block_bytes >> crate::addr::LINE_SHIFT;
        let mut total = 0;
        let mut a = addr;
        let mut remaining = lines;
        while remaining > 0 {
            let block = a >> self.block_shift;
            let into_block = (a / line) % lines_per_block;
            let in_block = (lines_per_block - into_block).min(remaining);
            let hit = self.touch_buffer(block);
            self.stats.reads += in_block;
            let follow_hits = in_block - 1;
            self.stats.read_buffer_hits += follow_hits + u64::from(hit);
            let first = if hit { self.timings.read_hit } else { self.timings.read_miss };
            let cycles = first + follow_hits * self.timings.read_hit;
            self.stats.read_cycles += cycles;
            total += cycles;
            a += in_block * line;
            remaining -= in_block;
        }
        total
    }

    /// Serves a 64-byte write at byte address `addr`; returns the (posted)
    /// latency in cycles.
    pub fn write(&mut self, addr: u64) -> u64 {
        let block = addr >> self.block_shift;
        let hit = self.touch_buffer(block);
        self.stats.writes += 1;
        let cycles = if hit {
            self.stats.write_buffer_hits += 1;
            self.timings.write_hit
        } else {
            // Unbuffered sub-block write: read-modify-write of a media block.
            self.media_blocks_written += 1;
            self.timings.write_miss
        };
        self.stats.write_cycles += cycles;
        cycles
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Resets statistics (buffer contents kept).
    pub fn reset_stats(&mut self) {
        self.stats = DeviceStats::default();
        self.media_blocks_written = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NvmModel {
        NvmModel::new(NvmTimings {
            buffer_entries: 2,
            block_bytes: 256,
            read_hit: 300,
            read_miss: 900,
            write_hit: 400,
            write_miss: 1200,
        })
    }

    #[test]
    fn sequential_lines_share_a_block() {
        let mut n = model();
        assert_eq!(n.read(0), 900);
        assert_eq!(n.read(64), 300);
        assert_eq!(n.read(128), 300);
        assert_eq!(n.read(192), 300);
        assert_eq!(n.read(256), 900); // next block
    }

    #[test]
    fn random_reads_miss_small_buffer() {
        let mut n = model();
        for i in 0..8 {
            assert_eq!(n.read(i * 4096), 900);
        }
        assert_eq!(n.stats().read_buffer_hits, 0);
    }

    #[test]
    fn lru_keeps_most_recent_blocks() {
        let mut n = model();
        n.read(0); // block 0
        n.read(256); // block 1
        n.read(0); // block 0 hit, now MRU
        n.read(512); // block 2 evicts block 1
        assert_eq!(n.read(0), 300);
        assert_eq!(n.read(256), 900);
    }

    #[test]
    fn read_run_matches_per_line_reads() {
        // Pre-warm the buffer, then compare runs of assorted lengths and
        // (mid-block) starting offsets, including a re-read of a buffered
        // block.
        let mut looped = model();
        looped.read(0);
        looped.read(1024);
        let mut run = looped.clone();
        for (start, lines) in [(0u64, 1u64), (64, 3), (512 + 128, 40), (4096, 16)] {
            let mut want = 0;
            for i in 0..lines {
                want += looped.read(start + i * 64);
            }
            assert_eq!(run.read_run(start, lines), want, "run at {start}+{lines}");
            assert_eq!(run.stats(), looped.stats());
            assert_eq!(run.buffer, looped.buffer);
        }
    }

    #[test]
    fn write_amplification_on_random_writes() {
        let mut n = model();
        for i in 0..4 {
            n.write(i * 4096);
        }
        // 4 lines of 64 B requested, 4 media blocks of 256 B written.
        assert_eq!(n.media_blocks_written(), 4);
        assert!((n.write_amplification() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_writes_avoid_amplification() {
        let mut n = model();
        n.write(0);
        n.write(64);
        n.write(128);
        n.write(192);
        // Only the first 64 B write missed the buffer.
        assert_eq!(n.media_blocks_written(), 1);
    }
}
