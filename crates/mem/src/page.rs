//! Per-page metadata.

use crate::tier::Tier;
use core::fmt;
use core::ops::{BitOr, BitOrAssign};

/// Flag bits attached to a resident page.
///
/// A hand-rolled bitflag newtype (the crate deliberately avoids external
/// dependencies beyond the approved set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PageFlags(u8);

impl PageFlags {
    /// No flags set.
    pub const NONE: PageFlags = PageFlags(0);
    /// The page is marked for NUMA-hinting: the next access raises a hint
    /// fault (the simulated equivalent of `PROT_NONE` scanning).
    pub const HINT: PageFlags = PageFlags(1 << 0);
    /// The page belongs to the OS page cache (file-backed, clean): reclaim
    /// may drop or demote it cheaply.
    pub const PAGE_CACHE: PageFlags = PageFlags(1 << 1);
    /// The page is on the OS active LRU list.
    pub const ACTIVE: PageFlags = PageFlags(1 << 2);
    /// The page has been promoted NVM→DRAM at least once (used for the
    /// `pgpromote_demoted` counter).
    pub const WAS_PROMOTED: PageFlags = PageFlags(1 << 3);

    /// Returns `true` if all bits of `other` are set in `self`.
    #[inline]
    pub const fn contains(self, other: PageFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Sets the bits of `other`.
    #[inline]
    pub fn insert(&mut self, other: PageFlags) {
        self.0 |= other.0;
    }

    /// Clears the bits of `other`.
    #[inline]
    pub fn remove(&mut self, other: PageFlags) {
        self.0 &= !other.0;
    }

    /// Returns `true` if no flag is set.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for PageFlags {
    type Output = PageFlags;
    fn bitor(self, rhs: PageFlags) -> PageFlags {
        PageFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for PageFlags {
    fn bitor_assign(&mut self, rhs: PageFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for PageFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut put = |f: &mut fmt::Formatter<'_>, s: &str| -> fmt::Result {
            if !first {
                f.write_str("|")?;
            }
            first = false;
            f.write_str(s)
        };
        if self.contains(PageFlags::HINT) {
            put(f, "HINT")?;
        }
        if self.contains(PageFlags::PAGE_CACHE) {
            put(f, "PAGE_CACHE")?;
        }
        if self.contains(PageFlags::ACTIVE) {
            put(f, "ACTIVE")?;
        }
        if self.contains(PageFlags::WAS_PROMOTED) {
            put(f, "WAS_PROMOTED")?;
        }
        if first {
            f.write_str("-")?;
        }
        Ok(())
    }
}

/// Metadata snapshot for one resident page.
///
/// Since the struct-of-arrays page table refactor this is a *value* type:
/// the authoritative storage is the parallel columns inside
/// [`PageTable`](crate::PageTable), and `PageInfo` is only materialized at
/// the API boundary (reads return a copy; mutation goes through
/// `PageTable::update`, which writes the edited copy back). Constructing a
/// `PageInfo` anywhere outside the page-table module is forbidden by the
/// `pageinfo-construct` lint rule — go through `PageTable::insert` /
/// `update` instead so the residency counters and columns stay coherent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PageInfo {
    /// The tier whose frame currently backs this page.
    pub tier: Tier,
    /// Flag bits.
    pub flags: PageFlags,
    /// Cycle timestamp of the last NUMA-balancing scan that marked this
    /// page (meaningful while [`PageFlags::HINT`] is set or right after a
    /// hint fault).
    pub scan_time: u64,
    /// Cycle timestamp of the most recent access.
    pub last_access: u64,
    /// `true` if this base page is part of a collapsed 2 MiB mapping.
    ///
    /// Read-only in the snapshot: `PageTable::update` ignores writes to
    /// this field. Huge membership changes only through the dedicated
    /// `PageTable::collapse_block` / `split_block` transitions, which keep
    /// the whole 512-page block coherent.
    pub huge: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_insert_remove_contains() {
        let mut f = PageFlags::NONE;
        assert!(f.is_empty());
        f.insert(PageFlags::HINT);
        f |= PageFlags::ACTIVE;
        assert!(f.contains(PageFlags::HINT));
        assert!(f.contains(PageFlags::ACTIVE));
        assert!(!f.contains(PageFlags::PAGE_CACHE));
        f.remove(PageFlags::HINT);
        assert!(!f.contains(PageFlags::HINT));
    }

    #[test]
    fn contains_requires_all_bits() {
        let f = PageFlags::HINT | PageFlags::ACTIVE;
        assert!(f.contains(PageFlags::HINT | PageFlags::ACTIVE));
        assert!(!f.contains(PageFlags::HINT | PageFlags::PAGE_CACHE));
    }

    #[test]
    fn display_is_never_empty() {
        assert_eq!(PageFlags::NONE.to_string(), "-");
        assert_eq!((PageFlags::HINT | PageFlags::ACTIVE).to_string(), "HINT|ACTIVE");
    }

    #[test]
    fn snapshot_is_plain_value() {
        let p = PageInfo {
            tier: Tier::Nvm,
            flags: PageFlags::NONE,
            scan_time: 0,
            last_access: 42,
            huge: false,
        };
        assert_eq!(p.tier, Tier::Nvm);
        assert!(p.flags.is_empty());
        assert_eq!(p.last_access, 42);
    }
}
