//! Flat page table over the dense `mmap` arena, stored struct-of-arrays.

use crate::addr::{PageNum, HUGE_PAGE_SHIFT, PAGE_SHIFT};
use crate::page::{PageFlags, PageInfo};
use crate::tier::Tier;
use crate::vma::MMAP_BASE;

/// Tier byte for a non-resident slot.
const TIER_NONE: u8 = 0;

/// Slots per 2 MiB huge-page block. Because `MMAP_BASE >> PAGE_SHIFT` is
/// itself 2 MiB aligned, slot-space alignment coincides with page-number
/// alignment: `slot % HUGE_SLOTS == 0` iff the page is a huge head.
const HUGE_SLOTS: usize = 1 << (HUGE_PAGE_SHIFT - PAGE_SHIFT);

#[inline]
const fn tier_byte(tier: Tier) -> u8 {
    match tier {
        Tier::Dram => 1,
        Tier::Nvm => 2,
    }
}

#[inline]
const fn byte_tier(b: u8) -> Option<Tier> {
    match b {
        1 => Some(Tier::Dram),
        2 => Some(Tier::Nvm),
        _ => None,
    }
}

/// Resident-page table.
///
/// Because the VMA bump allocator hands out dense addresses starting at
/// [`MMAP_BASE`], the table is indexed by `page - MMAP_BASE/4096`, giving
/// O(1) lookups on the access fast path (the single hottest operation in
/// the whole simulator).
///
/// Page metadata is held in parallel struct-of-arrays columns (tier byte,
/// flags, scan time, last-access time) rather than a `Vec<Option<PageInfo>>`.
/// The interval engine ([`MemorySystem::access_run`]) validates and updates
/// whole page *windows*, and the SoA layout turns those window operations
/// into dense scans of a single small column (`tiers`, one byte per page)
/// plus a bulk `fill` of `last_access` — instead of pointer-chasing 32-byte
/// per-page structs. [`PageInfo`] survives as a *value* snapshot type: this
/// module is the only place allowed to assemble one (enforced by the
/// `pageinfo-construct` lint rule).
///
/// [`MemorySystem::access_run`]: crate::MemorySystem::access_run
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    /// Presence + tier per slot: `TIER_NONE` if not resident.
    tiers: Vec<u8>,
    flags: Vec<PageFlags>,
    scan_time: Vec<u64>,
    last_access: Vec<u64>,
    /// 1 if the slot is covered by a collapsed 2 MiB mapping, else 0.
    /// Written only by [`PageTable::collapse_block`] /
    /// [`PageTable::split_block`] (and cleared block-wide by
    /// [`PageTable::remove`]); [`PageTable::update`] never writes it back,
    /// so huge membership cannot drift through snapshot edits.
    huge: Vec<u8>,
    resident: [u64; 2],
    /// One-entry last-translation cache: `(page index, slot)` of the most
    /// recent successful slot computation. The page→slot mapping is pure
    /// arithmetic (never remapped), so the entry can never go stale; it
    /// only short-circuits the checked subtraction + narrowing on the
    /// access fast path, where consecutive lookups overwhelmingly target
    /// the same page.
    last: Option<(u64, usize)>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Slot index of `pn`, usable with the window operations below.
    #[inline]
    pub fn slot(pn: PageNum) -> Option<usize> {
        pn.index().checked_sub(MMAP_BASE >> PAGE_SHIFT).and_then(|i| usize::try_from(i).ok())
    }

    /// [`PageTable::slot`] through the one-entry last-translation cache.
    #[inline]
    fn slot_cached(&mut self, pn: PageNum) -> Option<usize> {
        if let Some((last_pn, slot)) = self.last {
            if last_pn == pn.index() {
                return Some(slot);
            }
        }
        let slot = Self::slot(pn)?;
        self.last = Some((pn.index(), slot));
        Some(slot)
    }

    /// Assembles the value snapshot for an in-bounds, resident slot.
    #[inline]
    fn info_at(&self, slot: usize, tier: Tier) -> PageInfo {
        PageInfo {
            tier,
            flags: self.flags[slot],
            scan_time: self.scan_time[slot],
            last_access: self.last_access[slot],
            huge: self.huge.get(slot).is_some_and(|&b| b != 0),
        }
    }

    /// Returns a snapshot of the metadata of a resident page.
    #[inline]
    pub fn get(&self, pn: PageNum) -> Option<PageInfo> {
        let slot = Self::slot(pn)?;
        let tier = byte_tier(*self.tiers.get(slot)?)?;
        Some(self.info_at(slot, tier))
    }

    /// Applies `f` to a snapshot of the page's metadata and writes the
    /// result back, adjusting residency counters if `f` changed the tier.
    /// Returns `f`'s result, or `None` if the page is not resident.
    /// Writes to the snapshot's `huge` field are ignored — huge membership
    /// only changes through [`PageTable::collapse_block`] /
    /// [`PageTable::split_block`].
    #[inline]
    pub fn update<R>(&mut self, pn: PageNum, f: impl FnOnce(&mut PageInfo) -> R) -> Option<R> {
        let slot = self.slot_cached(pn)?;
        let tier = byte_tier(*self.tiers.get(slot)?)?;
        let mut info = self.info_at(slot, tier);
        let out = f(&mut info);
        if info.tier != tier {
            self.resident[tier.index()] -= 1;
            self.resident[info.tier.index()] += 1;
            self.tiers[slot] = tier_byte(info.tier);
        }
        self.flags[slot] = info.flags;
        self.scan_time[slot] = info.scan_time;
        self.last_access[slot] = info.last_access;
        Some(out)
    }

    /// Returns `true` if the page is resident.
    #[inline]
    pub fn is_resident(&self, pn: PageNum) -> bool {
        Self::slot(pn).and_then(|slot| self.tiers.get(slot)).is_some_and(|&b| b != TIER_NONE)
    }

    /// The access-path hot call: stamps `last_access = now`, consumes a
    /// pending HINT flag, and returns
    /// `(tier, hint_consumed, scan_time, huge)`.
    /// Returns `None` if the page is not resident.
    #[inline]
    pub fn access_touch(&mut self, pn: PageNum, now: u64) -> Option<(Tier, bool, u64, bool)> {
        let slot = self.slot_cached(pn)?;
        let tier = byte_tier(*self.tiers.get(slot)?)?;
        self.last_access[slot] = now;
        let hint = self.flags[slot].contains(PageFlags::HINT);
        if hint {
            self.flags[slot].remove(PageFlags::HINT);
        }
        let huge = self.huge.get(slot).is_some_and(|&b| b != 0);
        Some((tier, hint, self.scan_time[slot], huge))
    }

    /// Inserts metadata for a page freshly mapped on `tier` at time `now`.
    /// Returns the previous entry if the page was already resident (callers
    /// treat that as a bug; see
    /// [`MemorySystem::map_page`](crate::MemorySystem::map_page)).
    /// A page below `MMAP_BASE` is never handed out by `mmap`, so such an
    /// insert is ignored (and trips a debug assertion).
    pub fn insert(&mut self, pn: PageNum, tier: Tier, now: u64) -> Option<PageInfo> {
        let Some(slot) = Self::slot(pn) else {
            debug_assert!(false, "insert of page below MMAP_BASE");
            return None;
        };
        if slot >= self.tiers.len() {
            self.tiers.resize(slot + 1, TIER_NONE);
            self.flags.resize(slot + 1, PageFlags::NONE);
            self.scan_time.resize(slot + 1, 0);
            self.last_access.resize(slot + 1, 0);
            self.huge.resize(slot + 1, 0);
        }
        let old = byte_tier(self.tiers[slot]).map(|prev| self.info_at(slot, prev));
        if let Some(prev) = &old {
            self.resident[prev.tier.index()] -= 1;
            if prev.huge {
                self.clear_huge_block(slot);
            }
        }
        self.tiers[slot] = tier_byte(tier);
        self.flags[slot] = PageFlags::NONE;
        self.scan_time[slot] = 0;
        self.last_access[slot] = now;
        self.resident[tier.index()] += 1;
        old
    }

    /// Clears the huge marks of the whole 2 MiB block containing `slot`
    /// (the implicit split when any base page of a collapsed mapping is
    /// unmapped or replaced).
    fn clear_huge_block(&mut self, slot: usize) {
        let head = slot & !(HUGE_SLOTS - 1);
        if let Some(block) = self.huge.get_mut(head..head + HUGE_SLOTS) {
            block.fill(0);
        } else if let Some(tail) = self.huge.get_mut(head..) {
            tail.fill(0);
        }
    }

    /// Removes the entry for `pn`, returning it if it was resident. If the
    /// page was part of a collapsed 2 MiB mapping, the whole block is
    /// implicitly split first (its other members stay resident as base
    /// pages).
    pub fn remove(&mut self, pn: PageNum) -> Option<PageInfo> {
        let slot = Self::slot(pn)?;
        let tier = byte_tier(*self.tiers.get(slot)?)?;
        let old = self.info_at(slot, tier);
        if old.huge {
            self.clear_huge_block(slot);
        }
        self.tiers[slot] = TIER_NONE;
        self.resident[tier.index()] -= 1;
        Some(old)
    }

    /// Changes the tier recorded for a resident page, returning the old
    /// tier. Returns `None` if the page is not resident.
    pub fn retier(&mut self, pn: PageNum, to: Tier) -> Option<Tier> {
        let slot = Self::slot(pn)?;
        let from = byte_tier(*self.tiers.get(slot)?)?;
        self.tiers[slot] = tier_byte(to);
        self.resident[from.index()] -= 1;
        self.resident[to.index()] += 1;
        Some(from)
    }

    // ----- huge pages (2 MiB collapse/split) ----------------------------

    /// Returns `true` if `pn` is part of a collapsed 2 MiB mapping.
    #[inline]
    pub fn is_huge(&self, pn: PageNum) -> bool {
        Self::slot(pn).and_then(|slot| self.huge.get(slot)).is_some_and(|&b| b != 0)
    }

    /// Collapses the 512-page block headed at `head` into one 2 MiB
    /// mapping (the khugepaged transition). Succeeds iff `head` is 2 MiB
    /// aligned and all 512 base pages are resident on one tier, none
    /// already huge, with no pending HINT and no page-cache membership.
    /// Per-base-page metadata (flags, scan/access timestamps) is retained
    /// untouched, so a later [`PageTable::split_block`] restores the exact
    /// pre-collapse state. Returns the block's tier on success.
    pub fn collapse_block(&mut self, head: PageNum) -> Option<Tier> {
        if !head.is_huge_head() {
            return None;
        }
        let slot = Self::slot(head)?;
        let end = slot.checked_add(HUGE_SLOTS)?;
        let tiers = self.tiers.get(slot..end)?;
        let want = *tiers.first()?;
        let tier = byte_tier(want)?;
        if !tiers.iter().all(|&b| b == want) {
            return None;
        }
        if self.huge.get(slot..end)?.iter().any(|&b| b != 0) {
            return None;
        }
        let blocked =
            |f: &PageFlags| f.contains(PageFlags::HINT) || f.contains(PageFlags::PAGE_CACHE);
        if self.flags.get(slot..end)?.iter().any(blocked) {
            return None;
        }
        if let Some(block) = self.huge.get_mut(slot..end) {
            block.fill(1);
        }
        Some(tier)
    }

    /// Splits the collapsed 2 MiB mapping containing `pn` back into 512
    /// base pages, leaving per-page metadata exactly as it was. Returns
    /// the block head, or `None` if `pn` is not part of a huge mapping.
    pub fn split_block(&mut self, pn: PageNum) -> Option<PageNum> {
        let slot = Self::slot(pn)?;
        if self.huge.get(slot).is_none_or(|&b| b == 0) {
            return None;
        }
        self.clear_huge_block(slot);
        Some(pn.huge_head())
    }

    /// Number of resident pages on `tier`.
    pub fn resident_pages(&self, tier: Tier) -> u64 {
        self.resident[tier.index()]
    }

    /// Total resident pages.
    pub fn total_resident(&self) -> u64 {
        self.resident.iter().sum()
    }

    /// Iterates `(page, info)` snapshots for all resident pages in address
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (PageNum, PageInfo)> + '_ {
        let base = MMAP_BASE >> PAGE_SHIFT;
        self.tiers.iter().enumerate().filter_map(move |(i, &b)| {
            byte_tier(b).map(|tier| (PageNum::new(base + i as u64), self.info_at(i, tier)))
        })
    }

    /// Read-only window check for the interval engine: returns the common
    /// tier iff all `n` pages starting at `pn` are resident on the same
    /// tier with no pending HINT flag and no collapsed 2 MiB membership
    /// (huge pages translate through a shared PMD-level TLB tag, so the
    /// engine's per-page walk model does not apply; such windows fall back
    /// to the per-line fast lane, which handles them exactly). A dense
    /// scan of the `tiers` byte column plus flags/huge sweeps; does not
    /// modify anything.
    pub fn window_uniform(&self, pn: PageNum, n: usize) -> Option<Tier> {
        let slot = Self::slot(pn)?;
        let end = slot.checked_add(n)?;
        let tiers = self.tiers.get(slot..end)?;
        let want = *tiers.first()?;
        let tier = byte_tier(want)?;
        if !tiers.iter().all(|&b| b == want) {
            return None;
        }
        if self.flags[slot..end].iter().any(|f| f.contains(PageFlags::HINT)) {
            return None;
        }
        if self.huge.get(slot..end).is_some_and(|h| h.iter().any(|&b| b != 0)) {
            return None;
        }
        Some(tier)
    }

    /// Bulk hotness update for the interval engine: stamps
    /// `last_access = now` on `n` pages starting at `pn`. Callers must have
    /// validated the window with [`PageTable::window_uniform`] first.
    pub fn stamp_last_access(&mut self, pn: PageNum, n: usize, now: u64) {
        let Some(slot) = Self::slot(pn) else { return };
        let Some(end) = slot.checked_add(n) else { return };
        if let Some(ts) = self.last_access.get_mut(slot..end) {
            ts.fill(now);
        }
    }

    /// Number of leading pages in `[pn, pn + max_pages)` that are resident
    /// with no pending HINT flag — the window a batched run may cover
    /// without per-element fault/hint handling. Returns 0 if the first
    /// page already needs per-element care.
    pub fn plain_window(&self, pn: PageNum, max_pages: usize) -> usize {
        let Some(slot) = Self::slot(pn) else { return 0 };
        let end = slot.saturating_add(max_pages).min(self.tiers.len());
        if slot >= end {
            return 0;
        }
        let mut n = 0;
        while slot + n < end
            && self.tiers[slot + n] != TIER_NONE
            && !self.flags[slot + n].contains(PageFlags::HINT)
        {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VirtAddr;
    use crate::addr::PAGE_SIZE;

    fn pn(i: u64) -> PageNum {
        VirtAddr::new(MMAP_BASE + i * PAGE_SIZE).page()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut pt = PageTable::new();
        assert!(pt.get(pn(3)).is_none());
        pt.insert(pn(3), Tier::Dram, 1);
        assert_eq!(pt.get(pn(3)).unwrap().tier, Tier::Dram);
        assert_eq!(pt.get(pn(3)).unwrap().last_access, 1);
        assert_eq!(pt.resident_pages(Tier::Dram), 1);
        let removed = pt.remove(pn(3)).unwrap();
        assert_eq!(removed.tier, Tier::Dram);
        assert_eq!(pt.total_resident(), 0);
    }

    #[test]
    fn retier_moves_residency_counts() {
        let mut pt = PageTable::new();
        pt.insert(pn(0), Tier::Dram, 0);
        assert_eq!(pt.retier(pn(0), Tier::Nvm), Some(Tier::Dram));
        assert_eq!(pt.resident_pages(Tier::Dram), 0);
        assert_eq!(pt.resident_pages(Tier::Nvm), 1);
        assert_eq!(pt.get(pn(0)).unwrap().tier, Tier::Nvm);
    }

    #[test]
    fn retier_missing_page_is_none() {
        let mut pt = PageTable::new();
        assert_eq!(pt.retier(pn(9), Tier::Dram), None);
    }

    #[test]
    fn pages_below_base_are_never_resident() {
        let pt = PageTable::new();
        assert!(pt.get(PageNum::new(0)).is_none());
        assert!(!pt.is_resident(PageNum::new(1)));
    }

    #[test]
    fn last_translation_cache_is_transparent() {
        let mut pt = PageTable::new();
        pt.insert(pn(4), Tier::Dram, 0);
        pt.insert(pn(9), Tier::Nvm, 0);
        // Repeated and alternating mutable lookups resolve through the
        // one-entry cache without ever returning the wrong slot.
        for _ in 0..3 {
            assert_eq!(pt.update(pn(4), |p| p.tier).unwrap(), Tier::Dram);
            assert_eq!(pt.update(pn(9), |p| p.tier).unwrap(), Tier::Nvm);
            assert!(pt.update(PageNum::new(1), |_| ()).is_none());
        }
        // Removal is visible through the cached slot immediately.
        pt.remove(pn(4));
        assert!(pt.update(pn(4), |_| ()).is_none());
    }

    #[test]
    fn iter_yields_address_order() {
        let mut pt = PageTable::new();
        pt.insert(pn(5), Tier::Nvm, 0);
        pt.insert(pn(2), Tier::Dram, 0);
        let pages: Vec<_> = pt.iter().map(|(p, _)| p).collect();
        assert_eq!(pages, vec![pn(2), pn(5)]);
    }

    #[test]
    fn reinsert_replaces_and_fixes_counts() {
        let mut pt = PageTable::new();
        pt.insert(pn(1), Tier::Dram, 0);
        let prev = pt.insert(pn(1), Tier::Nvm, 1);
        assert_eq!(prev.unwrap().tier, Tier::Dram);
        assert_eq!(pt.resident_pages(Tier::Dram), 0);
        assert_eq!(pt.resident_pages(Tier::Nvm), 1);
    }

    #[test]
    fn update_retier_through_closure_fixes_counts() {
        let mut pt = PageTable::new();
        pt.insert(pn(2), Tier::Nvm, 0);
        pt.update(pn(2), |p| p.tier = Tier::Dram);
        assert_eq!(pt.resident_pages(Tier::Dram), 1);
        assert_eq!(pt.resident_pages(Tier::Nvm), 0);
    }

    #[test]
    fn access_touch_consumes_hint_and_stamps() {
        let mut pt = PageTable::new();
        pt.insert(pn(7), Tier::Nvm, 0);
        pt.update(pn(7), |p| {
            p.flags.insert(PageFlags::HINT);
            p.scan_time = 5;
        });
        assert_eq!(pt.access_touch(pn(7), 99), Some((Tier::Nvm, true, 5, false)));
        let info = pt.get(pn(7)).unwrap();
        assert!(!info.flags.contains(PageFlags::HINT));
        assert_eq!(info.last_access, 99);
        // Second touch: hint already consumed.
        assert_eq!(pt.access_touch(pn(7), 100), Some((Tier::Nvm, false, 5, false)));
        assert_eq!(pt.access_touch(pn(8), 100), None);
    }

    #[test]
    fn window_uniform_requires_same_tier_and_no_hint() {
        let mut pt = PageTable::new();
        for i in 0..4 {
            pt.insert(pn(i), Tier::Dram, 0);
        }
        assert_eq!(pt.window_uniform(pn(0), 4), Some(Tier::Dram));
        pt.retier(pn(2), Tier::Nvm);
        assert_eq!(pt.window_uniform(pn(0), 4), None);
        assert_eq!(pt.window_uniform(pn(0), 2), Some(Tier::Dram));
        pt.retier(pn(2), Tier::Dram);
        pt.update(pn(1), |p| p.flags.insert(PageFlags::HINT));
        assert_eq!(pt.window_uniform(pn(0), 4), None);
        // Out-of-range window (page 4 not resident).
        assert_eq!(pt.window_uniform(pn(3), 2), None);
    }

    #[test]
    fn stamp_last_access_fills_window() {
        let mut pt = PageTable::new();
        for i in 0..3 {
            pt.insert(pn(i), Tier::Dram, 0);
        }
        pt.stamp_last_access(pn(0), 3, 42);
        for i in 0..3 {
            assert_eq!(pt.get(pn(i)).unwrap().last_access, 42);
        }
    }

    /// Maps the whole 512-page block starting at slot `base` on `tier`.
    fn fill_block(pt: &mut PageTable, base: u64, tier: Tier) {
        for i in 0..HUGE_SLOTS as u64 {
            pt.insert(pn(base + i), tier, 0);
        }
    }

    #[test]
    fn collapse_requires_aligned_full_uniform_block() {
        let mut pt = PageTable::new();
        fill_block(&mut pt, 0, Tier::Dram);
        // Misaligned head.
        assert_eq!(pt.collapse_block(pn(1)), None);
        // Non-uniform tier.
        pt.retier(pn(7), Tier::Nvm);
        assert_eq!(pt.collapse_block(pn(0)), None);
        pt.retier(pn(7), Tier::Dram);
        // Pending HINT.
        pt.update(pn(3), |p| p.flags.insert(PageFlags::HINT));
        assert_eq!(pt.collapse_block(pn(0)), None);
        pt.update(pn(3), |p| p.flags.remove(PageFlags::HINT));
        // Page-cache member.
        pt.update(pn(4), |p| p.flags.insert(PageFlags::PAGE_CACHE));
        assert_eq!(pt.collapse_block(pn(0)), None);
        pt.update(pn(4), |p| p.flags.remove(PageFlags::PAGE_CACHE));
        // Hole.
        pt.remove(pn(100));
        assert_eq!(pt.collapse_block(pn(0)), None);
        pt.insert(pn(100), Tier::Dram, 0);
        // Now eligible; a second collapse of the same block fails.
        assert_eq!(pt.collapse_block(pn(0)), Some(Tier::Dram));
        assert!(pt.is_huge(pn(0)));
        assert!(pt.is_huge(pn(511)));
        assert!(!pt.is_huge(pn(512)));
        assert_eq!(pt.collapse_block(pn(0)), None);
    }

    #[test]
    fn collapse_split_round_trip_preserves_metadata() {
        let mut pt = PageTable::new();
        fill_block(&mut pt, 0, Tier::Nvm);
        for i in 0..HUGE_SLOTS as u64 {
            pt.update(pn(i), |p| {
                p.scan_time = 10 + i;
                p.last_access = 100 + i;
                if i % 3 == 0 {
                    p.flags.insert(PageFlags::ACTIVE);
                }
            });
        }
        let before: Vec<_> = pt.iter().collect();
        assert_eq!(pt.collapse_block(pn(0)), Some(Tier::Nvm));
        assert_eq!(pt.split_block(pn(77)), Some(pn(0)));
        let after: Vec<_> = pt.iter().collect();
        assert_eq!(before, after, "collapse→split must restore per-4K metadata exactly");
        assert!(!pt.is_huge(pn(77)));
        // Split of a non-huge page is a no-op.
        assert_eq!(pt.split_block(pn(0)), None);
    }

    #[test]
    fn remove_implicitly_splits_the_block() {
        let mut pt = PageTable::new();
        fill_block(&mut pt, 0, Tier::Dram);
        assert_eq!(pt.collapse_block(pn(0)), Some(Tier::Dram));
        pt.remove(pn(200));
        assert!(!pt.is_huge(pn(0)));
        assert!(!pt.is_huge(pn(511)));
        assert_eq!(pt.total_resident(), HUGE_SLOTS as u64 - 1);
    }

    #[test]
    fn window_uniform_excludes_huge_blocks() {
        let mut pt = PageTable::new();
        fill_block(&mut pt, 0, Tier::Dram);
        assert_eq!(pt.window_uniform(pn(0), 16), Some(Tier::Dram));
        assert_eq!(pt.collapse_block(pn(0)), Some(Tier::Dram));
        assert_eq!(pt.window_uniform(pn(0), 16), None);
        assert_eq!(pt.window_uniform(pn(500), 12), None);
        assert_eq!(pt.split_block(pn(0)), Some(pn(0)));
        assert_eq!(pt.window_uniform(pn(0), 16), Some(Tier::Dram));
    }

    #[test]
    fn access_touch_and_update_report_but_never_write_huge() {
        let mut pt = PageTable::new();
        fill_block(&mut pt, 0, Tier::Dram);
        assert_eq!(pt.access_touch(pn(5), 1), Some((Tier::Dram, false, 0, false)));
        pt.collapse_block(pn(0));
        assert_eq!(pt.access_touch(pn(5), 2), Some((Tier::Dram, false, 0, true)));
        // A snapshot edit cannot clear (or set) huge membership.
        pt.update(pn(5), |p| p.huge = false);
        assert!(pt.is_huge(pn(5)));
        pt.split_block(pn(5));
        pt.update(pn(5), |p| p.huge = true);
        assert!(!pt.is_huge(pn(5)));
    }

    #[test]
    fn plain_window_stops_at_hint_or_hole() {
        let mut pt = PageTable::new();
        for i in 0..5 {
            pt.insert(pn(i), Tier::Dram, 0);
        }
        pt.update(pn(3), |p| p.flags.insert(PageFlags::HINT));
        assert_eq!(pt.plain_window(pn(0), 8), 3);
        assert_eq!(pt.plain_window(pn(3), 8), 0);
        assert_eq!(pt.plain_window(pn(4), 8), 1);
        pt.remove(pn(1));
        assert_eq!(pt.plain_window(pn(0), 8), 1);
        assert_eq!(pt.plain_window(pn(9), 8), 0);
    }
}
