//! Flat page table over the dense `mmap` arena.

use crate::addr::{PageNum, PAGE_SHIFT};
use crate::page::PageInfo;
use crate::tier::Tier;
use crate::vma::MMAP_BASE;

/// Resident-page table.
///
/// Because the VMA bump allocator hands out dense addresses starting at
/// [`MMAP_BASE`], the table is a flat `Vec<Option<PageInfo>>` indexed by
/// `page - MMAP_BASE/4096`, giving O(1) lookups on the access fast path
/// (the single hottest operation in the whole simulator).
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: Vec<Option<PageInfo>>,
    resident: [u64; 2],
    /// One-entry last-translation cache: `(page index, slot)` of the most
    /// recent successful slot computation. The page→slot mapping is pure
    /// arithmetic (never remapped), so the entry can never go stale; it
    /// only short-circuits the checked subtraction + narrowing on the
    /// access fast path, where consecutive lookups overwhelmingly target
    /// the same page.
    last: Option<(u64, usize)>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable::default()
    }

    #[inline]
    fn slot(pn: PageNum) -> Option<usize> {
        pn.index().checked_sub(MMAP_BASE >> PAGE_SHIFT).and_then(|i| usize::try_from(i).ok())
    }

    /// [`PageTable::slot`] through the one-entry last-translation cache.
    #[inline]
    fn slot_cached(&mut self, pn: PageNum) -> Option<usize> {
        if let Some((last_pn, slot)) = self.last {
            if last_pn == pn.index() {
                return Some(slot);
            }
        }
        let slot = Self::slot(pn)?;
        self.last = Some((pn.index(), slot));
        Some(slot)
    }

    /// Returns the metadata of a resident page.
    #[inline]
    pub fn get(&self, pn: PageNum) -> Option<&PageInfo> {
        let slot = Self::slot(pn)?;
        self.entries.get(slot)?.as_ref()
    }

    /// Returns mutable metadata of a resident page.
    #[inline]
    pub fn get_mut(&mut self, pn: PageNum) -> Option<&mut PageInfo> {
        let slot = self.slot_cached(pn)?;
        self.entries.get_mut(slot)?.as_mut()
    }

    /// Returns `true` if the page is resident.
    #[inline]
    pub fn is_resident(&self, pn: PageNum) -> bool {
        self.get(pn).is_some()
    }

    /// Inserts metadata for `pn`. Returns the previous entry if the page
    /// was already resident (callers treat that as a bug; see
    /// [`MemorySystem::map_page`](crate::MemorySystem::map_page)).
    /// A page below `MMAP_BASE` is never handed out by `mmap`, so such an
    /// insert is ignored (and trips a debug assertion).
    pub fn insert(&mut self, pn: PageNum, info: PageInfo) -> Option<PageInfo> {
        let Some(slot) = Self::slot(pn) else {
            debug_assert!(false, "insert of page below MMAP_BASE");
            return None;
        };
        if slot >= self.entries.len() {
            self.entries.resize(slot + 1, None);
        }
        let old = self.entries[slot].replace(info);
        match old {
            Some(prev) => {
                self.resident[prev.tier.index()] -= 1;
                self.resident[info.tier.index()] += 1;
                Some(prev)
            }
            None => {
                self.resident[info.tier.index()] += 1;
                None
            }
        }
    }

    /// Removes the entry for `pn`, returning it if it was resident.
    pub fn remove(&mut self, pn: PageNum) -> Option<PageInfo> {
        let slot = Self::slot(pn)?;
        let old = self.entries.get_mut(slot)?.take();
        if let Some(prev) = &old {
            self.resident[prev.tier.index()] -= 1;
        }
        old
    }

    /// Changes the tier recorded for a resident page, returning the old
    /// tier. Returns `None` if the page is not resident.
    pub fn retier(&mut self, pn: PageNum, to: Tier) -> Option<Tier> {
        let slot = Self::slot(pn)?;
        let info = self.entries.get_mut(slot)?.as_mut()?;
        let from = info.tier;
        info.tier = to;
        self.resident[from.index()] -= 1;
        self.resident[to.index()] += 1;
        Some(from)
    }

    /// Number of resident pages on `tier`.
    pub fn resident_pages(&self, tier: Tier) -> u64 {
        self.resident[tier.index()]
    }

    /// Total resident pages.
    pub fn total_resident(&self) -> u64 {
        self.resident.iter().sum()
    }

    /// Iterates `(page, info)` for all resident pages in address order.
    pub fn iter(&self) -> impl Iterator<Item = (PageNum, &PageInfo)> {
        let base = MMAP_BASE >> PAGE_SHIFT;
        self.entries
            .iter()
            .enumerate()
            .filter_map(move |(i, e)| e.as_ref().map(|info| (PageNum::new(base + i as u64), info)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VirtAddr;
    use crate::addr::PAGE_SIZE;

    fn pn(i: u64) -> PageNum {
        VirtAddr::new(MMAP_BASE + i * PAGE_SIZE).page()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut pt = PageTable::new();
        assert!(pt.get(pn(3)).is_none());
        pt.insert(pn(3), PageInfo::new(Tier::Dram, 1));
        assert_eq!(pt.get(pn(3)).unwrap().tier, Tier::Dram);
        assert_eq!(pt.resident_pages(Tier::Dram), 1);
        let removed = pt.remove(pn(3)).unwrap();
        assert_eq!(removed.tier, Tier::Dram);
        assert_eq!(pt.total_resident(), 0);
    }

    #[test]
    fn retier_moves_residency_counts() {
        let mut pt = PageTable::new();
        pt.insert(pn(0), PageInfo::new(Tier::Dram, 0));
        assert_eq!(pt.retier(pn(0), Tier::Nvm), Some(Tier::Dram));
        assert_eq!(pt.resident_pages(Tier::Dram), 0);
        assert_eq!(pt.resident_pages(Tier::Nvm), 1);
        assert_eq!(pt.get(pn(0)).unwrap().tier, Tier::Nvm);
    }

    #[test]
    fn retier_missing_page_is_none() {
        let mut pt = PageTable::new();
        assert_eq!(pt.retier(pn(9), Tier::Dram), None);
    }

    #[test]
    fn pages_below_base_are_never_resident() {
        let pt = PageTable::new();
        assert!(pt.get(PageNum::new(0)).is_none());
        assert!(!pt.is_resident(PageNum::new(1)));
    }

    #[test]
    fn last_translation_cache_is_transparent() {
        let mut pt = PageTable::new();
        pt.insert(pn(4), PageInfo::new(Tier::Dram, 0));
        pt.insert(pn(9), PageInfo::new(Tier::Nvm, 0));
        // Repeated and alternating mutable lookups resolve through the
        // one-entry cache without ever returning the wrong slot.
        for _ in 0..3 {
            assert_eq!(pt.get_mut(pn(4)).unwrap().tier, Tier::Dram);
            assert_eq!(pt.get_mut(pn(9)).unwrap().tier, Tier::Nvm);
            assert!(pt.get_mut(PageNum::new(1)).is_none());
        }
        // Removal is visible through the cached slot immediately.
        pt.remove(pn(4));
        assert!(pt.get_mut(pn(4)).is_none());
    }

    #[test]
    fn iter_yields_address_order() {
        let mut pt = PageTable::new();
        pt.insert(pn(5), PageInfo::new(Tier::Nvm, 0));
        pt.insert(pn(2), PageInfo::new(Tier::Dram, 0));
        let pages: Vec<_> = pt.iter().map(|(p, _)| p).collect();
        assert_eq!(pages, vec![pn(2), pn(5)]);
    }

    #[test]
    fn reinsert_replaces_and_fixes_counts() {
        let mut pt = PageTable::new();
        pt.insert(pn(1), PageInfo::new(Tier::Dram, 0));
        let prev = pt.insert(pn(1), PageInfo::new(Tier::Nvm, 1));
        assert_eq!(prev.unwrap().tier, Tier::Dram);
        assert_eq!(pt.resident_pages(Tier::Dram), 0);
        assert_eq!(pt.resident_pages(Tier::Nvm), 1);
    }
}
