//! `SimVec<T>`: a host-backed vector whose accesses charge the simulator.

use crate::addr::VirtAddr;
use crate::backend::MemBackend;

/// A fixed-length vector living at a simulated address.
///
/// Element reads and writes perform the real operation on a host `Vec<T>`
/// *and* issue the corresponding simulated memory traffic through a
/// [`MemBackend`], so workloads compute correct results while the machine
/// model observes their exact access stream.
///
/// The backend is passed per call rather than stored, keeping `SimVec`
/// free of interior mutability and letting many vectors share one machine
/// mutably ([C-CALLER-CONTROL]).
///
/// # Examples
///
/// ```
/// use tiersim_mem::{NullBackend, SimVec};
///
/// let mut m = NullBackend::new();
/// let mut v = SimVec::new(&mut m, "ranks", 4, 0u32);
/// v.set(&mut m, 2, 7);
/// assert_eq!(v.get(&mut m, 2), 7);
/// assert_eq!(m.loads(), 1);
/// assert_eq!(m.stores(), 1);
/// ```
#[derive(Debug)]
pub struct SimVec<T> {
    base: VirtAddr,
    data: Vec<T>,
}

impl<T: Copy> SimVec<T> {
    /// Allocates a simulated region for `len` elements, filled with
    /// `init`. The allocation itself is an `mmap` the profiler sees as an
    /// object named `label`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` elements would still require an allocation of
    /// zero bytes (allowed: an empty `SimVec` maps one page), or on
    /// virtual address-space exhaustion inside the backend.
    pub fn new<B: MemBackend>(backend: &mut B, label: &str, len: usize, init: T) -> Self {
        let bytes = (len * size_of::<T>()).max(1) as u64;
        let base = backend.mmap(bytes, label);
        SimVec { base, data: vec![init; len] }
    }

    /// Builds a `SimVec` from existing host data.
    pub fn from_vec<B: MemBackend>(backend: &mut B, label: &str, data: Vec<T>) -> Self {
        let bytes = (data.len() * size_of::<T>()).max(1) as u64;
        let base = backend.mmap(bytes, label);
        SimVec { base, data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The simulated base address.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// The simulated address of element `i`.
    #[inline]
    pub fn addr_of(&self, i: usize) -> VirtAddr {
        self.base + (i * size_of::<T>()) as u64
    }

    /// Reads element `i`, charging a simulated load.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get<B: MemBackend>(&self, backend: &mut B, i: usize) -> T {
        let v = self.data[i];
        backend.load(self.addr_of(i), size_of::<T>() as u32);
        v
    }

    /// Writes element `i`, charging a simulated store.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn set<B: MemBackend>(&mut self, backend: &mut B, i: usize, value: T) {
        self.data[i] = value;
        backend.store(self.addr_of(i), size_of::<T>() as u32);
    }

    /// Read-modify-write of element `i` (one load + one store).
    #[inline]
    pub fn update<B: MemBackend>(
        &mut self,
        backend: &mut B,
        i: usize,
        f: impl FnOnce(T) -> T,
    ) -> T {
        let old = self.get(backend, i);
        let new = f(old);
        self.set(backend, i, new);
        new
    }

    /// Fills the whole vector, charging a sequential store stream (the
    /// backend may batch it; equivalent to [`SimVec::set`] in a loop).
    pub fn fill<B: MemBackend>(&mut self, backend: &mut B, value: T) {
        self.data.fill(value);
        backend.store_run(self.base, size_of::<T>() as u32, self.data.len() as u64);
    }

    /// Visits every element in index order, charging one sequential load
    /// stream (the backend may batch it).
    ///
    /// Equivalent to calling [`SimVec::get`] for `0..len()`; use it for
    /// pure read sweeps — index scans, reduction passes — so backends
    /// with a fast lane can charge the stream per cache line instead of
    /// per element. The visitor must not touch the backend.
    pub fn scan<B: MemBackend>(&self, backend: &mut B, mut f: impl FnMut(usize, T)) {
        backend.load_run(self.base, size_of::<T>() as u32, self.data.len() as u64);
        for (i, &v) in self.data.iter().enumerate() {
            f(i, v);
        }
    }

    /// Host-side view of the data, free of simulation charges. Use for
    /// result verification only.
    pub fn host(&self) -> &[T] {
        &self.data
    }

    /// Mutable host-side view, free of simulation charges. Use for test
    /// setup only — workload code must go through [`SimVec::set`].
    pub fn host_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the vector, unmapping its region and returning the host
    /// data.
    pub fn into_host<B: MemBackend>(self, backend: &mut B) -> Vec<T> {
        backend.munmap(self.base);
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::NullBackend;

    #[test]
    fn read_after_write_matches_host() {
        let mut m = NullBackend::new();
        let mut v = SimVec::new(&mut m, "v", 10, 0i64);
        for i in 0..10 {
            v.set(&mut m, i, i as i64 * 3);
        }
        for i in 0..10 {
            assert_eq!(v.get(&mut m, i), i as i64 * 3);
        }
        assert_eq!(v.host(), &[0, 3, 6, 9, 12, 15, 18, 21, 24, 27]);
    }

    #[test]
    fn addresses_are_element_strided() {
        let mut m = NullBackend::new();
        let v = SimVec::new(&mut m, "v", 4, 0u16);
        assert_eq!(v.addr_of(0), v.base());
        assert_eq!(v.addr_of(3) - v.base(), 6);
    }

    #[test]
    fn distinct_vectors_do_not_overlap() {
        let mut m = NullBackend::new();
        let a = SimVec::new(&mut m, "a", 1024, 0u64);
        let b = SimVec::new(&mut m, "b", 1024, 0u64);
        let a_end = a.addr_of(1023) + 8;
        assert!(b.base() >= a_end);
    }

    #[test]
    fn update_is_load_plus_store() {
        let mut m = NullBackend::new();
        let mut v = SimVec::new(&mut m, "v", 1, 5u32);
        let new = v.update(&mut m, 0, |x| x + 1);
        assert_eq!(new, 6);
        assert_eq!(m.loads(), 1);
        assert_eq!(m.stores(), 1);
    }

    #[test]
    fn scan_visits_all_elements_and_charges_loads() {
        let mut m = NullBackend::new();
        let mut v = SimVec::new(&mut m, "v", 6, 0u64);
        for i in 0..6 {
            v.set(&mut m, i, i as u64 * 2);
        }
        let loads_before = m.loads();
        let mut seen = Vec::new();
        v.scan(&mut m, |i, x| seen.push((i, x)));
        assert_eq!(m.loads() - loads_before, 6);
        assert_eq!(seen, vec![(0, 0), (1, 2), (2, 4), (3, 6), (4, 8), (5, 10)]);
    }

    #[test]
    fn fill_charges_one_store_per_element() {
        let mut m = NullBackend::new();
        let mut v = SimVec::new(&mut m, "v", 9, 0u32);
        v.fill(&mut m, 7);
        assert_eq!(m.stores(), 9);
        assert!(v.host().iter().all(|&x| x == 7));
    }

    #[test]
    fn empty_vector_is_valid() {
        let mut m = NullBackend::new();
        let v = SimVec::new(&mut m, "e", 0, 0u8);
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn from_vec_and_into_host_roundtrip() {
        let mut m = NullBackend::new();
        let v = SimVec::from_vec(&mut m, "v", vec![1u8, 2, 3]);
        assert_eq!(v.into_host(&mut m), vec![1, 2, 3]);
    }

    proptest::proptest! {
        #[test]
        fn prop_simvec_mirrors_host_vec(ops in proptest::collection::vec((0usize..32, 0u32..1000), 1..200)) {
            let mut m = NullBackend::new();
            let mut sv = SimVec::new(&mut m, "p", 32, 0u32);
            let mut hv = vec![0u32; 32];
            for (i, val) in ops {
                sv.set(&mut m, i, val);
                hv[i] = val;
                proptest::prop_assert_eq!(sv.get(&mut m, i), hv[i]);
            }
            proptest::prop_assert_eq!(sv.host(), hv.as_slice());
        }
    }
}
