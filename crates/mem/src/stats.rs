//! Aggregate access statistics for the memory system.

use crate::access::AccessOutcome;
use crate::tier::{MemLevel, Tier};

/// Counters accumulated on the access path.
///
/// These are ground-truth totals (every access, not samples); the profiler
/// crate computes the paper's tables from *samples*, and integration tests
/// use these totals to check that sampling is unbiased.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccessStats {
    /// Number of load accesses.
    pub loads: u64,
    /// Number of store accesses.
    pub stores: u64,
    /// Accesses satisfied per level (indexed by [`MemLevel::index`]).
    pub level_counts: [u64; 6],
    /// Latency cycles accumulated per level.
    pub level_cycles: [u64; 6],
    /// External accesses split by (tier, tlb-miss): counts.
    /// Indexed `[tier][tlb_miss as usize]`.
    pub external_counts: [[u64; 2]; 2],
    /// External accesses split by (tier, tlb-miss): cycles.
    pub external_cycles: [[u64; 2]; 2],
    /// Number of accesses that raised a hint fault.
    pub hint_faults: u64,
    /// Number of accesses that required a page walk.
    pub tlb_misses: u64,
}

impl AccessStats {
    /// Records one completed access.
    #[inline]
    pub fn record(&mut self, kind: crate::access::AccessKind, outcome: &AccessOutcome) {
        if kind.is_store() {
            self.stores += 1;
        } else {
            self.loads += 1;
        }
        let li = outcome.level.index();
        self.level_counts[li] += 1;
        self.level_cycles[li] += outcome.cycles;
        if outcome.tlb_miss {
            self.tlb_misses += 1;
        }
        if outcome.hint_fault {
            self.hint_faults += 1;
        }
        if let Some(tier) = outcome.level.tier() {
            let ti = tier.index();
            let mi = outcome.tlb_miss as usize;
            self.external_counts[ti][mi] += 1;
            self.external_cycles[ti][mi] += outcome.cycles;
        }
    }

    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.loads + self.stores
    }

    /// Accesses satisfied outside the caches (DRAM + NVM).
    pub fn external(&self) -> u64 {
        self.level_counts[MemLevel::Dram.index()] + self.level_counts[MemLevel::Nvm.index()]
    }

    /// Fraction of accesses satisfied outside the caches.
    pub fn external_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.external() as f64 / self.total() as f64
        }
    }

    /// External accesses that hit the given tier.
    pub fn external_on(&self, tier: Tier) -> u64 {
        self.level_counts[MemLevel::from(tier).index()]
    }

    /// Mean external latency in cycles for `(tier, tlb_miss)`; `None` if
    /// no such access occurred.
    pub fn mean_external_cycles(&self, tier: Tier, tlb_miss: bool) -> Option<f64> {
        let c = self.external_counts[tier.index()][tlb_miss as usize];
        if c == 0 {
            return None;
        }
        Some(self.external_cycles[tier.index()][tlb_miss as usize] as f64 / c as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;
    use crate::addr::PageNum;

    fn outcome(level: MemLevel, cycles: u64, tlb_miss: bool) -> AccessOutcome {
        AccessOutcome {
            page: PageNum::new(0),
            level,
            tier: level.tier().unwrap_or(Tier::Dram),
            cycles,
            tlb_miss,
            hint_fault: false,
            hint_scan_time: 0,
        }
    }

    #[test]
    fn record_accumulates_levels() {
        let mut s = AccessStats::default();
        s.record(AccessKind::Load, &outcome(MemLevel::L1, 4, false));
        s.record(AccessKind::Load, &outcome(MemLevel::Nvm, 900, true));
        s.record(AccessKind::Store, &outcome(MemLevel::Dram, 200, false));
        assert_eq!(s.total(), 3);
        assert_eq!(s.loads, 2);
        assert_eq!(s.external(), 2);
        assert!((s.external_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.external_on(Tier::Nvm), 1);
        assert_eq!(s.tlb_misses, 1);
    }

    #[test]
    fn mean_external_cycles_by_bucket() {
        let mut s = AccessStats::default();
        s.record(AccessKind::Load, &outcome(MemLevel::Nvm, 1000, true));
        s.record(AccessKind::Load, &outcome(MemLevel::Nvm, 2000, true));
        assert_eq!(s.mean_external_cycles(Tier::Nvm, true), Some(1500.0));
        assert_eq!(s.mean_external_cycles(Tier::Nvm, false), None);
        assert_eq!(s.mean_external_cycles(Tier::Dram, true), None);
    }
}
