//! Aggregate access statistics for the memory system.

use crate::access::AccessOutcome;
use crate::tier::{MemLevel, Tier};

/// Counters accumulated on the access path.
///
/// These are ground-truth totals (every access, not samples); the profiler
/// crate computes the paper's tables from *samples*, and integration tests
/// use these totals to check that sampling is unbiased.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccessStats {
    /// Number of load accesses.
    pub loads: u64,
    /// Number of store accesses.
    pub stores: u64,
    /// Accesses satisfied per level (indexed by [`MemLevel::index`]).
    pub level_counts: [u64; 6],
    /// Latency cycles accumulated per level.
    pub level_cycles: [u64; 6],
    /// External accesses split by (tier, tlb-miss): counts.
    /// Indexed `[tier][tlb_miss as usize]`.
    pub external_counts: [[u64; 2]; 2],
    /// External accesses split by (tier, tlb-miss): cycles.
    pub external_cycles: [[u64; 2]; 2],
    /// Number of accesses that raised a hint fault.
    pub hint_faults: u64,
    /// Number of accesses that required a page walk.
    pub tlb_misses: u64,
}

impl AccessStats {
    /// Records one completed access.
    ///
    /// Branch-free on the hot path: every counter update is unconditional
    /// arithmetic on 0/1 masks, so the data-dependent mix of loads/stores,
    /// TLB misses and hint faults never perturbs the branch predictor.
    #[inline]
    pub fn record(&mut self, kind: crate::access::AccessKind, outcome: &AccessOutcome) {
        let is_store = u64::from(kind.is_store());
        self.stores += is_store;
        self.loads += 1 - is_store;
        let li = outcome.level.index();
        self.level_counts[li] += 1;
        self.level_cycles[li] += outcome.cycles;
        self.tlb_misses += u64::from(outcome.tlb_miss);
        self.hint_faults += u64::from(outcome.hint_fault);
        // External accesses: fold the Option into an 0/1 multiplier so the
        // bucket update is unconditional (index 0 is written with +0 for
        // cache-level accesses).
        let (ti, ext) = match outcome.level.tier() {
            Some(tier) => (tier.index(), 1u64),
            None => (0, 0),
        };
        let mi = usize::from(outcome.tlb_miss);
        self.external_counts[ti][mi] += ext;
        self.external_cycles[ti][mi] += ext * outcome.cycles;
    }

    /// Records `n` repeat accesses that hit L1 with latency `l1_latency`
    /// each and neither missed the TLB nor raised a hint fault.
    ///
    /// This is the bulk half of the sequential fast lane
    /// ([`MemorySystem::access_run`](crate::MemorySystem::access_run)): it
    /// is exactly equivalent to calling [`AccessStats::record`] `n` times
    /// with an L1-hit outcome of `l1_latency` cycles.
    #[inline]
    pub fn record_l1_run(&mut self, kind: crate::access::AccessKind, n: u64, l1_latency: u64) {
        let is_store = u64::from(kind.is_store());
        self.stores += is_store * n;
        self.loads += (1 - is_store) * n;
        let li = MemLevel::L1.index();
        self.level_counts[li] += n;
        self.level_cycles[li] += n * l1_latency;
    }

    /// Records `n` external (device-level) accesses whose latencies sum to
    /// `total_cycles`, all with the same `level` and `tlb_miss` bit and no
    /// hint fault.
    ///
    /// The bulk half of the interval engine
    /// ([`MemorySystem::access_run`](crate::MemorySystem::access_run)):
    /// every counter [`AccessStats::record`] touches is linear in the
    /// per-access cycle count, so summing cycles before recording is
    /// exactly equivalent to `n` individual calls.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `level` is external (has a tier).
    #[inline]
    pub fn record_external_run(
        &mut self,
        kind: crate::access::AccessKind,
        level: MemLevel,
        tlb_miss: bool,
        n: u64,
        total_cycles: u64,
    ) {
        let is_store = u64::from(kind.is_store());
        self.stores += is_store * n;
        self.loads += (1 - is_store) * n;
        let li = level.index();
        self.level_counts[li] += n;
        self.level_cycles[li] += total_cycles;
        self.tlb_misses += u64::from(tlb_miss) * n;
        let ti = level.tier().map(Tier::index);
        debug_assert!(ti.is_some(), "record_external_run with cache level {level:?}");
        let ti = ti.unwrap_or(0);
        let mi = usize::from(tlb_miss);
        self.external_counts[ti][mi] += n;
        self.external_cycles[ti][mi] += total_cycles;
    }

    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.loads + self.stores
    }

    /// Accesses satisfied outside the caches (DRAM + NVM).
    pub fn external(&self) -> u64 {
        self.level_counts[MemLevel::Dram.index()] + self.level_counts[MemLevel::Nvm.index()]
    }

    /// Fraction of accesses satisfied outside the caches.
    pub fn external_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.external() as f64 / self.total() as f64
        }
    }

    /// External accesses that hit the given tier.
    pub fn external_on(&self, tier: Tier) -> u64 {
        self.level_counts[MemLevel::from(tier).index()]
    }

    /// Mean external latency in cycles for `(tier, tlb_miss)`; `None` if
    /// no such access occurred.
    pub fn mean_external_cycles(&self, tier: Tier, tlb_miss: bool) -> Option<f64> {
        let c = self.external_counts[tier.index()][tlb_miss as usize];
        if c == 0 {
            return None;
        }
        Some(self.external_cycles[tier.index()][tlb_miss as usize] as f64 / c as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;
    use crate::addr::PageNum;

    fn outcome(level: MemLevel, cycles: u64, tlb_miss: bool) -> AccessOutcome {
        AccessOutcome {
            page: PageNum::new(0),
            level,
            tier: level.tier().unwrap_or(Tier::Dram),
            cycles,
            tlb_miss,
            hint_fault: false,
            hint_scan_time: 0,
        }
    }

    #[test]
    fn record_accumulates_levels() {
        let mut s = AccessStats::default();
        s.record(AccessKind::Load, &outcome(MemLevel::L1, 4, false));
        s.record(AccessKind::Load, &outcome(MemLevel::Nvm, 900, true));
        s.record(AccessKind::Store, &outcome(MemLevel::Dram, 200, false));
        assert_eq!(s.total(), 3);
        assert_eq!(s.loads, 2);
        assert_eq!(s.external(), 2);
        assert!((s.external_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.external_on(Tier::Nvm), 1);
        assert_eq!(s.tlb_misses, 1);
    }

    #[test]
    fn record_l1_run_matches_repeated_record() {
        let mut bulk = AccessStats::default();
        let mut looped = AccessStats::default();
        bulk.record_l1_run(AccessKind::Load, 7, 4);
        bulk.record_l1_run(AccessKind::Store, 3, 4);
        for _ in 0..7 {
            looped.record(AccessKind::Load, &outcome(MemLevel::L1, 4, false));
        }
        for _ in 0..3 {
            looped.record(AccessKind::Store, &outcome(MemLevel::L1, 4, false));
        }
        assert_eq!(bulk, looped);
    }

    #[test]
    fn record_external_run_matches_repeated_record() {
        let mut bulk = AccessStats::default();
        let mut looped = AccessStats::default();
        // 3 walk-free DRAM accesses summing to 610 cycles, 2 page-walk NVM
        // accesses summing to 1900.
        bulk.record_external_run(AccessKind::Load, MemLevel::Dram, false, 3, 610);
        bulk.record_external_run(AccessKind::Load, MemLevel::Nvm, true, 2, 1900);
        for c in [200, 205, 205] {
            looped.record(AccessKind::Load, &outcome(MemLevel::Dram, c, false));
        }
        for c in [930, 970] {
            looped.record(AccessKind::Load, &outcome(MemLevel::Nvm, c, true));
        }
        assert_eq!(bulk, looped);
    }

    #[test]
    fn mean_external_cycles_by_bucket() {
        let mut s = AccessStats::default();
        s.record(AccessKind::Load, &outcome(MemLevel::Nvm, 1000, true));
        s.record(AccessKind::Load, &outcome(MemLevel::Nvm, 2000, true));
        assert_eq!(s.mean_external_cycles(Tier::Nvm, true), Some(1500.0));
        assert_eq!(s.mean_external_cycles(Tier::Nvm, false), None);
        assert_eq!(s.mean_external_cycles(Tier::Dram, true), None);
    }
}
