//! The assembled memory system: VMAs, page table, TLB, caches, devices.

use crate::access::{AccessError, AccessKind, AccessOutcome};
use crate::addr::{PageNum, VirtAddr, LINE_SHIFT, PAGE_SHIFT, PAGE_SIZE};
use crate::cache::{CacheOutcome, SetAssocCache};
use crate::config::MemConfig;
use crate::dram::DramModel;
use crate::error::{MemError, PageFault};
use crate::fault::{FaultState, FaultStats};
use crate::frame::FrameAllocator;
use crate::memory_mode::MemoryModeCache;
use crate::nvm::NvmModel;
use crate::page::{PageFlags, PageInfo};
use crate::page_table::PageTable;
use crate::stats::AccessStats;
use crate::tier::{MemLevel, Tier};
use crate::tlb::{Tlb, TlbOutcome};
use crate::vma::{MemPolicy, Vma, VmaTable};
use std::sync::Arc;
use tiersim_trace::{FaultSite, TraceEvent, TraceState};

/// Base virtual address of the simulated page-table (PTE) region.
///
/// Leaf PTEs are fetched through the cache hierarchy during page walks, so
/// they compete for cache capacity like real PTEs; the region itself always
/// resides in DRAM (as kernel page tables do on tiered systems).
const PTE_BASE: u64 = 1 << 46;
/// Lines per page (4096 / 64).
const LINES_PER_PAGE: u64 = PAGE_SIZE >> LINE_SHIFT;

/// Minimum number of core pages for which the interval engine engages;
/// shorter runs stay on the per-line fast lane (the setup cost would not
/// amortize, and an 8-page block is the PTE-line granule).
const MIN_INTERVAL_PAGES: u64 = 8;

/// Conservative interval `[lo, hi)` of line numbers that may be present in
/// any cache level. Grown on every line that enters [`cache_path`]; never
/// shrunk (evictions leave it alone). The interval engine's soundness rests
/// on the guarantee *line cached ⇒ line inside the footprint*: a run whose
/// lines are disjoint from the footprint is provably absent from every
/// cache, so each of its lines is a full miss. Over-coverage only costs
/// fallbacks, never correctness.
///
/// [`cache_path`]: MemorySystem::cache_path
#[derive(Debug, Clone, Copy)]
struct LineFootprint {
    lo: u64,
    hi: u64,
}

impl LineFootprint {
    const EMPTY: LineFootprint = LineFootprint { lo: u64::MAX, hi: 0 };

    #[inline]
    fn extend(&mut self, line: u64) {
        self.lo = self.lo.min(line);
        self.hi = self.hi.max(line + 1);
    }

    /// Whether `[lo, hi)` does not intersect the footprint.
    #[inline]
    fn disjoint(&self, lo: u64, hi: u64) -> bool {
        self.hi <= lo || hi <= self.lo
    }
}

/// Counters for the interval engine (observability, *not* part of the
/// simulation's observable state: the bit-equality suite compares
/// everything else across execution paths, which engage the engine
/// differently by design).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntervalStats {
    /// Runs (or run segments) executed closed-form.
    pub runs: u64,
    /// Pages advanced closed-form.
    pub pages: u64,
}

/// The validated closed-form core of a run: `core_elems` elements covering
/// `pages` full pages starting at `first_page`, preceded by `lead_elems`
/// lane elements.
#[derive(Debug, Clone, Copy)]
struct IntervalCore {
    lead_elems: u64,
    core_elems: u64,
    first_page: u64,
    pages: u64,
    tier: Tier,
    stride: u64,
}

/// Totals of a completed sequential run (see
/// [`MemorySystem::access_run`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// Elements accessed.
    pub elems: u64,
    /// Total latency cycles charged across the run.
    pub cycles: u64,
    /// Distinct cache lines entered (full-path accesses).
    pub lines: u64,
    /// Page walks performed.
    pub tlb_misses: u64,
    /// Hint faults raised.
    pub hint_faults: u64,
}

/// A fault partway through a sequential run: `done` elements completed
/// (and stay charged) before `error` was raised at element `done`.
#[derive(Debug)]
pub struct RunFault {
    /// Elements fully charged before the fault.
    pub done: u64,
    /// Cycles charged for the completed prefix.
    pub cycles: u64,
    /// The fault itself, exactly as the per-element path reports it.
    pub error: AccessError,
}

/// Summary of an `munmap` call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnmapReport {
    /// Pages freed per tier (indexed by [`Tier::index`]).
    pub freed_pages: [u64; 2],
    /// The removed VMAs (fragments included).
    pub vmas: Vec<Vma>,
}

/// The simulated memory system of one socket: mechanism only (address
/// translation, caches, devices, residency); *policy* (where to place or
/// migrate pages) lives in the OS model crate.
///
/// # Examples
///
/// Mapping a region, servicing the first-touch fault manually, and
/// observing a DRAM access:
///
/// ```
/// use tiersim_mem::{AccessError, AccessKind, MemConfig, MemPolicy, MemorySystem, Tier};
///
/// let mut sys = MemorySystem::new(MemConfig::default())?;
/// let addr = sys.mmap(4096, MemPolicy::Default, "buf")?;
/// // First touch faults; an OS would now choose a tier.
/// let fault = sys.access(addr, AccessKind::Load, 0).unwrap_err();
/// let AccessError::Fault(pf) = fault else { panic!() };
/// sys.map_page(pf.page, Tier::Dram, 0)?;
/// let out = sys.access(addr, AccessKind::Load, 0).unwrap();
/// assert_eq!(out.tier, Tier::Dram);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemConfig,
    vmas: VmaTable,
    pages: PageTable,
    frames: [FrameAllocator; 2],
    tlb: Tlb,
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    dram: DramModel,
    nvm: NvmModel,
    /// Present only in Memory Mode (paper §2.1): DRAM as a direct-mapped
    /// line cache over NVM.
    mm_cache: Option<MemoryModeCache>,
    stats: AccessStats,
    faults: FaultState,
    trace: TraceState,
    /// Conservative cache footprint over data lines (below [`PTE_BASE`]).
    fp_data: LineFootprint,
    /// Conservative cache footprint over PTE lines (at/above [`PTE_BASE`]).
    fp_pte: LineFootprint,
    interval: IntervalStats,
}

impl MemorySystem {
    /// Creates a memory system from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(cfg: MemConfig) -> Result<Self, MemError> {
        cfg.validate()?;
        Ok(MemorySystem {
            vmas: VmaTable::new(),
            pages: PageTable::new(),
            frames: [
                FrameAllocator::new(Tier::Dram, cfg.dram_capacity),
                FrameAllocator::new(Tier::Nvm, cfg.nvm_capacity),
            ],
            tlb: Tlb::new(cfg.dtlb, cfg.stlb),
            mm_cache: cfg.memory_mode.then(|| MemoryModeCache::new(cfg.dram_capacity)),
            l1: SetAssocCache::new(cfg.l1),
            l2: SetAssocCache::new(cfg.l2),
            l3: SetAssocCache::new(cfg.l3),
            dram: DramModel::new(cfg.dram),
            nvm: NvmModel::new(cfg.nvm),
            stats: AccessStats::default(),
            faults: FaultState::new(cfg.fault),
            trace: TraceState::new(cfg.trace),
            fp_data: LineFootprint::EMPTY,
            fp_pte: LineFootprint::EMPTY,
            interval: IntervalStats::default(),
            cfg,
        })
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    // ----- mapping ------------------------------------------------------

    /// Maps a fresh region (see [`VmaTable::map`]); no frames are
    /// allocated until pages are touched.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidLength`] for zero-length requests.
    pub fn mmap(
        &mut self,
        len: u64,
        policy: MemPolicy,
        label: impl Into<Arc<str>>,
    ) -> Result<VirtAddr, MemError> {
        self.vmas.map(len, policy, label)
    }

    /// Unmaps the region based at `addr`, freeing all resident pages.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchMapping`] if `addr` is not a region base.
    pub fn munmap(&mut self, addr: VirtAddr) -> Result<UnmapReport, MemError> {
        let vmas = self.vmas.unmap(addr)?;
        let mut report = UnmapReport { freed_pages: [0; 2], vmas };
        for vma in report.vmas.clone() {
            let mut pn = vma.base.page();
            let end = vma.end().page();
            while pn < end {
                if let Some(info) = self.pages.remove(pn) {
                    self.frames[info.tier.index()].free();
                    report.freed_pages[info.tier.index()] += 1;
                    self.tlb.invalidate(pn);
                    if info.huge {
                        self.tlb.invalidate(pn.huge_head());
                    }
                }
                pn = pn.next();
            }
        }
        Ok(report)
    }

    /// Applies `policy` to an address range (the simulated `mbind`).
    ///
    /// # Errors
    ///
    /// See [`VmaTable::set_policy_range`].
    pub fn set_policy_range(
        &mut self,
        addr: VirtAddr,
        len: u64,
        policy: MemPolicy,
    ) -> Result<(), MemError> {
        self.vmas.set_policy_range(addr, len, policy)
    }

    /// Finds the VMA containing `addr`.
    pub fn find_vma(&self, addr: VirtAddr) -> Option<&Vma> {
        self.vmas.find(addr)
    }

    /// Iterates all VMAs in address order.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.iter()
    }

    // ----- residency ----------------------------------------------------

    /// Makes `pn` resident on `tier` (servicing a page fault).
    ///
    /// # Errors
    ///
    /// - [`MemError::TierFull`] if the tier has no free frames.
    /// - [`MemError::PageAlreadyResident`] if the page is already mapped.
    /// - [`MemError::AllocTransient`] if the fault plan injects a
    ///   transient allocation failure (retryable; no state changed).
    pub fn map_page(&mut self, pn: PageNum, tier: Tier, now: u64) -> Result<(), MemError> {
        if self.pages.is_resident(pn) {
            return Err(MemError::PageAlreadyResident { page: pn });
        }
        self.faults.set_now(now);
        self.trace.set_now(now);
        if self.faults.dram_alloc_fails(tier) {
            self.trace.record(TraceEvent::FaultInjected { site: FaultSite::DramAlloc });
            return Err(MemError::AllocTransient { tier });
        }
        self.frames[tier.index()].alloc()?;
        self.pages.insert(pn, tier, now);
        Ok(())
    }

    /// Removes `pn` from residency, freeing its frame. Returns the tier it
    /// was on.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::PageNotResident`] if the page is not resident.
    pub fn unmap_page(&mut self, pn: PageNum) -> Result<Tier, MemError> {
        let info = self.pages.remove(pn).ok_or(MemError::PageNotResident { page: pn })?;
        self.frames[info.tier.index()].free();
        self.tlb.invalidate(pn);
        if info.huge {
            // Removing any base page implicitly split the block; the
            // shared PMD-level entry is stale for the survivors too.
            self.tlb.invalidate(pn.huge_head());
        }
        Ok(info.tier)
    }

    /// Migrates a resident page to `to`, charging the 4 KiB copy to both
    /// devices. Returns the copy latency in cycles.
    ///
    /// # Errors
    ///
    /// - [`MemError::PageNotResident`] if the page is not resident.
    /// - [`MemError::TierFull`] if the destination has no free frames.
    /// - [`MemError::PageAlreadyResident`] if the page is already on `to`.
    /// - [`MemError::HugeMapped`] if the page is part of a collapsed
    ///   2 MiB mapping (split it first, as the kernel splits a THP before
    ///   migrating subpages).
    /// - [`MemError::MigrateBusy`] if the fault plan injects an
    ///   EBUSY-style failure (retryable; the page stays where it was).
    pub fn migrate_page(&mut self, pn: PageNum, to: Tier) -> Result<u64, MemError> {
        let info = self.pages.get(pn).ok_or(MemError::PageNotResident { page: pn })?;
        let from = info.tier;
        if from == to {
            return Err(MemError::PageAlreadyResident { page: pn });
        }
        if info.huge {
            return Err(MemError::HugeMapped { page: pn });
        }
        if self.faults.migrate_busy(pn) {
            self.trace.record(TraceEvent::FaultInjected { site: FaultSite::MigrateBusy });
            return Err(MemError::MigrateBusy { page: pn });
        }
        self.frames[to.index()].alloc()?;
        self.frames[from.index()].free();
        self.pages.retier(pn, to);
        self.tlb.invalidate(pn);
        // Copy the page line by line: reads from the source device, writes
        // to the destination. Latency is the slower of the two streams.
        let base = pn.base().raw();
        let mut read_cycles = 0;
        let mut write_cycles = 0;
        for i in 0..LINES_PER_PAGE {
            let a = base + i * crate::addr::LINE_SIZE;
            read_cycles += self.device_read(from, a);
            write_cycles += self.device_write(to, a);
        }
        Ok(read_cycles.max(write_cycles))
    }

    /// Returns a metadata snapshot of a resident page.
    pub fn page(&self, pn: PageNum) -> Option<PageInfo> {
        self.pages.get(pn)
    }

    /// Applies `f` to the page's metadata (for OS flag updates), writing
    /// the edited snapshot back to the struct-of-arrays page table.
    /// Returns `f`'s result, or `None` if the page is not resident.
    pub fn page_update<R>(&mut self, pn: PageNum, f: impl FnOnce(&mut PageInfo) -> R) -> Option<R> {
        self.pages.update(pn, f)
    }

    /// Marks a resident page for NUMA hinting; its next access raises a
    /// hint fault. Returns `false` if the page is not resident.
    pub fn mark_hint(&mut self, pn: PageNum, now: u64) -> bool {
        self.pages
            .update(pn, |info| {
                info.flags.insert(PageFlags::HINT);
                info.scan_time = now;
            })
            .is_some()
    }

    // ----- huge pages (2 MiB) -------------------------------------------

    /// Returns `true` if `pn` is part of a collapsed 2 MiB mapping.
    pub fn is_huge(&self, pn: PageNum) -> bool {
        self.pages.is_huge(pn)
    }

    /// Collapses the 512-page block headed at `head` into one 2 MiB
    /// mapping (the khugepaged transition; see
    /// [`PageTable::collapse_block`] for the eligibility rules). On
    /// success the base pages' 4K TLB entries are invalidated — the block
    /// translates under `head` from now on — and the block's tier is
    /// returned. `None` means the block was ineligible and nothing
    /// changed.
    pub fn collapse_huge(&mut self, head: PageNum) -> Option<Tier> {
        let tier = self.pages.collapse_block(head)?;
        let mut pn = head;
        for _ in 0..crate::addr::HUGE_PAGE_PAGES {
            self.tlb.invalidate(pn);
            pn = pn.next();
        }
        Some(tier)
    }

    /// Splits the collapsed 2 MiB mapping containing `pn` back into base
    /// pages, invalidating the shared PMD-level TLB entry. Per-4K
    /// metadata is restored exactly as it was before the collapse (the
    /// collapse retained it). Returns the block head, or `None` if `pn`
    /// is not huge-mapped.
    pub fn split_huge(&mut self, pn: PageNum) -> Option<PageNum> {
        let head = self.pages.split_block(pn)?;
        self.tlb.invalidate(head);
        Some(head)
    }

    /// Number of resident pages currently covered by collapsed 2 MiB
    /// mappings (audit introspection; a multiple of 512 by construction).
    pub fn huge_mapped_pages(&self) -> u64 {
        self.pages.iter().filter(|(_, info)| info.huge).count() as u64
    }

    /// Widest fault-around window for a fault at `pn`: how many
    /// immediately following, contiguous, *non-resident* pages lie inside
    /// `pn`'s VMA, up to `max`. The OS maps these alongside the faulting
    /// page (Linux's fault-around / `MAP_POPULATE`) so regular streams
    /// re-enter the interval lane instead of faulting once per page. The
    /// window stops at the first already-resident page, keeping the
    /// populate order deterministic and fault-free.
    pub fn fault_around_candidates(&self, pn: PageNum, max: u64) -> u64 {
        let Some(vma) = self.vmas.find(pn.base()) else { return 0 };
        let limit = vma.fault_around_limit(pn, max);
        let mut n = 0;
        let mut q = pn.next();
        while n < limit && !self.pages.is_resident(q) {
            n += 1;
            q = q.next();
        }
        n
    }

    /// Iterates `(page, info)` snapshots over resident pages in address
    /// order.
    pub fn resident_pages(&self) -> impl Iterator<Item = (PageNum, PageInfo)> + '_ {
        self.pages.iter()
    }

    /// Free pages on a tier.
    pub fn free_pages(&self, tier: Tier) -> u64 {
        self.frames[tier.index()].free_pages()
    }

    /// Used pages on a tier.
    pub fn used_pages(&self, tier: Tier) -> u64 {
        self.frames[tier.index()].used_pages()
    }

    /// Capacity of a tier in pages.
    pub fn capacity_pages(&self, tier: Tier) -> u64 {
        self.frames[tier.index()].capacity_pages()
    }

    /// Resident pages on `tier` per the page table's internal counter.
    ///
    /// Audit introspection: this counter is maintained incrementally and
    /// must agree with both a full [`MemorySystem::resident_pages`] walk
    /// and the frame allocator's [`MemorySystem::used_pages`].
    pub fn pt_resident_pages(&self, tier: Tier) -> u64 {
        self.pages.resident_pages(tier)
    }

    /// Pages currently cached in the TLB, ascending and deduplicated
    /// (audit introspection; see [`Tlb::cached_pages`]).
    pub fn tlb_cached_pages(&self) -> Vec<PageNum> {
        self.tlb.cached_pages()
    }

    // ----- devices ------------------------------------------------------

    fn device_read(&mut self, tier: Tier, addr: u64) -> u64 {
        match tier {
            Tier::Dram => self.dram.read(addr),
            Tier::Nvm => self.nvm.read(addr) * self.faults.nvm_multiplier(addr),
        }
    }

    fn device_write(&mut self, tier: Tier, addr: u64) -> u64 {
        match tier {
            Tier::Dram => self.dram.write(addr),
            Tier::Nvm => self.nvm.write(addr) * self.faults.nvm_multiplier(addr),
        }
    }

    /// The tier that would serve device traffic for `line` right now:
    /// resident data pages report their tier; anything else (PTE region,
    /// stale lines of freed pages) is DRAM.
    fn tier_of_line(&self, line: u64) -> Tier {
        let pn = PageNum::new(line >> (PAGE_SHIFT - LINE_SHIFT));
        self.pages.get(pn).map_or(Tier::Dram, |p| p.tier)
    }

    /// Writes back a dirty victim line evicted from the last cache level
    /// it lived in.
    fn writeback(&mut self, line: u64) {
        let tier = self.tier_of_line(line);
        self.device_write(tier, line << LINE_SHIFT);
    }

    /// Runs `line` through the cache hierarchy; on a full miss the data is
    /// fetched from `tier`'s device. Returns the satisfying level and the
    /// cycles spent.
    fn cache_path(&mut self, line: u64, is_store: bool, tier: Tier) -> (MemLevel, u64) {
        // Track every line that can enter a cache: the interval engine's
        // disjointness proof depends on this being the only entry point
        // (besides the engine's own cold fills, accounted separately).
        if line < (PTE_BASE >> LINE_SHIFT) {
            self.fp_data.extend(line);
        } else {
            self.fp_pte.extend(line);
        }
        match self.l1.access(line, is_store) {
            CacheOutcome::Hit => return (MemLevel::L1, self.l1.latency()),
            CacheOutcome::Miss { writeback } => {
                if let Some(victim) = writeback {
                    // Propagate dirtiness to L2; if L2 no longer has the
                    // line, it goes straight to the device.
                    if !self.l2.mark_dirty(victim) {
                        self.writeback(victim);
                    }
                }
            }
        }
        match self.l2.access(line, false) {
            CacheOutcome::Hit => return (MemLevel::L2, self.l2.latency()),
            CacheOutcome::Miss { writeback } => {
                if let Some(victim) = writeback {
                    if !self.l3.mark_dirty(victim) {
                        self.writeback(victim);
                    }
                }
            }
        }
        match self.l3.access(line, false) {
            CacheOutcome::Hit => return (MemLevel::L3, self.l3.latency()),
            CacheOutcome::Miss { writeback } => {
                if let Some(victim) = writeback {
                    self.writeback(victim);
                }
            }
        }
        // In Memory Mode the page's nominal tier is ignored: DRAM serves
        // as a direct-mapped line cache over the NVM that backs all data.
        // PTE-region lines (above the mmap arena) stay DRAM-backed kernel
        // metadata either way.
        if let Some(mm) = self.mm_cache.as_mut() {
            if line < (PTE_BASE >> LINE_SHIFT) {
                let out = mm.access(line, is_store);
                let cycles = if out.hit {
                    self.dram.read(line << LINE_SHIFT)
                } else {
                    let fetch = self.nvm.read(line << LINE_SHIFT);
                    self.dram.write(line << LINE_SHIFT); // fill (posted)
                    fetch
                };
                if let Some(victim) = out.writeback {
                    self.nvm.write(victim << LINE_SHIFT);
                }
                let level = if out.hit { MemLevel::Dram } else { MemLevel::Nvm };
                return (level, self.l3.latency() + cycles);
            }
        }
        let dev = self.device_read(tier, line << LINE_SHIFT);
        (MemLevel::from(tier), self.l3.latency() + dev)
    }

    // ----- the access path ----------------------------------------------

    /// Performs one memory access of up to a cache line at `addr`.
    ///
    /// `now` is the current cycle time, recorded as the page's last-access
    /// timestamp (the OS reclaim model uses it for LRU decisions).
    ///
    /// # Errors
    ///
    /// - [`AccessError::Fault`] if the page is mapped but not resident
    ///   (the caller services it via [`MemorySystem::map_page`] and
    ///   retries).
    /// - [`AccessError::Segfault`] if no VMA covers `addr`.
    pub fn access(
        &mut self,
        addr: VirtAddr,
        kind: AccessKind,
        now: u64,
    ) -> Result<AccessOutcome, AccessError> {
        let pn = addr.page();
        self.faults.set_now(now);
        let (tier, hint_fault, hint_scan_time, huge) = match self.pages.access_touch(pn, now) {
            Some(t) => t,
            None => {
                let vma = self.vmas.find(addr).ok_or(AccessError::Segfault { addr })?;
                return Err(AccessError::Fault(PageFault {
                    page: pn,
                    addr,
                    policy: vma.policy,
                    vma: vma.id,
                }));
            }
        };

        let mut cycles = 0;
        let mut tlb_miss = false;
        // A page inside a collapsed 2 MiB mapping translates under its
        // block head: one PMD-level entry covers all 512 base pages, so
        // the whole block shares a single TLB tag and a single walk.
        let tkey = if huge { pn.huge_head() } else { pn };
        match self.tlb.lookup(tkey) {
            TlbOutcome::L1Hit => {}
            TlbOutcome::L2Hit => cycles += self.cfg.stlb_hit_penalty,
            TlbOutcome::Miss => {
                tlb_miss = true;
                cycles += self.cfg.walk_base_penalty;
                // Fetch the leaf PTE through the cache hierarchy: 8 PTEs
                // share a 64 B line, so walks over scattered pages miss
                // while walks over nearby pages hit. For a huge page the
                // fetched entry is the PMD entry, addressed by the head.
                let pte_line = (PTE_BASE + tkey.index() * 8) >> LINE_SHIFT;
                let (_, pte_cycles) = self.cache_path(pte_line, false, Tier::Dram);
                cycles += pte_cycles;
                self.tlb.insert(tkey);
            }
        }

        let (level, data_cycles) = self.cache_path(addr.line(), kind.is_store(), tier);
        cycles += data_cycles;

        let outcome =
            AccessOutcome { page: pn, level, tier, cycles, tlb_miss, hint_fault, hint_scan_time };
        self.stats.record(kind, &outcome);
        Ok(outcome)
    }

    /// Performs `count` sequential accesses of one `stride`-byte element
    /// each, element `i` at `addr + i * stride` — the batched engine for
    /// streaming loops.
    ///
    /// Two nested accelerations, both bit-equal to the per-element loop
    /// (enforced by property tests against the retained reference path):
    ///
    /// 1. **Fast lane** (always applicable): the first element of every
    ///    cache line takes the full [`MemorySystem::access`] path; the
    ///    remaining elements of that line are *provably* free DTLB hits
    ///    plus L1 hits that leave all replacement state untouched, so they
    ///    are charged in bulk.
    /// 2. **Interval engine** (DESIGN.md §12): when the run's *core* — its
    ///    maximal span of whole pages, 8-page aligned at the front — is
    ///    provably regular (loads only, uniform resident tier, no pending
    ///    hint bits, all caches clean and provably free of the core's data
    ///    and PTE lines, NVM fault spike quiescent over the span), each
    ///    core page is advanced closed-form: a real page walk and PTE
    ///    fetch, cold cache fills, one device row/block-granular read run,
    ///    and O(1) bulk statistics updates in place of
    ///    `4096 / stride` individual accesses. The partial head (plus
    ///    alignment slack) and tail still go through the fast lane.
    ///
    /// # Errors
    ///
    /// On a page fault or segfault the completed prefix stays charged and
    /// [`RunFault`] reports how far the run got; the caller services the
    /// fault and resumes from `done`, exactly as it would retry a single
    /// [`MemorySystem::access`]. The interval core itself cannot fault
    /// (every core page is resident by construction).
    pub fn access_run(
        &mut self,
        addr: VirtAddr,
        stride: u32,
        count: u64,
        kind: AccessKind,
        now: u64,
    ) -> Result<RunOutcome, RunFault> {
        let stride = u64::from(stride.max(1));
        let mut out = RunOutcome::default();
        if count == 0 {
            return Ok(out);
        }
        // The per-element path feeds the fault injector the clock on every
        // access; doing it once up front is identical (set_now is
        // monotonic) and lets the validity check read the settled clock.
        self.faults.set_now(now);
        if let Some(core) = self.interval_core(addr, stride, count, kind) {
            self.lane_segment(addr, stride, 0, core.lead_elems, kind, now, &mut out)?;
            self.run_interval(&core, kind, now, &mut out);
            let done = core.lead_elems + core.core_elems;
            self.lane_segment(addr, stride, done, count, kind, now, &mut out)?;
        } else {
            self.lane_segment(addr, stride, 0, count, kind, now, &mut out)?;
        }
        Ok(out)
    }

    /// The run executed purely on the per-line fast lane, with the
    /// interval engine disabled. Public so benchmarks and tests can time
    /// and compare the two paths; production callers use
    /// [`MemorySystem::access_run`].
    ///
    /// # Errors
    ///
    /// Exactly as [`MemorySystem::access_run`].
    pub fn access_run_lane(
        &mut self,
        addr: VirtAddr,
        stride: u32,
        count: u64,
        kind: AccessKind,
        now: u64,
    ) -> Result<RunOutcome, RunFault> {
        let stride = u64::from(stride.max(1));
        let mut out = RunOutcome::default();
        self.lane_segment(addr, stride, 0, count, kind, now, &mut out)?;
        Ok(out)
    }

    /// Fast-lane execution of elements `[start, end)` of a run based at
    /// `addr`, appending into `out`.
    #[allow(clippy::too_many_arguments)]
    fn lane_segment(
        &mut self,
        addr: VirtAddr,
        stride: u64,
        start: u64,
        end: u64,
        kind: AccessKind,
        now: u64,
        out: &mut RunOutcome,
    ) -> Result<(), RunFault> {
        let mut i = start;
        while i < end {
            let a = addr + i * stride;
            let first = match self.access(a, kind, now) {
                Ok(o) => o,
                Err(error) => return Err(RunFault { done: i, cycles: out.cycles, error }),
            };
            out.lines += 1;
            out.cycles += first.cycles;
            out.tlb_misses += u64::from(first.tlb_miss);
            out.hint_faults += u64::from(first.hint_fault);
            // Index of the last element still on this cache line.
            let line_end = (a.line() + 1) << LINE_SHIFT;
            let j_last = ((line_end - 1 - addr.raw()) / stride).min(end - 1);
            let bulk = j_last - i;
            if bulk > 0 {
                let lat = self.l1.latency();
                self.tlb.record_l1_hit_run(bulk);
                self.l1.record_hit_run(bulk);
                self.stats.record_l1_run(kind, bulk, lat);
                out.cycles += bulk * lat;
            }
            out.elems += bulk + 1;
            i = j_last + 1;
        }
        Ok(())
    }

    /// Validates the closed-form core of a run (DESIGN.md §12), read-only.
    ///
    /// Returns `None` — fall back to the fast lane — unless *every*
    /// interval-validity condition holds. The conditions make each core
    /// access's outcome a constant the engine can charge without
    /// simulating it:
    ///
    /// - loads only (stores dirty lines, creating order-dependent
    ///   writeback chains) and no Memory-Mode cache;
    /// - `stride` divides the line size and `addr` is stride-aligned, so
    ///   page boundaries are element boundaries;
    /// - the core spans at least [`MIN_INTERVAL_PAGES`] whole pages, its
    ///   first page 8-aligned so the lead-in cannot share a PTE line with
    ///   the core;
    /// - every core page is resident on one uniform tier with no pending
    ///   hint bit ([`PageTable::window_uniform`]);
    /// - all cache levels are clean (evictions then never write back) and
    ///   the core's data and PTE line ranges are disjoint from the
    ///   conservative cache footprint, so every core line is a full miss
    ///   and — since pages enter the TLB only via walks, which always
    ///   cache the PTE line — no core page is TLB-resident;
    /// - an NVM core is outside any injected latency-spike range/window
    ///   ([`FaultState::nvm_spike_quiescent`]).
    fn interval_core(
        &self,
        addr: VirtAddr,
        stride: u64,
        count: u64,
        kind: AccessKind,
    ) -> Option<IntervalCore> {
        if kind.is_store() || self.mm_cache.is_some() {
            return None;
        }
        if !crate::addr::LINE_SIZE.is_multiple_of(stride) || !addr.raw().is_multiple_of(stride) {
            return None;
        }
        let a = addr.raw();
        let end = a.checked_add(count.checked_mul(stride)?)?;
        // First whole page covered from its start, rounded up to the
        // 8-page PTE-line granule; last whole page boundary below `end`.
        let first_full = (a + PAGE_SIZE - 1) >> PAGE_SHIFT;
        let p_lo = (first_full + (MIN_INTERVAL_PAGES - 1)) & !(MIN_INTERVAL_PAGES - 1);
        let p_hi = end >> PAGE_SHIFT;
        if p_hi < p_lo + MIN_INTERVAL_PAGES {
            return None;
        }
        let pages = p_hi - p_lo;
        let tier = self.pages.window_uniform(PageNum::new(p_lo), pages as usize)?;
        if self.l1.dirty_lines() != 0 || self.l2.dirty_lines() != 0 || self.l3.dirty_lines() != 0 {
            return None;
        }
        let shift = PAGE_SHIFT - LINE_SHIFT;
        if !self.fp_data.disjoint(p_lo << shift, p_hi << shift) {
            return None;
        }
        let pte_lo = (PTE_BASE >> LINE_SHIFT) + (p_lo >> 3);
        let pte_hi = (PTE_BASE >> LINE_SHIFT) + ((p_hi + 7) >> 3);
        if !self.fp_pte.disjoint(pte_lo, pte_hi) {
            return None;
        }
        if tier == Tier::Nvm && !self.faults.nvm_spike_quiescent(p_lo, pages) {
            return None;
        }
        Some(IntervalCore {
            lead_elems: ((p_lo << PAGE_SHIFT) - a) / stride,
            core_elems: pages * (PAGE_SIZE / stride),
            first_page: p_lo,
            pages,
            tier,
            stride,
        })
    }

    /// Executes a validated interval core closed-form, appending into
    /// `out`. Infallible: every core page is resident by construction.
    ///
    /// Per page, the state machines are advanced by their *real*
    /// operations minus the branches the validity proof killed: a genuine
    /// TLB miss + insert, the PTE fetch through the full cache hierarchy
    /// (PTE lines interfere like any other line), cold fills of all 64
    /// data lines (full misses, clean victims), and one row/block-granular
    /// device read run. Element-level repeats collapse into O(1) bulk
    /// statistics credits, exactly as the fast lane's bulk half.
    fn run_interval(
        &mut self,
        core: &IntervalCore,
        kind: AccessKind,
        now: u64,
        out: &mut RunOutcome,
    ) {
        let epl_line = crate::addr::LINE_SIZE / core.stride;
        let bulk_per_page = LINES_PER_PAGE * (epl_line - 1);
        let rest_lines = LINES_PER_PAGE - 1;
        let l1lat = self.l1.latency();
        let l3lat = self.l3.latency();
        let level = MemLevel::from(core.tier);
        let shift = PAGE_SHIFT - LINE_SHIFT;
        let mut walk_cycles = 0; // per-page first-line (page-walk) accesses
        let mut rest_cycles = 0; // per-page remaining 63 line-first accesses
        for pidx in core.first_page..core.first_page + core.pages {
            let pn = PageNum::new(pidx);
            let t = self.tlb.lookup(pn);
            debug_assert!(matches!(t, TlbOutcome::Miss), "core page unexpectedly TLB-resident");
            let pte_line = (PTE_BASE + pidx * 8) >> LINE_SHIFT;
            let (_, pte_cycles) = self.cache_path(pte_line, false, Tier::Dram);
            self.tlb.insert(pn);
            // Per-cache bulk fills: each cache sees its ops in the same
            // per-cache order as the reference interleave (caches are
            // independent state machines, so only per-cache order matters).
            let line0 = pidx << shift;
            self.l1.fill_cold_run(line0, LINES_PER_PAGE);
            self.l2.fill_cold_run(line0, LINES_PER_PAGE);
            self.l3.fill_cold_run(line0, LINES_PER_PAGE);
            // Device reads in reference order (line 0 first, then the run);
            // the spike-quiescence proof lets NVM skip the multiplier calls.
            let dev0 = match core.tier {
                Tier::Dram => self.dram.read(line0 << LINE_SHIFT),
                Tier::Nvm => self.nvm.read(line0 << LINE_SHIFT),
            };
            let dev_rest = match core.tier {
                Tier::Dram => self.dram.read_run((line0 + 1) << LINE_SHIFT, rest_lines),
                Tier::Nvm => self.nvm.read_run((line0 + 1) << LINE_SHIFT, rest_lines),
            };
            walk_cycles += self.cfg.walk_base_penalty + pte_cycles + l3lat + dev0;
            rest_cycles += rest_lines * l3lat + dev_rest;
            self.tlb.record_l1_hit_run(rest_lines + bulk_per_page);
            self.l1.record_hit_run(bulk_per_page);
        }
        let pages = core.pages;
        self.stats.record_external_run(kind, level, true, pages, walk_cycles);
        self.stats.record_external_run(kind, level, false, pages * rest_lines, rest_cycles);
        self.stats.record_l1_run(kind, pages * bulk_per_page, l1lat);
        self.pages.stamp_last_access(PageNum::new(core.first_page), pages as usize, now);
        // The core's data lines are now cached: grow the footprint over
        // them (their PTE lines went through cache_path above).
        self.fp_data.extend(core.first_page << shift);
        self.fp_data.extend(((core.first_page + pages) << shift) - 1);
        out.elems += core.core_elems;
        out.cycles += walk_cycles + rest_cycles + pages * bulk_per_page * l1lat;
        out.lines += pages * LINES_PER_PAGE;
        out.tlb_misses += pages;
        self.interval.runs += 1;
        self.interval.pages += pages;
    }

    /// The pre-fast-lane reference path: the same run issued strictly
    /// element by element through [`MemorySystem::access`]. Retained only
    /// to pin `access_run` equivalence in the property tests.
    #[cfg(test)]
    pub(crate) fn access_run_ref(
        &mut self,
        addr: VirtAddr,
        stride: u32,
        count: u64,
        kind: AccessKind,
        now: u64,
    ) -> Result<RunOutcome, RunFault> {
        let stride = u64::from(stride.max(1));
        let mut out = RunOutcome::default();
        let mut prev_line = None;
        for i in 0..count {
            let a = addr + i * stride;
            let o = match self.access(a, kind, now) {
                Ok(o) => o,
                Err(error) => return Err(RunFault { done: i, cycles: out.cycles, error }),
            };
            out.elems += 1;
            out.cycles += o.cycles;
            out.tlb_misses += u64::from(o.tlb_miss);
            out.hint_faults += u64::from(o.hint_fault);
            if prev_line != Some(a.line()) {
                out.lines += 1;
                prev_line = Some(a.line());
            }
        }
        Ok(out)
    }

    // ----- statistics ----------------------------------------------------

    /// Aggregate access statistics.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Interval-engine engagement counters (how often and over how many
    /// pages [`MemorySystem::access_run`] executed closed-form).
    pub fn interval_stats(&self) -> IntervalStats {
        self.interval
    }

    /// Number of leading pages in `[pn, pn + max_pages)` that are *plain*
    /// — resident with no pending hint bit, so a batched run over them
    /// cannot fault or raise a hint fault. Returns 0 if `pn` itself needs
    /// per-element care (see [`PageTable::plain_window`]).
    pub fn plain_window(&self, pn: PageNum, max_pages: usize) -> usize {
        self.pages.plain_window(pn, max_pages)
    }

    /// TLB statistics.
    pub fn tlb_stats(&self) -> crate::tlb::TlbStats {
        self.tlb.stats()
    }

    /// Per-cache statistics `(l1, l2, l3)`.
    pub fn cache_stats(
        &self,
    ) -> (crate::cache::CacheStats, crate::cache::CacheStats, crate::cache::CacheStats) {
        (self.l1.stats(), self.l2.stats(), self.l3.stats())
    }

    /// DRAM device statistics.
    pub fn dram_stats(&self) -> crate::dram::DeviceStats {
        self.dram.stats()
    }

    /// NVM device statistics.
    pub fn nvm_stats(&self) -> crate::dram::DeviceStats {
        self.nvm.stats()
    }

    /// Memory-Mode DRAM-cache statistics, if Memory Mode is enabled.
    pub fn memory_mode_stats(&self) -> Option<crate::cache::CacheStats> {
        self.mm_cache.as_ref().map(|c| c.stats())
    }

    /// NVM write amplification factor so far.
    pub fn nvm_write_amplification(&self) -> f64 {
        self.nvm.write_amplification()
    }

    /// The fault injector (read-only observability).
    pub fn faults(&self) -> &FaultState {
        &self.faults
    }

    /// The fault injector, mutable: the OS model draws reclaim stalls
    /// from it and feeds it the clock.
    pub fn faults_mut(&mut self) -> &mut FaultState {
        &mut self.faults
    }

    /// Counts of faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats()
    }

    /// The event recorder (read-only observability).
    pub fn trace(&self) -> &TraceState {
        &self.trace
    }

    /// The event recorder, mutable: the OS model records control-loop
    /// events into it and feeds it the clock.
    pub fn trace_mut(&mut self) -> &mut TraceState {
        &mut self.trace
    }

    /// Resets all statistics (state — caches, TLB, placements — is kept).
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
        self.tlb.reset_stats();
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
        self.dram.reset_stats();
        self.nvm.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{CycleWindow, FaultPlan};

    fn sys() -> MemorySystem {
        MemorySystem::new(
            MemConfig::builder()
                .dram_capacity(16 * PAGE_SIZE)
                .nvm_capacity(64 * PAGE_SIZE)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    /// Maps one page worth of VMA and makes it resident on `tier`.
    fn mapped(sys: &mut MemorySystem, tier: Tier) -> VirtAddr {
        let a = sys.mmap(PAGE_SIZE, MemPolicy::Default, "t").unwrap();
        sys.map_page(a.page(), tier, 0).unwrap();
        a
    }

    #[test]
    fn unmapped_access_segfaults() {
        let mut s = sys();
        let err = s.access(VirtAddr::new(0x42), AccessKind::Load, 0).unwrap_err();
        assert!(matches!(err, AccessError::Segfault { .. }));
    }

    #[test]
    fn first_touch_raises_fault_with_policy() {
        let mut s = sys();
        let a = s.mmap(PAGE_SIZE, MemPolicy::Bind(Tier::Nvm), "t").unwrap();
        let err = s.access(a, AccessKind::Load, 0).unwrap_err();
        match err {
            AccessError::Fault(pf) => {
                assert_eq!(pf.page, a.page());
                assert_eq!(pf.policy, MemPolicy::Bind(Tier::Nvm));
            }
            AccessError::Segfault { .. } => panic!("expected fault"),
        }
    }

    #[test]
    fn cold_access_reaches_device_then_caches() {
        let mut s = sys();
        let a = mapped(&mut s, Tier::Nvm);
        let first = s.access(a, AccessKind::Load, 0).unwrap();
        assert_eq!(first.level, MemLevel::Nvm);
        assert!(first.tlb_miss);
        let second = s.access(a, AccessKind::Load, 1).unwrap();
        assert_eq!(second.level, MemLevel::L1);
        assert!(!second.tlb_miss);
        assert!(second.cycles < first.cycles);
    }

    #[test]
    fn nvm_access_costs_more_than_dram() {
        let mut s = sys();
        let d = mapped(&mut s, Tier::Dram);
        let n = mapped(&mut s, Tier::Nvm);
        let cd = s.access(d, AccessKind::Load, 0).unwrap().cycles;
        let cn = s.access(n, AccessKind::Load, 0).unwrap().cycles;
        assert!(cn > cd, "NVM ({cn}) should cost more than DRAM ({cd})");
    }

    #[test]
    fn map_page_respects_capacity() {
        let mut s = sys();
        let a = s.mmap(32 * PAGE_SIZE, MemPolicy::Default, "big").unwrap();
        for i in 0..16 {
            s.map_page((a + i * PAGE_SIZE).page(), Tier::Dram, 0).unwrap();
        }
        let err = s.map_page((a + 16 * PAGE_SIZE).page(), Tier::Dram, 0).unwrap_err();
        assert_eq!(err, MemError::TierFull { tier: Tier::Dram });
    }

    #[test]
    fn double_map_is_rejected_without_leaking_frames() {
        let mut s = sys();
        let a = mapped(&mut s, Tier::Dram);
        let used = s.used_pages(Tier::Dram);
        let err = s.map_page(a.page(), Tier::Nvm, 0).unwrap_err();
        assert_eq!(err, MemError::PageAlreadyResident { page: a.page() });
        assert_eq!(s.used_pages(Tier::Dram), used);
        assert_eq!(s.used_pages(Tier::Nvm), 0);
    }

    #[test]
    fn migrate_moves_residency_and_charges_devices() {
        let mut s = sys();
        let a = mapped(&mut s, Tier::Nvm);
        let nvm_reads_before = s.nvm_stats().reads;
        let cycles = s.migrate_page(a.page(), Tier::Dram).unwrap();
        assert!(cycles > 0);
        assert_eq!(s.page(a.page()).unwrap().tier, Tier::Dram);
        assert_eq!(s.used_pages(Tier::Nvm), 0);
        assert_eq!(s.used_pages(Tier::Dram), 1);
        assert_eq!(s.nvm_stats().reads - nvm_reads_before, LINES_PER_PAGE);
        assert_eq!(s.dram_stats().writes, LINES_PER_PAGE);
    }

    #[test]
    fn migrate_to_same_tier_is_rejected() {
        let mut s = sys();
        let a = mapped(&mut s, Tier::Dram);
        assert!(matches!(
            s.migrate_page(a.page(), Tier::Dram),
            Err(MemError::PageAlreadyResident { .. })
        ));
    }

    #[test]
    fn hint_fault_fires_once() {
        let mut s = sys();
        let a = mapped(&mut s, Tier::Nvm);
        assert!(s.mark_hint(a.page(), 77));
        let out = s.access(a, AccessKind::Load, 100).unwrap();
        assert!(out.hint_fault);
        assert_eq!(out.hint_scan_time, 77);
        let again = s.access(a, AccessKind::Load, 101).unwrap();
        assert!(!again.hint_fault);
    }

    #[test]
    fn munmap_frees_resident_pages() {
        let mut s = sys();
        let a = s.mmap(4 * PAGE_SIZE, MemPolicy::Default, "r").unwrap();
        for i in 0..4 {
            s.map_page((a + i * PAGE_SIZE).page(), Tier::Dram, 0).unwrap();
        }
        let report = s.munmap(a).unwrap();
        assert_eq!(report.freed_pages[Tier::Dram.index()], 4);
        assert_eq!(s.used_pages(Tier::Dram), 0);
        assert!(matches!(s.access(a, AccessKind::Load, 0), Err(AccessError::Segfault { .. })));
    }

    #[test]
    fn stats_count_levels() {
        let mut s = sys();
        let a = mapped(&mut s, Tier::Dram);
        s.access(a, AccessKind::Load, 0).unwrap();
        s.access(a, AccessKind::Load, 1).unwrap();
        let st = s.stats();
        assert_eq!(st.total(), 2);
        assert_eq!(st.level_counts[MemLevel::Dram.index()], 1);
        assert_eq!(st.level_counts[MemLevel::L1.index()], 1);
    }

    #[test]
    fn last_access_is_updated() {
        let mut s = sys();
        let a = mapped(&mut s, Tier::Dram);
        s.access(a, AccessKind::Load, 123).unwrap();
        assert_eq!(s.page(a.page()).unwrap().last_access, 123);
    }

    /// Runs one cold pass over a fresh NVM-resident region, touching lines
    /// in the order produced by `index`, and returns the mean cycles of
    /// the external (NVM) accesses.
    fn nvm_pass(len: u64, index: impl Fn(u64) -> u64) -> f64 {
        let mut s = MemorySystem::new(
            MemConfig::builder()
                .dram_capacity(16 * PAGE_SIZE)
                .nvm_capacity(4 << 20)
                .build()
                .unwrap(),
        )
        .unwrap();
        let a = s.mmap(len, MemPolicy::Default, "region").unwrap();
        for i in 0..(len / PAGE_SIZE) {
            s.map_page((a + i * PAGE_SIZE).page(), Tier::Nvm, 0).unwrap();
        }
        let lines = len / 64;
        let (mut cycles, mut ext) = (0u64, 0u64);
        for i in 0..lines {
            let off = index(i) % lines * 64;
            let o = s.access(a + off, AccessKind::Load, 0).unwrap();
            if o.level == MemLevel::Nvm {
                cycles += o.cycles;
                ext += 1;
            }
        }
        assert!(ext > lines / 2, "cold pass should be mostly external");
        cycles as f64 / ext as f64
    }

    /// Every observable number of a system, for execution-path
    /// equivalence checks: access/TLB/cache/device/fault statistics, the
    /// trace event stream and page residency. Interval-engine engagement
    /// counters are deliberately excluded — the paths differ in *how*
    /// they execute, never in what they observe.
    fn fingerprint(s: &MemorySystem) -> String {
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            s.stats(),
            s.tlb_stats(),
            s.cache_stats(),
            s.dram_stats(),
            s.nvm_stats(),
            s.fault_stats(),
            s.trace().records(),
            s.resident_pages().collect::<Vec<_>>(),
        )
    }

    /// Which execution path [`drive_runs`] exercises.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum RunMode {
        /// Strictly element-by-element (`access_run_ref`).
        Reference,
        /// Per-line fast lane only (`access_run_lane`).
        Lane,
        /// Fast lane + interval engine (`access_run`).
        Full,
    }

    /// Drives `runs` through the chosen execution path, servicing page
    /// faults with a tier chosen from the page number (32-page blocks, so
    /// uniform-tier windows exist and the interval engine can engage),
    /// and logs everything observable along the way.
    fn drive_runs(
        mut s: MemorySystem,
        base: VirtAddr,
        runs: &[(u64, u32, u64, bool)],
        mode: RunMode,
    ) -> (Vec<String>, MemorySystem) {
        let mut log = Vec::new();
        for (ri, &(off, stride, count, is_store)) in runs.iter().enumerate() {
            let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
            let now = ri as u64 * 1000;
            let stride64 = u64::from(stride.max(1));
            let mut start = 0u64;
            while start <= count {
                let addr = base + off + start * stride64;
                let remaining = count - start;
                let res = match mode {
                    RunMode::Full => s.access_run(addr, stride, remaining, kind, now),
                    RunMode::Lane => s.access_run_lane(addr, stride, remaining, kind, now),
                    RunMode::Reference => s.access_run_ref(addr, stride, remaining, kind, now),
                };
                match res {
                    Ok(out) => {
                        log.push(format!("{ri}@{start}: {out:?}"));
                        break;
                    }
                    Err(rf) => {
                        log.push(format!("{ri}@{start}: fault after {} ({:?})", rf.done, rf.error));
                        let AccessError::Fault(pf) = rf.error else { break };
                        let tier =
                            if (pf.page.index() / 32) % 2 == 0 { Tier::Dram } else { Tier::Nvm };
                        s.map_page(pf.page, tier, now).unwrap();
                        start += rf.done;
                    }
                }
            }
        }
        (log, s)
    }

    /// Drives the same run list down all three execution paths from
    /// clones of `s` and asserts pairwise observation equivalence.
    fn assert_three_way(s: MemorySystem, base: VirtAddr, runs: &[(u64, u32, u64, bool)]) {
        let lane = s.clone();
        let reference = s.clone();
        let (log_full, s_full) = drive_runs(s, base, runs, RunMode::Full);
        let (log_lane, s_lane) = drive_runs(lane, base, runs, RunMode::Lane);
        let (log_ref, s_ref) = drive_runs(reference, base, runs, RunMode::Reference);
        assert_eq!(log_full, log_lane, "full vs lane logs");
        assert_eq!(log_full, log_ref, "full vs reference logs");
        assert_eq!(fingerprint(&s_full), fingerprint(&s_lane), "full vs lane state");
        assert_eq!(fingerprint(&s_full), fingerprint(&s_ref), "full vs reference state");
        assert_eq!(s_lane.interval_stats(), IntervalStats::default());
        assert_eq!(s_ref.interval_stats(), IntervalStats::default());
    }

    proptest::proptest! {
        /// The batched fast lane and the interval engine are
        /// observation-equivalent to the per-element reference path:
        /// identical run outcomes, identical fault sequences, and
        /// bit-equal access/TLB/cache/device stats.
        #[test]
        fn prop_access_run_matches_reference(
            maps in proptest::collection::vec(0u8..3, 32),
            hints in proptest::collection::vec(proptest::bool::ANY, 32),
            raw_runs in proptest::collection::vec(
                (0u64..32 * PAGE_SIZE, 1u32..130, 0u64..300, proptest::bool::ANY),
                1..10,
            ),
        ) {
            let mut s = MemorySystem::new(
                MemConfig::builder()
                    .dram_capacity(128 * PAGE_SIZE)
                    .nvm_capacity(128 * PAGE_SIZE)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            let base = s.mmap(32 * PAGE_SIZE, MemPolicy::Default, "run").unwrap();
            for (i, &m) in maps.iter().enumerate() {
                let pn = (base + i as u64 * PAGE_SIZE).page();
                match m {
                    1 => s.map_page(pn, Tier::Dram, 0).unwrap(),
                    2 => s.map_page(pn, Tier::Nvm, 0).unwrap(),
                    _ => continue,
                }
                if hints[i] {
                    s.mark_hint(pn, 7);
                }
            }
            // Clamp each run inside the region so only first-touch faults
            // (never segfaults) occur.
            let runs: Vec<(u64, u32, u64, bool)> = raw_runs
                .into_iter()
                .map(|(off, stride, count, st)| {
                    let max = (32 * PAGE_SIZE - off) / u64::from(stride.max(1));
                    (off, stride, count.min(max), st)
                })
                .collect();
            assert_three_way(s, base, &runs);
        }
    }

    /// Stride menu for interval-scale property runs: every divisor of the
    /// line size (interval-eligible) plus a few misaligned strides that
    /// must fall back to the lane.
    const PROP_STRIDES: [u32; 10] = [1, 2, 4, 8, 16, 32, 64, 3, 24, 100];

    proptest::proptest! {
        /// Interval-scale runs (thousands of elements over a 64-page
        /// region) under random NVM-spike fault plans: the three paths
        /// stay bit-equal across AccessStats, device/TLB/cache counters,
        /// fault stats and the trace stream, with tracing enabled.
        #[test]
        fn prop_interval_engine_matches_reference_under_fault_plans(
            maps in proptest::collection::vec(0u8..3, 64),
            hints in proptest::collection::vec(proptest::bool::ANY, 64),
            spike in (0u64..80, 0u64..40, 1u32..6),
            window in (0u64..3, 1u64..9),
            seed in 0u64..u64::MAX,
            raw_runs in proptest::collection::vec(
                (0u64..60 * PAGE_SIZE, 0usize..10, 0u64..4000, proptest::bool::ANY),
                1..5,
            ),
        ) {
            let (spike_off, spike_pages, spike_mult) = spike;
            let (win_start_k, win_len_k) = window;
            let plan = FaultPlan {
                seed,
                nvm_spike_multiplier: spike_mult,
                nvm_spike_first_page: (crate::vma::MMAP_BASE >> PAGE_SHIFT) + spike_off,
                nvm_spike_pages: spike_pages,
                nvm_spike_window: CycleWindow {
                    start: win_start_k * 1000,
                    end: (win_start_k + win_len_k) * 1000,
                },
                ..FaultPlan::none()
            };
            let mut s = MemorySystem::new(
                MemConfig::builder()
                    .dram_capacity(256 * PAGE_SIZE)
                    .nvm_capacity(256 * PAGE_SIZE)
                    .fault(plan)
                    .trace(tiersim_trace::TraceConfig::on())
                    .build()
                    .unwrap(),
            )
            .unwrap();
            let base = s.mmap(64 * PAGE_SIZE, MemPolicy::Default, "interval").unwrap();
            for (i, &m) in maps.iter().enumerate() {
                let pn = (base + i as u64 * PAGE_SIZE).page();
                match m {
                    1 => s.map_page(pn, Tier::Dram, 0).unwrap(),
                    2 => s.map_page(pn, Tier::Nvm, 0).unwrap(),
                    _ => continue,
                }
                if hints[i] {
                    s.mark_hint(pn, 7);
                }
            }
            let runs: Vec<(u64, u32, u64, bool)> = raw_runs
                .into_iter()
                .map(|(off, si, count, st)| {
                    let stride = PROP_STRIDES[si];
                    let max = (64 * PAGE_SIZE - off) / u64::from(stride);
                    (off, stride, count.min(max), st)
                })
                .collect();
            assert_three_way(s, base, &runs);
        }
    }

    /// A system with `pages` contiguously mapped pages of `tier`.
    fn uniform_region(pages: u64, tier: Tier) -> (MemorySystem, VirtAddr) {
        let mut s = MemorySystem::new(
            MemConfig::builder()
                .dram_capacity(256 * PAGE_SIZE)
                .nvm_capacity(256 * PAGE_SIZE)
                .build()
                .unwrap(),
        )
        .unwrap();
        let a = s.mmap(pages * PAGE_SIZE, MemPolicy::Default, "interval").unwrap();
        for i in 0..pages {
            s.map_page((a + i * PAGE_SIZE).page(), tier, 0).unwrap();
        }
        (s, a)
    }

    #[test]
    fn interval_engine_engages_and_matches_both_paths() {
        for tier in [Tier::Dram, Tier::Nvm] {
            let (mut full, a) = uniform_region(32, tier);
            let (mut lane, _) = uniform_region(32, tier);
            let (mut reference, _) = uniform_region(32, tier);
            let count = 32 * PAGE_SIZE / 8;
            let out_full = full.access_run(a, 8, count, AccessKind::Load, 7).unwrap();
            let out_lane = lane.access_run_lane(a, 8, count, AccessKind::Load, 7).unwrap();
            let out_ref = reference.access_run_ref(a, 8, count, AccessKind::Load, 7).unwrap();
            assert_eq!(out_full, out_lane, "{tier:?}");
            assert_eq!(out_full, out_ref, "{tier:?}");
            assert_eq!(fingerprint(&full), fingerprint(&lane), "{tier:?}");
            assert_eq!(fingerprint(&full), fingerprint(&reference), "{tier:?}");
            // The mmap arena base is 8-page aligned and the run covers the
            // whole region, so the entire span executes closed-form.
            assert_eq!(full.interval_stats(), IntervalStats { runs: 1, pages: 32 }, "{tier:?}");
            assert_eq!(lane.interval_stats(), IntervalStats::default());
            // Hotness metadata advanced for every core page.
            assert_eq!(full.page((a + 9 * PAGE_SIZE).page()).unwrap().last_access, 7);
        }
    }

    #[test]
    fn interval_core_is_page_aligned_with_lane_lead_and_tail() {
        let (mut full, a) = uniform_region(32, Tier::Dram);
        let (mut reference, _) = uniform_region(32, Tier::Dram);
        // Start 3 elements in and stop 8 short: the lead-in up to the next
        // 8-aligned page boundary and the tail ride the fast lane.
        let count = 32 * PAGE_SIZE / 8 - 8;
        let start = a + 3 * 8;
        let out_full = full.access_run(start, 8, count, AccessKind::Load, 7).unwrap();
        let out_ref = reference.access_run_ref(start, 8, count, AccessKind::Load, 7).unwrap();
        assert_eq!(out_full, out_ref);
        assert_eq!(fingerprint(&full), fingerprint(&reference));
        // Pages 8..31 are core; page 0..7 (partial + alignment) and the
        // partial page 31 fall to the lane.
        assert_eq!(full.interval_stats(), IntervalStats { runs: 1, pages: 23 });
    }

    #[test]
    fn interval_invalidated_by_mid_span_migration() {
        let (mut full, a) = uniform_region(16, Tier::Dram);
        let (mut reference, _) = uniform_region(16, Tier::Dram);
        // A tier change inside the span kills window uniformity: the run
        // must fall back to the exact path and still match the reference.
        full.migrate_page((a + 5 * PAGE_SIZE).page(), Tier::Nvm).unwrap();
        reference.migrate_page((a + 5 * PAGE_SIZE).page(), Tier::Nvm).unwrap();
        let count = 16 * PAGE_SIZE / 8;
        let out_full = full.access_run(a, 8, count, AccessKind::Load, 7).unwrap();
        let out_ref = reference.access_run_ref(a, 8, count, AccessKind::Load, 7).unwrap();
        assert_eq!(out_full, out_ref);
        assert_eq!(fingerprint(&full), fingerprint(&reference));
        assert_eq!(full.interval_stats(), IntervalStats::default());
    }

    #[test]
    fn interval_invalidated_by_pending_hint_and_dirty_caches() {
        // Pending AutoNUMA hint bit inside the span: exact path services
        // the hint fault; the closed-form path must not engage.
        let (mut full, a) = uniform_region(16, Tier::Dram);
        let (mut reference, _) = uniform_region(16, Tier::Dram);
        assert!(full.mark_hint((a + 12 * PAGE_SIZE).page(), 9));
        assert!(reference.mark_hint((a + 12 * PAGE_SIZE).page(), 9));
        let count = 16 * PAGE_SIZE / 8;
        let out_full = full.access_run(a, 8, count, AccessKind::Load, 7).unwrap();
        let out_ref = reference.access_run_ref(a, 8, count, AccessKind::Load, 7).unwrap();
        assert_eq!(out_full, out_ref);
        assert_eq!(out_full.hint_faults, 1);
        assert_eq!(fingerprint(&full), fingerprint(&reference));
        assert_eq!(full.interval_stats(), IntervalStats::default());

        // A single dirty line anywhere in the hierarchy blocks the engine
        // (evictions could write back in an order-dependent way).
        let (mut dirty, b) = uniform_region(16, Tier::Dram);
        dirty.access(b, AccessKind::Store, 0).unwrap();
        dirty.access_run(b + PAGE_SIZE, 8, 15 * PAGE_SIZE / 8, AccessKind::Load, 1).unwrap();
        assert_eq!(dirty.interval_stats(), IntervalStats::default());
    }

    #[test]
    fn interval_falls_back_once_lines_may_be_cached() {
        let (mut full, a) = uniform_region(16, Tier::Dram);
        let (mut reference, _) = uniform_region(16, Tier::Dram);
        let count = 16 * PAGE_SIZE / 8;
        full.access_run(a, 8, count, AccessKind::Load, 1).unwrap();
        reference.access_run_ref(a, 8, count, AccessKind::Load, 1).unwrap();
        assert_eq!(full.interval_stats(), IntervalStats { runs: 1, pages: 16 });
        // Second pass over the same span: its lines are now inside the
        // conservative cache footprint, so the full-miss proof fails and
        // the run is exact — and still bit-equal.
        full.access_run(a, 8, count, AccessKind::Load, 2).unwrap();
        reference.access_run_ref(a, 8, count, AccessKind::Load, 2).unwrap();
        assert_eq!(full.interval_stats(), IntervalStats { runs: 1, pages: 16 });
        assert_eq!(fingerprint(&full), fingerprint(&reference));
    }

    #[test]
    fn interval_respects_nvm_spike_quiescence() {
        let plan = FaultPlan {
            seed: 9,
            nvm_spike_multiplier: 4,
            nvm_spike_first_page: (crate::vma::MMAP_BASE >> PAGE_SHIFT) + 4,
            nvm_spike_pages: 2,
            nvm_spike_window: CycleWindow { start: 0, end: 100 },
            ..FaultPlan::none()
        };
        let build = || {
            let mut s = MemorySystem::new(
                MemConfig::builder()
                    .dram_capacity(64 * PAGE_SIZE)
                    .nvm_capacity(64 * PAGE_SIZE)
                    .fault(plan)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            let a = s.mmap(16 * PAGE_SIZE, MemPolicy::Default, "nvm").unwrap();
            for i in 0..16 {
                s.map_page((a + i * PAGE_SIZE).page(), Tier::Nvm, 0).unwrap();
            }
            (s, a)
        };
        let count = 16 * PAGE_SIZE / 8;
        // Inside the spike window the spiked pages overlap the span: the
        // engine must not engage, and the spike must land identically.
        let (mut full, a) = build();
        let (mut reference, _) = build();
        let out_full = full.access_run(a, 8, count, AccessKind::Load, 7).unwrap();
        let out_ref = reference.access_run_ref(a, 8, count, AccessKind::Load, 7).unwrap();
        assert_eq!(out_full, out_ref);
        assert_eq!(fingerprint(&full), fingerprint(&reference));
        assert_eq!(full.interval_stats(), IntervalStats::default());
        assert!(full.fault_stats().nvm_spiked_ops > 0);
        // Past the window the spike is provably quiescent: closed-form.
        let (mut late, b) = build();
        let (mut late_ref, _) = build();
        let out_late = late.access_run(b, 8, count, AccessKind::Load, 200).unwrap();
        let out_late_ref = late_ref.access_run_ref(b, 8, count, AccessKind::Load, 200).unwrap();
        assert_eq!(out_late, out_late_ref);
        assert_eq!(fingerprint(&late), fingerprint(&late_ref));
        assert_eq!(late.interval_stats(), IntervalStats { runs: 1, pages: 16 });
    }

    /// A system with one whole 2 MiB block (512 pages) mapped on `tier`,
    /// starting exactly at a huge-page boundary (the arena base is one).
    fn huge_region(tier: Tier) -> (MemorySystem, VirtAddr) {
        let mut s = MemorySystem::new(
            MemConfig::builder()
                .dram_capacity(1024 * PAGE_SIZE)
                .nvm_capacity(1024 * PAGE_SIZE)
                .build()
                .unwrap(),
        )
        .unwrap();
        let a = s.mmap(crate::addr::HUGE_PAGE_SIZE, MemPolicy::Default, "thp").unwrap();
        assert!(a.page().is_huge_head(), "arena base must be 2 MiB aligned");
        for i in 0..crate::addr::HUGE_PAGE_PAGES {
            s.map_page((a + i * PAGE_SIZE).page(), tier, 0).unwrap();
        }
        (s, a)
    }

    #[test]
    fn huge_block_shares_one_tlb_entry_across_the_block() {
        let (mut base, a) = huge_region(Tier::Dram);
        let mut huge = base.clone();
        assert_eq!(huge.collapse_huge(a.page()), Some(Tier::Dram));
        assert_eq!(huge.huge_mapped_pages(), crate::addr::HUGE_PAGE_PAGES);
        // One load per page across the whole block.
        for i in 0..crate::addr::HUGE_PAGE_PAGES {
            base.access(a + i * PAGE_SIZE, AccessKind::Load, i).unwrap();
            huge.access(a + i * PAGE_SIZE, AccessKind::Load, i).unwrap();
        }
        // 4K pages: every page walks. Huge: one walk for the PMD entry,
        // then every other page hits the shared head tag.
        assert_eq!(base.tlb_stats().misses, crate::addr::HUGE_PAGE_PAGES);
        assert_eq!(huge.tlb_stats().misses, 1);
        assert_eq!(huge.tlb_stats().l1_hits, crate::addr::HUGE_PAGE_PAGES - 1);
        let cycles = |s: &MemorySystem| s.stats().level_cycles.iter().sum::<u64>();
        assert!(cycles(&huge) < cycles(&base), "shared translation must be cheaper");
    }

    #[test]
    fn collapse_invalidates_stale_4k_tags_and_split_restores_per_page_walks() {
        let (mut s, a) = huge_region(Tier::Nvm);
        // Warm a 4K translation, then collapse: the old tag must not
        // serve the block.
        s.access(a + 3 * PAGE_SIZE, AccessKind::Load, 0).unwrap();
        assert_eq!(s.tlb_stats().misses, 1);
        assert_eq!(s.collapse_huge(a.page()), Some(Tier::Nvm));
        let out = s.access(a + 3 * PAGE_SIZE, AccessKind::Load, 1).unwrap();
        assert!(out.tlb_miss, "collapse must flush stale 4K tags");
        // Split: the PMD tag is flushed, pages translate per-4K again.
        assert_eq!(s.split_huge(a.page()), Some(a.page()));
        assert_eq!(s.huge_mapped_pages(), 0);
        let m0 = s.tlb_stats().misses;
        s.access(a, AccessKind::Load, 2).unwrap();
        s.access(a + PAGE_SIZE, AccessKind::Load, 2).unwrap();
        assert_eq!(s.tlb_stats().misses, m0 + 2, "split must flush the shared PMD tag");
    }

    #[test]
    fn migrate_rejects_huge_until_split() {
        let (mut s, a) = huge_region(Tier::Nvm);
        assert_eq!(s.collapse_huge(a.page()), Some(Tier::Nvm));
        let pn = (a + 7 * PAGE_SIZE).page();
        assert_eq!(s.migrate_page(pn, Tier::Dram), Err(MemError::HugeMapped { page: pn }));
        assert_eq!(s.page(pn).unwrap().tier, Tier::Nvm);
        s.split_huge(pn).unwrap();
        s.migrate_page(pn, Tier::Dram).unwrap();
        assert_eq!(s.page(pn).unwrap().tier, Tier::Dram);
    }

    #[test]
    fn unmap_of_a_huge_member_splits_and_flushes_the_block() {
        let (mut s, a) = huge_region(Tier::Dram);
        assert_eq!(s.collapse_huge(a.page()), Some(Tier::Dram));
        s.access(a + 9 * PAGE_SIZE, AccessKind::Load, 0).unwrap(); // head tag in
        s.unmap_page((a + 9 * PAGE_SIZE).page()).unwrap();
        assert_eq!(s.huge_mapped_pages(), 0);
        // The survivors translate per-4K and must re-walk (no stale PMD
        // tag may serve them).
        let m0 = s.tlb_stats().misses;
        s.access(a, AccessKind::Load, 1).unwrap();
        assert_eq!(s.tlb_stats().misses, m0 + 1);
    }

    #[test]
    fn fault_around_candidates_respects_vma_and_residency() {
        let mut s = sys();
        let a = s.mmap(8 * PAGE_SIZE, MemPolicy::Default, "fa").unwrap();
        // Nothing resident: window runs to the VMA end, capped by max.
        assert_eq!(s.fault_around_candidates(a.page(), 64), 7);
        assert_eq!(s.fault_around_candidates(a.page(), 3), 3);
        // A resident page mid-window stops it.
        s.map_page((a + 4 * PAGE_SIZE).page(), Tier::Dram, 0).unwrap();
        assert_eq!(s.fault_around_candidates(a.page(), 64), 3);
        // Outside any VMA: no window.
        assert_eq!(s.fault_around_candidates(VirtAddr::new(0x42).page(), 64), 0);
    }

    /// Services a full pass over `pages` pages with the chosen populate
    /// regime and returns the finished system (for satellite bit-equality
    /// checks across {demand, fault-around, pre-populated} mappings).
    /// The tier of each page is a pure function of its index so every
    /// regime places identically; a uniform tier keeps the populated
    /// spans interval-eligible.
    fn run_regime(pages: u64, window: u64, prepopulate: bool) -> MemorySystem {
        let tier_of = |_pn: PageNum| Tier::Dram;
        let (mut s, a) = {
            let mut s = MemorySystem::new(
                MemConfig::builder()
                    .dram_capacity(256 * PAGE_SIZE)
                    .nvm_capacity(256 * PAGE_SIZE)
                    .trace(tiersim_trace::TraceConfig::on())
                    .build()
                    .unwrap(),
            )
            .unwrap();
            let a = s.mmap(pages * PAGE_SIZE, MemPolicy::Default, "regime").unwrap();
            (s, a)
        };
        if prepopulate {
            for i in 0..pages {
                let pn = (a + i * PAGE_SIZE).page();
                s.map_page(pn, tier_of(pn), 0).unwrap();
            }
        }
        let stride = 8u32;
        let count = pages * PAGE_SIZE / 8;
        let mut start = 0u64;
        while start < count {
            match s.access_run(a + start * 8, stride, count - start, AccessKind::Load, 5) {
                Ok(_) => break,
                Err(rf) => {
                    let AccessError::Fault(pf) = rf.error else { panic!("unexpected segfault") };
                    s.map_page(pf.page, tier_of(pf.page), 5).unwrap();
                    for j in 0..s.fault_around_candidates(pf.page, window) {
                        let q = PageNum::new(pf.page.index() + 1 + j);
                        s.map_page(q, tier_of(q), 5).unwrap();
                    }
                    start += rf.done;
                }
            }
        }
        s
    }

    #[test]
    fn populate_regimes_are_observation_equivalent_and_only_populate_engages_interval() {
        let demand = run_regime(64, 0, false);
        let around = run_regime(64, 512, false);
        let prepop = run_regime(64, 0, true);
        assert_eq!(fingerprint(&demand), fingerprint(&around), "demand vs fault-around");
        assert_eq!(fingerprint(&demand), fingerprint(&prepop), "demand vs pre-populated");
        // Demand paging faults at every page boundary, so no window is
        // ever uniformly resident; bulk populate removes the phase
        // boundaries and the closed-form engine takes over.
        assert_eq!(demand.interval_stats().runs, 0);
        assert!(around.interval_stats().pages >= 32, "fault-around must engage the engine");
        assert!(prepop.interval_stats().pages >= 32, "pre-populate must engage the engine");
    }

    #[test]
    fn access_run_segfault_reports_progress() {
        let mut s = sys();
        let a = s.mmap(PAGE_SIZE, MemPolicy::Default, "one").unwrap();
        s.map_page(a.page(), Tier::Dram, 0).unwrap();
        // 8-byte elements: the run walks off the end of the single-page
        // VMA after 512 elements.
        let rf = s.access_run(a, 8, 600, AccessKind::Load, 0).unwrap_err();
        assert_eq!(rf.done, 512);
        assert!(rf.cycles > 0);
        assert!(matches!(rf.error, AccessError::Segfault { .. }));
    }

    #[test]
    fn access_run_memory_mode_matches_reference() {
        let build = || {
            let mut s = MemorySystem::new(
                MemConfig::builder()
                    .dram_capacity(16 * PAGE_SIZE)
                    .nvm_capacity(64 * PAGE_SIZE)
                    .memory_mode(true)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            let a = s.mmap(8 * PAGE_SIZE, MemPolicy::Default, "mm").unwrap();
            for i in 0..8 {
                s.map_page((a + i * PAGE_SIZE).page(), Tier::Nvm, 0).unwrap();
            }
            (s, a)
        };
        let (mut f, a) = build();
        let (mut r, _) = build();
        let out_f = f.access_run(a, 4, 4096, AccessKind::Store, 5).unwrap();
        let out_r = r.access_run_ref(a, 4, 4096, AccessKind::Store, 5).unwrap();
        assert_eq!(out_f, out_r);
        assert_eq!(fingerprint(&f), fingerprint(&r));
        assert_eq!(f.memory_mode_stats(), r.memory_mode_stats());
    }

    #[test]
    fn sequential_nvm_faster_than_random_nvm() {
        let len = 2 << 20; // 2 MiB
        let seq_avg = nvm_pass(len, |i| i);
        // Odd multiplier modulo a power-of-two line count visits every
        // line once in a scattered order.
        let rnd_avg = nvm_pass(len, |i| i.wrapping_mul(40503));
        assert!(
            rnd_avg > seq_avg * 1.3,
            "random NVM ({rnd_avg:.0}) should be clearly slower than sequential ({seq_avg:.0})"
        );
    }
}
