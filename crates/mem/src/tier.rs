//! Memory tiers and hierarchy levels.

use core::fmt;

/// A memory tier: the kind of device backing a page.
///
/// The paper's system has DRAM as the fast tier (tier-1) and Optane NVM
/// exposed as a CPU-less NUMA node as the slow tier (tier-2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Tier {
    /// Fast, low-capacity tier (tier-1).
    Dram,
    /// Slow, high-capacity non-volatile tier (tier-2).
    Nvm,
}

impl Tier {
    /// All tiers, fast first.
    pub const ALL: [Tier; 2] = [Tier::Dram, Tier::Nvm];

    /// Returns the other tier.
    ///
    /// # Examples
    ///
    /// ```
    /// use tiersim_mem::Tier;
    /// assert_eq!(Tier::Dram.other(), Tier::Nvm);
    /// ```
    #[inline]
    pub const fn other(self) -> Tier {
        match self {
            Tier::Dram => Tier::Nvm,
            Tier::Nvm => Tier::Dram,
        }
    }

    /// Dense index usable for per-tier arrays (`Dram == 0`, `Nvm == 1`).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Tier::Dram => 0,
            Tier::Nvm => 1,
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Dram => f.write_str("DRAM"),
            Tier::Nvm => f.write_str("NVM"),
        }
    }
}

/// The level of the memory hierarchy where an access was satisfied.
///
/// Mirrors the hierarchy levels reported by `perf-mem` load samples in the
/// paper (L1, L2, L3, LFB, DRAM, PMEM). `Lfb` (line-fill buffer) is kept for
/// API fidelity with perf's levels; the simulator has no miss-level
/// parallelism model and never produces it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MemLevel {
    /// First-level data cache.
    L1,
    /// Second-level cache.
    L2,
    /// Shared last-level cache.
    L3,
    /// Line fill buffer (never produced by this simulator; see module docs).
    Lfb,
    /// Access satisfied by a DRAM device (external to caches).
    Dram,
    /// Access satisfied by an NVM device (external to caches).
    Nvm,
}

impl MemLevel {
    /// Returns `true` for accesses satisfied outside the cache hierarchy
    /// (DRAM or NVM) — the "external" accesses the paper's Tables 1–3 and
    /// Figures 3–5 are built from.
    ///
    /// # Examples
    ///
    /// ```
    /// use tiersim_mem::MemLevel;
    /// assert!(MemLevel::Nvm.is_external());
    /// assert!(!MemLevel::L3.is_external());
    /// ```
    #[inline]
    pub const fn is_external(self) -> bool {
        matches!(self, MemLevel::Dram | MemLevel::Nvm)
    }

    /// Returns the tier for external levels, `None` for cache hits.
    #[inline]
    pub const fn tier(self) -> Option<Tier> {
        match self {
            MemLevel::Dram => Some(Tier::Dram),
            MemLevel::Nvm => Some(Tier::Nvm),
            _ => None,
        }
    }

    /// Dense index usable for per-level arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            MemLevel::L1 => 0,
            MemLevel::L2 => 1,
            MemLevel::L3 => 2,
            MemLevel::Lfb => 3,
            MemLevel::Dram => 4,
            MemLevel::Nvm => 5,
        }
    }

    /// All levels in hierarchy order.
    pub const ALL: [MemLevel; 6] =
        [MemLevel::L1, MemLevel::L2, MemLevel::L3, MemLevel::Lfb, MemLevel::Dram, MemLevel::Nvm];
}

impl fmt::Display for MemLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemLevel::L1 => "L1",
            MemLevel::L2 => "L2",
            MemLevel::L3 => "L3",
            MemLevel::Lfb => "LFB",
            MemLevel::Dram => "DRAM",
            MemLevel::Nvm => "PMEM",
        };
        f.write_str(s)
    }
}

impl From<Tier> for MemLevel {
    fn from(tier: Tier) -> MemLevel {
        match tier {
            Tier::Dram => MemLevel::Dram,
            Tier::Nvm => MemLevel::Nvm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_other_is_involutive() {
        for t in Tier::ALL {
            assert_eq!(t.other().other(), t);
        }
    }

    #[test]
    fn external_levels_have_tiers() {
        for lvl in MemLevel::ALL {
            assert_eq!(lvl.is_external(), lvl.tier().is_some());
        }
    }

    #[test]
    fn indexes_are_dense_and_unique() {
        let mut seen = [false; 6];
        for lvl in MemLevel::ALL {
            assert!(!seen[lvl.index()]);
            seen[lvl.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn display_matches_perf_names() {
        assert_eq!(MemLevel::Nvm.to_string(), "PMEM");
        assert_eq!(Tier::Nvm.to_string(), "NVM");
    }
}
