//! Two-level data TLB model (DTLB + shared STLB).

use crate::addr::PageNum;
use crate::config::TlbGeometry;

/// Where a TLB lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbOutcome {
    /// First-level DTLB hit (free).
    L1Hit,
    /// Second-level STLB hit (small penalty).
    L2Hit,
    /// Miss in both levels; a page walk is required.
    Miss,
}

impl TlbOutcome {
    /// Returns `true` if a page walk is required. The paper's Table 3
    /// groups external access costs by this bit.
    #[inline]
    pub fn is_miss(self) -> bool {
        matches!(self, TlbOutcome::Miss)
    }
}

/// Hit/miss counters for the TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TlbStats {
    /// DTLB hits.
    pub l1_hits: u64,
    /// STLB hits (DTLB misses).
    pub l2_hits: u64,
    /// Full misses (page walks).
    pub misses: u64,
}

impl TlbStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.misses
    }

    /// Fraction of lookups that required a page walk.
    pub fn miss_ratio(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups() as f64
        }
    }
}

#[derive(Debug, Clone)]
struct TlbLevel {
    ways: usize,
    set_mask: u64,
    tags: Vec<u64>,
    ages: Vec<u8>,
}

const INVALID: u64 = u64::MAX;

impl TlbLevel {
    fn new(geometry: TlbGeometry) -> Self {
        let sets = geometry.sets();
        assert!(sets.is_power_of_two(), "TLB set count must be a power of two");
        assert!(geometry.ways >= 1 && geometry.ways <= 255);
        TlbLevel {
            ways: geometry.ways,
            set_mask: sets as u64 - 1,
            tags: vec![INVALID; sets * geometry.ways],
            ages: vec![0; sets * geometry.ways],
        }
    }

    #[inline]
    fn base(&self, pn: u64) -> usize {
        (pn & self.set_mask) as usize * self.ways
    }

    #[inline]
    fn lookup(&mut self, pn: u64) -> bool {
        let base = self.base(pn);
        if let Some(w) = self.tags[base..base + self.ways].iter().position(|&t| t == pn) {
            self.touch(base, w);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, pn: u64) {
        let base = self.base(pn);
        if let Some(w) = self.tags[base..base + self.ways].iter().position(|&t| t == pn) {
            self.touch(base, w);
            return;
        }
        let victim = (0..self.ways)
            .find(|&w| self.tags[base + w] == INVALID)
            .or_else(|| (0..self.ways).max_by_key(|&w| self.ages[base + w]))
            .unwrap_or(0);
        self.tags[base + victim] = pn;
        self.fill_touch(base, victim);
    }

    fn invalidate(&mut self, pn: u64) {
        let base = self.base(pn);
        for w in 0..self.ways {
            if self.tags[base + w] == pn {
                self.tags[base + w] = INVALID;
            }
        }
    }

    fn flush(&mut self) {
        self.tags.fill(INVALID);
        self.ages.fill(0);
    }

    #[inline]
    fn touch(&mut self, base: usize, w: usize) {
        let cur = self.ages[base + w];
        // Already MRU: the aging loop below would be a no-op (bavy's
        // zero-bookkeeping hit path, SNIPPETS.md §2); streaming lookups
        // re-translate the MRU page almost every time.
        if cur == 0 {
            return;
        }
        for age in &mut self.ages[base..base + self.ways] {
            if *age < cur {
                *age += 1;
            }
        }
        self.ages[base + w] = 0;
    }

    /// MRU update for a freshly filled way: every other way ages.
    #[inline]
    fn fill_touch(&mut self, base: usize, w: usize) {
        for age in &mut self.ages[base..base + self.ways] {
            *age = age.saturating_add(1);
        }
        self.ages[base + w] = 0;
    }
}

/// Two-level data TLB (per-core DTLB plus shared STLB), LRU replacement.
///
/// The simulator runs threads logically, so a single shared TLB stands in
/// for the per-core TLBs; the geometry defaults approximate one Skylake-SP
/// core (64-entry DTLB, 1536-entry STLB).
///
/// **Huge pages** use a *unified* TLB with representative keys (matching
/// Skylake's shared STLB for 4K/2M entries): the access path translates a
/// page inside a collapsed 2 MiB mapping under its block head's page
/// number, so all 512 base pages share one entry and one walk. The `Tlb`
/// itself is page-size agnostic — callers pick the key — which keeps
/// `invalidate`/`cached_pages` exact (the head is always resident while
/// the block is huge).
///
/// # Examples
///
/// ```
/// use tiersim_mem::{Tlb, TlbGeometry, TlbOutcome, PageNum};
///
/// let mut tlb = Tlb::new(
///     TlbGeometry { entries: 64, ways: 4 },
///     TlbGeometry { entries: 1536, ways: 12 },
/// );
/// assert_eq!(tlb.lookup(PageNum::new(1)), TlbOutcome::Miss);
/// tlb.insert(PageNum::new(1));
/// assert_eq!(tlb.lookup(PageNum::new(1)), TlbOutcome::L1Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    l1: TlbLevel,
    l2: TlbLevel,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with the given DTLB and STLB geometries.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (non-power-of-two set counts).
    pub fn new(dtlb: TlbGeometry, stlb: TlbGeometry) -> Self {
        Tlb { l1: TlbLevel::new(dtlb), l2: TlbLevel::new(stlb), stats: TlbStats::default() }
    }

    /// Looks up a translation. On an STLB hit the entry is promoted into
    /// the DTLB. On a miss the caller must perform a page walk and then
    /// call [`Tlb::insert`].
    #[inline]
    pub fn lookup(&mut self, pn: PageNum) -> TlbOutcome {
        let pn = pn.index();
        if self.l1.lookup(pn) {
            self.stats.l1_hits += 1;
            TlbOutcome::L1Hit
        } else if self.l2.lookup(pn) {
            self.stats.l2_hits += 1;
            self.l1.insert(pn);
            TlbOutcome::L2Hit
        } else {
            self.stats.misses += 1;
            TlbOutcome::Miss
        }
    }

    /// Installs a translation in both levels (after a page walk).
    pub fn insert(&mut self, pn: PageNum) {
        self.l1.insert(pn.index());
        self.l2.insert(pn.index());
    }

    /// Invalidates a single page (e.g. on unmap or migration).
    pub fn invalidate(&mut self, pn: PageNum) {
        self.l1.invalidate(pn.index());
        self.l2.invalidate(pn.index());
    }

    /// Flushes all entries.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }

    /// Pages currently cached in either level, ascending and deduplicated.
    ///
    /// Audit introspection only — never on the lookup fast path. The
    /// invariant auditor uses it to check every cached translation is
    /// backed by a resident page-table entry.
    pub fn cached_pages(&self) -> Vec<PageNum> {
        let mut pages: Vec<u64> = self
            .l1
            .tags
            .iter()
            .chain(self.l2.tags.iter())
            .copied()
            .filter(|&t| t != INVALID)
            .collect();
        pages.sort_unstable();
        pages.dedup();
        pages.into_iter().map(PageNum::new).collect()
    }

    /// Credits `n` additional DTLB hits without touching replacement
    /// state.
    ///
    /// Used by the sequential fast lane for repeat lookups of the page
    /// just translated: re-looking-up the MRU entry of a set only
    /// re-touches it (a no-op on the LRU ages) and bumps `l1_hits`, so
    /// the bulk credit is exactly equivalent to `n` repeat
    /// [`Tlb::lookup`] calls.
    #[inline]
    pub fn record_l1_hit_run(&mut self, n: u64) {
        self.stats.l1_hits += n;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets statistics (contents kept).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbGeometry { entries: 4, ways: 2 }, TlbGeometry { entries: 16, ways: 4 })
    }

    #[test]
    fn miss_insert_hit() {
        let mut t = tiny();
        assert!(t.lookup(PageNum::new(3)).is_miss());
        t.insert(PageNum::new(3));
        assert_eq!(t.lookup(PageNum::new(3)), TlbOutcome::L1Hit);
    }

    #[test]
    fn stlb_hit_promotes_to_dtlb() {
        let mut t = tiny();
        // Fill DTLB set 0 (2 ways) with pages 0 and 2 (set = pn % 2).
        for pn in [0u64, 2, 4] {
            t.insert(PageNum::new(pn));
        }
        // Page 0 was evicted from DTLB set 0 but remains in STLB.
        assert_eq!(t.lookup(PageNum::new(0)), TlbOutcome::L2Hit);
        // Promoted: next lookup hits DTLB.
        assert_eq!(t.lookup(PageNum::new(0)), TlbOutcome::L1Hit);
    }

    #[test]
    fn invalidate_removes_from_both_levels() {
        let mut t = tiny();
        t.insert(PageNum::new(7));
        t.invalidate(PageNum::new(7));
        assert!(t.lookup(PageNum::new(7)).is_miss());
    }

    #[test]
    fn flush_removes_everything() {
        let mut t = tiny();
        for pn in 0..8 {
            t.insert(PageNum::new(pn));
        }
        t.flush();
        for pn in 0..8 {
            assert!(t.lookup(PageNum::new(pn)).is_miss());
        }
    }

    #[test]
    fn bulk_l1_credit_matches_repeat_lookups() {
        let mut looped = tiny();
        looped.insert(PageNum::new(3));
        let mut bulk = looped.clone();
        for _ in 0..5 {
            assert_eq!(looped.lookup(PageNum::new(3)), TlbOutcome::L1Hit);
        }
        assert_eq!(bulk.lookup(PageNum::new(3)), TlbOutcome::L1Hit);
        bulk.record_l1_hit_run(4);
        assert_eq!(looped.stats(), bulk.stats());
        assert_eq!(looped.cached_pages(), bulk.cached_pages());
    }

    #[test]
    fn stats_track_outcomes() {
        let mut t = tiny();
        t.lookup(PageNum::new(1)); // miss
        t.insert(PageNum::new(1));
        t.lookup(PageNum::new(1)); // l1 hit
        let s = t.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.l1_hits, 1);
        assert_eq!(s.lookups(), 2);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
    }
}
