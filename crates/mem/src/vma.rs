//! Virtual memory areas (VMAs) and NUMA memory policies.

use crate::addr::{pages_for, PageNum, VirtAddr, PAGE_SIZE};
use crate::error::MemError;
use crate::tier::Tier;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Base of the simulated `mmap` arena.
///
/// Kept low so virtual page numbers stay dense, letting the page table use
/// a flat vector.
pub const MMAP_BASE: u64 = 0x1000_0000;

/// Identifier of a VMA. Splitting a VMA (via
/// [`set_policy_range`](VmaTable::set_policy_range)) produces new ids;
/// stable *object* identity across splits is the profiler's job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VmaId(pub u32);

/// NUMA memory policy of a VMA — which tier newly-faulted pages go to.
///
/// Mirrors the subset of Linux `mbind` policies the paper uses: the kernel
/// default (allocate on the fast node while it has space — paper Finding 3)
/// and hard binds used by the object-level static mapping (§7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MemPolicy {
    /// Kernel default: first-touch on DRAM while free, spilling to NVM
    /// (the OS model implements the spill/reclaim behavior).
    #[default]
    Default,
    /// `MPOL_BIND` to one tier: pages are always placed there.
    Bind(Tier),
    /// `MPOL_PREFERRED`: place on the tier if possible, else fall back to
    /// the other.
    Preferred(Tier),
    /// `MPOL_INTERLEAVE`: alternate tiers page by page, spreading
    /// bandwidth across both memories.
    Interleave,
}

/// One virtual memory area: a contiguous mapped range with one policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vma {
    /// Identifier.
    pub id: VmaId,
    /// First address (page aligned).
    pub base: VirtAddr,
    /// Length in bytes (page aligned).
    pub len: u64,
    /// NUMA policy for pages faulted inside this VMA.
    pub policy: MemPolicy,
    /// Allocation-site label (e.g. `"csr.neighbors"`); shared cheaply.
    pub label: Arc<str>,
}

impl Vma {
    /// One past the last address of the VMA.
    pub fn end(&self) -> VirtAddr {
        self.base + self.len
    }

    /// Returns `true` if `addr` lies inside this VMA.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Returns `true` if every address of `pn` lies inside this VMA.
    pub fn contains_page(&self, pn: PageNum) -> bool {
        pn >= self.base.page() && pn < self.end().page()
    }

    /// Number of pages spanned.
    pub fn pages(&self) -> u64 {
        pages_for(self.len)
    }

    /// Pages of this VMA in `[pn, pn + max)` beyond `pn` itself — the
    /// widest fault-around window a fault at `pn` may populate without
    /// leaving its mapping. Returns 0 when `pn` is outside the VMA or is
    /// its last page.
    pub fn fault_around_limit(&self, pn: PageNum, max: u64) -> u64 {
        if !self.contains_page(pn) {
            return 0;
        }
        (self.end().page().index() - pn.index() - 1).min(max)
    }
}

/// The set of VMAs of the simulated process, plus the `mmap` arena bump
/// allocator.
///
/// # Examples
///
/// ```
/// use tiersim_mem::{VmaTable, MemPolicy, Tier};
///
/// let mut t = VmaTable::new();
/// let a = t.map(10_000, MemPolicy::Default, "edges")?;
/// assert!(t.find(a).is_some());
/// t.set_policy_range(a, 4096, MemPolicy::Bind(Tier::Dram))?;
/// assert_eq!(t.find(a).unwrap().policy, MemPolicy::Bind(Tier::Dram));
/// assert_eq!(t.find(a + 4096).unwrap().policy, MemPolicy::Default);
/// # Ok::<(), tiersim_mem::MemError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct VmaTable {
    /// Keyed by base address.
    vmas: BTreeMap<u64, Vma>,
    next_addr: u64,
    next_id: u32,
}

impl VmaTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        VmaTable { vmas: BTreeMap::new(), next_addr: MMAP_BASE, next_id: 0 }
    }

    fn fresh_id(&mut self) -> VmaId {
        let id = VmaId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Maps a fresh region of at least `len` bytes (rounded up to pages)
    /// and returns its base address. A one-page guard gap separates
    /// regions so adjacent objects never share a page.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidLength`] for `len == 0`.
    pub fn map(
        &mut self,
        len: u64,
        policy: MemPolicy,
        label: impl Into<Arc<str>>,
    ) -> Result<VirtAddr, MemError> {
        if len == 0 {
            return Err(MemError::InvalidLength { len });
        }
        let len = pages_for(len).checked_mul(PAGE_SIZE).ok_or(MemError::InvalidLength { len })?;
        let base = VirtAddr::new(self.next_addr);
        self.next_addr = self
            .next_addr
            .checked_add(len + PAGE_SIZE) // guard page
            .ok_or(MemError::InvalidLength { len })?;
        let id = self.fresh_id();
        self.vmas.insert(base.raw(), Vma { id, base, len, policy, label: label.into() });
        Ok(base)
    }

    /// Unmaps the region whose *base* is `addr`, returning all VMAs that
    /// originated from it (a region may have been split by
    /// [`set_policy_range`]; all fragments within the original span are
    /// removed).
    ///
    /// [`set_policy_range`]: VmaTable::set_policy_range
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchMapping`] if `addr` is not the base of a
    /// mapped region.
    pub fn unmap(&mut self, addr: VirtAddr) -> Result<Vec<Vma>, MemError> {
        let first = self.vmas.remove(&addr.raw()).ok_or(MemError::NoSuchMapping { addr })?;
        // Fragments from a split share the contiguous span (guard gaps
        // separate distinct map() calls, so contiguity identifies them).
        let mut cursor = first.end();
        let mut removed = vec![first];
        while let Some(next) = self.vmas.get(&cursor.raw()).cloned() {
            self.vmas.remove(&cursor.raw());
            cursor = next.end();
            removed.push(next);
        }
        Ok(removed)
    }

    /// Finds the VMA containing `addr`.
    pub fn find(&self, addr: VirtAddr) -> Option<&Vma> {
        let (_, vma) = self.vmas.range(..=addr.raw()).next_back()?;
        vma.contains(addr).then_some(vma)
    }

    /// Applies `policy` to `[addr, addr + len)`, splitting VMAs at the
    /// boundaries exactly like Linux `mbind`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchMapping`] if any page of the range is
    /// unmapped, or [`MemError::InvalidLength`] if `len == 0` or the range
    /// is not page aligned.
    pub fn set_policy_range(
        &mut self,
        addr: VirtAddr,
        len: u64,
        policy: MemPolicy,
    ) -> Result<(), MemError> {
        if len == 0 {
            return Err(MemError::InvalidLength { len });
        }
        if !addr.is_page_aligned() || !len.is_multiple_of(PAGE_SIZE) {
            return Err(MemError::InvalidLength { len });
        }
        let end = addr.checked_add(len).ok_or(MemError::InvalidLength { len })?;
        // Verify full coverage first so we never apply a partial update.
        let mut cursor = addr;
        while cursor < end {
            let vma = self.find(cursor).ok_or(MemError::NoSuchMapping { addr: cursor })?;
            cursor = vma.end();
        }
        // Split and retag.
        let mut cursor = addr;
        while cursor < end {
            // Coverage was verified above, so the lookup cannot fail.
            let Some(vma) = self.find(cursor).cloned() else { break };
            self.vmas.remove(&vma.base.raw());
            // Left fragment keeps the old policy.
            if vma.base < cursor {
                let left_len = cursor - vma.base;
                let id = self.fresh_id();
                self.vmas.insert(
                    vma.base.raw(),
                    Vma {
                        id,
                        base: vma.base,
                        len: left_len,
                        policy: vma.policy,
                        label: Arc::clone(&vma.label),
                    },
                );
            }
            let mid_end = vma.end().min(end);
            let id = self.fresh_id();
            self.vmas.insert(
                cursor.raw(),
                Vma {
                    id,
                    base: cursor,
                    len: mid_end - cursor,
                    policy,
                    label: Arc::clone(&vma.label),
                },
            );
            // Right fragment keeps the old policy.
            if mid_end < vma.end() {
                let id = self.fresh_id();
                self.vmas.insert(
                    mid_end.raw(),
                    Vma {
                        id,
                        base: mid_end,
                        len: vma.end() - mid_end,
                        policy: vma.policy,
                        label: Arc::clone(&vma.label),
                    },
                );
            }
            cursor = mid_end;
        }
        Ok(())
    }

    /// Iterates VMAs in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Number of VMAs.
    pub fn len(&self) -> usize {
        self.vmas.len()
    }

    /// Returns `true` if no region is mapped.
    pub fn is_empty(&self) -> bool {
        self.vmas.is_empty()
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.vmas.values().map(|v| v.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_rounds_to_pages_and_separates_regions() {
        let mut t = VmaTable::new();
        let a = t.map(1, MemPolicy::Default, "a").unwrap();
        let b = t.map(PAGE_SIZE + 1, MemPolicy::Default, "b").unwrap();
        assert!(b.raw() >= a.raw() + 2 * PAGE_SIZE); // page + guard
        assert_eq!(t.find(b).unwrap().len, 2 * PAGE_SIZE);
    }

    #[test]
    fn find_respects_bounds() {
        let mut t = VmaTable::new();
        let a = t.map(PAGE_SIZE, MemPolicy::Default, "a").unwrap();
        assert!(t.find(a).is_some());
        assert!(t.find(a + PAGE_SIZE).is_none()); // guard page
        assert!(t.find(VirtAddr::new(0)).is_none());
    }

    #[test]
    fn fault_around_limit_clamps_to_the_vma() {
        let mut t = VmaTable::new();
        let a = t.map(4 * PAGE_SIZE, MemPolicy::Default, "a").unwrap();
        let vma = t.find(a).unwrap();
        assert!(vma.contains_page(a.page()));
        assert!(!vma.contains_page(vma.end().page()));
        // Fault at page 0 of 4: three more pages available, capped by max.
        assert_eq!(vma.fault_around_limit(a.page(), 16), 3);
        assert_eq!(vma.fault_around_limit(a.page(), 2), 2);
        // Last page: nothing ahead. Outside: nothing at all.
        assert_eq!(vma.fault_around_limit(vma.end().page(), 16), 0);
        let last = PageNum::new(vma.end().page().index() - 1);
        assert_eq!(vma.fault_around_limit(last, 16), 0);
    }

    #[test]
    fn zero_length_map_is_rejected() {
        let mut t = VmaTable::new();
        assert!(matches!(t.map(0, MemPolicy::Default, "z"), Err(MemError::InvalidLength { .. })));
    }

    #[test]
    fn unmap_removes_region() {
        let mut t = VmaTable::new();
        let a = t.map(3 * PAGE_SIZE, MemPolicy::Default, "a").unwrap();
        let removed = t.unmap(a).unwrap();
        assert_eq!(removed.len(), 1);
        assert!(t.find(a).is_none());
        assert!(matches!(t.unmap(a), Err(MemError::NoSuchMapping { .. })));
    }

    #[test]
    fn split_middle_produces_three_fragments() {
        let mut t = VmaTable::new();
        let a = t.map(4 * PAGE_SIZE, MemPolicy::Default, "a").unwrap();
        t.set_policy_range(a + PAGE_SIZE, PAGE_SIZE, MemPolicy::Bind(Tier::Nvm)).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.find(a).unwrap().policy, MemPolicy::Default);
        assert_eq!(t.find(a + PAGE_SIZE).unwrap().policy, MemPolicy::Bind(Tier::Nvm));
        assert_eq!(t.find(a + 2 * PAGE_SIZE).unwrap().policy, MemPolicy::Default);
        // Labels survive splitting.
        assert_eq!(&*t.find(a + PAGE_SIZE).unwrap().label, "a");
    }

    #[test]
    fn split_spanning_whole_vma_retags_in_place() {
        let mut t = VmaTable::new();
        let a = t.map(2 * PAGE_SIZE, MemPolicy::Default, "a").unwrap();
        t.set_policy_range(a, 2 * PAGE_SIZE, MemPolicy::Bind(Tier::Dram)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.find(a).unwrap().policy, MemPolicy::Bind(Tier::Dram));
    }

    #[test]
    fn unmap_after_split_removes_all_fragments() {
        let mut t = VmaTable::new();
        let a = t.map(4 * PAGE_SIZE, MemPolicy::Default, "a").unwrap();
        t.set_policy_range(a + PAGE_SIZE, PAGE_SIZE, MemPolicy::Bind(Tier::Nvm)).unwrap();
        let removed = t.unmap(a).unwrap();
        assert_eq!(removed.len(), 3);
        assert!(t.is_empty());
    }

    #[test]
    fn policy_range_over_unmapped_gap_fails_atomically() {
        let mut t = VmaTable::new();
        let a = t.map(PAGE_SIZE, MemPolicy::Default, "a").unwrap();
        let _b = t.map(PAGE_SIZE, MemPolicy::Default, "b").unwrap();
        // Range crosses the guard gap between a and b.
        let err = t.set_policy_range(a, 3 * PAGE_SIZE, MemPolicy::Bind(Tier::Nvm));
        assert!(matches!(err, Err(MemError::NoSuchMapping { .. })));
        // Nothing was changed.
        assert_eq!(t.find(a).unwrap().policy, MemPolicy::Default);
    }

    #[test]
    fn unaligned_policy_range_is_rejected() {
        let mut t = VmaTable::new();
        let a = t.map(2 * PAGE_SIZE, MemPolicy::Default, "a").unwrap();
        assert!(t.set_policy_range(a + 1, PAGE_SIZE, MemPolicy::Default).is_err());
        assert!(t.set_policy_range(a, PAGE_SIZE - 1, MemPolicy::Default).is_err());
    }

    #[test]
    fn mapped_bytes_accumulates() {
        let mut t = VmaTable::new();
        t.map(PAGE_SIZE, MemPolicy::Default, "a").unwrap();
        t.map(3 * PAGE_SIZE, MemPolicy::Default, "b").unwrap();
        assert_eq!(t.mapped_bytes(), 4 * PAGE_SIZE);
    }
}
