//! Property-based invariant tests for the memory-system simulator.

use proptest::prelude::*;
use tiersim_mem::{
    AccessError, AccessKind, CacheGeometry, MemConfig, MemPolicy, MemorySystem, SetAssocCache,
    Tier, VirtAddr, PAGE_SIZE,
};

/// Operations the fuzzer drives against the memory system.
#[derive(Debug, Clone)]
enum Op {
    Map(u8, bool),
    Unmap(u8),
    Migrate(u8, bool),
    Access(u8, bool),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<bool>()).prop_map(|(p, t)| Op::Map(p, t)),
        any::<u8>().prop_map(Op::Unmap),
        (any::<u8>(), any::<bool>()).prop_map(|(p, t)| Op::Migrate(p, t)),
        (any::<u8>(), any::<bool>()).prop_map(|(p, s)| Op::Access(p, s)),
    ]
}

fn tier_of(b: bool) -> Tier {
    if b {
        Tier::Dram
    } else {
        Tier::Nvm
    }
}

proptest! {
    /// Frame accounting equals page-table residency after any sequence of
    /// map/unmap/migrate/access operations, and capacities are never
    /// exceeded.
    #[test]
    fn frame_accounting_matches_residency(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut sys = MemorySystem::new(
            MemConfig::builder()
                .dram_capacity(32 * PAGE_SIZE)
                .nvm_capacity(48 * PAGE_SIZE)
                .build()
                .unwrap(),
        )
        .unwrap();
        let base = sys.mmap(256 * PAGE_SIZE, MemPolicy::Default, "fuzz").unwrap();
        let addr = |p: u8| base + p as u64 * PAGE_SIZE;

        for op in ops {
            match op {
                Op::Map(p, t) => { let _ = sys.map_page(addr(p).page(), tier_of(t), 0); }
                Op::Unmap(p) => { let _ = sys.unmap_page(addr(p).page()); }
                Op::Migrate(p, t) => { let _ = sys.migrate_page(addr(p).page(), tier_of(t)); }
                Op::Access(p, s) => {
                    let kind = if s { AccessKind::Store } else { AccessKind::Load };
                    match sys.access(addr(p), kind, 0) {
                        Ok(_) | Err(AccessError::Fault(_)) => {}
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
            }
            // Invariants hold after every step.
            for tier in Tier::ALL {
                let resident = sys
                    .resident_pages()
                    .filter(|(_, info)| info.tier == tier)
                    .count() as u64;
                prop_assert_eq!(sys.used_pages(tier), resident, "tier {} accounting", tier);
                prop_assert!(sys.used_pages(tier) <= sys.capacity_pages(tier));
            }
        }
    }

    /// A cache never reports more resident lines than its capacity, and a
    /// just-accessed line always hits immediately afterwards.
    #[test]
    fn cache_capacity_and_mru(lines in proptest::collection::vec(0u64..5000, 1..500)) {
        let geometry = CacheGeometry { capacity: 8 * 64 * 16, ways: 8, latency: 1 };
        let mut cache = SetAssocCache::new(geometry);
        let mut distinct = std::collections::HashSet::new();
        for &line in &lines {
            cache.access(line, false);
            distinct.insert(line);
            prop_assert!(cache.probe(line), "just-filled line must be present");
        }
        let resident = distinct.iter().filter(|&&l| cache.probe(l)).count() as u64;
        prop_assert!(resident <= geometry.capacity / 64);
    }

    /// Faulting in every page of a region through the Default policy and
    /// reading it back never corrupts residency, regardless of DRAM size.
    #[test]
    fn fault_in_and_read_back(dram_pages in 1u64..16, region_pages in 1u64..48) {
        let mut sys = MemorySystem::new(
            MemConfig::builder()
                .dram_capacity(dram_pages * PAGE_SIZE)
                .nvm_capacity(64 * PAGE_SIZE)
                .build()
                .unwrap(),
        )
        .unwrap();
        let base = sys.mmap(region_pages * PAGE_SIZE, MemPolicy::Default, "r").unwrap();
        for i in 0..region_pages {
            let a = base + i * PAGE_SIZE;
            match sys.access(a, AccessKind::Load, 0) {
                Err(AccessError::Fault(pf)) => {
                    // Service like a trivial OS: DRAM while free, else NVM.
                    let tier = if sys.free_pages(Tier::Dram) > 0 { Tier::Dram } else { Tier::Nvm };
                    sys.map_page(pf.page, tier, 0).unwrap();
                    sys.access(a, AccessKind::Load, 0).unwrap();
                }
                Ok(_) => {}
                Err(e) => prop_assert!(false, "unexpected {e}"),
            }
        }
        prop_assert_eq!(
            sys.used_pages(Tier::Dram) + sys.used_pages(Tier::Nvm),
            region_pages
        );
    }

    /// VMA policy splitting preserves total mapped bytes and full
    /// coverage of the original range.
    #[test]
    fn policy_splits_preserve_coverage(
        region_pages in 2u64..32,
        splits in proptest::collection::vec((0u64..32, 1u64..8), 0..8),
    ) {
        let mut sys = MemorySystem::new(MemConfig::default()).unwrap();
        let base = sys.mmap(region_pages * PAGE_SIZE, MemPolicy::Default, "r").unwrap();
        for (start, len) in splits {
            let start = start % region_pages;
            let len = len.min(region_pages - start);
            if len > 0 {
                sys.set_policy_range(
                    base + start * PAGE_SIZE,
                    len * PAGE_SIZE,
                    MemPolicy::Bind(Tier::Nvm),
                )
                .unwrap();
            }
        }
        // Every page still belongs to exactly one VMA.
        for i in 0..region_pages {
            let addr = base + i * PAGE_SIZE;
            prop_assert!(sys.find_vma(addr).is_some(), "page {i} uncovered");
        }
        let total: u64 = sys
            .vmas()
            .filter(|v| v.base >= base && v.base < base + region_pages * PAGE_SIZE)
            .map(|v| v.len)
            .sum();
        prop_assert_eq!(total, region_pages * PAGE_SIZE);
    }
}

proptest! {
    /// A TLB lookup immediately after an insert always hits, and
    /// invalidation always removes the translation, regardless of the
    /// preceding lookup/insert history.
    #[test]
    fn tlb_insert_then_hit(history in proptest::collection::vec(0u64..512, 0..300), probe in 0u64..512) {
        use tiersim_mem::{Tlb, TlbGeometry, PageNum};
        let mut tlb = Tlb::new(
            TlbGeometry { entries: 16, ways: 4 },
            TlbGeometry { entries: 64, ways: 8 },
        );
        for pn in history {
            tlb.lookup(PageNum::new(pn));
            tlb.insert(PageNum::new(pn));
        }
        tlb.insert(PageNum::new(probe));
        prop_assert!(!tlb.lookup(PageNum::new(probe)).is_miss());
        tlb.invalidate(PageNum::new(probe));
        prop_assert!(tlb.lookup(PageNum::new(probe)).is_miss());
    }

    /// The NVM device's buffer never makes latency depend on anything but
    /// the access stream: replaying a stream gives identical total cycles.
    #[test]
    fn nvm_latency_is_deterministic(stream in proptest::collection::vec(0u64..100_000, 1..200)) {
        use tiersim_mem::{NvmModel, NvmTimings};
        let t = NvmTimings {
            buffer_entries: 8, block_bytes: 256,
            read_hit: 330, read_miss: 930, write_hit: 420, write_miss: 1250,
        };
        let run = |s: &[u64]| {
            let mut n = NvmModel::new(t);
            s.iter().map(|&a| n.read(a * 64)).sum::<u64>()
        };
        prop_assert_eq!(run(&stream), run(&stream));
    }
}

/// Access outcomes report the tier the page actually lives on.
#[test]
fn outcome_tier_matches_placement() {
    let mut sys = MemorySystem::new(MemConfig::default()).unwrap();
    let a = sys.mmap(2 * PAGE_SIZE, MemPolicy::Default, "x").unwrap();
    sys.map_page(a.page(), Tier::Dram, 0).unwrap();
    sys.map_page((a + PAGE_SIZE).page(), Tier::Nvm, 0).unwrap();
    assert_eq!(sys.access(a, AccessKind::Load, 0).unwrap().tier, Tier::Dram);
    assert_eq!(sys.access(a + PAGE_SIZE, AccessKind::Load, 0).unwrap().tier, Tier::Nvm);
    let _ = VirtAddr::NULL;
}
