//! tiersim-audit: the simulation invariant auditor.
//!
//! tiersim's conclusions are only as good as its internal accounting:
//! a double-counted promotion or a leaked frame silently skews every
//! tiering figure derived from the run. The auditor cross-checks the
//! simulator's redundant state representations against each other and the
//! vmstat counters against conservation laws derived from the engine's
//! code paths (DESIGN.md §9 lists them next to the counters they
//! constrain). It runs from [`AutoNuma::tick`] every
//! [`OsConfig::audit_every_ticks`] ticks in debug builds, and on demand
//! via [`AutoNuma::audit`] in any build.

use crate::config::OsConfig;
use crate::counters::VmCounters;
use tiersim_mem::{MemorySystem, PageNum, Tier, HUGE_PAGE_PAGES};

/// What a violated invariant is about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditSubject {
    /// A vmstat counter (named as in [`VmCounters`]).
    Counter(&'static str),
    /// A specific page.
    Page(PageNum),
    /// A tier's aggregate accounting.
    Tier(Tier),
}

/// One invariant violation found by an audit pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Stable identifier of the violated invariant (e.g.
    /// `"migration-conservation"`).
    pub invariant: &'static str,
    /// The counter, page, or tier involved.
    pub subject: AuditSubject,
    /// Observed values, human-readable.
    pub detail: String,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {:?}: {}", self.invariant, self.subject, self.detail)
    }
}

/// The outcome of one audit pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// All violations found, in check order.
    pub violations: Vec<AuditViolation>,
    /// Resident pages walked.
    pub pages_walked: u64,
    /// Individual invariant checks performed.
    pub checks: u64,
}

impl AuditReport {
    /// `true` when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs every invariant check against the current memory-system state and
/// counter values. Read-only; safe at any point between engine calls.
pub fn run(mem: &MemorySystem, counters: &VmCounters, cfg: &OsConfig) -> AuditReport {
    let mut report = AuditReport::default();
    check_residency(mem, &mut report);
    check_tlb(mem, &mut report);
    check_vma_coverage(mem, &mut report);
    check_huge(mem, &mut report);
    check_counters(counters, cfg, &mut report);
    report
}

fn fail(report: &mut AuditReport, invariant: &'static str, subject: AuditSubject, detail: String) {
    report.violations.push(AuditViolation { invariant, subject, detail });
}

/// Frame ownership and tier capacity: the page-table walk, the page
/// table's incremental per-tier counters, and the frame allocators must
/// all agree, and used + free must equal capacity. Because the page table
/// maps each page to exactly one `PageInfo` (hence one tier), agreement of
/// all three representations is what "every mapped page owns exactly one
/// frame on exactly one tier" reduces to: a double-owned or leaked frame
/// shows up as a count mismatch on its tier.
fn check_residency(mem: &MemorySystem, report: &mut AuditReport) {
    let mut walked = [0u64; 2];
    for (_, info) in mem.resident_pages() {
        walked[info.tier.index()] += 1;
        report.pages_walked += 1;
    }
    for tier in Tier::ALL {
        let walk = walked[tier.index()];
        let frames = mem.used_pages(tier);
        let pt = mem.pt_resident_pages(tier);
        report.checks += 2;
        if walk != frames || walk != pt {
            fail(
                report,
                "frame-accounting",
                AuditSubject::Tier(tier),
                format!("page walk {walk}, frame allocator {frames}, page-table counter {pt}"),
            );
        }
        let (used, free, cap) = (frames, mem.free_pages(tier), mem.capacity_pages(tier));
        report.checks += 1;
        if used + free != cap {
            fail(
                report,
                "capacity-conservation",
                AuditSubject::Tier(tier),
                format!("used {used} + free {free} != capacity {cap}"),
            );
        }
    }
}

/// TLB coherence: a cached translation for a non-resident page would let
/// the simulated CPU keep accessing a page the OS already moved or freed.
fn check_tlb(mem: &MemorySystem, report: &mut AuditReport) {
    for pn in mem.tlb_cached_pages() {
        report.checks += 1;
        if mem.page(pn).is_none() {
            fail(
                report,
                "tlb-coherence",
                AuditSubject::Page(pn),
                "TLB caches a translation for a non-resident page".to_string(),
            );
        }
    }
}

/// Every resident page must be covered by a VMA: residency without a
/// mapping means `munmap` leaked the page's frame.
fn check_vma_coverage(mem: &MemorySystem, report: &mut AuditReport) {
    for (pn, _) in mem.resident_pages() {
        report.checks += 1;
        if mem.find_vma(pn.base()).is_none() {
            fail(
                report,
                "vma-coverage",
                AuditSubject::Page(pn),
                "resident page is outside every VMA".to_string(),
            );
        }
    }
}

/// Huge-mapping integrity: every page marked huge must belong to a
/// 2 MiB-aligned block whose 512 pages are all resident, all huge, and
/// all on the same tier — a collapsed block moves and splits as a unit,
/// so a partial or mixed-tier block means collapse/split bookkeeping
/// diverged from the page table.
fn check_huge(mem: &MemorySystem, report: &mut AuditReport) {
    let mut heads: Vec<PageNum> =
        mem.resident_pages().filter(|(_, info)| info.huge).map(|(pn, _)| pn.huge_head()).collect();
    heads.sort_unstable();
    heads.dedup();
    for head in heads {
        report.checks += 1;
        let mut tier = None;
        let mut problem = None;
        let mut pn = head;
        for _ in 0..HUGE_PAGE_PAGES {
            match mem.page(pn) {
                Some(info) if info.huge => {
                    if *tier.get_or_insert(info.tier) != info.tier {
                        problem = Some(format!("page {pn} is on a different tier than its head"));
                        break;
                    }
                }
                Some(_) => {
                    problem = Some(format!("page {pn} is resident but not huge inside the block"));
                    break;
                }
                None => {
                    problem = Some(format!("page {pn} is not resident inside the block"));
                    break;
                }
            }
            pn = pn.next();
        }
        if let Some(detail) = problem {
            fail(report, "huge-block-integrity", AuditSubject::Page(head), detail);
        }
    }
}

/// Conservation laws over the vmstat counters, each derived from the
/// engine's code paths (see DESIGN.md §9 for the per-counter table).
fn check_counters(c: &VmCounters, cfg: &OsConfig, report: &mut AuditReport) {
    let mut law = |name: &'static str, counter: &'static str, ok: bool, detail: String| {
        report.checks += 1;
        if !ok {
            fail(report, name, AuditSubject::Counter(counter), detail);
        }
    };
    // Every successful migration is exactly one promotion or one demotion.
    law(
        "migration-conservation",
        "pgmigrate_success",
        c.pgmigrate_success == c.pgpromote_success + c.pgdemote_total(),
        format!(
            "pgmigrate_success {} != pgpromote_success {} + pgdemote {}",
            c.pgmigrate_success,
            c.pgpromote_success,
            c.pgdemote_total()
        ),
    );
    // A page demoted-after-promotion was both promoted and demoted.
    law(
        "thrash-bound",
        "pgpromote_demoted",
        c.pgpromote_demoted <= c.pgpromote_success && c.pgpromote_demoted <= c.pgdemote_total(),
        format!(
            "pgpromote_demoted {} exceeds pgpromote_success {} or pgdemote {}",
            c.pgpromote_demoted,
            c.pgpromote_success,
            c.pgdemote_total()
        ),
    );
    // Promotions only happen while servicing a hint fault. A hint fault
    // on a collapsed block promotes up to 512 pages after one recorded
    // split, so each thp_split raises the bound by the 511 extra pages.
    law(
        "promotion-causality",
        "pgpromote_success",
        c.pgpromote_success <= c.numa_hint_faults + (HUGE_PAGE_PAGES - 1) * c.thp_split,
        format!(
            "pgpromote_success {} > numa_hint_faults {} + {} * thp_split {}",
            c.pgpromote_success,
            c.numa_hint_faults,
            HUGE_PAGE_PAGES - 1,
            c.thp_split
        ),
    );
    // The rate limiter only drops pages already counted as candidates.
    law(
        "rate-limit-bound",
        "promo_rate_limited",
        c.promo_rate_limited <= c.pgpromote_candidate,
        format!(
            "promo_rate_limited {} > pgpromote_candidate {}",
            c.promo_rate_limited, c.pgpromote_candidate
        ),
    );
    // Each hint fault is threshold-rejected or becomes a candidate, never
    // both (unconditionally promoted faults are neither).
    law(
        "hint-fault-partition",
        "pgpromote_candidate",
        c.promo_threshold_rejected + c.pgpromote_candidate <= c.numa_hint_faults,
        format!(
            "promo_threshold_rejected {} + pgpromote_candidate {} > numa_hint_faults {}",
            c.promo_threshold_rejected, c.pgpromote_candidate, c.numa_hint_faults
        ),
    );
    // A permanent migration failure is preceded by exactly
    // `migrate_max_retries` retries, so retries bound fails from below.
    law(
        "retry-accounting",
        "pgmigrate_retry",
        c.pgmigrate_retry >= u64::from(cfg.migrate_max_retries) * c.pgmigrate_fail,
        format!(
            "pgmigrate_retry {} < migrate_max_retries {} * pgmigrate_fail {}",
            c.pgmigrate_retry, cfg.migrate_max_retries, c.pgmigrate_fail
        ),
    );
    // With retries disabled no retry may ever be counted.
    law(
        "retry-disabled",
        "pgmigrate_retry",
        cfg.migrate_max_retries > 0 || c.pgmigrate_retry == 0,
        format!("pgmigrate_retry {} with migrate_max_retries 0", c.pgmigrate_retry),
    );
    // Reclaim can only drop page-cache pages that a file read filled.
    law(
        "page-cache-conservation",
        "page_cache_dropped",
        c.page_cache_dropped <= c.page_cache_filled,
        format!(
            "page_cache_dropped {} > page_cache_filled {}",
            c.page_cache_dropped, c.page_cache_filled
        ),
    );
    // Both no-space rejection sites live inside hint-fault servicing
    // (`on_access` and the promotion it triggers), so at most one
    // no-space rejection can be recorded per hint fault.
    law(
        "no-space-bound",
        "promo_no_space",
        c.promo_no_space <= c.numa_hint_faults,
        format!("promo_no_space {} > numa_hint_faults {}", c.promo_no_space, c.numa_hint_faults),
    );
    // kswapd_runs only counts runs that demoted or dropped at least one
    // page, so every counted run contributes to one of those counters.
    law(
        "kswapd-effectiveness",
        "kswapd_runs",
        c.kswapd_runs <= c.pgdemote_kswapd + c.page_cache_dropped,
        format!(
            "kswapd_runs {} > pgdemote_kswapd {} + page_cache_dropped {}",
            c.kswapd_runs, c.pgdemote_kswapd, c.page_cache_dropped
        ),
    );
    // A block must be collapsed before it can be split: every OS-recorded
    // split (promotion or demotion of a huge page) consumes one earlier
    // khugepaged collapse.
    law(
        "thp-conservation",
        "thp_split",
        c.thp_split <= c.thp_collapse_alloc,
        format!("thp_split {} > thp_collapse_alloc {}", c.thp_split, c.thp_collapse_alloc),
    );
    // Every serviced fault and every fault-around extra placed exactly one
    // page, so the allocation counters bound the fault counters.
    law(
        "alloc-covers-faults",
        "pgfault",
        c.pgfault + c.pgfault_around <= c.pgalloc_dram + c.pgalloc_nvm,
        format!(
            "pgfault {} + pgfault_around {} > pgalloc_dram {} + pgalloc_nvm {}",
            c.pgfault, c.pgfault_around, c.pgalloc_dram, c.pgalloc_nvm
        ),
    );
    // Fault-around maps at most `fault_around_pages - 1` extras per
    // serviced fault, and none at all when the window is a single page.
    law(
        "fault-around-bound",
        "pgfault_around",
        if cfg.fault_around_pages <= 1 {
            c.pgfault_around == 0
        } else {
            c.pgfault_around <= (cfg.fault_around_pages - 1) * c.pgfault
        },
        format!(
            "pgfault_around {} exceeds (fault_around_pages {} - 1) * pgfault {}",
            c.pgfault_around, cfg.fault_around_pages, c.pgfault
        ),
    );
    // Every page-cache fill is an allocation (the kernel counts page-cache
    // pages in pgalloc too), so the allocation counters bound the fills.
    law(
        "alloc-covers-page-cache",
        "page_cache_filled",
        c.pgalloc_dram + c.pgalloc_nvm >= c.page_cache_filled,
        format!(
            "pgalloc_dram {} + pgalloc_nvm {} < page_cache_filled {}",
            c.pgalloc_dram, c.pgalloc_nvm, c.page_cache_filled
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_counters() -> VmCounters {
        VmCounters {
            numa_hint_faults: 10,
            pgpromote_candidate: 4,
            pgpromote_success: 5,
            pgdemote_kswapd: 2,
            pgdemote_direct: 1,
            pgmigrate_success: 8,
            pgpromote_demoted: 1,
            promo_threshold_rejected: 3,
            promo_rate_limited: 1,
            promo_no_space: 1,
            pgmigrate_fail: 1,
            pgmigrate_retry: 3,
            pgalloc_dram: 9,
            pgalloc_nvm: 3,
            page_cache_filled: 6,
            page_cache_dropped: 2,
            kswapd_runs: 2,
            pgfault: 7,
            pgfault_around: 0,
            thp_collapse_alloc: 2,
            thp_split: 1,
        }
    }

    fn counter_violations(c: &VmCounters) -> Vec<&'static str> {
        let mut report = AuditReport::default();
        check_counters(c, &OsConfig::default(), &mut report);
        report.violations.iter().map(|v| v.invariant).collect()
    }

    #[test]
    fn consistent_counters_pass_every_law() {
        assert_eq!(counter_violations(&clean_counters()), Vec::<&str>::new());
    }

    #[test]
    fn migration_conservation_catches_skew() {
        let mut c = clean_counters();
        c.pgpromote_success += 1; // promotion counted without a migration
        assert!(counter_violations(&c).contains(&"migration-conservation"));
    }

    #[test]
    fn thrash_bound_catches_excess_demoted() {
        let mut c = clean_counters();
        c.pgpromote_demoted = c.pgdemote_total() + 1;
        assert!(counter_violations(&c).contains(&"thrash-bound"));
    }

    #[test]
    fn hint_fault_partition_catches_double_count() {
        let mut c = clean_counters();
        c.promo_threshold_rejected = 20;
        assert!(counter_violations(&c).contains(&"hint-fault-partition"));
    }

    #[test]
    fn retry_accounting_requires_retries_per_fail() {
        let mut c = clean_counters();
        c.pgmigrate_retry = 0; // fails recorded without their retries
        assert!(counter_violations(&c).contains(&"retry-accounting"));
    }

    #[test]
    fn page_cache_conservation_catches_phantom_drop() {
        let mut c = clean_counters();
        c.page_cache_dropped = c.page_cache_filled + 1;
        assert!(counter_violations(&c).contains(&"page-cache-conservation"));
    }

    #[test]
    fn no_space_bound_catches_rejections_without_faults() {
        let mut c = clean_counters();
        c.promo_no_space = c.numa_hint_faults + 1;
        assert!(counter_violations(&c).contains(&"no-space-bound"));
    }

    #[test]
    fn kswapd_effectiveness_catches_idle_runs() {
        let mut c = clean_counters();
        c.kswapd_runs = c.pgdemote_kswapd + c.page_cache_dropped + 1;
        assert!(counter_violations(&c).contains(&"kswapd-effectiveness"));
    }

    #[test]
    fn thp_conservation_catches_phantom_split() {
        let mut c = clean_counters();
        c.thp_split = c.thp_collapse_alloc + 1;
        assert!(counter_violations(&c).contains(&"thp-conservation"));
    }

    #[test]
    fn alloc_covers_faults_catches_unplaced_fault() {
        let mut c = clean_counters();
        c.pgfault = c.pgalloc_dram + c.pgalloc_nvm + 1;
        assert!(counter_violations(&c).contains(&"alloc-covers-faults"));
    }

    #[test]
    fn fault_around_bound_catches_extras_with_window_disabled() {
        let mut c = clean_counters();
        // The default config's window is one page: no extras allowed.
        c.pgfault_around = 1;
        c.pgalloc_dram += 1; // keep alloc-covers-faults satisfied
        assert!(counter_violations(&c).contains(&"fault-around-bound"));
    }

    #[test]
    fn fault_around_bound_scales_with_window() {
        let cfg = OsConfig { fault_around_pages: 4, ..Default::default() };
        let mut c = clean_counters();
        c.pgfault_around = 3 * c.pgfault; // exactly at the bound
        c.pgalloc_dram += c.pgfault_around;
        let mut report = AuditReport::default();
        check_counters(&c, &cfg, &mut report);
        assert!(report.is_clean(), "{:?}", report.violations);
        c.pgfault_around += 1;
        c.pgalloc_dram += 1;
        let mut report = AuditReport::default();
        check_counters(&c, &cfg, &mut report);
        assert!(report.violations.iter().any(|v| v.invariant == "fault-around-bound"));
    }

    #[test]
    fn promotion_causality_accounts_for_split_blocks() {
        let mut c = clean_counters();
        // One recorded split (fixture) raises the bound by 511 pages.
        c.pgpromote_success = c.numa_hint_faults + 511;
        c.pgmigrate_success = c.pgpromote_success + c.pgdemote_total();
        assert!(!counter_violations(&c).contains(&"promotion-causality"));
        c.pgpromote_success += 1;
        c.pgmigrate_success += 1;
        assert!(counter_violations(&c).contains(&"promotion-causality"));
    }

    #[test]
    fn huge_block_integrity_catches_mixed_tier_block() {
        use tiersim_mem::{MemConfig, MemPolicy, PAGE_SIZE};
        let mut m = MemorySystem::new(
            MemConfig::builder()
                .dram_capacity(1024 * PAGE_SIZE)
                .nvm_capacity(1024 * PAGE_SIZE)
                .build()
                .unwrap(),
        )
        .unwrap();
        let a = m.mmap(HUGE_PAGE_PAGES * PAGE_SIZE, MemPolicy::Default, "big").unwrap();
        for i in 0..HUGE_PAGE_PAGES {
            m.map_page((a + i * PAGE_SIZE).page(), Tier::Dram, 0).unwrap();
        }
        assert!(m.collapse_huge(a.page()).is_some());
        let clean = run(&m, &VmCounters::default(), &OsConfig::default());
        assert!(clean.is_clean(), "{:?}", clean.violations);
        // Planted bug: flip one member's tier snapshot so the collapsed
        // block is no longer uniform — exactly the corruption
        // huge-block-integrity exists to catch (frame accounting trips on
        // the same corruption, which is fine: both name it).
        m.page_update((a + PAGE_SIZE).page(), |p| p.tier = Tier::Nvm).unwrap();
        let report = run(&m, &VmCounters::default(), &OsConfig::default());
        assert!(
            report.violations.iter().any(|v| v.invariant == "huge-block-integrity"),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn alloc_covers_page_cache_catches_uncounted_fills() {
        let mut c = clean_counters();
        c.page_cache_filled = c.pgalloc_dram + c.pgalloc_nvm + 1;
        // Keep the drop law satisfied so only the alloc law fires.
        c.page_cache_dropped = 0;
        assert!(counter_violations(&c).contains(&"alloc-covers-page-cache"));
    }
}
