//! Configuration of the OS memory-management model.

use crate::error::OsError;

/// Configuration of the simulated Linux memory manager (AutoNUMA tiering
/// v0.8 semantics).
///
/// Defaults correspond to the kernel defaults of the paper's testbed
/// (Linux 5.15 + tiering-0.8, 2.6 GHz), expressed in cycles. Because the
/// simulated workloads are thousands of times smaller than the paper's
/// 16-hour runs, use [`OsConfig::with_time_dilation`] to shrink all OS time
/// constants proportionally so a run still spans many scan/reclaim cycles.
///
/// # Examples
///
/// ```
/// use tiersim_os::OsConfig;
///
/// let cfg = OsConfig::builder()
///     .autonuma_enabled(true)
///     .build()?
///     .with_time_dilation(100.0);
/// assert!(cfg.scan_period_cycles < OsConfig::default().scan_period_cycles);
/// # Ok::<(), tiersim_os::OsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OsConfig {
    /// Master switch for AutoNUMA tiering (scanner, promotion, demotion).
    /// When off, pages stay wherever first touch put them and all
    /// migration counters remain zero — the paper's §6.6 sanity check.
    pub autonuma_enabled: bool,

    // ----- NUMA-balancing scanner ------------------------------------
    /// Cycles between scanner wakeups (kernel:
    /// `numa_balancing_scan_period_min`, default 1 s).
    pub scan_period_cycles: u64,
    /// Pages hint-marked per wakeup (kernel: `numa_balancing_scan_size`,
    /// default 256 MB = 65536 pages).
    pub scan_size_pages: u64,
    /// Adaptive scan period (kernel behavior): when a scan period ends
    /// with no hint faults the period backs off toward
    /// `scan_period_max_cycles`; fault activity pulls it back toward
    /// `scan_period_cycles`. Off by default to keep experiment
    /// calibration at the kernel's minimum period.
    pub scan_period_adaptive: bool,
    /// Upper bound for the adaptive scan period (kernel:
    /// `numa_balancing_scan_period_max`, default 60 s).
    pub scan_period_max_cycles: u64,

    // ----- promotion ---------------------------------------------------
    /// Initial hint-fault-latency threshold below which an NVM page is a
    /// promotion candidate (kernel: `numa_balancing_hot_threshold_ms`,
    /// default 1 s).
    pub hot_threshold_cycles: u64,
    /// Lower clamp for the dynamic threshold.
    pub hot_threshold_min_cycles: u64,
    /// Upper clamp for the dynamic threshold.
    pub hot_threshold_max_cycles: u64,
    /// Cycles between dynamic-threshold adjustments.
    pub threshold_adjust_period_cycles: u64,
    /// Promotion rate limit in bytes per second of simulated time (kernel:
    /// `numa_balancing_rate_limit_mbps`).
    pub promo_rate_limit_bytes_per_sec: u64,

    // ----- reclaim / demotion -------------------------------------------
    /// `min` watermark as a fraction of DRAM capacity: below this,
    /// allocations fall back to NVM and direct reclaim may run.
    pub wmark_min_frac: f64,
    /// `low` watermark: kswapd wakes below this.
    pub wmark_low_frac: f64,
    /// `high` watermark: kswapd demotes until free DRAM exceeds this.
    pub wmark_high_frac: f64,
    /// Maximum pages demoted per kswapd wakeup. Real kswapd migration
    /// bandwidth is finite; keeping this small lets allocation bursts
    /// overflow to NVM as on the paper's testbed (Finding 3).
    pub kswapd_batch_pages: u64,
    /// Recency quantum for reclaim victim selection: the kernel only
    /// learns about references at page-table scan granularity, so reclaim
    /// cannot distinguish recency finer than this (a coarse, epoch-based
    /// LRU rather than an exact one).
    pub lru_quantum_cycles: u64,
    /// Cycles between kswapd opportunities (checked at every OS tick).
    pub kswapd_period_cycles: u64,

    // ----- page cache ----------------------------------------------------
    /// Whether file reads populate the page cache (paper Finding 5).
    pub page_cache_enabled: bool,
    /// Disk read cost per 4 KiB page, in cycles (≈ 2 GB/s NVMe).
    pub disk_read_cycles_per_page: u64,

    // ----- huge pages (THP) and bulk population ------------------------
    /// Master switch for transparent huge pages: when on, a periodic
    /// khugepaged pass collapses 512-page-aligned, fully resident,
    /// uniform-tier blocks into 2 MiB mappings that share one TLB entry
    /// and one page walk.
    pub thp_enabled: bool,
    /// Cycles between khugepaged wakeups (kernel:
    /// `khugepaged/scan_sleep_millisecs`, default 10 s).
    pub khugepaged_period_cycles: u64,
    /// Maximum 2 MiB blocks khugepaged collapses per wakeup (its
    /// `pages_to_scan` analogue, expressed in blocks).
    pub thp_collapse_scan_blocks: u64,
    /// Pages mapped per first-touch fault: `1` services only the faulting
    /// page (fault-around off); `n > 1` additionally bulk-maps up to
    /// `n - 1` following non-resident pages of the same VMA (the kernel's
    /// fault-around / `MAP_POPULATE`), re-enabling the sequential interval
    /// lane on demand-paged streams.
    pub fault_around_pages: u64,

    // ----- fault costs ----------------------------------------------------
    /// Kernel overhead of servicing a hint page fault, charged to the
    /// faulting thread.
    pub hint_fault_cost_cycles: u64,
    /// Kernel overhead of a first-touch (minor) fault.
    pub minor_fault_cost_cycles: u64,
    /// Kernel overhead per page migration, on top of the device copy.
    pub migration_overhead_cycles: u64,

    // ----- migration retry (fault tolerance) ---------------------------
    /// Maximum extra attempts after a transient (EBUSY-style) migration
    /// failure before the page is given up on (`pgmigrate_fail`) and
    /// requeued. Mirrors the bounded retry loop in the kernel's
    /// `migrate_pages()`.
    pub migrate_max_retries: u32,
    /// Simulated cycles of backoff charged before each migration retry
    /// (the kernel's cond_resched/lock-retry delay).
    pub migrate_retry_backoff_cycles: u64,

    /// CPU frequency used to convert the rate limit, must match the memory
    /// system's frequency.
    pub freq_hz: u64,

    // ----- invariant auditing -------------------------------------------
    /// Run the tiersim-audit invariant checks every N calls to
    /// [`AutoNuma::tick`](crate::AutoNuma::tick) (`0` disables the
    /// checkpoints). Checkpoints only fire in debug builds
    /// (`debug_assertions`); release builds never pay for the walk. An
    /// on-demand [`AutoNuma::audit`](crate::AutoNuma::audit) works in any
    /// build regardless of this knob.
    pub audit_every_ticks: u64,
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig::default_for_freq(2_600_000_000)
    }
}

impl OsConfig {
    /// The kernel-default time constants expressed for a machine running
    /// at `hz` cycles per second (the plain [`Default`] is this at the
    /// paper testbed's 2.6 GHz).
    ///
    /// Every derived period and threshold is clamped to at least one
    /// cycle: the millisecond-scale derivations divide `hz`, and below
    /// `hz = 1000` the old unclamped `hz / 1000` truncated
    /// `hot_threshold_min_cycles` to 0 — a floor the dynamic controller
    /// could then reach, where `is_hot` (strictly below the threshold)
    /// can never fire again and promotion silently dies.
    #[must_use]
    pub fn default_for_freq(hz: u64) -> Self {
        OsConfig {
            autonuma_enabled: true,
            scan_period_cycles: hz.max(1), // 1 s
            scan_size_pages: 65_536,       // 256 MB
            scan_period_adaptive: false,
            scan_period_max_cycles: hz.saturating_mul(60).max(1), // 60 s
            hot_threshold_cycles: hz.max(1),                      // 1 s
            hot_threshold_min_cycles: (hz / 1000).max(1),         // 1 ms
            hot_threshold_max_cycles: hz.saturating_mul(10).max(1), // 10 s
            threshold_adjust_period_cycles: hz.max(1),            // 1 s
            promo_rate_limit_bytes_per_sec: 65_536 << 20,         // 65536 MB/s
            wmark_min_frac: 0.02,
            wmark_low_frac: 0.04,
            wmark_high_frac: 0.08,
            kswapd_batch_pages: 4096,
            lru_quantum_cycles: hz.max(1), // 1 s (scan period)
            kswapd_period_cycles: (hz / 100).max(1), // 10 ms
            thp_enabled: false,
            khugepaged_period_cycles: hz.saturating_mul(10).max(1), // 10 s
            thp_collapse_scan_blocks: 8,
            fault_around_pages: 1, // fault-around off
            page_cache_enabled: true,
            disk_read_cycles_per_page: 52_000, // ≈ 20 µs / page (parse-bound load)
            hint_fault_cost_cycles: 2_000,
            minor_fault_cost_cycles: 1_200,
            migration_overhead_cycles: 5_000,
            migrate_max_retries: 3, // kernel migrate_pages() tries up to 3 passes
            migrate_retry_backoff_cycles: 2_600, // ~1 µs between passes
            freq_hz: hz,
            audit_every_ticks: 0,
        }
    }

    /// Starts building a configuration from the defaults.
    pub fn builder() -> OsConfigBuilder {
        OsConfigBuilder { cfg: OsConfig::default() }
    }

    /// Returns a copy with every OS *time constant* divided by `factor`,
    /// so scaled-down workloads experience the same number of scan,
    /// threshold-adjust and kswapd cycles per run as the paper's full-size
    /// runs. Costs (fault overheads, disk latency) are left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    #[must_use]
    pub fn with_time_dilation(mut self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "dilation must be positive");
        let scale = |v: u64| ((v as f64 / factor) as u64).max(1);
        self.scan_period_cycles = scale(self.scan_period_cycles);
        self.scan_period_max_cycles = scale(self.scan_period_max_cycles);
        self.hot_threshold_cycles = scale(self.hot_threshold_cycles);
        self.hot_threshold_min_cycles = scale(self.hot_threshold_min_cycles);
        self.hot_threshold_max_cycles = scale(self.hot_threshold_max_cycles);
        self.threshold_adjust_period_cycles = scale(self.threshold_adjust_period_cycles);
        self.kswapd_period_cycles = scale(self.kswapd_period_cycles);
        self.lru_quantum_cycles = scale(self.lru_quantum_cycles);
        self.khugepaged_period_cycles = scale(self.khugepaged_period_cycles);
        // The rate limit stays untouched: it is bytes per *simulated*
        // second, a bandwidth relative to the (undilated) application,
        // exactly like kswapd's demotion bandwidth. Multiplying it by the
        // dilation factor inflated the limiter's budget thousands of
        // times over any scaled workload's promotion demand, so the knob
        // could never bind and the threshold controller — which steers
        // candidate volume toward this limit — saw a bottomless budget
        // and pinned itself at `hot_threshold_max_cycles`. Both control
        // loops were degenerate under dilation.
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), OsError> {
        if !(0.0..=1.0).contains(&self.wmark_min_frac)
            || !(0.0..=1.0).contains(&self.wmark_low_frac)
            || !(0.0..=1.0).contains(&self.wmark_high_frac)
            || self.wmark_min_frac > self.wmark_low_frac
            || self.wmark_low_frac > self.wmark_high_frac
        {
            return Err(OsError::InvalidConfig {
                what: "watermarks",
                got: format!(
                    "min {} / low {} / high {} (need 0 <= min <= low <= high <= 1)",
                    self.wmark_min_frac, self.wmark_low_frac, self.wmark_high_frac
                ),
            });
        }
        if self.scan_period_cycles == 0 || self.scan_size_pages == 0 {
            return Err(OsError::InvalidConfig {
                what: "scanner",
                got: format!(
                    "period {} cycles, size {} pages (both must be nonzero)",
                    self.scan_period_cycles, self.scan_size_pages
                ),
            });
        }
        if self.scan_period_max_cycles < self.scan_period_cycles {
            return Err(OsError::InvalidConfig {
                what: "scan period max",
                got: format!(
                    "{} < minimum period {}",
                    self.scan_period_max_cycles, self.scan_period_cycles
                ),
            });
        }
        // Zero-valued threshold knobs are degenerate, not strict: a zero
        // minimum lets the dynamic controller reach threshold 0, where
        // `is_hot` (latency strictly below the threshold) can never fire
        // and promotion silently dies; a zero adjust period divides the
        // control interval away. Reject them at build time, naming the
        // offending value.
        let threshold_knobs = [
            ("hot threshold", self.hot_threshold_cycles),
            ("hot threshold min clamp", self.hot_threshold_min_cycles),
            ("threshold adjust period", self.threshold_adjust_period_cycles),
        ];
        for (what, v) in threshold_knobs {
            if v == 0 {
                return Err(OsError::InvalidConfig {
                    what,
                    got: format!(
                        "{v} cycles (must be >= 1: at threshold 0 no latency is \
                                  strictly below it, so no page can ever be hot)"
                    ),
                });
            }
        }
        if self.hot_threshold_min_cycles > self.hot_threshold_max_cycles {
            return Err(OsError::InvalidConfig {
                what: "threshold clamps",
                got: format!(
                    "min {} > max {}",
                    self.hot_threshold_min_cycles, self.hot_threshold_max_cycles
                ),
            });
        }
        // The token bucket's burst capacity is one second of rate, so a
        // page-sized promotion can never succeed below one page per
        // second: every promotion would be silently denied forever.
        if self.promo_rate_limit_bytes_per_sec < tiersim_mem::PAGE_SIZE {
            return Err(OsError::InvalidConfig {
                what: "promotion rate limit",
                got: format!(
                    "{} B/s (burst capacity below one page, {} B: every promotion would stall)",
                    self.promo_rate_limit_bytes_per_sec,
                    tiersim_mem::PAGE_SIZE
                ),
            });
        }
        if self.freq_hz == 0 {
            return Err(OsError::InvalidConfig { what: "frequency", got: "0 Hz".to_string() });
        }
        if self.khugepaged_period_cycles == 0 || self.thp_collapse_scan_blocks == 0 {
            return Err(OsError::InvalidConfig {
                what: "khugepaged",
                got: format!(
                    "period {} cycles, scan {} blocks (both must be nonzero)",
                    self.khugepaged_period_cycles, self.thp_collapse_scan_blocks
                ),
            });
        }
        if self.fault_around_pages == 0 {
            return Err(OsError::InvalidConfig {
                what: "fault-around window",
                got: "0 pages (a fault always maps at least the faulting page; use 1 to disable \
                      fault-around)"
                    .to_string(),
            });
        }
        Ok(())
    }
}

/// Builder for [`OsConfig`].
#[derive(Debug, Clone)]
pub struct OsConfigBuilder {
    cfg: OsConfig,
}

impl OsConfigBuilder {
    /// Enables or disables AutoNUMA tiering.
    pub fn autonuma_enabled(mut self, enabled: bool) -> Self {
        self.cfg.autonuma_enabled = enabled;
        self
    }

    /// Sets the scanner period in cycles.
    pub fn scan_period_cycles(mut self, cycles: u64) -> Self {
        self.cfg.scan_period_cycles = cycles;
        self
    }

    /// Sets the pages marked per scanner wakeup.
    pub fn scan_size_pages(mut self, pages: u64) -> Self {
        self.cfg.scan_size_pages = pages;
        self
    }

    /// Sets the initial hot threshold in cycles.
    pub fn hot_threshold_cycles(mut self, cycles: u64) -> Self {
        self.cfg.hot_threshold_cycles = cycles;
        self
    }

    /// Sets the dynamic threshold's clamp range `[min, max]` in cycles.
    pub fn hot_threshold_clamps(mut self, min_cycles: u64, max_cycles: u64) -> Self {
        self.cfg.hot_threshold_min_cycles = min_cycles;
        self.cfg.hot_threshold_max_cycles = max_cycles;
        self
    }

    /// Sets the period between dynamic-threshold adjustments in cycles.
    pub fn threshold_adjust_period_cycles(mut self, cycles: u64) -> Self {
        self.cfg.threshold_adjust_period_cycles = cycles;
        self
    }

    /// Sets the promotion rate limit in bytes per simulated second.
    pub fn promo_rate_limit_bytes_per_sec(mut self, bytes: u64) -> Self {
        self.cfg.promo_rate_limit_bytes_per_sec = bytes;
        self
    }

    /// Sets the DRAM watermark fractions `(min, low, high)`.
    pub fn watermarks(mut self, min: f64, low: f64, high: f64) -> Self {
        self.cfg.wmark_min_frac = min;
        self.cfg.wmark_low_frac = low;
        self.cfg.wmark_high_frac = high;
        self
    }

    /// Enables or disables the page cache.
    pub fn page_cache_enabled(mut self, enabled: bool) -> Self {
        self.cfg.page_cache_enabled = enabled;
        self
    }

    /// Sets the kswapd demotion batch size in pages.
    pub fn kswapd_batch_pages(mut self, pages: u64) -> Self {
        self.cfg.kswapd_batch_pages = pages;
        self
    }

    /// Sets the bounded migration-retry policy: `retries` extra attempts
    /// after a transient failure, each preceded by `backoff_cycles` of
    /// simulated backoff.
    pub fn migrate_retry(mut self, retries: u32, backoff_cycles: u64) -> Self {
        self.cfg.migrate_max_retries = retries;
        self.cfg.migrate_retry_backoff_cycles = backoff_cycles;
        self
    }

    /// Enables or disables transparent huge pages (khugepaged collapse).
    pub fn thp_enabled(mut self, enabled: bool) -> Self {
        self.cfg.thp_enabled = enabled;
        self
    }

    /// Sets the khugepaged wakeup period in cycles.
    pub fn khugepaged_period_cycles(mut self, cycles: u64) -> Self {
        self.cfg.khugepaged_period_cycles = cycles;
        self
    }

    /// Sets the pages mapped per first-touch fault (`1` disables
    /// fault-around; larger values bulk-map up to `n - 1` extra pages).
    pub fn fault_around_pages(mut self, pages: u64) -> Self {
        self.cfg.fault_around_pages = pages;
        self
    }

    /// Runs the tiersim-audit invariant checks every `ticks` engine ticks
    /// in debug builds (`0` disables the checkpoints).
    pub fn audit_every_ticks(mut self, ticks: u64) -> Self {
        self.cfg.audit_every_ticks = ticks;
        self
    }

    /// Finishes the builder, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::InvalidConfig`] on inconsistent parameters.
    pub fn build(self) -> Result<OsConfig, OsError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        OsConfig::default().validate().unwrap();
    }

    #[test]
    fn dilation_shrinks_periods_and_preserves_rate() {
        let base = OsConfig::default();
        let d = base.clone().with_time_dilation(100.0);
        assert_eq!(d.scan_period_cycles, base.scan_period_cycles / 100);
        assert_eq!(d.khugepaged_period_cycles, base.khugepaged_period_cycles / 100);
        // Costs untouched.
        assert_eq!(d.hint_fault_cost_cycles, base.hint_fault_cost_cycles);
        // Regression: scaling the rate limit *up* by the dilation factor
        // handed the limiter (and the threshold controller comparing
        // candidate volume against it) a budget thousands of times above
        // any scaled workload's promotion demand — the knob could never
        // bind. Bandwidth relative to the undilated app must not change.
        assert_eq!(d.promo_rate_limit_bytes_per_sec, base.promo_rate_limit_bytes_per_sec);
    }

    #[test]
    fn dilation_never_reaches_zero() {
        let d = OsConfig::default().with_time_dilation(1e18);
        assert!(d.scan_period_cycles >= 1);
        assert!(d.hot_threshold_min_cycles >= 1);
        assert!(d.threshold_adjust_period_cycles >= 1);
    }

    #[test]
    fn extreme_dilation_factors_keep_rate_workable() {
        // The rate limit is dilation-invariant in both directions: an
        // extreme factor must never scale a valid rate below one page per
        // second (where every promotion would stall forever).
        for factor in [1e-18, 1e18] {
            let d = OsConfig::default().with_time_dilation(factor);
            assert_eq!(
                d.promo_rate_limit_bytes_per_sec,
                OsConfig::default().promo_rate_limit_bytes_per_sec
            );
            d.validate().unwrap();
        }
    }

    #[test]
    fn builder_rejects_zero_threshold_knobs() {
        // Regression: threshold 0 means `is_hot` (strictly below) can
        // never fire — promotion silently dies instead of erroring.
        let err = OsConfig::builder().hot_threshold_cycles(0).build().unwrap_err();
        assert!(matches!(err, OsError::InvalidConfig { what: "hot threshold", .. }));
        assert!(err.to_string().contains("0 cycles"), "error carries the value: {err}");

        let err = OsConfig::builder().hot_threshold_clamps(0, 1000).build().unwrap_err();
        assert!(matches!(err, OsError::InvalidConfig { what: "hot threshold min clamp", .. }));

        let err = OsConfig::builder().threshold_adjust_period_cycles(0).build().unwrap_err();
        assert!(matches!(err, OsError::InvalidConfig { what: "threshold adjust period", .. }));
    }

    #[test]
    fn builder_rejects_inverted_threshold_clamps() {
        let err = OsConfig::builder().hot_threshold_clamps(100, 10).build().unwrap_err();
        assert!(matches!(err, OsError::InvalidConfig { what: "threshold clamps", .. }));
        OsConfig::builder().hot_threshold_clamps(10, 100).build().unwrap();
    }

    #[test]
    fn low_frequency_defaults_stay_nonzero() {
        // Regression: `hz / 1000` truncated `hot_threshold_min_cycles` to
        // 0 for every hz below 1000, handing the dynamic controller a
        // floor at which no page can ever be hot. All derived constants
        // must clamp to >= 1 and the result must validate.
        for hz in 1..1000u64 {
            let cfg = OsConfig::default_for_freq(hz);
            assert!(cfg.hot_threshold_min_cycles >= 1, "min clamp truncated at hz={hz}");
            assert!(cfg.scan_period_cycles >= 1, "scan period truncated at hz={hz}");
            assert!(cfg.kswapd_period_cycles >= 1, "kswapd period truncated at hz={hz}");
            assert!(cfg.threshold_adjust_period_cycles >= 1, "adjust period at hz={hz}");
            assert!(cfg.lru_quantum_cycles >= 1, "lru quantum truncated at hz={hz}");
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn builder_rejects_inverted_watermarks() {
        let err = OsConfig::builder().watermarks(0.5, 0.1, 0.9).build().unwrap_err();
        assert!(matches!(err, OsError::InvalidConfig { what: "watermarks", .. }));
        assert!(err.to_string().contains("0.5"), "error carries the offending value: {err}");
    }

    #[test]
    #[should_panic(expected = "dilation must be positive")]
    fn dilation_rejects_nonpositive() {
        let _ = OsConfig::default().with_time_dilation(0.0);
    }

    #[test]
    fn builder_rejects_zero_fault_around_window() {
        let err = OsConfig::builder().fault_around_pages(0).build().unwrap_err();
        assert!(matches!(err, OsError::InvalidConfig { what: "fault-around window", .. }));
        // 1 means "just the faulting page" and is the valid off state.
        OsConfig::builder().fault_around_pages(1).build().unwrap();
    }

    #[test]
    fn builder_rejects_zero_khugepaged_period() {
        let err = OsConfig::builder().khugepaged_period_cycles(0).build().unwrap_err();
        assert!(matches!(err, OsError::InvalidConfig { what: "khugepaged", .. }));
    }

    #[test]
    fn builder_rejects_sub_page_rate_limit() {
        // Regression: a rate below one page per second meant the token
        // bucket's burst capacity could never cover a single page-sized
        // promotion, stalling all promotions forever with no error.
        let err = OsConfig::builder().promo_rate_limit_bytes_per_sec(100).build().unwrap_err();
        assert!(matches!(err, OsError::InvalidConfig { what: "promotion rate limit", .. }));
        assert!(err.to_string().contains("100"), "error carries the offending value: {err}");
        // One page per second is the smallest workable rate.
        OsConfig::builder().promo_rate_limit_bytes_per_sec(tiersim_mem::PAGE_SIZE).build().unwrap();
    }
}
