//! vmstat-style counters and numastat-style snapshots.

use tiersim_mem::{MemorySystem, PageFlags, Tier};

/// Cumulative memory-management counters, mirroring the `vmstat` fields
/// the paper reads in §6.6.
///
/// Like the kernel's, these are cumulative since "boot"; analyses work on
/// deltas between two snapshots (the paper does exactly this because the
/// counters cannot be reset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VmCounters {
    /// NUMA hint page faults serviced.
    pub numa_hint_faults: u64,
    /// Pages whose hint-fault latency was below the threshold (promotion
    /// candidates).
    pub pgpromote_candidate: u64,
    /// Pages successfully promoted NVM→DRAM.
    pub pgpromote_success: u64,
    /// Promoted pages that were later demoted (tier thrashing).
    pub pgpromote_demoted: u64,
    /// Pages demoted DRAM→NVM by periodic (kswapd) reclaim.
    pub pgdemote_kswapd: u64,
    /// Pages demoted DRAM→NVM by synchronous direct reclaim.
    pub pgdemote_direct: u64,
    /// Total successful intra-socket migrations (promotions + demotions).
    pub pgmigrate_success: u64,
    /// Promotion attempts dropped by the rate limiter.
    pub promo_rate_limited: u64,
    /// Promotion attempts rejected by the hot threshold.
    pub promo_threshold_rejected: u64,
    /// Promotion attempts that failed for lack of free DRAM.
    pub promo_no_space: u64,
    /// Migrations that failed permanently after retries (the kernel's
    /// `pgmigrate_fail`: busy pages `migrate_pages()` gave up on).
    pub pgmigrate_fail: u64,
    /// Migration retries after an EBUSY-style transient failure.
    pub pgmigrate_retry: u64,
    /// First-touch (minor) faults placed on DRAM.
    pub pgalloc_dram: u64,
    /// First-touch (minor) faults placed on NVM.
    pub pgalloc_nvm: u64,
    /// Clean page-cache pages dropped by reclaim.
    pub page_cache_dropped: u64,
    /// Page-cache pages populated by file reads.
    pub page_cache_filled: u64,
    /// kswapd wakeups that demoted at least one page.
    pub kswapd_runs: u64,
    /// First-touch (minor) faults serviced, regardless of placement tier
    /// (the kernel's `pgfault` restricted to this simulator's anonymous
    /// and page-cache mappings).
    pub pgfault: u64,
    /// Extra pages bulk-mapped around a faulting page by fault-around /
    /// `MAP_POPULATE`; these never raise a fault of their own.
    pub pgfault_around: u64,
    /// 2 MiB blocks collapsed into huge mappings by khugepaged (the
    /// kernel's `thp_collapse_alloc`).
    pub thp_collapse_alloc: u64,
    /// Huge mappings split back into 4 KiB pages (promotion, demotion or
    /// partial unmap; the kernel's `thp_split_pmd`).
    pub thp_split: u64,
}

impl VmCounters {
    /// Pointwise difference `self - earlier` (counters are monotonic).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier.
    #[must_use]
    pub fn delta(&self, earlier: &VmCounters) -> VmCounters {
        let d = |a: u64, b: u64| {
            debug_assert!(a >= b, "counter went backwards");
            a - b
        };
        VmCounters {
            numa_hint_faults: d(self.numa_hint_faults, earlier.numa_hint_faults),
            pgpromote_candidate: d(self.pgpromote_candidate, earlier.pgpromote_candidate),
            pgpromote_success: d(self.pgpromote_success, earlier.pgpromote_success),
            pgpromote_demoted: d(self.pgpromote_demoted, earlier.pgpromote_demoted),
            pgdemote_kswapd: d(self.pgdemote_kswapd, earlier.pgdemote_kswapd),
            pgdemote_direct: d(self.pgdemote_direct, earlier.pgdemote_direct),
            pgmigrate_success: d(self.pgmigrate_success, earlier.pgmigrate_success),
            promo_rate_limited: d(self.promo_rate_limited, earlier.promo_rate_limited),
            promo_threshold_rejected: d(
                self.promo_threshold_rejected,
                earlier.promo_threshold_rejected,
            ),
            promo_no_space: d(self.promo_no_space, earlier.promo_no_space),
            pgmigrate_fail: d(self.pgmigrate_fail, earlier.pgmigrate_fail),
            pgmigrate_retry: d(self.pgmigrate_retry, earlier.pgmigrate_retry),
            pgalloc_dram: d(self.pgalloc_dram, earlier.pgalloc_dram),
            pgalloc_nvm: d(self.pgalloc_nvm, earlier.pgalloc_nvm),
            page_cache_dropped: d(self.page_cache_dropped, earlier.page_cache_dropped),
            page_cache_filled: d(self.page_cache_filled, earlier.page_cache_filled),
            kswapd_runs: d(self.kswapd_runs, earlier.kswapd_runs),
            pgfault: d(self.pgfault, earlier.pgfault),
            pgfault_around: d(self.pgfault_around, earlier.pgfault_around),
            thp_collapse_alloc: d(self.thp_collapse_alloc, earlier.thp_collapse_alloc),
            thp_split: d(self.thp_split, earlier.thp_split),
        }
    }

    /// Total demotions (kswapd + direct).
    pub fn pgdemote_total(&self) -> u64 {
        self.pgdemote_kswapd + self.pgdemote_direct
    }

    /// Returns `true` if no migration of any kind happened — the paper's
    /// AutoNUMA-disabled sanity check (§6.6: "All counters had zero
    /// delta").
    pub fn no_migrations(&self) -> bool {
        self.pgmigrate_success == 0
            && self.pgpromote_success == 0
            && self.pgdemote_total() == 0
            && self.pgpromote_demoted == 0
    }
}

/// A numastat-style snapshot of memory usage, in pages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NumaStat {
    /// Application (anonymous) pages per tier, indexed by [`Tier::index`].
    pub anon_pages: [u64; 2],
    /// Page-cache pages per tier.
    pub file_pages: [u64; 2],
    /// Free pages per tier.
    pub free_pages: [u64; 2],
}

impl NumaStat {
    /// Collects a snapshot by walking the resident-page table.
    pub fn collect(mem: &MemorySystem) -> NumaStat {
        let mut stat = NumaStat::default();
        for (_, info) in mem.resident_pages() {
            let t = info.tier.index();
            if info.flags.contains(PageFlags::PAGE_CACHE) {
                stat.file_pages[t] += 1;
            } else {
                stat.anon_pages[t] += 1;
            }
        }
        for tier in Tier::ALL {
            stat.free_pages[tier.index()] = mem.free_pages(tier);
        }
        stat
    }

    /// Used pages (anon + file) on a tier.
    pub fn used_pages(&self, tier: Tier) -> u64 {
        self.anon_pages[tier.index()] + self.file_pages[tier.index()]
    }

    /// Used bytes on a tier.
    pub fn used_bytes(&self, tier: Tier) -> u64 {
        self.used_pages(tier) * tiersim_mem::PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim_mem::{MemConfig, MemPolicy, PAGE_SIZE};

    #[test]
    fn delta_subtracts_fields() {
        let a = VmCounters {
            pgpromote_success: 10,
            pgdemote_kswapd: 4,
            pgmigrate_fail: 2,
            pgmigrate_retry: 3,
            pgfault: 100,
            thp_collapse_alloc: 2,
            ..Default::default()
        };
        let mut b = a;
        b.pgpromote_success = 25;
        b.pgdemote_kswapd = 9;
        b.pgmigrate_fail = 6;
        b.pgmigrate_retry = 10;
        b.pgfault = 160;
        b.thp_collapse_alloc = 5;
        let d = b.delta(&a);
        assert_eq!(d.pgpromote_success, 15);
        assert_eq!(d.pgdemote_kswapd, 5);
        assert_eq!(d.pgdemote_total(), 5);
        assert_eq!(d.pgmigrate_fail, 4);
        assert_eq!(d.pgmigrate_retry, 7);
        assert_eq!(d.pgfault, 60);
        assert_eq!(d.thp_collapse_alloc, 3);
    }

    #[test]
    fn no_migrations_detects_quiescence() {
        let zero = VmCounters::default();
        assert!(zero.no_migrations());
        let mut c = zero;
        c.pgalloc_dram = 100; // allocations are not migrations
        assert!(c.no_migrations());
        c.pgdemote_direct = 1;
        assert!(!c.no_migrations());
    }

    #[test]
    fn numastat_splits_anon_and_file() {
        let mut mem = MemorySystem::new(
            MemConfig::builder()
                .dram_capacity(8 * PAGE_SIZE)
                .nvm_capacity(8 * PAGE_SIZE)
                .build()
                .unwrap(),
        )
        .unwrap();
        let a = mem.mmap(2 * PAGE_SIZE, MemPolicy::Default, "anon").unwrap();
        mem.map_page(a.page(), Tier::Dram, 0).unwrap();
        mem.map_page((a + PAGE_SIZE).page(), Tier::Nvm, 0).unwrap();
        let f = mem.mmap(PAGE_SIZE, MemPolicy::Default, "[page_cache]").unwrap();
        mem.map_page(f.page(), Tier::Dram, 0).unwrap();
        mem.page_update(f.page(), |p| p.flags.insert(PageFlags::PAGE_CACHE)).unwrap();

        let stat = NumaStat::collect(&mem);
        assert_eq!(stat.anon_pages, [1, 1]);
        assert_eq!(stat.file_pages, [1, 0]);
        assert_eq!(stat.used_pages(Tier::Dram), 2);
        assert_eq!(stat.free_pages[Tier::Dram.index()], 6);
        assert_eq!(stat.used_bytes(Tier::Nvm), PAGE_SIZE);
    }
}
