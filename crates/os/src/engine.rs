//! The AutoNUMA tiering engine: fault placement, hint-fault promotion,
//! periodic scanning and reclaim.

use crate::audit::{self, AuditReport};
use crate::config::OsConfig;
use crate::counters::VmCounters;
use crate::rate_limit::TokenBucket;
use crate::reclaim::{self, ReclaimOutcome};
use crate::scanner::Scanner;
use crate::threshold::ThresholdController;
use crate::OsError;
use tiersim_mem::{
    AccessOutcome, MemError, MemPolicy, MemorySystem, PageFault, PageFlags, PageNum, RejectReason,
    Tier, TraceEvent, VirtAddr, HUGE_PAGE_PAGES, HUGE_PAGE_SIZE, PAGE_SIZE,
};

/// How a page fault was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultResolution {
    /// The tier the page was placed on.
    pub tier: Tier,
    /// Kernel cycles charged to the faulting thread.
    pub cost_cycles: u64,
}

/// The OS memory manager: Linux-like first-touch placement plus the
/// AutoNUMA tiering v0.8 promotion/demotion machinery the paper
/// characterizes (§2.2).
///
/// Drive it with three hooks:
/// - [`AutoNuma::handle_fault`] when the memory system raises a page fault,
/// - [`AutoNuma::on_access`] after every completed access (promotions run
///   off hint faults),
/// - [`AutoNuma::tick`] whenever simulated time passes
///   [`AutoNuma::next_event`] (scanner, kswapd, threshold adjustment).
///
/// # Examples
///
/// ```
/// use tiersim_mem::{AccessError, AccessKind, MemConfig, MemPolicy, MemorySystem, Tier};
/// use tiersim_os::{AutoNuma, OsConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mem = MemorySystem::new(MemConfig::default())?;
/// let mut os = AutoNuma::new(OsConfig::default())?;
/// let buf = mem.mmap(4096, MemPolicy::Default, "data")?;
///
/// let Err(AccessError::Fault(pf)) = mem.access(buf, AccessKind::Load, 0) else {
///     panic!("expected fault");
/// };
/// let res = os.handle_fault(&mut mem, pf, 0)?;
/// assert_eq!(res.tier, Tier::Dram); // DRAM-first while free (Finding 3)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AutoNuma {
    cfg: OsConfig,
    scanner: Scanner,
    threshold: ThresholdController,
    rate: TokenBucket,
    counters: VmCounters,
    next_scan: u64,
    next_adjust: u64,
    next_kswapd: u64,
    next_khugepaged: u64,
    /// Page index where the next khugepaged wakeup resumes its block scan.
    khugepaged_cursor: u64,
    candidate_bytes_interval: u64,
    /// Current (possibly backed-off) scan period under adaptive scanning.
    cur_scan_period: u64,
    /// Hint faults observed at the previous scan tick.
    hint_faults_at_last_scan: u64,
    kswapd_pending: bool,
    /// Background (kernel-thread) cycles spent so far; not charged to app
    /// threads but visible in CPU-utilization accounting.
    background_cycles: u64,
    /// Calls to [`AutoNuma::tick`] so far (drives audit checkpoints).
    tick_count: u64,
}

impl AutoNuma {
    /// Creates an engine from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(cfg: OsConfig) -> Result<Self, OsError> {
        cfg.validate()?;
        Ok(AutoNuma {
            scanner: Scanner::new(),
            threshold: ThresholdController::new(
                cfg.hot_threshold_cycles,
                cfg.hot_threshold_min_cycles,
                cfg.hot_threshold_max_cycles,
            ),
            rate: TokenBucket::new(cfg.promo_rate_limit_bytes_per_sec, cfg.freq_hz),
            counters: VmCounters::default(),
            next_scan: cfg.scan_period_cycles,
            next_adjust: cfg.threshold_adjust_period_cycles,
            next_kswapd: cfg.kswapd_period_cycles,
            next_khugepaged: cfg.khugepaged_period_cycles,
            khugepaged_cursor: 0,
            candidate_bytes_interval: 0,
            cur_scan_period: cfg.scan_period_cycles,
            hint_faults_at_last_scan: 0,
            kswapd_pending: false,
            background_cycles: 0,
            tick_count: 0,
            cfg,
        })
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &OsConfig {
        &self.cfg
    }

    /// Cumulative vmstat-style counters.
    pub fn counters(&self) -> VmCounters {
        self.counters
    }

    /// Current dynamic hot threshold in cycles.
    pub fn threshold_cycles(&self) -> u64 {
        self.threshold.threshold_cycles()
    }

    /// Current scan period in cycles (equals the configured period unless
    /// adaptive scanning has backed off).
    pub fn scan_period_cycles(&self) -> u64 {
        self.cur_scan_period
    }

    /// Total background (kernel-thread) cycles spent so far.
    pub fn background_cycles(&self) -> u64 {
        self.background_cycles
    }

    /// Whole bytes currently available in the promotion token bucket at
    /// `now` (refills the bucket as a side effect, which is idempotent
    /// for a fixed `now`).
    pub fn rate_available_bytes(&mut self, now: u64) -> u64 {
        self.rate.available(now)
    }

    /// The earliest cycle time at which [`AutoNuma::tick`] has work to do.
    pub fn next_event(&self) -> u64 {
        let base = if self.cfg.autonuma_enabled {
            self.next_scan.min(self.next_adjust).min(self.next_kswapd)
        } else {
            self.next_kswapd
        };
        if self.cfg.thp_enabled {
            base.min(self.next_khugepaged)
        } else {
            base
        }
    }

    fn dram_watermark_pages(&self, mem: &MemorySystem, frac: f64) -> u64 {
        (mem.capacity_pages(Tier::Dram) as f64 * frac) as u64
    }

    /// [`MemorySystem::map_page`] with bounded retry on injected
    /// transient allocation failures, charging the backoff to `cost`.
    /// Behaves exactly like a plain `map_page` when no fault plan is
    /// active (transient errors then never occur).
    fn map_page_retrying(
        &mut self,
        mem: &mut MemorySystem,
        pn: tiersim_mem::PageNum,
        tier: Tier,
        now: u64,
        cost: &mut u64,
    ) -> Result<(), MemError> {
        let mut attempts = 0;
        loop {
            match mem.map_page(pn, tier, now) {
                Err(e) if e.is_transient() && attempts < self.cfg.migrate_max_retries => {
                    attempts += 1;
                    *cost += self.cfg.migrate_retry_backoff_cycles;
                }
                other => return other,
            }
        }
    }

    /// Places `pn` on NVM, falling back to any free DRAM when NVM is
    /// exhausted (the allocator's last resort).
    fn place_nvm_fallback(
        &mut self,
        mem: &mut MemorySystem,
        pn: tiersim_mem::PageNum,
        now: u64,
        cost: &mut u64,
    ) -> Result<Tier, OsError> {
        match self.map_page_retrying(mem, pn, Tier::Nvm, now, cost) {
            Ok(()) => Ok(Tier::Nvm),
            Err(MemError::TierFull { .. }) => {
                // NVM exhausted: last resort is any free DRAM.
                self.map_page_retrying(mem, pn, Tier::Dram, now, cost)
                    .map_err(|_| OsError::OutOfMemory)?;
                Ok(Tier::Dram)
            }
            Err(e) => Err(e.into()),
        }
    }

    // ----- fault placement ------------------------------------------------

    /// Services a page fault: places the page according to the VMA policy
    /// and the kernel's DRAM-first default (paper Finding 3).
    ///
    /// # Errors
    ///
    /// Returns [`OsError::OutOfMemory`] if no tier can hold the page even
    /// after reclaim.
    pub fn handle_fault(
        &mut self,
        mem: &mut MemorySystem,
        fault: PageFault,
        now: u64,
    ) -> Result<FaultResolution, OsError> {
        let mut cost = self.cfg.minor_fault_cost_cycles;
        let tier = self.place(mem, fault, now, &mut cost)?;
        self.counters.pgfault += 1;
        match tier {
            Tier::Dram => self.counters.pgalloc_dram += 1,
            Tier::Nvm => self.counters.pgalloc_nvm += 1,
        }
        if self.cfg.fault_around_pages > 1 {
            self.fault_around(mem, fault, now, &mut cost);
        }
        Ok(FaultResolution { tier, cost_cycles: cost })
    }

    /// Bulk-maps up to `fault_around_pages - 1` non-resident pages
    /// following the faulting one within its VMA (the kernel's
    /// fault-around / `MAP_POPULATE`). Each extra page goes through the
    /// normal policy placement but is charged only a fraction of a minor
    /// fault, and never faults on first touch — which is what lets
    /// sequential streams re-enter the interval fast lane under demand
    /// paging.
    fn fault_around(&mut self, mem: &mut MemorySystem, fault: PageFault, now: u64, cost: &mut u64) {
        let want = self.cfg.fault_around_pages - 1;
        let limit = mem.fault_around_candidates(fault.page, want);
        let mut mapped = 0;
        let mut pn = fault.page.next();
        while mapped < limit {
            let extra =
                PageFault { page: pn, addr: pn.base(), policy: fault.policy, vma: fault.vma };
            match self.place(mem, extra, now, cost) {
                Ok(tier) => {
                    match tier {
                        Tier::Dram => self.counters.pgalloc_dram += 1,
                        Tier::Nvm => self.counters.pgalloc_nvm += 1,
                    }
                    self.counters.pgfault_around += 1;
                    *cost += self.cfg.minor_fault_cost_cycles / 8;
                    mapped += 1;
                }
                // Best effort: memory pressure ends the window early and
                // the remaining pages fault normally later.
                Err(_) => break,
            }
            pn = pn.next();
        }
        if mapped > 0 {
            mem.trace_mut().set_now(now);
            mem.trace_mut()
                .record(TraceEvent::FaultAround { page: fault.page.index(), pages: mapped });
        }
    }

    fn place(
        &mut self,
        mem: &mut MemorySystem,
        fault: PageFault,
        now: u64,
        cost: &mut u64,
    ) -> Result<Tier, OsError> {
        let pn = fault.page;
        match fault.policy {
            MemPolicy::Default => {
                // DRAM first while above the min watermark; wake kswapd
                // below low (the kernel allocator's node fallback).
                let free = mem.free_pages(Tier::Dram);
                if free <= self.dram_watermark_pages(mem, self.cfg.wmark_low_frac) {
                    self.kswapd_pending = true;
                }
                if free > self.dram_watermark_pages(mem, self.cfg.wmark_min_frac) {
                    match self.map_page_retrying(mem, pn, Tier::Dram, now, cost) {
                        Ok(()) => Ok(Tier::Dram),
                        // Injected allocation failure that outlived its
                        // retries: degrade to NVM like the allocator's
                        // node fallback, instead of failing the fault.
                        Err(e) if e.is_transient() => self.place_nvm_fallback(mem, pn, now, cost),
                        Err(e) => Err(e.into()),
                    }
                } else {
                    self.place_nvm_fallback(mem, pn, now, cost)
                }
            }
            MemPolicy::Interleave => {
                // Alternate by page number, falling back when a tier is
                // full — the kernel's round-robin with node fallback.
                let t = if pn.index().is_multiple_of(2) { Tier::Dram } else { Tier::Nvm };
                match self.map_page_retrying(mem, pn, t, now, cost) {
                    Ok(()) => Ok(t),
                    Err(e) if matches!(e, MemError::TierFull { .. }) || e.is_transient() => {
                        self.map_page_retrying(mem, pn, t.other(), now, cost)
                            .map_err(|_| OsError::OutOfMemory)?;
                        Ok(t.other())
                    }
                    Err(e) => Err(e.into()),
                }
            }
            MemPolicy::Preferred(t) => match self.map_page_retrying(mem, pn, t, now, cost) {
                Ok(()) => Ok(t),
                Err(e) if matches!(e, MemError::TierFull { .. }) || e.is_transient() => {
                    self.map_page_retrying(mem, pn, t.other(), now, cost)
                        .map_err(|_| OsError::OutOfMemory)?;
                    Ok(t.other())
                }
                Err(e) => Err(e.into()),
            },
            MemPolicy::Bind(t) => {
                loop {
                    match self.map_page_retrying(mem, pn, t, now, cost) {
                        Ok(()) => return Ok(t),
                        Err(e) if e.is_transient() => {
                            // The bind target keeps failing transiently:
                            // degrade to the other tier rather than
                            // failing the fault; a later pass (promotion
                            // or reclaim) restores the intended
                            // placement.
                            self.map_page_retrying(mem, pn, t.other(), now, cost)
                                .map_err(|_| OsError::OutOfMemory)?;
                            return Ok(t.other());
                        }
                        Err(MemError::TierFull { .. }) if t == Tier::Dram => {
                            // mbind to DRAM under pressure: synchronous
                            // reclaim makes room. With tiering enabled the
                            // victim is demoted; a vanilla kernel (tiering
                            // off, as in the paper's §7 static runs, which
                            // perform no migrations) drops clean page
                            // cache instead.
                            let reclaimed = if self.cfg.autonuma_enabled {
                                reclaim::direct_reclaim_one(mem, &mut self.counters, &self.cfg)
                            } else {
                                let out = reclaim::drop_page_cache(mem, &mut self.counters, 1);
                                (out.dropped > 0).then_some(out.cost_cycles)
                            };
                            match reclaimed {
                                Some(cycles) => *cost += cycles,
                                None => return Err(OsError::OutOfMemory),
                            }
                        }
                        Err(MemError::TierFull { .. }) => return Err(OsError::OutOfMemory),
                        Err(e) => return Err(e.into()),
                    }
                }
            }
        }
    }

    // ----- hint faults and promotion ---------------------------------------

    /// Processes the OS-visible side of a completed access. Returns extra
    /// kernel cycles to charge to the accessing thread (hint-fault
    /// servicing and any synchronous promotion it performed).
    pub fn on_access(&mut self, mem: &mut MemorySystem, outcome: &AccessOutcome, now: u64) -> u64 {
        if !outcome.hint_fault || !self.cfg.autonuma_enabled {
            return 0;
        }
        self.counters.numa_hint_faults += 1;
        mem.trace_mut().set_now(now);
        mem.trace_mut().record(TraceEvent::HintFault { page: outcome.page.index() });
        let mut cost = self.cfg.hint_fault_cost_cycles;
        if outcome.tier != Tier::Nvm {
            return cost;
        }

        let free = mem.free_pages(Tier::Dram);
        let high = self.dram_watermark_pages(mem, self.cfg.wmark_high_frac);
        // A hint fault on a collapsed block's head speaks for all of its
        // 512 pages: the scanner marks only the head, promotion decisions
        // (threshold, rate limiter, candidate bytes) are charged at 2 MiB
        // granularity, and an accepted block is split back to 4 KiB pages
        // before the per-page migrations (the kernel cannot migrate a THP
        // across nodes without splitting it first).
        let huge = mem.is_huge(outcome.page);
        let promo_bytes = if huge { HUGE_PAGE_SIZE } else { PAGE_SIZE };
        if free > high {
            // Plenty of fast memory: promote unconditionally (paper §2.2).
            if huge {
                self.promote_huge(mem, outcome.page, now, &mut cost);
            } else {
                self.promote(mem, outcome.page, now, &mut cost);
            }
            return cost;
        }

        let latency = now.saturating_sub(outcome.hint_scan_time);
        if !self.threshold.is_hot(latency) {
            self.counters.promo_threshold_rejected += 1;
            mem.trace_mut().record(TraceEvent::PromoteReject {
                page: outcome.page.index(),
                reason: RejectReason::Threshold,
            });
            return cost;
        }
        self.counters.pgpromote_candidate += 1;
        self.candidate_bytes_interval += promo_bytes;
        mem.trace_mut()
            .record(TraceEvent::PromoteCandidate { page: outcome.page.index(), latency });
        if !self.rate.try_consume(promo_bytes, now) {
            self.counters.promo_rate_limited += 1;
            let available = self.rate.available(now);
            mem.trace_mut().record(TraceEvent::RateLimitDeny { bytes: promo_bytes, available });
            mem.trace_mut().record(TraceEvent::PromoteReject {
                page: outcome.page.index(),
                reason: RejectReason::RateLimited,
            });
            return cost;
        }
        mem.trace_mut().record(TraceEvent::RateLimitConsume { bytes: promo_bytes });
        if free == 0 {
            self.counters.promo_no_space += 1;
            mem.trace_mut().record(TraceEvent::PromoteReject {
                page: outcome.page.index(),
                reason: RejectReason::NoSpace,
            });
            self.kswapd_pending = true;
            return cost;
        }
        if huge {
            self.promote_huge(mem, outcome.page, now, &mut cost);
        } else {
            self.promote(mem, outcome.page, now, &mut cost);
        }
        cost
    }

    /// Promotes a whole collapsed block: splits it back into 4 KiB pages,
    /// then migrates each one through the ordinary per-page path (so
    /// every accepted page still emits its own `PromoteAccept` and the
    /// migration-conservation law stays exact), stopping early if DRAM
    /// runs out — the remainder stays on NVM and kswapd has been woken.
    fn promote_huge(&mut self, mem: &mut MemorySystem, page: PageNum, now: u64, cost: &mut u64) {
        let head = page.huge_head();
        if mem.split_huge(page).is_some() {
            self.counters.thp_split += 1;
            mem.trace_mut().record(TraceEvent::ThpSplit { page: head.index() });
        }
        let mut pn = head;
        for _ in 0..HUGE_PAGE_PAGES {
            let no_space_before = self.counters.promo_no_space;
            self.promote(mem, pn, now, cost);
            if self.counters.promo_no_space > no_space_before {
                break;
            }
            pn = pn.next();
        }
    }

    fn promote(
        &mut self,
        mem: &mut MemorySystem,
        page: tiersim_mem::PageNum,
        now: u64,
        cost: &mut u64,
    ) {
        let mut attempts = 0;
        loop {
            match mem.migrate_page(page, Tier::Dram) {
                Ok(copy_cycles) => {
                    *cost += copy_cycles + self.cfg.migration_overhead_cycles;
                    self.counters.pgpromote_success += 1;
                    self.counters.pgmigrate_success += 1;
                    mem.trace_mut().record(TraceEvent::PromoteAccept { page: page.index() });
                    mem.page_update(page, |p| p.flags.insert(PageFlags::WAS_PROMOTED));
                    return;
                }
                Err(e) if e.is_transient() => {
                    if attempts < self.cfg.migrate_max_retries {
                        // Bounded retry with backoff in simulated cycles,
                        // mirroring the passes of the kernel's
                        // migrate_pages().
                        attempts += 1;
                        self.counters.pgmigrate_retry += 1;
                        mem.trace_mut().record(TraceEvent::MigrateRetry { page: page.index() });
                        *cost += self.cfg.migrate_retry_backoff_cycles;
                    } else {
                        // Gave up (the kernel's pgmigrate_fail). Degrade
                        // gracefully: the page stays on NVM and is
                        // requeued by re-marking its hint, so a later
                        // access retries the promotion.
                        self.counters.pgmigrate_fail += 1;
                        mem.trace_mut().record(TraceEvent::MigrateFail { page: page.index() });
                        mem.mark_hint(page, now);
                        return;
                    }
                }
                Err(_) => {
                    self.counters.promo_no_space += 1;
                    mem.trace_mut().record(TraceEvent::PromoteReject {
                        page: page.index(),
                        reason: RejectReason::NoSpace,
                    });
                    self.kswapd_pending = true;
                    return;
                }
            }
        }
    }

    // ----- periodic work -----------------------------------------------------

    /// Runs any periodic work due at `now`: the NUMA scanner, the
    /// threshold adjustment, and kswapd reclaim. Returns the background
    /// cycles spent (kernel threads, not charged to the app).
    pub fn tick(&mut self, mem: &mut MemorySystem, now: u64) -> u64 {
        let mut bg = 0;
        mem.trace_mut().set_now(now);
        if self.cfg.autonuma_enabled {
            if now >= self.next_scan {
                let report = self.scanner.scan(mem, self.cfg.scan_size_pages, now);
                bg += 100 + report.visited * 20 + report.marked * 40;
                if self.cfg.scan_period_adaptive {
                    // Kernel heuristic: quiet periods back the scanner off
                    // toward the maximum; fault activity speeds it back up.
                    let faults_now = self.counters.numa_hint_faults;
                    if faults_now == self.hint_faults_at_last_scan {
                        self.cur_scan_period =
                            (self.cur_scan_period * 3 / 2).min(self.cfg.scan_period_max_cycles);
                    } else {
                        self.cur_scan_period =
                            (self.cur_scan_period * 2 / 3).max(self.cfg.scan_period_cycles);
                    }
                    self.hint_faults_at_last_scan = faults_now;
                }
                self.next_scan = now + self.cur_scan_period;
            }
            if now >= self.next_adjust {
                let interval_secs =
                    self.cfg.threshold_adjust_period_cycles as f64 / self.cfg.freq_hz as f64;
                let limit_bytes =
                    (self.cfg.promo_rate_limit_bytes_per_sec as f64 * interval_secs) as u64;
                let before = self.threshold.threshold_cycles();
                self.threshold.adjust(self.candidate_bytes_interval, limit_bytes);
                mem.trace_mut().record(TraceEvent::ThresholdAdjust {
                    before,
                    after: self.threshold.threshold_cycles(),
                    candidate_bytes: self.candidate_bytes_interval,
                    limit_bytes,
                });
                self.candidate_bytes_interval = 0;
                self.next_adjust = now + self.cfg.threshold_adjust_period_cycles;
                bg += 200;
            }
            if now >= self.next_kswapd {
                self.next_kswapd = now + self.cfg.kswapd_period_cycles;
                let low = self.dram_watermark_pages(mem, self.cfg.wmark_low_frac);
                if self.kswapd_pending || mem.free_pages(Tier::Dram) < low {
                    let out = reclaim::kswapd_reclaim(mem, &mut self.counters, &self.cfg);
                    if out.demoted > 0 || out.dropped > 0 {
                        self.counters.kswapd_runs += 1;
                    }
                    bg += out.cost_cycles;
                    self.kswapd_pending = false;
                }
            }
        } else if now >= self.next_kswapd {
            // Vanilla kernel: reclaim clean page cache under pressure, no
            // migrations.
            self.next_kswapd = now + self.cfg.kswapd_period_cycles;
            let low = self.dram_watermark_pages(mem, self.cfg.wmark_low_frac);
            if mem.free_pages(Tier::Dram) < low {
                let out: ReclaimOutcome =
                    reclaim::drop_page_cache(mem, &mut self.counters, self.cfg.kswapd_batch_pages);
                bg += out.cost_cycles;
            }
        }
        if self.cfg.thp_enabled && now >= self.next_khugepaged {
            self.next_khugepaged = now + self.cfg.khugepaged_period_cycles;
            bg += self.khugepaged(mem, now);
        }
        self.background_cycles += bg;
        self.tick_count += 1;
        if cfg!(debug_assertions)
            && self.cfg.audit_every_ticks != 0
            && self.tick_count.is_multiple_of(self.cfg.audit_every_ticks)
        {
            let report = self.audit(mem);
            debug_assert!(
                report.is_clean(),
                "tiersim-audit found {} violation(s) at tick {}: {:?}",
                report.violations.len(),
                self.tick_count,
                report.violations
            );
        }
        bg
    }

    /// One khugepaged wakeup: scans up to `thp_collapse_scan_blocks`
    /// 2 MiB-aligned blocks of process address space from a persistent
    /// cursor (wrapping), collapsing every block that qualifies — fully
    /// resident, uniform tier, no pending hint marks, not page cache.
    /// Kernel-internal regions (`[bracketed]` labels) are skipped like
    /// the NUMA scanner skips them. Returns background cycles spent.
    fn khugepaged(&mut self, mem: &mut MemorySystem, now: u64) -> u64 {
        let mut heads: Vec<u64> = Vec::new();
        for v in mem.vmas().filter(|v| !v.label.starts_with('[')) {
            let base = v.base.page().index();
            let end = v.end().page().index();
            let mut h = base.next_multiple_of(HUGE_PAGE_PAGES);
            while h + HUGE_PAGE_PAGES <= end {
                heads.push(h);
                h += HUGE_PAGE_PAGES;
            }
        }
        let mut bg = 100; // wakeup overhead
        if heads.is_empty() {
            return bg;
        }
        let start = heads.iter().position(|&h| h >= self.khugepaged_cursor).unwrap_or(0);
        let budget = (self.cfg.thp_collapse_scan_blocks as usize).min(heads.len());
        let mut resume = self.khugepaged_cursor;
        mem.trace_mut().set_now(now);
        for &h in heads.iter().cycle().skip(start).take(budget) {
            bg += 50; // per-block eligibility scan
            let head = PageNum::new(h);
            if !mem.is_huge(head) && mem.collapse_huge(head).is_some() {
                self.counters.thp_collapse_alloc += 1;
                mem.trace_mut().record(TraceEvent::ThpCollapse { page: h });
                // Collapsing rewrites one PMD: charge roughly a PTE's
                // worth of work per page folded in.
                bg += HUGE_PAGE_PAGES * 4;
            }
            resume = h + HUGE_PAGE_PAGES;
        }
        self.khugepaged_cursor = resume;
        bg
    }

    // ----- invariant auditing --------------------------------------------

    /// Runs the tiersim-audit invariant checks (frame ownership, tier
    /// capacity, TLB coherence, VMA coverage, counter conservation laws)
    /// against the current state. Read-only and available in any build;
    /// the periodic [`AutoNuma::tick`] checkpoints driven by
    /// [`OsConfig::audit_every_ticks`] additionally `debug_assert!` that
    /// the report is clean.
    pub fn audit(&self, mem: &MemorySystem) -> AuditReport {
        audit::run(mem, &self.counters, &self.cfg)
    }

    /// Test-only planted accounting bug: counts a promotion that never
    /// migrated anything, exactly the double-count failure mode the
    /// auditor's `migration-conservation` law exists to catch. Kept in the
    /// crate so the audit test suite can prove the auditor is not vacuous.
    #[cfg(test)]
    pub(crate) fn debug_double_count_promotion(&mut self) {
        self.counters.pgpromote_success += 1;
    }

    // ----- page cache ---------------------------------------------------------

    /// Simulates reading `bytes` from a file through the page cache:
    /// allocates file-backed pages (DRAM-first like any allocation —
    /// Finding 5's page-cache growth) and returns the I/O wait cycles the
    /// reading thread experiences. Returns `(region, wait_cycles)`; the
    /// region is `None` when the page cache is disabled or `bytes == 0`.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::OutOfMemory`] only if placement fails with both
    /// tiers full and nothing reclaimable (practically unreachable because
    /// page-cache fills stop at pressure).
    pub fn file_read(
        &mut self,
        mem: &mut MemorySystem,
        bytes: u64,
        now: u64,
    ) -> Result<(Option<VirtAddr>, u64), OsError> {
        let pages = tiersim_mem::pages_for(bytes);
        if pages == 0 {
            return Ok((None, 0));
        }
        let wait = pages * self.cfg.disk_read_cycles_per_page;
        if !self.cfg.page_cache_enabled {
            return Ok((None, wait));
        }
        let base = mem.mmap(pages * PAGE_SIZE, MemPolicy::Default, "[page_cache]")?;
        // mmap just created the region, so the lookup cannot fail; bail
        // without caching rather than panic if it somehow does.
        let Some(vma_id) = mem.find_vma(base).map(|v| v.id) else { return Ok((Some(base), wait)) };
        for i in 0..pages {
            let pn = (base + i * PAGE_SIZE).page();
            let fault =
                PageFault { page: pn, addr: pn.base(), policy: MemPolicy::Default, vma: vma_id };
            let mut cost = 0;
            let tier = match self.place(mem, fault, now, &mut cost) {
                Ok(tier) => tier,
                // Both tiers full: stop caching; the read itself still
                // succeeds from disk.
                Err(_) => break,
            };
            // Page-cache pages are allocations like any other (the kernel
            // counts them in pgalloc_*); the `alloc-covers-page-cache`
            // audit law depends on this.
            match tier {
                Tier::Dram => self.counters.pgalloc_dram += 1,
                Tier::Nvm => self.counters.pgalloc_nvm += 1,
            }
            mem.page_update(pn, |p| p.flags.insert(PageFlags::PAGE_CACHE));
            self.counters.page_cache_filled += 1;
        }
        Ok((Some(base), wait))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim_mem::{AccessError, AccessKind, MemConfig};

    fn mem(dram_pages: u64, nvm_pages: u64) -> MemorySystem {
        MemorySystem::new(
            MemConfig::builder()
                .dram_capacity(dram_pages * PAGE_SIZE)
                .nvm_capacity(nvm_pages * PAGE_SIZE)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    fn os() -> AutoNuma {
        AutoNuma::new(OsConfig::builder().watermarks(0.05, 0.1, 0.2).build().unwrap()).unwrap()
    }

    /// Touches `addr`, servicing the first-touch fault through the engine.
    fn touch(
        mem: &mut MemorySystem,
        eng: &mut AutoNuma,
        addr: VirtAddr,
        now: u64,
    ) -> AccessOutcome {
        loop {
            match mem.access(addr, AccessKind::Load, now) {
                Ok(out) => {
                    eng.on_access(mem, &out, now);
                    return out;
                }
                Err(AccessError::Fault(pf)) => {
                    eng.handle_fault(mem, pf, now).unwrap();
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
    }

    #[test]
    fn default_policy_fills_dram_first_then_nvm() {
        let mut m = mem(100, 100);
        let mut e = os();
        let a = m.mmap(120 * PAGE_SIZE, MemPolicy::Default, "big").unwrap();
        for i in 0..120 {
            touch(&mut m, &mut e, a + i * PAGE_SIZE, i);
        }
        let c = e.counters();
        // min watermark = 5 pages: 95 land on DRAM, the rest spill to NVM.
        assert_eq!(c.pgalloc_dram, 95);
        assert_eq!(c.pgalloc_nvm, 25);
        assert_eq!(m.used_pages(Tier::Nvm), 25);
    }

    #[test]
    fn bind_policies_are_respected() {
        let mut m = mem(10, 10);
        let mut e = os();
        let a = m.mmap(PAGE_SIZE, MemPolicy::Bind(Tier::Nvm), "b").unwrap();
        let out = touch(&mut m, &mut e, a, 0);
        assert_eq!(out.tier, Tier::Nvm);
        let p = m.mmap(PAGE_SIZE, MemPolicy::Preferred(Tier::Nvm), "p").unwrap();
        assert_eq!(touch(&mut m, &mut e, p, 1).tier, Tier::Nvm);
    }

    #[test]
    fn interleave_alternates_tiers() {
        let mut m = mem(100, 100);
        let mut e = os();
        let a = m.mmap(6 * PAGE_SIZE, MemPolicy::Interleave, "i").unwrap();
        let mut tiers = Vec::new();
        for i in 0..6 {
            tiers.push(touch(&mut m, &mut e, a + i * PAGE_SIZE, i).tier);
        }
        assert!(tiers.contains(&Tier::Dram));
        assert!(tiers.contains(&Tier::Nvm));
        // Consecutive pages alternate.
        assert!(tiers.windows(2).all(|w| w[0] != w[1]), "{tiers:?}");
    }

    #[test]
    fn bind_dram_under_pressure_direct_reclaims() {
        let mut m = mem(4, 10);
        let mut e = os();
        // Fill DRAM with default pages.
        let filler = m.mmap(4 * PAGE_SIZE, MemPolicy::Default, "fill").unwrap();
        for i in 0..4 {
            m.map_page((filler + i * PAGE_SIZE).page(), Tier::Dram, i).unwrap();
        }
        let b = m.mmap(PAGE_SIZE, MemPolicy::Bind(Tier::Dram), "bind").unwrap();
        let out = touch(&mut m, &mut e, b, 10);
        assert_eq!(out.tier, Tier::Dram);
        assert_eq!(e.counters().pgdemote_direct, 1);
    }

    #[test]
    fn hint_fault_promotes_when_dram_free() {
        let mut m = mem(100, 100);
        let mut e = os();
        let a = m.mmap(PAGE_SIZE, MemPolicy::Bind(Tier::Nvm), "x").unwrap();
        touch(&mut m, &mut e, a, 0);
        assert!(m.mark_hint(a.page(), 5));
        let out = touch(&mut m, &mut e, a, 10);
        assert!(out.hint_fault);
        assert_eq!(e.counters().pgpromote_success, 1);
        assert_eq!(m.page(a.page()).unwrap().tier, Tier::Dram);
        assert!(m.page(a.page()).unwrap().flags.contains(PageFlags::WAS_PROMOTED));
    }

    #[test]
    fn cold_page_is_threshold_rejected_under_pressure() {
        let mut m = mem(10, 100);
        let mut cfg = OsConfig::builder()
            .watermarks(0.05, 0.1, 0.9) // high watermark ≈ whole DRAM
            .hot_threshold_cycles(100)
            .build()
            .unwrap();
        cfg.hot_threshold_min_cycles = 1;
        let mut e = AutoNuma::new(cfg).unwrap();
        // Put the DRAM free count at/below the high watermark so the
        // gated (threshold) path runs instead of unconditional promotion.
        let filler = m.mmap(2 * PAGE_SIZE, MemPolicy::Bind(Tier::Dram), "fill").unwrap();
        touch(&mut m, &mut e, filler, 0);
        touch(&mut m, &mut e, filler + PAGE_SIZE, 0);
        let a = m.mmap(PAGE_SIZE, MemPolicy::Bind(Tier::Nvm), "x").unwrap();
        touch(&mut m, &mut e, a, 0);
        m.mark_hint(a.page(), 0);
        // Access far later than the 100-cycle threshold.
        let out = touch(&mut m, &mut e, a, 1_000_000);
        assert!(out.hint_fault);
        assert_eq!(e.counters().promo_threshold_rejected, 1);
        assert_eq!(e.counters().pgpromote_success, 0);
        assert_eq!(m.page(a.page()).unwrap().tier, Tier::Nvm);
    }

    #[test]
    fn disabled_autonuma_never_migrates() {
        let mut m = mem(8, 100);
        let mut e =
            AutoNuma::new(OsConfig::builder().autonuma_enabled(false).build().unwrap()).unwrap();
        let a = m.mmap(20 * PAGE_SIZE, MemPolicy::Default, "big").unwrap();
        for i in 0..20 {
            touch(&mut m, &mut e, a + i * PAGE_SIZE, i);
        }
        // Hint marks should never happen, but even a manual one must not
        // trigger promotion.
        m.mark_hint((a + 19 * PAGE_SIZE).page(), 0);
        touch(&mut m, &mut e, a + 19 * PAGE_SIZE, 100);
        e.tick(&mut m, 10_000_000);
        assert!(e.counters().no_migrations());
    }

    #[test]
    fn tick_runs_scanner_and_marks_pages() {
        let mut m = mem(100, 100);
        let mut e =
            AutoNuma::new(OsConfig::builder().scan_period_cycles(1000).build().unwrap()).unwrap();
        let a = m.mmap(4 * PAGE_SIZE, MemPolicy::Default, "x").unwrap();
        for i in 0..4 {
            touch(&mut m, &mut e, a + i * PAGE_SIZE, i);
        }
        let bg = e.tick(&mut m, e.next_event());
        assert!(bg > 0);
        assert!(m.page(a.page()).unwrap().flags.contains(PageFlags::HINT));
    }

    #[test]
    fn kswapd_fires_after_pressure() {
        let mut m = mem(10, 100);
        let mut e = os();
        let a = m.mmap(10 * PAGE_SIZE, MemPolicy::Default, "x").unwrap();
        for i in 0..10 {
            touch(&mut m, &mut e, a + i * PAGE_SIZE, i);
        }
        // Allocation dipped below low watermark → kswapd pending.
        e.tick(&mut m, e.next_event());
        assert!(e.counters().pgdemote_kswapd > 0);
        assert!(m.free_pages(Tier::Dram) >= 2); // high watermark = 20% of 10
    }

    #[test]
    fn file_read_fills_page_cache_dram_first() {
        let mut m = mem(100, 100);
        let mut e = os();
        let (region, wait) = e.file_read(&mut m, 10 * PAGE_SIZE, 0).unwrap();
        assert!(region.is_some());
        assert!(wait > 0);
        assert_eq!(e.counters().page_cache_filled, 10);
        let stat = crate::counters::NumaStat::collect(&m);
        assert_eq!(stat.file_pages[Tier::Dram.index()], 10);
    }

    #[test]
    fn file_read_with_cache_disabled_only_waits() {
        let mut m = mem(100, 100);
        let mut e =
            AutoNuma::new(OsConfig::builder().page_cache_enabled(false).build().unwrap()).unwrap();
        let (region, wait) = e.file_read(&mut m, 10 * PAGE_SIZE, 0).unwrap();
        assert!(region.is_none());
        assert!(wait > 0);
        assert_eq!(m.used_pages(Tier::Dram), 0);
    }

    #[test]
    fn adaptive_scanner_backs_off_when_quiet_and_recovers_on_faults() {
        let mut m = mem(100, 100);
        let mut cfg = OsConfig::builder().scan_period_cycles(1_000).build().unwrap();
        cfg.scan_period_adaptive = true;
        cfg.scan_period_max_cycles = 100_000;
        let mut e = AutoNuma::new(cfg).unwrap();
        let a = m.mmap(4 * PAGE_SIZE, MemPolicy::Default, "x").unwrap();
        for i in 0..4 {
            touch(&mut m, &mut e, a + i * PAGE_SIZE, i);
        }
        // Quiet scans: period grows.
        let mut now = e.next_event();
        for _ in 0..8 {
            e.tick(&mut m, now);
            now = e.next_event();
        }
        let backed_off = e.scan_period_cycles();
        assert!(backed_off > 1_000, "period should back off, got {backed_off}");
        // A hint fault pulls it back down.
        touch(&mut m, &mut e, a, now); // marked by the scans above
        e.tick(&mut m, e.next_event());
        assert!(e.scan_period_cycles() < backed_off);
    }

    #[test]
    fn injected_migrate_busy_retries_then_requeues() {
        use tiersim_mem::{FaultPlan, RATE_ONE};
        // Every migration fails: promotion must retry (with backoff),
        // then give up, leave the page on NVM and requeue its hint.
        let mut m = MemorySystem::new(
            MemConfig::builder()
                .dram_capacity(100 * PAGE_SIZE)
                .nvm_capacity(100 * PAGE_SIZE)
                .fault(FaultPlan { seed: 1, migrate_busy_per_64k: RATE_ONE, ..FaultPlan::none() })
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut e = os();
        let a = m.mmap(PAGE_SIZE, MemPolicy::Bind(Tier::Nvm), "x").unwrap();
        touch(&mut m, &mut e, a, 0);
        assert!(m.mark_hint(a.page(), 5));
        let out = touch(&mut m, &mut e, a, 10);
        assert!(out.hint_fault);
        let c = e.counters();
        assert_eq!(c.pgmigrate_retry, e.config().migrate_max_retries as u64);
        assert_eq!(c.pgmigrate_fail, 1);
        assert_eq!(c.pgpromote_success, 0);
        // Graceful degradation: the page stays on NVM, requeued for a
        // later promotion attempt.
        assert_eq!(m.page(a.page()).unwrap().tier, Tier::Nvm);
        assert!(m.page(a.page()).unwrap().flags.contains(PageFlags::HINT));
    }

    #[test]
    fn injected_alloc_failure_degrades_to_nvm() {
        use tiersim_mem::{FaultPlan, RATE_ONE};
        // Every DRAM allocation fails transiently: default placement
        // must fall back to NVM instead of erroring out.
        let mut m = MemorySystem::new(
            MemConfig::builder()
                .dram_capacity(100 * PAGE_SIZE)
                .nvm_capacity(100 * PAGE_SIZE)
                .fault(FaultPlan {
                    seed: 2,
                    dram_alloc_fail_per_64k: RATE_ONE,
                    ..FaultPlan::none()
                })
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut e = os();
        let a = m.mmap(4 * PAGE_SIZE, MemPolicy::Default, "x").unwrap();
        for i in 0..4 {
            touch(&mut m, &mut e, a + i * PAGE_SIZE, i);
        }
        assert_eq!(e.counters().pgalloc_nvm, 4);
        assert_eq!(m.used_pages(Tier::Dram), 0);
        assert_eq!(m.used_pages(Tier::Nvm), 4);
    }

    #[test]
    fn audit_is_clean_after_mixed_activity() {
        let mut m = mem(10, 100);
        let mut e = AutoNuma::new(
            OsConfig::builder().watermarks(0.05, 0.1, 0.2).audit_every_ticks(1).build().unwrap(),
        )
        .unwrap();
        let a = m.mmap(12 * PAGE_SIZE, MemPolicy::Default, "x").unwrap();
        for i in 0..12 {
            touch(&mut m, &mut e, a + i * PAGE_SIZE, i);
        }
        e.file_read(&mut m, 4 * PAGE_SIZE, 20).unwrap();
        // Ticks run the debug-build checkpoint (audit_every_ticks = 1),
        // which debug_asserts cleanliness on its own.
        for _ in 0..5 {
            let now = e.next_event();
            e.tick(&mut m, now);
        }
        let report = e.audit(&m);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.pages_walked > 0);
        assert!(report.checks > report.pages_walked, "counter laws also checked");
    }

    #[test]
    fn audit_catches_planted_double_counted_promotion() {
        let mut m = mem(100, 100);
        let mut e = os();
        let a = m.mmap(PAGE_SIZE, MemPolicy::Bind(Tier::Nvm), "x").unwrap();
        touch(&mut m, &mut e, a, 0);
        assert!(m.mark_hint(a.page(), 5));
        touch(&mut m, &mut e, a, 10); // real promotion; audit stays clean
        assert!(e.audit(&m).is_clean());
        e.debug_double_count_promotion();
        let report = e.audit(&m);
        assert!(!report.is_clean(), "the planted bug must be detected");
        let v = &report.violations[0];
        assert_eq!(v.invariant, "migration-conservation");
        assert_eq!(v.subject, crate::AuditSubject::Counter("pgmigrate_success"));
    }

    #[test]
    fn audit_catches_tlb_incoherence() {
        // Bypassing the OS engine to unmap without invalidating is not
        // possible through the public API (unmap_page invalidates), so
        // check the other direction: a clean engine-driven state audits
        // clean even with a warm TLB.
        let mut m = mem(10, 10);
        let mut e = os();
        let a = m.mmap(4 * PAGE_SIZE, MemPolicy::Default, "x").unwrap();
        for i in 0..4 {
            touch(&mut m, &mut e, a + i * PAGE_SIZE, i);
        }
        assert!(!m.tlb_cached_pages().is_empty(), "accesses warmed the TLB");
        assert!(e.audit(&m).is_clean());
        // munmap of a region with cached translations must stay coherent.
        m.munmap(a).unwrap();
        assert!(e.audit(&m).is_clean());
    }

    #[test]
    fn fault_around_bulk_maps_following_pages() {
        let mut m = mem(100, 100);
        let mut e = AutoNuma::new(
            OsConfig::builder().watermarks(0.05, 0.1, 0.2).fault_around_pages(16).build().unwrap(),
        )
        .unwrap();
        let a = m.mmap(32 * PAGE_SIZE, MemPolicy::Default, "x").unwrap();
        touch(&mut m, &mut e, a, 0);
        let c = e.counters();
        assert_eq!(c.pgfault, 1);
        assert_eq!(c.pgfault_around, 15, "one fault maps the next 15 pages too");
        assert_eq!(c.pgalloc_dram, 16);
        // The populated pages are resident: touching them faults nothing.
        touch(&mut m, &mut e, a + 15 * PAGE_SIZE, 1);
        assert_eq!(e.counters().pgfault, 1);
        // The next unpopulated page faults and populates the VMA's rest.
        touch(&mut m, &mut e, a + 16 * PAGE_SIZE, 2);
        let c = e.counters();
        assert_eq!(c.pgfault, 2);
        assert_eq!(c.pgfault_around, 30);
        assert_eq!(m.used_pages(Tier::Dram), 32);
        assert!(e.audit(&m).is_clean(), "{:?}", e.audit(&m).violations);
    }

    #[test]
    fn khugepaged_collapses_eligible_blocks() {
        let mut m = mem(HUGE_PAGE_PAGES + 64, 2 * HUGE_PAGE_PAGES);
        let mut e = AutoNuma::new(
            OsConfig::builder()
                .autonuma_enabled(false) // no scanner: hint marks would veto collapse
                .thp_enabled(true)
                .build()
                .unwrap(),
        )
        .unwrap();
        let a = m.mmap(HUGE_PAGE_PAGES * PAGE_SIZE, MemPolicy::Default, "big").unwrap();
        for i in 0..HUGE_PAGE_PAGES {
            touch(&mut m, &mut e, a + i * PAGE_SIZE, i);
        }
        assert!(!m.is_huge(a.page()));
        while e.counters().thp_collapse_alloc == 0 {
            let now = e.next_event();
            e.tick(&mut m, now);
        }
        let c = e.counters();
        assert_eq!(c.thp_collapse_alloc, 1);
        assert!(m.is_huge(a.page()) && m.is_huge((a + 511 * PAGE_SIZE).page()));
        assert_eq!(m.huge_mapped_pages(), HUGE_PAGE_PAGES);
        assert!(e.audit(&m).is_clean(), "{:?}", e.audit(&m).violations);
    }

    #[test]
    fn hint_fault_on_huge_head_splits_and_promotes_whole_block() {
        let mut m = mem(2 * HUGE_PAGE_PAGES, 2 * HUGE_PAGE_PAGES);
        let mut e = os();
        let a = m.mmap(HUGE_PAGE_PAGES * PAGE_SIZE, MemPolicy::Bind(Tier::Nvm), "big").unwrap();
        for i in 0..HUGE_PAGE_PAGES {
            touch(&mut m, &mut e, a + i * PAGE_SIZE, i);
        }
        assert!(m.collapse_huge(a.page()).is_some());
        assert!(m.mark_hint(a.page(), 5));
        let out = touch(&mut m, &mut e, a, 10);
        assert!(out.hint_fault);
        let c = e.counters();
        // One hint fault on the head promoted the whole block: one split,
        // then 512 ordinary per-page promotions.
        assert_eq!(c.numa_hint_faults, 1);
        assert_eq!(c.thp_split, 1);
        assert_eq!(c.pgpromote_success, HUGE_PAGE_PAGES);
        assert_eq!(c.pgmigrate_success, HUGE_PAGE_PAGES);
        assert_eq!(m.page(a.page()).unwrap().tier, Tier::Dram);
        assert_eq!(m.page((a + 511 * PAGE_SIZE).page()).unwrap().tier, Tier::Dram);
        assert_eq!(m.huge_mapped_pages(), 0, "the block was split before migrating");
        // The collapse was done by hand through the memory API, so credit
        // it before auditing: the OS split must balance against exactly
        // one collapse.
        let mut audited = c;
        audited.thp_collapse_alloc += 1;
        let report = crate::audit::run(&m, &audited, e.config());
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn next_event_advances_with_ticks() {
        let mut m = mem(10, 10);
        let mut e = os();
        let first = e.next_event();
        e.tick(&mut m, first);
        assert!(e.next_event() > first);
    }
}
