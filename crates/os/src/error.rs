//! Error types for the OS model.

use core::fmt;

/// Errors produced by the OS memory-management model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsError {
    /// A configuration value was rejected.
    InvalidConfig {
        /// Which parameter was rejected.
        what: &'static str,
        /// The offending value (and, where useful, the accepted range).
        got: String,
    },
    /// Both tiers are exhausted and nothing reclaimable remains.
    OutOfMemory,
    /// An underlying memory-system operation failed unexpectedly.
    Mem(tiersim_mem::MemError),
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::InvalidConfig { what, got } => {
                write!(f, "invalid configuration: {what} (got {got})")
            }
            OsError::OutOfMemory => f.write_str("out of memory: both tiers exhausted"),
            OsError::Mem(e) => write!(f, "memory system error: {e}"),
        }
    }
}

impl std::error::Error for OsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OsError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tiersim_mem::MemError> for OsError {
    fn from(e: tiersim_mem::MemError) -> Self {
        OsError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = OsError::Mem(tiersim_mem::MemError::OutOfMemory);
        assert!(e.to_string().contains("memory system"));
        assert!(e.source().is_some());
        assert!(OsError::OutOfMemory.source().is_none());
    }
}
