//! # tiersim-os — Linux memory-management model with AutoNUMA tiering
//!
//! A faithful behavioral model of the kernel machinery the paper
//! characterizes (Linux 5.15 + the AutoNUMA *tiering-0.8* patch series):
//!
//! - **First-touch placement**: allocations go to DRAM while it has free
//!   space, then spill to NVM (paper Finding 3).
//! - **NUMA-balancing scanner**: periodically marks resident pages so the
//!   next access raises a *hint page fault* ([`Scanner`]).
//! - **Promotion**: a hint fault on an NVM page whose *hint-fault latency*
//!   is below a dynamically adjusted threshold ([`ThresholdController`])
//!   promotes the page to DRAM, subject to a rate limit ([`TokenBucket`]).
//! - **Demotion**: kswapd demotes cold DRAM pages to NVM at the watermark
//!   ([`kswapd_reclaim`]); allocations under `mbind(DRAM)` pressure run
//!   synchronous direct reclaim ([`direct_reclaim_one`]).
//! - **Page cache**: file reads fill free DRAM with clean file pages that
//!   reclaim later demotes or drops (paper Finding 5).
//! - **Counters**: `vmstat`-style [`VmCounters`] (`pgpromote_success`,
//!   `pgpromote_demoted`, `pgdemote_kswapd`, `pgdemote_direct`, …) and
//!   `numastat`-style [`NumaStat`] snapshots, exactly the observables the
//!   paper reads in §6.5–6.7.
//!
//! - **Invariant auditing**: tiersim-audit ([`AuditReport`]) cross-checks
//!   frame ownership, tier capacity, TLB coherence, VMA coverage and
//!   counter conservation laws at configurable [`AutoNuma::tick`]
//!   checkpoints in debug builds (DESIGN.md §9).
//!
//! The central type is [`AutoNuma`]; see its documentation for the three
//! integration hooks (`handle_fault`, `on_access`, `tick`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod audit;
mod config;
mod counters;
mod engine;
mod error;
mod rate_limit;
mod reclaim;
mod replay;
mod scanner;
mod threshold;

pub use audit::{AuditReport, AuditSubject, AuditViolation};
pub use config::{OsConfig, OsConfigBuilder};
pub use counters::{NumaStat, VmCounters};
pub use engine::{AutoNuma, FaultResolution};
pub use error::OsError;
pub use rate_limit::TokenBucket;
pub use reclaim::{
    coldest_dram_pages, direct_reclaim_one, drop_page_cache, kswapd_reclaim, ReclaimOutcome,
};
pub use replay::{replay_counters, replay_matches};
pub use scanner::{ScanReport, Scanner};
pub use threshold::ThresholdController;
