//! Token-bucket promotion rate limiter.

/// A token bucket limiting promotion traffic to a configured byte rate,
/// the simulated equivalent of the kernel's
/// `numa_balancing_rate_limit_mbps`.
///
/// Tokens refill continuously with simulated time; the burst capacity is
/// one second's worth of tokens.
///
/// # Examples
///
/// ```
/// use tiersim_os::TokenBucket;
///
/// // 2 pages per second at 1 Hz "frequency" of 100 cycles/sec.
/// let mut tb = TokenBucket::new(8192, 100);
/// assert!(tb.try_consume(4096, 0));
/// assert!(tb.try_consume(4096, 0));
/// assert!(!tb.try_consume(4096, 0));   // bucket drained
/// assert!(tb.try_consume(4096, 50));   // half a second refills half
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    bytes_per_sec: u64,
    freq_hz: u64,
    /// Whole available tokens, in bytes.
    tokens_bytes: u64,
    /// Fractional-token remainder in byte·cycles: the true token count is
    /// `tokens_bytes + carry / freq_hz` bytes, with `carry < freq_hz`.
    /// Integer fixed-point keeps multi-billion-cycle runs exact — the old
    /// `f64` accumulator drifted by accumulation order once refills
    /// numbered in the millions.
    carry: u64,
    last_refill_cycles: u64,
}

impl TokenBucket {
    /// Creates a bucket allowing `bytes_per_sec` of traffic, starting
    /// full. `freq_hz` converts cycle timestamps to seconds.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz == 0`.
    pub fn new(bytes_per_sec: u64, freq_hz: u64) -> Self {
        assert!(freq_hz > 0, "frequency must be positive");
        TokenBucket {
            bytes_per_sec,
            freq_hz,
            tokens_bytes: bytes_per_sec,
            carry: 0,
            last_refill_cycles: 0,
        }
    }

    /// The configured rate in bytes per second.
    pub fn rate(&self) -> u64 {
        self.bytes_per_sec
    }

    fn refill(&mut self, now_cycles: u64) {
        if now_cycles > self.last_refill_cycles {
            // Earned tokens since the last refill, in byte·cycles; u128
            // so dt × rate cannot overflow even at u64-extreme knobs.
            let earned = u128::from(now_cycles - self.last_refill_cycles)
                * u128::from(self.bytes_per_sec)
                + u128::from(self.carry);
            let freq = u128::from(self.freq_hz);
            let whole = u128::from(self.tokens_bytes) + earned / freq;
            if whole >= u128::from(self.bytes_per_sec) {
                // Burst capacity is one second of rate; at the cap the
                // fractional remainder is forfeit (the f64 model's `min`
                // landed on exactly the integer rate too).
                self.tokens_bytes = self.bytes_per_sec;
                self.carry = 0;
            } else {
                // Integer narrowings, not float truncation: `whole` < rate
                // ≤ u64::MAX and `earned % freq` < freq ≤ u64::MAX, so both
                // are exact. tiersim-lint: allow(float-trunc)
                self.tokens_bytes = whole as u64;
                self.carry = (earned % freq) as u64; // tiersim-lint: allow(float-trunc)
            }
            self.last_refill_cycles = now_cycles;
        }
    }

    /// Attempts to consume `bytes`; returns `false` (consuming nothing) if
    /// insufficient tokens are available at `now_cycles`.
    ///
    /// A request larger than one second of rate (the burst capacity) can
    /// *never* succeed, no matter how long the bucket refills — which is
    /// why `OsConfig` rejects rates below the page size at build time:
    /// with a sub-page budget every page-sized promotion would be denied
    /// forever, silently.
    pub fn try_consume(&mut self, bytes: u64, now_cycles: u64) -> bool {
        self.refill(now_cycles);
        // `tokens_bytes + carry/freq >= bytes` iff `tokens_bytes >= bytes`
        // (the carry is strictly less than one byte).
        if self.tokens_bytes >= bytes {
            self.tokens_bytes -= bytes;
            true
        } else {
            false
        }
    }

    /// Tokens currently available, in bytes, rounded down: a fractional
    /// token (held in the carry) is not a spendable byte.
    pub fn available(&mut self, now_cycles: u64) -> u64 {
        self.refill(now_cycles);
        self.tokens_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_drains() {
        let mut tb = TokenBucket::new(100, 1000);
        assert!(tb.try_consume(60, 0));
        assert!(tb.try_consume(40, 0));
        assert!(!tb.try_consume(1, 0));
    }

    #[test]
    fn refills_with_time() {
        let mut tb = TokenBucket::new(100, 1000);
        assert!(tb.try_consume(100, 0));
        assert!(!tb.try_consume(50, 100)); // 0.1 s → 10 tokens
        assert!(tb.try_consume(50, 500)); // 0.5 s → 50 tokens
    }

    #[test]
    fn never_exceeds_burst() {
        let mut tb = TokenBucket::new(100, 1000);
        assert_eq!(tb.available(1_000_000), 100);
    }

    #[test]
    fn available_rounds_down_fractional_tokens() {
        let mut tb = TokenBucket::new(100, 1000);
        assert!(tb.try_consume(100, 0));
        // 5 cycles = 5 ms → 0.5 tokens: not a spendable byte yet.
        assert_eq!(tb.available(5), 0);
        assert_eq!(tb.available(15), 1, "1.5 tokens floors to 1");
    }

    #[test]
    fn request_above_burst_capacity_never_succeeds() {
        // The stall hazard behind the config-time rate check: burst is one
        // second of rate, so an oversized request fails at every horizon.
        let mut tb = TokenBucket::new(100, 1000);
        for t in [0, 1_000, 100_000, 10_000_000] {
            assert!(!tb.try_consume(101, t), "t={t}");
            assert_eq!(tb.available(t), 100, "denied requests consume nothing");
        }
    }

    /// The pre-fix accumulator, verbatim: tokens in `f64`, refill via
    /// seconds, burst-capped with `min`. In the regime where every f64
    /// operation is exact (power-of-two frequency, magnitudes below
    /// 2^53), this *is* the model the fixed-point bucket must reproduce
    /// decision-for-decision.
    struct FloatBucket {
        bytes_per_sec: u64,
        freq_hz: u64,
        tokens: f64,
        last_refill_cycles: u64,
    }

    impl FloatBucket {
        fn new(bytes_per_sec: u64, freq_hz: u64) -> Self {
            FloatBucket {
                bytes_per_sec,
                freq_hz,
                tokens: bytes_per_sec as f64,
                last_refill_cycles: 0,
            }
        }

        fn refill(&mut self, now_cycles: u64) {
            if now_cycles > self.last_refill_cycles {
                let dt = (now_cycles - self.last_refill_cycles) as f64 / self.freq_hz as f64;
                self.tokens =
                    (self.tokens + dt * self.bytes_per_sec as f64).min(self.bytes_per_sec as f64);
                self.last_refill_cycles = now_cycles;
            }
        }

        fn try_consume(&mut self, bytes: u64, now_cycles: u64) -> bool {
            self.refill(now_cycles);
            if self.tokens >= bytes as f64 {
                self.tokens -= bytes as f64;
                true
            } else {
                false
            }
        }

        fn available(&mut self, now_cycles: u64) -> u64 {
            self.refill(now_cycles);
            self.tokens.floor() as u64
        }
    }

    /// An independent exact reference: the whole token balance as one
    /// byte·cycle numerator over `freq_hz`, never split into a
    /// whole/carry pair — a different factoring of the same rational
    /// arithmetic, so a slip in the bucket's carry algebra cannot hide.
    struct RationalBucket {
        bytes_per_sec: u64,
        freq_hz: u64,
        /// Tokens in byte·cycles (value = numerator / freq_hz bytes).
        numerator: u128,
        last_refill_cycles: u64,
    }

    impl RationalBucket {
        fn new(bytes_per_sec: u64, freq_hz: u64) -> Self {
            RationalBucket {
                bytes_per_sec,
                freq_hz,
                numerator: u128::from(bytes_per_sec) * u128::from(freq_hz),
                last_refill_cycles: 0,
            }
        }

        fn refill(&mut self, now_cycles: u64) {
            if now_cycles > self.last_refill_cycles {
                let burst = u128::from(self.bytes_per_sec) * u128::from(self.freq_hz);
                self.numerator += u128::from(now_cycles - self.last_refill_cycles)
                    * u128::from(self.bytes_per_sec);
                if self.numerator >= burst {
                    self.numerator = burst;
                }
                self.last_refill_cycles = now_cycles;
            }
        }

        fn try_consume(&mut self, bytes: u64, now_cycles: u64) -> bool {
            self.refill(now_cycles);
            let want = u128::from(bytes) * u128::from(self.freq_hz);
            if self.numerator >= want {
                self.numerator -= want;
                true
            } else {
                false
            }
        }

        fn available(&mut self, now_cycles: u64) -> u64 {
            self.refill(now_cycles);
            (self.numerator / u128::from(self.freq_hz)) as u64
        }
    }

    proptest::proptest! {
        /// Fixed-point bucket ≡ pre-fix f64 bucket, decision for decision,
        /// in the regime where f64 arithmetic is exact: power-of-two
        /// frequency (1/freq is a binary fraction) and sub-2^53 products.
        /// This pins the replacement to the old model's semantics —
        /// including `available`'s floor — before the regimes diverge.
        #[test]
        fn prop_fixed_point_matches_f64_model_where_f64_is_exact(
            rate in 1u64..1_000_000,
            freq_shift in 0u32..20,
            steps in proptest::collection::vec(
                (1u64..10_000, 0u64..2_000_000, proptest::bool::ANY),
                1..200,
            ),
        ) {
            let freq = 1u64 << freq_shift;
            let mut fixed = TokenBucket::new(rate, freq);
            let mut float = FloatBucket::new(rate, freq);
            let mut now = 0u64;
            for (dt, bytes, query) in steps {
                now += dt;
                if query {
                    proptest::prop_assert_eq!(fixed.available(now), float.available(now));
                } else {
                    proptest::prop_assert_eq!(
                        fixed.try_consume(bytes, now),
                        float.try_consume(bytes, now)
                    );
                }
            }
            proptest::prop_assert_eq!(fixed.available(now), float.available(now));
        }

        /// Against the independent exact rational reference the bucket is
        /// equivalent for *arbitrary* frequencies and multi-billion-cycle
        /// schedules — exactly where the f64 accumulator started to
        /// drift by accumulation order.
        #[test]
        fn prop_fixed_point_matches_exact_rational_reference(
            rate in 1u64..u64::MAX / 2,
            freq in 1u64..u64::MAX / 2,
            steps in proptest::collection::vec(
                (1u64..4_000_000_000, 0u64..u64::MAX / 2, proptest::bool::ANY),
                1..200,
            ),
        ) {
            let mut fixed = TokenBucket::new(rate, freq);
            let mut exact = RationalBucket::new(rate, freq);
            let mut now = 0u64;
            for (dt, bytes, query) in steps {
                now += dt;
                if query {
                    proptest::prop_assert_eq!(fixed.available(now), exact.available(now));
                } else {
                    proptest::prop_assert_eq!(
                        fixed.try_consume(bytes, now),
                        exact.try_consume(bytes, now)
                    );
                }
            }
        }
    }

    #[test]
    fn long_horizon_has_no_accumulation_drift() {
        // Regression: many tiny refills vs one big refill must agree
        // exactly. The f64 accumulator answered these differently once
        // enough fractional refills stacked up.
        let rate = 999_983u64; // prime: every cycle carries a remainder
        let freq = 2_600_000_000u64;
        let mut dribble = TokenBucket::new(rate, freq);
        let mut leap = TokenBucket::new(rate, freq);
        assert!(dribble.try_consume(rate, 0));
        assert!(leap.try_consume(rate, 0));
        let mut now = 0u64;
        for step in 1..=50_000u64 {
            now += step % 97 + 1;
            dribble.refill(now);
        }
        assert_eq!(dribble.available(now), leap.available(now));
        assert_eq!(dribble.carry, leap.carry, "remainders agree byte·cycle-exactly");
    }

    #[test]
    fn rate_respected_over_time() {
        // Consume as fast as possible for 10 simulated seconds; total must
        // be within (burst + 10 s × rate).
        let rate = 1000u64;
        let mut tb = TokenBucket::new(rate, 1000);
        let mut consumed = 0u64;
        for t in 0..10_000 {
            if tb.try_consume(7, t) {
                consumed += 7;
            }
        }
        assert!(consumed <= rate + 10 * rate);
        assert!(consumed >= 9 * rate, "limiter should not be overly strict: {consumed}");
    }
}
