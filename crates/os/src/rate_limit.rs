//! Token-bucket promotion rate limiter.

/// A token bucket limiting promotion traffic to a configured byte rate,
/// the simulated equivalent of the kernel's
/// `numa_balancing_rate_limit_mbps`.
///
/// Tokens refill continuously with simulated time; the burst capacity is
/// one second's worth of tokens.
///
/// # Examples
///
/// ```
/// use tiersim_os::TokenBucket;
///
/// // 2 pages per second at 1 Hz "frequency" of 100 cycles/sec.
/// let mut tb = TokenBucket::new(8192, 100);
/// assert!(tb.try_consume(4096, 0));
/// assert!(tb.try_consume(4096, 0));
/// assert!(!tb.try_consume(4096, 0));   // bucket drained
/// assert!(tb.try_consume(4096, 50));   // half a second refills half
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    bytes_per_sec: u64,
    freq_hz: u64,
    /// Available tokens in bytes.
    tokens: f64,
    last_refill_cycles: u64,
}

impl TokenBucket {
    /// Creates a bucket allowing `bytes_per_sec` of traffic, starting
    /// full. `freq_hz` converts cycle timestamps to seconds.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz == 0`.
    pub fn new(bytes_per_sec: u64, freq_hz: u64) -> Self {
        assert!(freq_hz > 0, "frequency must be positive");
        TokenBucket { bytes_per_sec, freq_hz, tokens: bytes_per_sec as f64, last_refill_cycles: 0 }
    }

    /// The configured rate in bytes per second.
    pub fn rate(&self) -> u64 {
        self.bytes_per_sec
    }

    fn refill(&mut self, now_cycles: u64) {
        if now_cycles > self.last_refill_cycles {
            let dt = (now_cycles - self.last_refill_cycles) as f64 / self.freq_hz as f64;
            self.tokens =
                (self.tokens + dt * self.bytes_per_sec as f64).min(self.bytes_per_sec as f64);
            self.last_refill_cycles = now_cycles;
        }
    }

    /// Attempts to consume `bytes`; returns `false` (consuming nothing) if
    /// insufficient tokens are available at `now_cycles`.
    ///
    /// A request larger than one second of rate (the burst capacity) can
    /// *never* succeed, no matter how long the bucket refills — which is
    /// why `OsConfig` rejects rates below the page size at build time:
    /// with a sub-page budget every page-sized promotion would be denied
    /// forever, silently.
    pub fn try_consume(&mut self, bytes: u64, now_cycles: u64) -> bool {
        self.refill(now_cycles);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// Tokens currently available, in bytes.
    pub fn available(&mut self, now_cycles: u64) -> u64 {
        self.refill(now_cycles);
        // Round down explicitly: a fractional token is not a spendable
        // byte, and the bare `as u64` truncation reads like an accident.
        self.tokens.floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_drains() {
        let mut tb = TokenBucket::new(100, 1000);
        assert!(tb.try_consume(60, 0));
        assert!(tb.try_consume(40, 0));
        assert!(!tb.try_consume(1, 0));
    }

    #[test]
    fn refills_with_time() {
        let mut tb = TokenBucket::new(100, 1000);
        assert!(tb.try_consume(100, 0));
        assert!(!tb.try_consume(50, 100)); // 0.1 s → 10 tokens
        assert!(tb.try_consume(50, 500)); // 0.5 s → 50 tokens
    }

    #[test]
    fn never_exceeds_burst() {
        let mut tb = TokenBucket::new(100, 1000);
        assert_eq!(tb.available(1_000_000), 100);
    }

    #[test]
    fn available_rounds_down_fractional_tokens() {
        let mut tb = TokenBucket::new(100, 1000);
        assert!(tb.try_consume(100, 0));
        // 5 cycles = 5 ms → 0.5 tokens: not a spendable byte yet.
        assert_eq!(tb.available(5), 0);
        assert_eq!(tb.available(15), 1, "1.5 tokens floors to 1");
    }

    #[test]
    fn request_above_burst_capacity_never_succeeds() {
        // The stall hazard behind the config-time rate check: burst is one
        // second of rate, so an oversized request fails at every horizon.
        let mut tb = TokenBucket::new(100, 1000);
        for t in [0, 1_000, 100_000, 10_000_000] {
            assert!(!tb.try_consume(101, t), "t={t}");
            assert_eq!(tb.available(t), 100, "denied requests consume nothing");
        }
    }

    #[test]
    fn rate_respected_over_time() {
        // Consume as fast as possible for 10 simulated seconds; total must
        // be within (burst + 10 s × rate).
        let rate = 1000u64;
        let mut tb = TokenBucket::new(rate, 1000);
        let mut consumed = 0u64;
        for t in 0..10_000 {
            if tb.try_consume(7, t) {
                consumed += 7;
            }
        }
        assert!(consumed <= rate + 10 * rate);
        assert!(consumed >= 9 * rate, "limiter should not be overly strict: {consumed}");
    }
}
