//! Reclaim: kswapd demotion, direct reclaim, and page-cache dropping.

use crate::config::OsConfig;
use crate::counters::VmCounters;
use tiersim_mem::{MemError, MemorySystem, PageFlags, PageNum, Tier, TraceEvent};

/// Result of one reclaim pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimOutcome {
    /// Pages demoted DRAM→NVM.
    pub demoted: u64,
    /// Clean page-cache pages dropped outright.
    pub dropped: u64,
    /// Kernel + device cycles spent.
    pub cost_cycles: u64,
}

/// Returns up to `k` DRAM-resident pages, coldest first under an
/// *epoch-quantized* recency order: last-access times are truncated to
/// `quantum_cycles` before comparison (ties broken by address), because
/// the kernel only observes references at page-table-scan granularity —
/// its LRU is coarse, not exact. With `quantum_cycles == 1` this degrades
/// to exact LRU (useful in tests).
pub fn coldest_dram_pages(mem: &MemorySystem, k: usize, quantum_cycles: u64) -> Vec<PageNum> {
    let q = quantum_cycles.max(1);
    let mut candidates: Vec<(u64, PageNum)> = mem
        .resident_pages()
        .filter(|(_, info)| info.tier == Tier::Dram)
        .map(|(pn, info)| (info.last_access / q, pn))
        .collect();
    candidates.sort_unstable();
    candidates.truncate(k);
    candidates.into_iter().map(|(_, pn)| pn).collect()
}

/// Demotes one page DRAM→NVM, falling back to dropping it if it is clean
/// page cache and NVM is full. Returns the cycles spent, or `None` if the
/// page could not be reclaimed.
fn reclaim_one(
    mem: &mut MemorySystem,
    counters: &mut VmCounters,
    cfg: &OsConfig,
    pn: PageNum,
    kswapd: bool,
) -> Option<u64> {
    let info = mem.page(pn)?;
    let mut attempts = 0;
    let mut retry_cost = 0;
    if info.huge {
        // A collapsed 2 MiB mapping cannot be migrated whole: split it
        // back into 4 KiB pages first (the kernel splits THPs ahead of
        // demotion), then demote this one victim like any other page.
        if mem.split_huge(pn).is_some() {
            counters.thp_split += 1;
            mem.trace_mut().record(TraceEvent::ThpSplit { page: pn.huge_head().index() });
            retry_cost += cfg.migration_overhead_cycles / 4;
        }
    }
    let migrated = loop {
        match mem.migrate_page(pn, Tier::Nvm) {
            Err(e) if e.is_transient() => {
                if attempts < cfg.migrate_max_retries {
                    attempts += 1;
                    counters.pgmigrate_retry += 1;
                    mem.trace_mut().record(TraceEvent::MigrateRetry { page: pn.index() });
                    retry_cost += cfg.migrate_retry_backoff_cycles;
                } else {
                    // Busy page that outlived its retries (the kernel's
                    // pgmigrate_fail): skip this victim, it stays on
                    // DRAM and a later pass may reclaim it.
                    counters.pgmigrate_fail += 1;
                    mem.trace_mut().record(TraceEvent::MigrateFail { page: pn.index() });
                    return None;
                }
            }
            other => break other,
        }
    };
    match migrated {
        Ok(copy_cycles) => {
            if kswapd {
                counters.pgdemote_kswapd += 1;
                mem.trace_mut().record(TraceEvent::DemoteKswapd { page: pn.index() });
            } else {
                counters.pgdemote_direct += 1;
                mem.trace_mut().record(TraceEvent::DemoteDirect { page: pn.index() });
            }
            counters.pgmigrate_success += 1;
            if info.flags.contains(PageFlags::WAS_PROMOTED) {
                counters.pgpromote_demoted += 1;
                mem.trace_mut().record(TraceEvent::PromoteDemoted { page: pn.index() });
                mem.page_update(pn, |p| p.flags.remove(PageFlags::WAS_PROMOTED));
            }
            Some(copy_cycles + cfg.migration_overhead_cycles + retry_cost)
        }
        Err(MemError::TierFull { .. }) => {
            // NVM is full: clean file pages can simply be dropped.
            if info.flags.contains(PageFlags::PAGE_CACHE) {
                mem.unmap_page(pn).ok()?;
                counters.page_cache_dropped += 1;
                mem.trace_mut().record(TraceEvent::PageCacheDrop { page: pn.index() });
                Some(cfg.migration_overhead_cycles / 2)
            } else {
                None
            }
        }
        Err(_) => None,
    }
}

/// Periodic (kswapd) reclaim: demotes cold DRAM pages until free DRAM
/// rises above the `high` watermark, bounded by the batch size.
pub fn kswapd_reclaim(
    mem: &mut MemorySystem,
    counters: &mut VmCounters,
    cfg: &OsConfig,
) -> ReclaimOutcome {
    let mut out = ReclaimOutcome::default();
    let capacity = mem.capacity_pages(Tier::Dram);
    let high = (capacity as f64 * cfg.wmark_high_frac) as u64;
    if mem.free_pages(Tier::Dram) >= high {
        return out;
    }
    let need = (high - mem.free_pages(Tier::Dram)).min(cfg.kswapd_batch_pages);
    // Injected reclaim stall (writeback/lock contention): one draw per
    // reclaim pass, charged to the kswapd thread.
    let stall = mem.faults_mut().reclaim_stall_cycles();
    if stall > 0 {
        mem.trace_mut().record(TraceEvent::ReclaimStall { cycles: stall });
    }
    out.cost_cycles += stall;
    let victims = coldest_dram_pages(mem, need as usize, cfg.lru_quantum_cycles);
    for pn in victims {
        if mem.free_pages(Tier::Dram) >= high {
            break;
        }
        let was_cache =
            mem.page(pn).map(|p| p.flags.contains(PageFlags::PAGE_CACHE)).unwrap_or(false);
        let before_dropped = counters.page_cache_dropped;
        if let Some(cycles) = reclaim_one(mem, counters, cfg, pn, true) {
            out.cost_cycles += cycles;
            if was_cache && counters.page_cache_dropped > before_dropped {
                out.dropped += 1;
            } else {
                out.demoted += 1;
            }
        }
    }
    out
}

/// Synchronous direct reclaim on the allocation path: demotes the single
/// coldest DRAM page to make room. Returns the cycles spent, or `None` if
/// nothing could be reclaimed.
pub fn direct_reclaim_one(
    mem: &mut MemorySystem,
    counters: &mut VmCounters,
    cfg: &OsConfig,
) -> Option<u64> {
    // Injected reclaim stall: the allocating thread eats it directly.
    let stall = mem.faults_mut().reclaim_stall_cycles();
    if stall > 0 {
        mem.trace_mut().record(TraceEvent::ReclaimStall { cycles: stall });
    }
    for pn in coldest_dram_pages(mem, 8, cfg.lru_quantum_cycles) {
        if let Some(cycles) = reclaim_one(mem, counters, cfg, pn, false) {
            return Some(cycles + stall);
        }
    }
    None
}

/// Vanilla-kernel reclaim used when AutoNUMA tiering is disabled: drops up
/// to `max_pages` of the coldest *clean page-cache* pages on DRAM (no
/// migrations, so all tiering counters stay zero — the paper's §6.6
/// sanity check).
pub fn drop_page_cache(
    mem: &mut MemorySystem,
    counters: &mut VmCounters,
    max_pages: u64,
) -> ReclaimOutcome {
    let mut out = ReclaimOutcome::default();
    let mut candidates: Vec<(u64, PageNum)> = mem
        .resident_pages()
        .filter(|(_, info)| info.tier == Tier::Dram && info.flags.contains(PageFlags::PAGE_CACHE))
        .map(|(pn, info)| (info.last_access, pn))
        .collect();
    candidates.sort_unstable();
    for (_, pn) in candidates.into_iter().take(max_pages as usize) {
        if mem.unmap_page(pn).is_ok() {
            counters.page_cache_dropped += 1;
            mem.trace_mut().record(TraceEvent::PageCacheDrop { page: pn.index() });
            out.dropped += 1;
            out.cost_cycles += 1_000;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim_mem::{MemConfig, MemPolicy, PAGE_SIZE};

    fn setup(dram_pages: u64, nvm_pages: u64) -> MemorySystem {
        MemorySystem::new(
            MemConfig::builder()
                .dram_capacity(dram_pages * PAGE_SIZE)
                .nvm_capacity(nvm_pages * PAGE_SIZE)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    fn cfg() -> OsConfig {
        OsConfig::builder().watermarks(0.1, 0.2, 0.4).build().unwrap()
    }

    /// Maps `n` pages on DRAM with ascending last-access times.
    fn fill_dram(mem: &mut MemorySystem, n: u64) -> tiersim_mem::VirtAddr {
        let a = mem.mmap(n * PAGE_SIZE, MemPolicy::Default, "data").unwrap();
        for i in 0..n {
            let pn = (a + i * PAGE_SIZE).page();
            mem.map_page(pn, Tier::Dram, i).unwrap();
        }
        a
    }

    #[test]
    fn coldest_orders_by_last_access() {
        let mut m = setup(10, 10);
        let a = fill_dram(&mut m, 5);
        // Touch page 0 late so it becomes hottest.
        m.page_update(a.page(), |p| p.last_access = 100).unwrap();
        let cold = coldest_dram_pages(&m, 2, 1);
        assert_eq!(cold, vec![(a + PAGE_SIZE).page(), (a + 2 * PAGE_SIZE).page()]);
    }

    #[test]
    fn kswapd_demotes_to_high_watermark() {
        let mut m = setup(10, 20);
        fill_dram(&mut m, 10); // 0 free, high = 4
        let mut c = VmCounters::default();
        let out = kswapd_reclaim(&mut m, &mut c, &cfg());
        assert_eq!(out.demoted, 4);
        assert_eq!(m.free_pages(Tier::Dram), 4);
        assert_eq!(c.pgdemote_kswapd, 4);
        assert_eq!(c.pgmigrate_success, 4);
        assert!(out.cost_cycles > 0);
    }

    #[test]
    fn kswapd_noop_above_watermark() {
        let mut m = setup(10, 10);
        fill_dram(&mut m, 2); // 8 free > high of 4
        let mut c = VmCounters::default();
        let out = kswapd_reclaim(&mut m, &mut c, &cfg());
        assert_eq!(out, ReclaimOutcome::default());
        assert_eq!(c.pgdemote_kswapd, 0);
    }

    #[test]
    fn demoting_promoted_page_counts_thrash() {
        let mut m = setup(4, 10);
        let a = fill_dram(&mut m, 4);
        m.page_update(a.page(), |p| p.flags.insert(PageFlags::WAS_PROMOTED)).unwrap();
        let mut c = VmCounters::default();
        kswapd_reclaim(&mut m, &mut c, &cfg());
        assert_eq!(c.pgpromote_demoted, 1);
    }

    #[test]
    fn clean_page_cache_is_dropped_when_nvm_full() {
        let mut m = setup(4, 1);
        // Fill NVM so demotion fails.
        let n = m.mmap(PAGE_SIZE, MemPolicy::Default, "nvmfill").unwrap();
        m.map_page(n.page(), Tier::Nvm, 0).unwrap();
        let a = fill_dram(&mut m, 4);
        for i in 0..4 {
            m.page_update((a + i * PAGE_SIZE).page(), |p| p.flags.insert(PageFlags::PAGE_CACHE))
                .unwrap();
        }
        let mut c = VmCounters::default();
        let out = kswapd_reclaim(&mut m, &mut c, &cfg());
        assert!(out.dropped > 0);
        assert_eq!(out.demoted, 0);
        assert_eq!(c.page_cache_dropped, out.dropped);
    }

    #[test]
    fn anon_pages_cannot_be_reclaimed_when_nvm_full() {
        let mut m = setup(2, 1);
        let n = m.mmap(PAGE_SIZE, MemPolicy::Default, "nvmfill").unwrap();
        m.map_page(n.page(), Tier::Nvm, 0).unwrap();
        fill_dram(&mut m, 2);
        let mut c = VmCounters::default();
        assert!(direct_reclaim_one(&mut m, &mut c, &cfg()).is_none());
    }

    #[test]
    fn direct_reclaim_demotes_one() {
        let mut m = setup(4, 10);
        fill_dram(&mut m, 4);
        let mut c = VmCounters::default();
        let cycles = direct_reclaim_one(&mut m, &mut c, &cfg()).unwrap();
        assert!(cycles > 0);
        assert_eq!(c.pgdemote_direct, 1);
        assert_eq!(m.free_pages(Tier::Dram), 1);
    }

    #[test]
    fn busy_victims_are_skipped_and_counted() {
        use tiersim_mem::{FaultPlan, RATE_ONE};
        // Every migration fails: kswapd must skip all victims without
        // freeing anything, counting retries and permanent failures.
        let mut m = MemorySystem::new(
            MemConfig::builder()
                .dram_capacity(10 * PAGE_SIZE)
                .nvm_capacity(20 * PAGE_SIZE)
                .fault(FaultPlan { seed: 4, migrate_busy_per_64k: RATE_ONE, ..FaultPlan::none() })
                .build()
                .unwrap(),
        )
        .unwrap();
        fill_dram(&mut m, 10);
        let mut c = VmCounters::default();
        let out = kswapd_reclaim(&mut m, &mut c, &cfg());
        assert_eq!(out.demoted, 0);
        assert_eq!(m.free_pages(Tier::Dram), 0, "nothing reclaimed under total busy");
        assert!(c.pgmigrate_fail > 0);
        assert_eq!(c.pgmigrate_retry, c.pgmigrate_fail * cfg().migrate_max_retries as u64);
        assert_eq!(c.pgdemote_kswapd, 0);
    }

    #[test]
    fn injected_reclaim_stall_charges_cycles() {
        use tiersim_mem::{FaultPlan, RATE_ONE};
        let plan = FaultPlan {
            seed: 5,
            reclaim_stall_per_64k: RATE_ONE,
            reclaim_stall_cycles: 123_456,
            ..FaultPlan::none()
        };
        let mut m = MemorySystem::new(
            MemConfig::builder()
                .dram_capacity(10 * PAGE_SIZE)
                .nvm_capacity(20 * PAGE_SIZE)
                .fault(plan)
                .build()
                .unwrap(),
        )
        .unwrap();
        fill_dram(&mut m, 10);
        let mut c = VmCounters::default();
        let out = kswapd_reclaim(&mut m, &mut c, &cfg());
        assert!(out.cost_cycles >= 123_456, "stall charged: {}", out.cost_cycles);
        assert_eq!(m.fault_stats().reclaim_stalls, 1);
    }

    #[test]
    fn huge_victim_is_split_before_demotion() {
        use tiersim_mem::HUGE_PAGE_PAGES;
        let mut m = setup(HUGE_PAGE_PAGES, 2 * HUGE_PAGE_PAGES);
        let a = fill_dram(&mut m, HUGE_PAGE_PAGES);
        let head = a.page();
        assert!(m.collapse_huge(head).is_some());
        let mut c = VmCounters::default();
        let out = kswapd_reclaim(&mut m, &mut c, &cfg());
        // The first victim forced exactly one split; demotion then
        // proceeded page by page up to the high watermark.
        assert_eq!(c.thp_split, 1);
        assert!(out.demoted > 0);
        assert_eq!(c.pgdemote_kswapd, out.demoted);
        assert!(!m.is_huge(head), "the block must no longer be huge");
    }

    #[test]
    fn drop_page_cache_only_touches_file_pages() {
        let mut m = setup(6, 6);
        let a = fill_dram(&mut m, 4);
        m.page_update(a.page(), |p| p.flags.insert(PageFlags::PAGE_CACHE)).unwrap();
        m.page_update((a + PAGE_SIZE).page(), |p| p.flags.insert(PageFlags::PAGE_CACHE)).unwrap();
        let mut c = VmCounters::default();
        let out = drop_page_cache(&mut m, &mut c, 10);
        assert_eq!(out.dropped, 2);
        assert_eq!(m.used_pages(Tier::Dram), 2);
        assert!(c.no_migrations());
    }
}
