//! Replay a trace back into the `VmCounters` it implies.
//!
//! Every counter-bearing [`TraceEvent`] maps to one or more `vmstat`
//! fields; replaying a complete (nothing-dropped) trace must therefore
//! reproduce the counter deltas the simulation reported. This is the
//! conservation law the trace property tests assert (DESIGN.md §11): if
//! the two ever disagree, either an instrumentation point is missing or a
//! counter is being bumped twice.

use crate::counters::VmCounters;
use tiersim_mem::{RejectReason, TraceEvent, TraceRecord};

/// Accumulates the [`VmCounters`] deltas implied by a trace.
///
/// Only counters that have a corresponding trace event are populated;
/// allocation-path counters (`pgalloc_*`, `pgfault`, `page_cache_filled`)
/// and `kswapd_runs` have no event and stay zero (`pgfault_around` *is*
/// replayable: each `FaultAround` event carries the extras it mapped). Rate-limiter bookkeeping
/// events (`RateLimitConsume`/`RateLimitDeny`) deliberately map to
/// nothing: the deny is already counted via
/// `PromoteReject { reason: RateLimited }`.
///
/// # Examples
///
/// ```
/// use tiersim_mem::{TraceEvent, TraceRecord};
/// use tiersim_os::replay_counters;
///
/// let records = [TraceRecord { now: 10, seq: 0, event: TraceEvent::HintFault { page: 7 } }];
/// assert_eq!(replay_counters(&records).numa_hint_faults, 1);
/// ```
pub fn replay_counters(records: &[TraceRecord]) -> VmCounters {
    let mut c = VmCounters::default();
    for r in records {
        match r.event {
            TraceEvent::HintFault { .. } => c.numa_hint_faults += 1,
            TraceEvent::PromoteCandidate { .. } => c.pgpromote_candidate += 1,
            TraceEvent::PromoteAccept { .. } => {
                c.pgpromote_success += 1;
                c.pgmigrate_success += 1;
            }
            TraceEvent::PromoteReject { reason, .. } => match reason {
                RejectReason::Threshold => c.promo_threshold_rejected += 1,
                RejectReason::RateLimited => c.promo_rate_limited += 1,
                RejectReason::NoSpace => c.promo_no_space += 1,
            },
            TraceEvent::DemoteKswapd { .. } => {
                c.pgdemote_kswapd += 1;
                c.pgmigrate_success += 1;
            }
            TraceEvent::DemoteDirect { .. } => {
                c.pgdemote_direct += 1;
                c.pgmigrate_success += 1;
            }
            TraceEvent::PromoteDemoted { .. } => c.pgpromote_demoted += 1,
            TraceEvent::MigrateRetry { .. } => c.pgmigrate_retry += 1,
            TraceEvent::MigrateFail { .. } => c.pgmigrate_fail += 1,
            TraceEvent::PageCacheDrop { .. } => c.page_cache_dropped += 1,
            TraceEvent::ThpCollapse { .. } => c.thp_collapse_alloc += 1,
            TraceEvent::ThpSplit { .. } => c.thp_split += 1,
            TraceEvent::FaultAround { pages, .. } => c.pgfault_around += pages,
            // Bookkeeping events that carry no vmstat field of their own.
            // The cell lifecycle events belong to the sweep journal layer
            // (`tiersim-core`), which never mixes into an OS trace.
            TraceEvent::ThresholdAdjust { .. }
            | TraceEvent::RateLimitConsume { .. }
            | TraceEvent::RateLimitDeny { .. }
            | TraceEvent::FaultInjected { .. }
            | TraceEvent::ReclaimStall { .. }
            | TraceEvent::CellStart { .. }
            | TraceEvent::CellDone { .. }
            | TraceEvent::CellRetry { .. }
            | TraceEvent::CellQuarantine { .. }
            | TraceEvent::RungStart { .. }
            | TraceEvent::CellScored { .. }
            | TraceEvent::ParetoUpdate { .. } => {}
        }
    }
    c
}

/// Returns `true` if the replayed counters match `observed` on every field
/// the trace can reconstruct (allocation-path counters are ignored, see
/// [`replay_counters`]).
pub fn replay_matches(records: &[TraceRecord], observed: &VmCounters) -> bool {
    let r = replay_counters(records);
    r.numa_hint_faults == observed.numa_hint_faults
        && r.pgpromote_candidate == observed.pgpromote_candidate
        && r.pgpromote_success == observed.pgpromote_success
        && r.pgpromote_demoted == observed.pgpromote_demoted
        && r.pgdemote_kswapd == observed.pgdemote_kswapd
        && r.pgdemote_direct == observed.pgdemote_direct
        && r.pgmigrate_success == observed.pgmigrate_success
        && r.promo_rate_limited == observed.promo_rate_limited
        && r.promo_threshold_rejected == observed.promo_threshold_rejected
        && r.promo_no_space == observed.promo_no_space
        && r.pgmigrate_fail == observed.pgmigrate_fail
        && r.pgmigrate_retry == observed.pgmigrate_retry
        && r.page_cache_dropped == observed.page_cache_dropped
        && r.pgfault_around == observed.pgfault_around
        && r.thp_collapse_alloc == observed.thp_collapse_alloc
        && r.thp_split == observed.thp_split
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_each_event_family() {
        let ev = |event| TraceRecord { now: 0, seq: 0, event };
        let records = vec![
            ev(TraceEvent::HintFault { page: 1 }),
            ev(TraceEvent::PromoteCandidate { page: 1, latency: 10 }),
            ev(TraceEvent::PromoteAccept { page: 1 }),
            ev(TraceEvent::PromoteReject { page: 2, reason: RejectReason::Threshold }),
            ev(TraceEvent::PromoteReject { page: 3, reason: RejectReason::RateLimited }),
            ev(TraceEvent::PromoteReject { page: 4, reason: RejectReason::NoSpace }),
            ev(TraceEvent::DemoteKswapd { page: 5 }),
            ev(TraceEvent::DemoteDirect { page: 6 }),
            ev(TraceEvent::PromoteDemoted { page: 5 }),
            ev(TraceEvent::MigrateRetry { page: 7 }),
            ev(TraceEvent::MigrateFail { page: 7 }),
            ev(TraceEvent::PageCacheDrop { page: 8 }),
            ev(TraceEvent::ThpCollapse { page: 512 }),
            ev(TraceEvent::ThpSplit { page: 512 }),
            ev(TraceEvent::FaultAround { page: 9, pages: 15 }),
        ];
        let c = replay_counters(&records);
        assert_eq!(c.numa_hint_faults, 1);
        assert_eq!(c.pgpromote_candidate, 1);
        assert_eq!(c.pgpromote_success, 1);
        assert_eq!(c.promo_threshold_rejected, 1);
        assert_eq!(c.promo_rate_limited, 1);
        assert_eq!(c.promo_no_space, 1);
        assert_eq!(c.pgdemote_kswapd, 1);
        assert_eq!(c.pgdemote_direct, 1);
        assert_eq!(c.pgpromote_demoted, 1);
        assert_eq!(c.pgmigrate_success, 3, "promote + two demotes");
        assert_eq!(c.pgmigrate_retry, 1);
        assert_eq!(c.pgmigrate_fail, 1);
        assert_eq!(c.page_cache_dropped, 1);
        assert_eq!(c.thp_collapse_alloc, 1);
        assert_eq!(c.thp_split, 1);
        assert_eq!(c.pgfault_around, 15, "FaultAround carries its page count");
        assert!(replay_matches(&records, &c));
    }

    #[test]
    fn bookkeeping_events_count_nothing() {
        let ev = |event| TraceRecord { now: 0, seq: 0, event };
        let records = vec![
            ev(TraceEvent::ThresholdAdjust {
                before: 100,
                after: 80,
                candidate_bytes: 1 << 20,
                limit_bytes: 1 << 10,
            }),
            ev(TraceEvent::RateLimitConsume { bytes: 4096 }),
            ev(TraceEvent::RateLimitDeny { bytes: 4096, available: 12 }),
            ev(TraceEvent::ReclaimStall { cycles: 5000 }),
        ];
        assert_eq!(replay_counters(&records), VmCounters::default());
    }

    #[test]
    fn mismatch_is_detected() {
        let records =
            vec![TraceRecord { now: 0, seq: 0, event: TraceEvent::HintFault { page: 1 } }];
        let mut observed = replay_counters(&records);
        assert!(replay_matches(&records, &observed));
        observed.numa_hint_faults += 1;
        assert!(!replay_matches(&records, &observed));
        // Allocation counters are outside the trace's reach and ignored.
        observed.numa_hint_faults -= 1;
        observed.pgalloc_dram = 42;
        assert!(replay_matches(&records, &observed));
    }
}
