//! NUMA-balancing page-table scanner.

use tiersim_mem::{MemorySystem, PageNum, VirtAddr, HUGE_PAGE_PAGES, PAGE_SIZE};

/// Result of one scanner wakeup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Pages of address space walked.
    pub visited: u64,
    /// Resident pages hint-marked (`PROT_NONE` in the kernel).
    pub marked: u64,
}

/// The periodic scanner that marks pages for NUMA hinting.
///
/// Mirrors the kernel's task-work scanner: each wakeup walks a fixed
/// amount of address space (`numa_balancing_scan_size`, 256 MB by default)
/// from a persistent cursor, marking resident pages so their next access
/// raises a hint fault. Kernel-internal regions (labels in `[brackets]`,
/// e.g. the page cache) are skipped — NUMA balancing only scans process
/// pages.
///
/// # Examples
///
/// ```
/// use tiersim_mem::{MemConfig, MemPolicy, MemorySystem, Tier, PAGE_SIZE};
/// use tiersim_os::Scanner;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mem = MemorySystem::new(MemConfig::default())?;
/// let a = mem.mmap(2 * PAGE_SIZE, MemPolicy::Default, "data")?;
/// mem.map_page(a.page(), Tier::Nvm, 0)?;
///
/// let mut s = Scanner::new();
/// let report = s.scan(&mut mem, 100, 5);
/// assert_eq!(report.marked, 1); // only the resident page
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Scanner {
    cursor: u64,
}

impl Scanner {
    /// Creates a scanner with its cursor at the start of the address space.
    pub fn new() -> Self {
        Scanner::default()
    }

    /// Current cursor address (for observability/tests).
    pub fn cursor(&self) -> VirtAddr {
        VirtAddr::new(self.cursor)
    }

    /// Walks up to `budget_pages` pages of scannable address space from
    /// the cursor (wrapping around), hint-marking resident pages with scan
    /// time `now`.
    pub fn scan(&mut self, mem: &mut MemorySystem, budget_pages: u64, now: u64) -> ScanReport {
        let ranges: Vec<(u64, u64)> = mem
            .vmas()
            .filter(|v| !v.label.starts_with('['))
            .map(|v| (v.base.raw(), v.end().raw()))
            .collect();
        let mut report = ScanReport::default();
        let total_pages: u64 = ranges.iter().map(|(b, e)| (e - b) / PAGE_SIZE).sum();
        if total_pages == 0 {
            return report;
        }
        let budget = budget_pages.min(total_pages);
        while report.visited < budget {
            let Some(&(base, end)) = ranges.iter().find(|&&(_, e)| e > self.cursor) else {
                // Past the last VMA: wrap around.
                self.cursor = 0;
                continue;
            };
            let mut pn = VirtAddr::new(self.cursor.max(base)).page();
            let end_pn = VirtAddr::new(end).page();
            while pn < end_pn && report.visited < budget {
                if mem.is_huge(pn) {
                    // One PMD maps the whole collapsed block: mark the
                    // head once (its hint fault then speaks for all 512
                    // pages) and account the full block's address space
                    // against the scan budget, as the kernel does.
                    let head = pn.huge_head();
                    if mem.mark_hint(head, now) {
                        report.marked += 1;
                    }
                    let block_end = PageNum::new(head.index() + HUGE_PAGE_PAGES).min(end_pn);
                    report.visited += block_end.index() - pn.index();
                    pn = block_end;
                    continue;
                }
                if mem.mark_hint(pn, now) {
                    report.marked += 1;
                }
                report.visited += 1;
                pn = pn.next();
            }
            self.cursor = if pn < end_pn { pn.base().raw() } else { end };
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim_mem::{MemConfig, MemPolicy, PageFlags, Tier};

    fn mem() -> MemorySystem {
        MemorySystem::new(
            MemConfig::builder()
                .dram_capacity(64 * PAGE_SIZE)
                .nvm_capacity(64 * PAGE_SIZE)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn marks_only_resident_pages() {
        let mut m = mem();
        let a = m.mmap(4 * PAGE_SIZE, MemPolicy::Default, "x").unwrap();
        m.map_page(a.page(), Tier::Dram, 0).unwrap();
        m.map_page((a + 2 * PAGE_SIZE).page(), Tier::Nvm, 0).unwrap();
        let mut s = Scanner::new();
        let r = s.scan(&mut m, 100, 7);
        assert_eq!(r.visited, 4);
        assert_eq!(r.marked, 2);
        assert!(m.page(a.page()).unwrap().flags.contains(PageFlags::HINT));
        assert_eq!(m.page(a.page()).unwrap().scan_time, 7);
    }

    #[test]
    fn budget_limits_walk_and_cursor_resumes() {
        let mut m = mem();
        let a = m.mmap(10 * PAGE_SIZE, MemPolicy::Default, "x").unwrap();
        for i in 0..10 {
            m.map_page((a + i * PAGE_SIZE).page(), Tier::Dram, 0).unwrap();
        }
        let mut s = Scanner::new();
        assert_eq!(s.scan(&mut m, 4, 0).marked, 4);
        assert_eq!(s.cursor(), a + 4 * PAGE_SIZE);
        assert_eq!(s.scan(&mut m, 4, 0).marked, 4);
        // Two pages remain; the budget then wraps to the start and marks
        // two more (scan times prove the wrap).
        assert_eq!(s.scan(&mut m, 4, 9).marked, 4);
        assert_eq!(m.page((a + 9 * PAGE_SIZE).page()).unwrap().scan_time, 9);
        assert_eq!(m.page(a.page()).unwrap().scan_time, 9);
        assert_eq!(m.page((a + 2 * PAGE_SIZE).page()).unwrap().scan_time, 0);
    }

    #[test]
    fn wraps_around_to_beginning() {
        let mut m = mem();
        let a = m.mmap(2 * PAGE_SIZE, MemPolicy::Default, "x").unwrap();
        m.map_page(a.page(), Tier::Dram, 0).unwrap();
        m.map_page((a + PAGE_SIZE).page(), Tier::Dram, 0).unwrap();
        let mut s = Scanner::new();
        s.scan(&mut m, 2, 0);
        // Second scan wraps to page 0 again.
        let r = s.scan(&mut m, 2, 1);
        assert_eq!(r.marked, 2);
        assert_eq!(m.page(a.page()).unwrap().scan_time, 1);
    }

    #[test]
    fn skips_kernel_regions() {
        let mut m = mem();
        let pc = m.mmap(2 * PAGE_SIZE, MemPolicy::Default, "[page_cache]").unwrap();
        m.map_page(pc.page(), Tier::Dram, 0).unwrap();
        let mut s = Scanner::new();
        let r = s.scan(&mut m, 100, 0);
        assert_eq!(r.visited, 0);
        assert_eq!(r.marked, 0);
        assert!(!m.page(pc.page()).unwrap().flags.contains(PageFlags::HINT));
    }

    #[test]
    fn huge_block_is_marked_once_at_its_head() {
        let mut m = MemorySystem::new(
            MemConfig::builder()
                .dram_capacity(1024 * PAGE_SIZE)
                .nvm_capacity(1024 * PAGE_SIZE)
                .build()
                .unwrap(),
        )
        .unwrap();
        let a = m.mmap(HUGE_PAGE_PAGES * PAGE_SIZE, MemPolicy::Default, "big").unwrap();
        for i in 0..HUGE_PAGE_PAGES {
            m.map_page((a + i * PAGE_SIZE).page(), Tier::Nvm, 0).unwrap();
        }
        assert!(m.collapse_huge(a.page()).is_some());
        let mut s = Scanner::new();
        let r = s.scan(&mut m, 2 * HUGE_PAGE_PAGES, 7);
        // The whole block is one PMD: visited jumps by the block size,
        // only the head is hint-marked.
        assert_eq!(r.visited, HUGE_PAGE_PAGES);
        assert_eq!(r.marked, 1);
        assert!(m.page(a.page()).unwrap().flags.contains(PageFlags::HINT));
        assert!(!m.page((a + PAGE_SIZE).page()).unwrap().flags.contains(PageFlags::HINT));
    }

    #[test]
    fn empty_address_space_is_harmless() {
        let mut m = mem();
        let mut s = Scanner::new();
        assert_eq!(s.scan(&mut m, 100, 0), ScanReport::default());
    }
}
