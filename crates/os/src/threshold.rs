//! Dynamic hot-threshold controller for promotion candidates.

/// Adjusts the hint-fault-latency threshold that classifies NVM pages as
/// hot, following the tiering-0.8 algorithm the paper describes in §2.2:
/// if the bytes of candidate promotions seen in an interval exceed the
/// promotion rate limit, the threshold is lowered (be pickier); otherwise
/// it is raised (be more permissive).
///
/// # Examples
///
/// ```
/// use tiersim_os::ThresholdController;
///
/// let mut tc = ThresholdController::new(1000, 10, 100_000);
/// let before = tc.threshold_cycles();
/// // Candidates far above the limit: threshold must drop.
/// tc.adjust(1 << 30, 1 << 20);
/// assert!(tc.threshold_cycles() < before);
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdController {
    threshold: u64,
    min: u64,
    max: u64,
}

impl ThresholdController {
    /// Creates a controller with an initial threshold and clamps.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(initial_cycles: u64, min_cycles: u64, max_cycles: u64) -> Self {
        assert!(min_cycles <= max_cycles, "threshold clamps inverted");
        ThresholdController {
            threshold: initial_cycles.clamp(min_cycles, max_cycles),
            min: min_cycles,
            max: max_cycles,
        }
    }

    /// Current threshold in cycles. A hint fault whose latency is below
    /// this makes its page a promotion candidate.
    pub fn threshold_cycles(&self) -> u64 {
        self.threshold
    }

    /// Returns `true` if a hint-fault `latency_cycles` classifies the page
    /// as hot.
    pub fn is_hot(&self, latency_cycles: u64) -> bool {
        latency_cycles < self.threshold
    }

    /// Adjusts the threshold given the candidate bytes observed in the
    /// last interval against the interval's rate-limit budget.
    pub fn adjust(&mut self, candidate_bytes: u64, limit_bytes: u64) {
        // Kernel heuristic: steer candidate volume toward the limit.
        // Overshoot → ×0.8 (pickier); undershoot → ×1.2 (more permissive).
        // Each step must move by at least 1 cycle: truncating the product
        // left any threshold ≤ 4 stuck forever (4 × 1.2 = 4.8 → 4), so
        // after one burst of overshoot the controller stayed maximally
        // picky and promotions starved.
        //
        // The ×4/5 and ×6/5 products are integer, rounded to nearest in
        // u128: routing them through `f64` loses integer precision above
        // 2^53, and a tuner sweeping `hot_threshold_max_cycles` can push
        // the threshold there. Halves never occur (a fifth's fractional
        // part is 0, .2, .4, .6 or .8), so nearest is unambiguous and
        // matches what the old `f64::round` produced below 2^53.
        if candidate_bytes > limit_bytes {
            let next = round_div_5(u128::from(self.threshold) * 4);
            self.threshold = next.min(self.threshold.saturating_sub(1));
        } else {
            let next = round_div_5(u128::from(self.threshold) * 6);
            self.threshold = next.max(self.threshold.saturating_add(1));
        }
        self.threshold = self.threshold.clamp(self.min, self.max);
    }
}

/// `n / 5` rounded to nearest, saturating at `u64::MAX`.
fn round_div_5(n: u128) -> u64 {
    u64::try_from((n + 2) / 5).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_is_strictly_below_threshold() {
        let tc = ThresholdController::new(100, 1, 1000);
        assert!(tc.is_hot(99));
        assert!(!tc.is_hot(100));
        assert!(!tc.is_hot(500));
    }

    #[test]
    fn overshoot_lowers_undershoot_raises() {
        let mut tc = ThresholdController::new(100, 1, 1000);
        tc.adjust(2000, 1000);
        assert_eq!(tc.threshold_cycles(), 80);
        tc.adjust(10, 1000);
        assert_eq!(tc.threshold_cycles(), 96);
    }

    #[test]
    fn clamps_hold() {
        let mut tc = ThresholdController::new(100, 90, 110);
        for _ in 0..10 {
            tc.adjust(u64::MAX, 0);
        }
        assert_eq!(tc.threshold_cycles(), 90);
        for _ in 0..10 {
            tc.adjust(0, u64::MAX);
        }
        assert_eq!(tc.threshold_cycles(), 110);
    }

    #[test]
    fn initial_is_clamped() {
        let tc = ThresholdController::new(5, 10, 20);
        assert_eq!(tc.threshold_cycles(), 10);
    }

    #[test]
    fn recovers_from_min_threshold() {
        // Regression: with truncating arithmetic, any threshold ≤ 4 could
        // never rise (4 × 1.2 = 4.8 → 4), so a controller driven to
        // min = 1 by overshoot was stuck picky forever.
        let mut tc = ThresholdController::new(100, 1, 1000);
        for _ in 0..40 {
            tc.adjust(u64::MAX, 0);
        }
        assert_eq!(tc.threshold_cycles(), 1, "overshoot drives to the floor");
        tc.adjust(0, u64::MAX);
        assert!(tc.threshold_cycles() > 1, "one undershoot must lift it off the floor");
        for _ in 0..60 {
            tc.adjust(0, u64::MAX);
        }
        assert_eq!(tc.threshold_cycles(), 1000, "sustained undershoot reaches the ceiling");
    }

    #[test]
    fn adjust_is_exact_above_f64_integer_precision() {
        // Regression: the old `threshold as f64 * 0.8` path loses integer
        // precision above 2^53 (f64 has a 53-bit mantissa), so a tuner
        // sweeping `hot_threshold_max_cycles` into that range got silently
        // perturbed thresholds. The integer path must be exact everywhere.
        let t = (1u64 << 62) + 3;
        let mut tc = ThresholdController::new(t, 1, u64::MAX);
        tc.adjust(u64::MAX, 0); // overshoot: ×4/5, rounded to nearest
        assert_eq!(tc.threshold_cycles(), ((u128::from(t) * 4 + 2) / 5) as u64);
        let up_from = tc.threshold_cycles();
        tc.adjust(0, u64::MAX); // undershoot: ×6/5, rounded to nearest
        assert_eq!(tc.threshold_cycles(), ((u128::from(up_from) * 6 + 2) / 5) as u64);
        // Near the top of the u64 range ×6/5 saturates instead of wrapping.
        let mut top = ThresholdController::new(u64::MAX - 1, 1, u64::MAX);
        top.adjust(0, u64::MAX);
        assert_eq!(top.threshold_cycles(), u64::MAX);
    }

    #[test]
    fn integer_adjust_matches_f64_model_below_2_53() {
        // The PR 5 behavior is pinned: in the range where f64 products are
        // exact, the integer rounding is bit-identical to the old
        // `(t as f64 * k).round()` model.
        for t in [1u64, 2, 3, 4, 5, 7, 80, 96, 100, 12_345, 1 << 40, (1 << 44) - 7] {
            let down = ((u128::from(t) * 4 + 2) / 5) as u64;
            let up = ((u128::from(t) * 6 + 2) / 5) as u64;
            assert_eq!(down, (t as f64 * 0.8).round() as u64, "down at {t}");
            assert_eq!(up, (t as f64 * 1.2).round() as u64, "up at {t}");
        }
    }

    #[test]
    fn overshoot_always_moves_down_until_min() {
        // The symmetric guard: ×0.8 with rounding alone would pin small
        // thresholds above min (2 × 0.8 = 1.6 → 2); the −1 step floor
        // guarantees progress toward `min`.
        let mut tc = ThresholdController::new(3, 1, 1000);
        tc.adjust(u64::MAX, 0);
        assert_eq!(tc.threshold_cycles(), 2);
        tc.adjust(u64::MAX, 0);
        assert_eq!(tc.threshold_cycles(), 1);
        tc.adjust(u64::MAX, 0);
        assert_eq!(tc.threshold_cycles(), 1, "clamped at min");
    }
}
