//! Behavioral integration tests of the AutoNUMA engine against the memory
//! system, including property-based invariants.

use proptest::prelude::*;
use tiersim_mem::{
    AccessError, AccessKind, MemConfig, MemPolicy, MemorySystem, Tier, VirtAddr, PAGE_SIZE,
};
use tiersim_os::{AutoNuma, OsConfig};

fn mem(dram_pages: u64, nvm_pages: u64) -> MemorySystem {
    MemorySystem::new(
        MemConfig::builder()
            .dram_capacity(dram_pages * PAGE_SIZE)
            .nvm_capacity(nvm_pages * PAGE_SIZE)
            .build()
            .unwrap(),
    )
    .unwrap()
}

/// Touches an address through the fault path.
fn touch(m: &mut MemorySystem, os: &mut AutoNuma, addr: VirtAddr, now: u64) {
    loop {
        match m.access(addr, AccessKind::Load, now) {
            Ok(out) => {
                os.on_access(m, &out, now);
                return;
            }
            Err(AccessError::Fault(pf)) => {
                os.handle_fault(m, pf, now).unwrap();
            }
            Err(e) => panic!("{e}"),
        }
    }
}

/// A tiny promotion rate limit actually rate-limits (unlike the paper's
/// default, which never binds — Finding 6).
#[test]
fn tiny_rate_limit_binds() {
    let mut m = mem(64, 256);
    let mut cfg = OsConfig::builder()
        .promo_rate_limit_bytes_per_sec(PAGE_SIZE) // one page per second
        .watermarks(0.05, 0.08, 0.95) // high watermark ≈ whole DRAM → gated path
        .hot_threshold_cycles(u64::MAX / 4)
        .build()
        .unwrap();
    cfg.hot_threshold_max_cycles = u64::MAX / 2;
    let mut os = AutoNuma::new(cfg).unwrap();
    // Occupy most of DRAM so free <= high and promotion is gated.
    let filler = m.mmap(60 * PAGE_SIZE, MemPolicy::Bind(Tier::Dram), "fill").unwrap();
    for i in 0..60 {
        touch(&mut m, &mut os, filler + i * PAGE_SIZE, 0);
    }
    // NVM pages, hint-marked and touched immediately: all hot candidates.
    let a = m.mmap(32 * PAGE_SIZE, MemPolicy::Bind(Tier::Nvm), "hot").unwrap();
    for i in 0..32 {
        touch(&mut m, &mut os, a + i * PAGE_SIZE, 1);
    }
    for i in 0..32 {
        m.mark_hint((a + i * PAGE_SIZE).page(), 2);
        touch(&mut m, &mut os, a + i * PAGE_SIZE, 3);
    }
    let c = os.counters();
    assert!(c.promo_rate_limited > 0, "rate limiter should bind: {c:?}");
    assert!(c.pgpromote_success <= 2, "at most the bucket's burst promotes");
}

proptest! {
    /// kswapd demotion always restores free DRAM above the high watermark
    /// when NVM has room, whatever the access history.
    #[test]
    fn kswapd_restores_watermark(touch_order in proptest::collection::vec(0u64..32, 0..200)) {
        let mut m = mem(32, 128);
        let mut os = AutoNuma::new(
            OsConfig::builder().watermarks(0.05, 0.1, 0.25).build().unwrap(),
        )
        .unwrap();
        let a = m.mmap(32 * PAGE_SIZE, MemPolicy::Default, "data").unwrap();
        for i in 0..32u64 {
            touch(&mut m, &mut os, a + i * PAGE_SIZE, i);
        }
        for (t, &p) in touch_order.iter().enumerate() {
            touch(&mut m, &mut os, a + p * PAGE_SIZE, 100 + t as u64);
        }
        // Force a kswapd pass.
        let mut now = os.next_event();
        for _ in 0..64 {
            os.tick(&mut m, now);
            now = os.next_event();
        }
        let high = (m.capacity_pages(Tier::Dram) as f64 * 0.25) as u64;
        prop_assert!(
            m.free_pages(Tier::Dram) >= high.saturating_sub(1),
            "free {} below high {high}",
            m.free_pages(Tier::Dram)
        );
        // No page was lost: everything is resident somewhere.
        prop_assert_eq!(m.used_pages(Tier::Dram) + m.used_pages(Tier::Nvm), 32);
    }

    /// With AutoNUMA disabled, arbitrary access patterns never produce
    /// migrations (the paper's §6.6 zero-delta check).
    #[test]
    fn disabled_engine_never_migrates(touches in proptest::collection::vec((0u64..64, 0u64..1000), 1..150)) {
        let mut m = mem(16, 128);
        let mut os = AutoNuma::new(
            OsConfig::builder().autonuma_enabled(false).build().unwrap(),
        )
        .unwrap();
        let a = m.mmap(64 * PAGE_SIZE, MemPolicy::Default, "data").unwrap();
        for (p, t) in touches {
            touch(&mut m, &mut os, a + p * PAGE_SIZE, t);
            os.tick(&mut m, t);
        }
        prop_assert!(os.counters().no_migrations());
    }
}

/// The dynamic threshold reacts to candidate volume over ticks.
#[test]
fn threshold_adapts_over_time() {
    let mut m = mem(8, 64);
    let mut cfg = OsConfig::builder()
        .watermarks(0.05, 0.1, 0.9)
        .hot_threshold_cycles(1_000_000)
        .build()
        .unwrap();
    cfg.threshold_adjust_period_cycles = 1_000;
    cfg.promo_rate_limit_bytes_per_sec = u64::MAX / (1 << 20); // never binds
    let mut os = AutoNuma::new(cfg).unwrap();
    let t0 = os.threshold_cycles();
    // No candidates at all → threshold rises (be more permissive).
    let mut now = os.next_event();
    for _ in 0..10 {
        os.tick(&mut m, now);
        now = os.next_event();
    }
    assert!(os.threshold_cycles() > t0, "{} -> {}", t0, os.threshold_cycles());
}

/// File reads respect tier pressure: once DRAM is full, page-cache fills
/// continue on NVM rather than failing.
#[test]
fn page_cache_overflows_to_nvm() {
    let mut m = mem(8, 64);
    let mut os = AutoNuma::new(OsConfig::default()).unwrap();
    os.file_read(&mut m, 32 * PAGE_SIZE, 0).unwrap();
    let stat = tiersim_os::NumaStat::collect(&m);
    assert!(stat.file_pages[Tier::Dram.index()] > 0);
    assert!(stat.file_pages[Tier::Nvm.index()] > 0, "overflow to NVM expected");
    assert_eq!(os.counters().page_cache_filled, 32);
}
