//! Trace ↔ vmstat conservation: replaying the recorded event stream must
//! reproduce the counters the engine reported (DESIGN.md §11).

use proptest::prelude::*;
use tiersim_mem::{
    AccessError, AccessKind, MemConfig, MemPolicy, MemorySystem, Tier, TraceConfig, TraceEvent,
    VirtAddr, PAGE_SIZE,
};
use tiersim_os::{replay_counters, replay_matches, AutoNuma, OsConfig};

fn traced_mem(dram_pages: u64, nvm_pages: u64) -> MemorySystem {
    MemorySystem::new(
        MemConfig::builder()
            .dram_capacity(dram_pages * PAGE_SIZE)
            .nvm_capacity(nvm_pages * PAGE_SIZE)
            .trace(TraceConfig::on())
            .build()
            .unwrap(),
    )
    .unwrap()
}

/// Touches an address through the fault path.
fn touch(m: &mut MemorySystem, os: &mut AutoNuma, addr: VirtAddr, now: u64) {
    loop {
        match m.access(addr, AccessKind::Load, now) {
            Ok(out) => {
                os.on_access(m, &out, now);
                return;
            }
            Err(AccessError::Fault(pf)) => {
                os.handle_fault(m, pf, now).unwrap();
            }
            Err(e) => panic!("{e}"),
        }
    }
}

/// Every promotion denied by the rate limiter leaves a `RateLimitDeny`
/// record carrying the byte count and what was left in the bucket —
/// the observability half of the sub-page-rate stall bugfix.
#[test]
fn every_rate_limiter_deny_is_traced() {
    let mut m = traced_mem(64, 256);
    let mut cfg = OsConfig::builder()
        .promo_rate_limit_bytes_per_sec(PAGE_SIZE) // one page per second
        .watermarks(0.05, 0.08, 0.95) // high watermark ≈ whole DRAM → gated path
        .hot_threshold_cycles(u64::MAX / 4)
        .build()
        .unwrap();
    cfg.hot_threshold_max_cycles = u64::MAX / 2;
    let mut os = AutoNuma::new(cfg).unwrap();
    let filler = m.mmap(60 * PAGE_SIZE, MemPolicy::Bind(Tier::Dram), "fill").unwrap();
    for i in 0..60 {
        touch(&mut m, &mut os, filler + i * PAGE_SIZE, 0);
    }
    let a = m.mmap(32 * PAGE_SIZE, MemPolicy::Bind(Tier::Nvm), "hot").unwrap();
    for i in 0..32 {
        touch(&mut m, &mut os, a + i * PAGE_SIZE, 1);
    }
    for i in 0..32 {
        m.mark_hint((a + i * PAGE_SIZE).page(), 2);
        touch(&mut m, &mut os, a + i * PAGE_SIZE, 3);
    }
    let c = os.counters();
    assert!(c.promo_rate_limited > 0, "scenario must exercise the limiter: {c:?}");

    let records = m.trace().records();
    let denies: Vec<_> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::RateLimitDeny { bytes, available } => Some((bytes, available)),
            _ => None,
        })
        .collect();
    assert_eq!(denies.len() as u64, c.promo_rate_limited, "one deny event per denial");
    for (bytes, available) in denies {
        assert_eq!(bytes, PAGE_SIZE);
        assert!(available < PAGE_SIZE, "denied only when short of a page: {available}");
    }
    assert_eq!(m.trace().dropped(), 0);
    assert!(
        replay_matches(&records, &c),
        "replay {:?} != observed {c:?}",
        replay_counters(&records)
    );
}

/// A deterministic mixed workload (promotions, threshold rejections,
/// kswapd demotions, thrash) replays exactly.
#[test]
fn mixed_workload_trace_replays_to_counters() {
    let mut m = traced_mem(32, 128);
    let mut os = AutoNuma::new(
        OsConfig::builder()
            .watermarks(0.05, 0.1, 0.25)
            .hot_threshold_cycles(10_000)
            .build()
            .unwrap(),
    )
    .unwrap();
    let a = m.mmap(96 * PAGE_SIZE, MemPolicy::Default, "data").unwrap();
    for i in 0..96u64 {
        touch(&mut m, &mut os, a + i * PAGE_SIZE, i);
    }
    // Re-touch a hot working set with hints marked so promotions fire,
    // ticking the engine so kswapd demotes under the resulting pressure.
    let mut now = 1_000;
    for round in 0..50u64 {
        for i in 0..16u64 {
            let page = ((round + i) % 96) * PAGE_SIZE;
            m.mark_hint((a + page).page(), now);
            touch(&mut m, &mut os, a + page, now + 10);
            now += 50;
        }
        os.tick(&mut m, os.next_event().max(now));
        now += 1_000;
    }
    let c = os.counters();
    assert!(c.numa_hint_faults > 0, "workload must exercise hint faults: {c:?}");
    assert_eq!(m.trace().dropped(), 0, "ring must hold the whole run");
    let records = m.trace().records();
    assert!(
        replay_matches(&records, &c),
        "replay {:?} != observed {c:?}",
        replay_counters(&records)
    );
}

proptest! {
    /// Conservation holds for arbitrary access patterns: whatever the
    /// interleaving of touches and ticks, the trace accounts for every
    /// counter it covers, exactly.
    #[test]
    fn trace_replay_matches_counters(
        touches in proptest::collection::vec((0u64..64, 1u64..5_000), 1..120),
    ) {
        let mut m = traced_mem(16, 128);
        let mut os = AutoNuma::new(
            OsConfig::builder().watermarks(0.05, 0.1, 0.3).hot_threshold_cycles(100_000).build().unwrap(),
        )
        .unwrap();
        let a = m.mmap(64 * PAGE_SIZE, MemPolicy::Default, "data").unwrap();
        let mut now = 0;
        for (p, dt) in touches {
            now += dt;
            touch(&mut m, &mut os, a + p * PAGE_SIZE, now);
            if os.next_event() <= now {
                os.tick(&mut m, now);
            }
        }
        let c = os.counters();
        prop_assert!(m.trace().dropped() == 0);
        let records = m.trace().records();
        prop_assert!(
            replay_matches(&records, &c),
            "replay {:?} != observed {:?}", replay_counters(&records), c
        );
    }
}
