//! Dynamic object-level tiering (extension).
//!
//! The paper's §7 proposal is *offline*: profile once, bind objects, never
//! migrate. Its conclusion points at runtime object-level management as
//! the natural next step; this module defines the configuration for that
//! extension: periodically re-rank live objects from the most recent
//! sample window and migrate whole objects between tiers (a `move_pages`
//! loop), subject to a per-interval migration budget.

/// Configuration of the dynamic object-level tierer.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DynamicObjectConfig {
    /// Cycles between re-planning passes.
    pub replan_interval_cycles: u64,
    /// Fraction of DRAM the planner may commit each pass.
    pub dram_headroom: f64,
    /// Maximum pages migrated per pass (bounds the `move_pages` burst).
    pub max_migrate_pages: u64,
    /// Kernel overhead charged per migrated page, in cycles, on top of the
    /// device copy.
    pub migrate_overhead_cycles: u64,
}

impl Default for DynamicObjectConfig {
    fn default() -> Self {
        DynamicObjectConfig {
            replan_interval_cycles: 2_600_000, // 1 ms simulated @ 2.6 GHz
            dram_headroom: 0.92,
            max_migrate_pages: 512,
            migrate_overhead_cycles: 5_000,
        }
    }
}

impl DynamicObjectConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending field.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.replan_interval_cycles == 0 {
            return Err("replan interval must be positive");
        }
        if !(0.0..=1.0).contains(&self.dram_headroom) {
            return Err("dram headroom must be in [0, 1]");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        DynamicObjectConfig::default().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_fields() {
        let c = DynamicObjectConfig { replan_interval_cycles: 0, ..Default::default() };
        assert!(c.validate().is_err());
        let c = DynamicObjectConfig { dram_headroom: 1.5, ..Default::default() };
        assert!(c.validate().is_err());
    }
}
