//! # tiersim-policy — object-level memory tiering (the paper's proposal)
//!
//! Implements §7 of the paper: instead of AutoNUMA's reactive page-level
//! migration, place whole *objects* using an offline profile:
//!
//! 1. [`aggregate_by_label`] folds a profiling run's per-object samples
//!    into per-label statistics and ranks them by access density
//!    (samples ÷ size).
//! 2. [`plan_static`] packs objects into DRAM greedily until the budget is
//!    exhausted; everything else is bound to NVM. The *spill* variant
//!    splits the first non-fitting object across the tiers (the paper's
//!    `cc_kron*`/`cc_urand*` runs).
//! 3. The runtime applies the resulting [`ObjectPlacement`] at every
//!    `mmap` interception via `mbind`-style policies; no promotions or
//!    demotions happen afterwards.
//!
//! [`TieringMode`] enumerates the policies compared in Figure 11 plus
//! idealized all-DRAM/all-NVM baselines.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dynamic;
mod mode;
mod placement;
mod planner;
mod ranking;

pub use dynamic::DynamicObjectConfig;
pub use mode::TieringMode;
pub use placement::{ObjectPlacement, Placement};
pub use planner::{plan_static, StaticPlan};
pub use ranking::{aggregate_by_label, LabelStats};
