//! Tiering modes: the policies compared in the paper's Figure 11 plus
//! idealized baselines.

use crate::dynamic::DynamicObjectConfig;
use crate::planner::StaticPlan;

/// Which memory-tiering policy governs a run.
#[derive(Debug, Clone, PartialEq)]
pub enum TieringMode {
    /// AutoNUMA tiering v0.8 (the paper's baseline): first-touch
    /// DRAM-first placement plus scanner-driven promotion and watermark
    /// demotion.
    AutoNuma,
    /// AutoNUMA disabled: first-touch placement, no migrations ever (the
    /// paper's §6.6 counter sanity check).
    FirstTouch,
    /// The paper's proposal: profile-guided object-level static binding
    /// (optionally with the one-object spill variant), no migrations.
    StaticObject(StaticPlan),
    /// Extension of the paper's proposal (its stated future work): the
    /// same object-level ranking, recomputed online from the most recent
    /// sample window, with whole-object migrations between tiers.
    DynamicObject(DynamicObjectConfig),
    /// Idealized baseline: bind every object to DRAM (requires a DRAM
    /// large enough for the footprint; used for speed-of-light numbers).
    AllDram,
    /// Pessimal baseline: bind every object to NVM.
    AllNvm,
    /// Optane *Memory Mode* (paper §2.1): DRAM becomes a transparent
    /// hardware-managed cache of NVM; no software placement exists. The
    /// paper rejects this mode for lack of control — modelled here so the
    /// rejection can be quantified (see the `ablations` benches).
    MemoryMode,
}

impl TieringMode {
    /// Short stable name used in reports and CSV output.
    pub fn name(&self) -> &'static str {
        match self {
            TieringMode::AutoNuma => "autonuma",
            TieringMode::FirstTouch => "first_touch",
            TieringMode::StaticObject(p) if p.spilled_label.is_some() => "static_object_spill",
            TieringMode::StaticObject(_) => "static_object",
            TieringMode::DynamicObject(_) => "dynamic_object",
            TieringMode::AllDram => "all_dram",
            TieringMode::AllNvm => "all_nvm",
            TieringMode::MemoryMode => "memory_mode",
        }
    }

    /// Returns `true` if the OS AutoNUMA machinery (scanner, promotion,
    /// demotion) should be active under this mode.
    pub fn autonuma_enabled(&self) -> bool {
        matches!(self, TieringMode::AutoNuma)
    }
}

impl core::fmt::Display for TieringMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::ObjectPlacement;

    fn plan(spilled: Option<&str>) -> StaticPlan {
        StaticPlan {
            placement: ObjectPlacement::new(),
            dram_used: 0,
            dram_budget: 0,
            spilled_label: spilled.map(String::from),
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(TieringMode::AutoNuma.name(), "autonuma");
        assert_eq!(TieringMode::FirstTouch.name(), "first_touch");
        assert_eq!(TieringMode::StaticObject(plan(None)).name(), "static_object");
        assert_eq!(TieringMode::StaticObject(plan(Some("x"))).name(), "static_object_spill");
        assert_eq!(TieringMode::AllNvm.to_string(), "all_nvm");
    }

    #[test]
    fn only_autonuma_enables_the_engine() {
        assert!(TieringMode::AutoNuma.autonuma_enabled());
        for m in [
            TieringMode::FirstTouch,
            TieringMode::StaticObject(plan(None)),
            TieringMode::AllDram,
            TieringMode::AllNvm,
            TieringMode::MemoryMode,
            TieringMode::DynamicObject(DynamicObjectConfig::default()),
        ] {
            assert!(!m.autonuma_enabled(), "{m}");
        }
    }
}
