//! Object placements: where a logical object's pages should live.

use std::collections::BTreeMap;

/// Placement decision for one logical object (identified by its
/// allocation-site label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Placement {
    /// Bind the whole object to DRAM (`mbind(MPOL_BIND, DRAM)`).
    Dram,
    /// Bind the whole object to NVM.
    Nvm,
    /// Split the object: the first `dram_bytes` are bound to DRAM, the
    /// rest to NVM — the paper's *spill* variant (`cc_kron*`/`cc_urand*`).
    Split {
        /// Bytes (page-rounded by the applier) placed on DRAM.
        dram_bytes: u64,
    },
}

/// A label → placement table produced by the planner and applied by the
/// runtime at each `mmap` interception, mirroring the paper's
/// `syscall_intercept` + `mbind` mechanism (§7).
///
/// Labels not present in the table fall back to the default placement
/// (NVM, like the paper's "objects that cannot fit on DRAM are assigned
/// entirely to NVM").
///
/// Entries are kept label-ordered (`BTreeMap`) so iteration — which feeds
/// plan renderings and exported CSVs — is deterministic across runs.
///
/// # Examples
///
/// ```
/// use tiersim_policy::{ObjectPlacement, Placement};
///
/// let mut p = ObjectPlacement::new();
/// p.insert("bc.scores", Placement::Dram);
/// assert_eq!(p.placement_for("bc.scores"), Placement::Dram);
/// assert_eq!(p.placement_for("unknown"), Placement::Nvm);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObjectPlacement {
    map: BTreeMap<String, Placement>,
}

impl ObjectPlacement {
    /// Creates an empty table (everything defaults to NVM).
    pub fn new() -> Self {
        ObjectPlacement::default()
    }

    /// Sets the placement for a label, returning any previous entry.
    pub fn insert(&mut self, label: impl Into<String>, placement: Placement) -> Option<Placement> {
        self.map.insert(label.into(), placement)
    }

    /// The placement for `label` (NVM when absent).
    pub fn placement_for(&self, label: &str) -> Placement {
        self.map.get(label).copied().unwrap_or(Placement::Nvm)
    }

    /// Iterates `(label, placement)` entries in ascending label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Placement)> {
        self.map.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no explicit entry exists.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_nvm() {
        let p = ObjectPlacement::new();
        assert!(p.is_empty());
        assert_eq!(p.placement_for("anything"), Placement::Nvm);
    }

    #[test]
    fn insert_and_override() {
        let mut p = ObjectPlacement::new();
        assert_eq!(p.insert("x", Placement::Dram), None);
        assert_eq!(p.insert("x", Placement::Split { dram_bytes: 4096 }), Some(Placement::Dram));
        assert_eq!(p.placement_for("x"), Placement::Split { dram_bytes: 4096 });
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn iter_yields_entries() {
        let mut p = ObjectPlacement::new();
        p.insert("a", Placement::Dram);
        p.insert("b", Placement::Nvm);
        let mut entries: Vec<_> = p.iter().collect();
        entries.sort_by_key(|&(label, _)| label);
        assert_eq!(entries, vec![("a", Placement::Dram), ("b", Placement::Nvm)]);
    }
}
