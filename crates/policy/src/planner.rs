//! The static object-level planner (paper §7).

use crate::placement::{ObjectPlacement, Placement};
use crate::ranking::LabelStats;

/// Result of planning: the placement table plus accounting for reports.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticPlan {
    /// Label → placement table to apply at allocation time.
    pub placement: ObjectPlacement,
    /// DRAM bytes committed by the plan.
    pub dram_used: u64,
    /// The DRAM budget the plan was built for.
    pub dram_budget: u64,
    /// The label that was split across tiers, if the spill variant was
    /// used and a split happened.
    pub spilled_label: Option<String>,
}

impl StaticPlan {
    /// Unused DRAM budget left by the plan — the whole-object variant's
    /// weakness the paper calls out ("this increases the chances of
    /// leaving the DRAM capacity unused especially when you have large
    /// objects").
    pub fn dram_unused(&self) -> u64 {
        self.dram_budget - self.dram_used
    }
}

/// Plans object placements greedily: rank labels by access density
/// (descending), assign whole objects to DRAM until the budget runs out,
/// and everything else to NVM.
///
/// With `spill`, the first object that does not fit is split so its head
/// fills the remaining DRAM (the paper's asterisked `cc_*` variant);
/// without it, the object goes entirely to NVM.
///
/// # Examples
///
/// ```
/// use tiersim_policy::{plan_static, LabelStats, Placement};
///
/// let stats = vec![
///     LabelStats { label: "hot".into(), bytes: 4096, samples: 100, nvm_samples: 0 },
///     LabelStats { label: "big".into(), bytes: 1 << 20, samples: 10, nvm_samples: 0 },
/// ];
/// let plan = plan_static(&stats, 8192, false);
/// assert_eq!(plan.placement.placement_for("hot"), Placement::Dram);
/// assert_eq!(plan.placement.placement_for("big"), Placement::Nvm);
/// ```
pub fn plan_static(ranked: &[LabelStats], dram_budget: u64, spill: bool) -> StaticPlan {
    let mut placement = ObjectPlacement::new();
    let mut remaining = dram_budget;
    let mut spilled_label = None;
    for s in ranked {
        // Skip kernel-internal labels; they are not application objects.
        if s.label.starts_with('[') {
            continue;
        }
        if s.bytes <= remaining {
            placement.insert(&s.label, Placement::Dram);
            remaining -= s.bytes;
        } else if spill && spilled_label.is_none() && remaining > 0 {
            placement.insert(&s.label, Placement::Split { dram_bytes: remaining });
            spilled_label = Some(s.label.clone());
            remaining = 0;
        } else {
            placement.insert(&s.label, Placement::Nvm);
        }
    }
    StaticPlan { placement, dram_used: dram_budget - remaining, dram_budget, spilled_label }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(items: &[(&str, u64, u64)]) -> Vec<LabelStats> {
        // Items must be provided in density order for these tests.
        items
            .iter()
            .map(|&(label, bytes, samples)| LabelStats {
                label: label.into(),
                bytes,
                samples,
                nvm_samples: 0,
            })
            .collect()
    }

    #[test]
    fn greedy_packs_in_rank_order() {
        let s = stats(&[("a", 100, 1000), ("b", 100, 500), ("c", 100, 10)]);
        let plan = plan_static(&s, 200, false);
        assert_eq!(plan.placement.placement_for("a"), Placement::Dram);
        assert_eq!(plan.placement.placement_for("b"), Placement::Dram);
        assert_eq!(plan.placement.placement_for("c"), Placement::Nvm);
        assert_eq!(plan.dram_used, 200);
        assert_eq!(plan.dram_unused(), 0);
    }

    #[test]
    fn oversized_object_skips_but_later_objects_can_fit() {
        let s = stats(&[("huge", 1000, 9000), ("small", 50, 10)]);
        let plan = plan_static(&s, 100, false);
        assert_eq!(plan.placement.placement_for("huge"), Placement::Nvm);
        assert_eq!(plan.placement.placement_for("small"), Placement::Dram);
        assert_eq!(plan.dram_used, 50);
        assert!(plan.spilled_label.is_none());
    }

    #[test]
    fn spill_splits_first_nonfitting_object() {
        let s = stats(&[("a", 60, 1000), ("big", 1000, 900), ("c", 30, 10)]);
        let plan = plan_static(&s, 100, true);
        assert_eq!(plan.placement.placement_for("a"), Placement::Dram);
        assert_eq!(plan.placement.placement_for("big"), Placement::Split { dram_bytes: 40 });
        // After the spill, DRAM is exhausted: c goes to NVM.
        assert_eq!(plan.placement.placement_for("c"), Placement::Nvm);
        assert_eq!(plan.spilled_label.as_deref(), Some("big"));
        assert_eq!(plan.dram_unused(), 0);
    }

    #[test]
    fn only_one_object_spills() {
        let s = stats(&[("big1", 1000, 900), ("big2", 1000, 800)]);
        let plan = plan_static(&s, 100, true);
        assert_eq!(plan.placement.placement_for("big1"), Placement::Split { dram_bytes: 100 });
        assert_eq!(plan.placement.placement_for("big2"), Placement::Nvm);
    }

    #[test]
    fn kernel_labels_are_ignored() {
        let s = stats(&[("[page_cache]", 10, 100_000), ("a", 10, 1)]);
        let plan = plan_static(&s, 10, false);
        assert_eq!(plan.placement.placement_for("a"), Placement::Dram);
        // No explicit entry for the kernel label.
        assert_eq!(plan.placement.len(), 1);
    }

    #[test]
    fn zero_budget_sends_everything_to_nvm() {
        let s = stats(&[("a", 10, 100)]);
        let plan = plan_static(&s, 0, true);
        assert_eq!(plan.placement.placement_for("a"), Placement::Nvm);
        assert_eq!(plan.dram_used, 0);
    }

    proptest::proptest! {
        #[test]
        fn prop_plan_never_exceeds_budget(
            sizes in proptest::collection::vec(1u64..10_000, 1..30),
            budget in 0u64..20_000,
            spill in proptest::bool::ANY,
        ) {
            let s: Vec<LabelStats> = sizes
                .iter()
                .enumerate()
                .map(|(i, &bytes)| LabelStats {
                    label: format!("o{i}"),
                    bytes,
                    samples: (sizes.len() - i) as u64 * 10,
                    nvm_samples: 0,
                })
                .collect();
            let plan = plan_static(&s, budget, spill);
            proptest::prop_assert!(plan.dram_used <= budget);
            // Recompute committed DRAM from the table itself.
            let mut committed = 0u64;
            for st in &s {
                match plan.placement.placement_for(&st.label) {
                    crate::Placement::Dram => committed += st.bytes,
                    crate::Placement::Split { dram_bytes } => committed += dram_bytes,
                    crate::Placement::Nvm => {}
                }
            }
            proptest::prop_assert_eq!(committed, plan.dram_used);
        }
    }
}
