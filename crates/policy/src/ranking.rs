//! Per-label aggregation and density ranking of profiled objects.

use tiersim_profile::MappedProfile;

/// Aggregated statistics for one allocation-site label.
///
/// Workloads re-allocate per-trial arrays under the same label (e.g.
/// `bfs.dist` once per trial); placement is decided per *logical* object,
/// so profiles are folded by label: samples sum, and the DRAM budget
/// consumed is the largest single instance (instances of one label are
/// never live concurrently in the GAPBS-style run loop).
#[derive(Debug, Clone, PartialEq)]
pub struct LabelStats {
    /// The allocation-site label.
    pub label: String,
    /// Largest single-instance size in bytes.
    pub bytes: u64,
    /// Total load samples over all instances (cache + external).
    pub samples: u64,
    /// Total NVM load samples.
    pub nvm_samples: u64,
}

impl LabelStats {
    /// The paper's ranking key: total accesses divided by allocation size.
    pub fn density(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.samples as f64 / self.bytes as f64
        }
    }
}

/// Folds per-object profiles into per-label statistics, ordered by
/// density descending (the paper's ranking, §7).
///
/// # Examples
///
/// ```
/// use tiersim_policy::aggregate_by_label;
/// use tiersim_profile::MappedProfile;
///
/// assert!(aggregate_by_label(&MappedProfile::default()).is_empty());
/// ```
pub fn aggregate_by_label(mapped: &MappedProfile) -> Vec<LabelStats> {
    // Label-ordered so the fold itself is deterministic; the density sort
    // below then starts from the same order on every run.
    let mut by_label: std::collections::BTreeMap<&str, LabelStats> =
        std::collections::BTreeMap::new();
    for o in &mapped.objects {
        let e = by_label.entry(&o.site).or_insert_with(|| LabelStats {
            label: o.site.to_string(),
            bytes: 0,
            samples: 0,
            nvm_samples: 0,
        });
        e.bytes = e.bytes.max(o.len);
        e.samples += o.total_samples();
        e.nvm_samples += o.nvm_samples;
    }
    let mut v: Vec<LabelStats> = by_label.into_values().collect();
    v.sort_by(|a, b| b.density().total_cmp(&a.density()).then_with(|| a.label.cmp(&b.label)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tiersim_profile::{MappedProfile, ObjectId, ObjectProfile};

    fn profile(id: u32, site: &str, len: u64, cache: u64, nvm: u64) -> ObjectProfile {
        ObjectProfile {
            id: ObjectId(id),
            site: Arc::from(site),
            len,
            alloc_time: 0,
            free_time: None,
            cache_samples: cache,
            dram_samples: 0,
            nvm_samples: nvm,
            dram_cost_cycles: 0,
            nvm_cost_cycles: nvm * 1000,
            external_pages: 0,
        }
    }

    #[test]
    fn labels_fold_instances() {
        let mapped = MappedProfile {
            objects: vec![
                profile(0, "bfs.dist", 1000, 5, 2),
                profile(1, "bfs.dist", 1200, 3, 1),
                profile(2, "csr.neighbors", 100_000, 10, 50),
            ],
            unmapped_samples: 0,
            store_samples: 0,
        };
        let stats = aggregate_by_label(&mapped);
        assert_eq!(stats.len(), 2);
        let dist = stats.iter().find(|s| s.label == "bfs.dist").unwrap();
        assert_eq!(dist.bytes, 1200); // max instance, not sum
        assert_eq!(dist.samples, 11); // summed over instances
        assert_eq!(dist.nvm_samples, 3);
    }

    #[test]
    fn ordering_is_by_density_desc() {
        let mapped = MappedProfile {
            objects: vec![
                profile(0, "dense", 100, 100, 0),     // density 1.0
                profile(1, "sparse", 10_000, 100, 0), // density 0.01
            ],
            unmapped_samples: 0,
            store_samples: 0,
        };
        let stats = aggregate_by_label(&mapped);
        assert_eq!(stats[0].label, "dense");
        assert!(stats[0].density() > stats[1].density());
    }

    #[test]
    fn tie_breaks_are_deterministic() {
        let mapped = MappedProfile {
            objects: vec![profile(0, "b", 100, 10, 0), profile(1, "a", 100, 10, 0)],
            unmapped_samples: 0,
            store_samples: 0,
        };
        let stats = aggregate_by_label(&mapped);
        assert_eq!(stats[0].label, "a");
    }
}
