//! Allocation tracking: the simulated `syscall_intercept` mmap hook.

use core::fmt;
use std::sync::Arc;
use tiersim_mem::VirtAddr;

/// Identifier of a tracked memory object (a single `mmap` allocation).
///
/// Ids are assigned in allocation order, like the paper's object numbering
/// before ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj:{}", self.0)
    }
}

/// One tracked allocation: timestamp, size, base address and call-site
/// label — exactly the record the paper's interception library captures
/// (§3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocRecord {
    /// Object identifier (allocation order).
    pub id: ObjectId,
    /// Base address.
    pub addr: VirtAddr,
    /// Length in bytes as requested.
    pub len: u64,
    /// Allocation timestamp in cycles.
    pub alloc_time: u64,
    /// Deallocation timestamp, if the object was freed.
    pub free_time: Option<u64>,
    /// Call-site label (the simulated call stack), e.g. `"csr.neighbors"`.
    pub site: Arc<str>,
}

impl AllocRecord {
    /// One past the last byte of the object.
    pub fn end(&self) -> VirtAddr {
        self.addr + self.len
    }

    /// Returns `true` if `addr` lies inside this object.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.addr && addr < self.end()
    }

    /// Returns `true` if the object was live at `time`.
    pub fn live_at(&self, time: u64) -> bool {
        time >= self.alloc_time && self.free_time.is_none_or(|f| time < f)
    }

    /// Number of pages spanned.
    pub fn pages(&self) -> u64 {
        tiersim_mem::pages_for(self.len)
    }
}

/// Tracks `mmap`/`munmap` calls and maps addresses back to objects.
///
/// Because the simulated `mmap` arena never reuses addresses, an address
/// identifies at most one object over the whole run, which makes the
/// sample→object join exact (the paper additionally needs timestamps).
///
/// # Examples
///
/// ```
/// use tiersim_mem::VirtAddr;
/// use tiersim_profile::AllocTracker;
///
/// let mut t = AllocTracker::new();
/// let id = t.on_mmap(VirtAddr::new(0x1000), 8192, "edges", 5);
/// assert_eq!(t.object_at(VirtAddr::new(0x1fff)), Some(id));
/// t.on_munmap(VirtAddr::new(0x1000), 99);
/// assert_eq!(t.record(id).unwrap().free_time, Some(99));
/// ```
#[derive(Debug, Clone, Default)]
pub struct AllocTracker {
    records: Vec<AllocRecord>,
    /// `(base, end, index)` sorted by base, for binary-search lookup.
    index: Vec<(u64, u64, u32)>,
}

impl AllocTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        AllocTracker::default()
    }

    /// Records an allocation; returns the new object's id.
    pub fn on_mmap(
        &mut self,
        addr: VirtAddr,
        len: u64,
        site: impl Into<Arc<str>>,
        now: u64,
    ) -> ObjectId {
        let id = ObjectId(self.records.len() as u32);
        self.records.push(AllocRecord {
            id,
            addr,
            len,
            alloc_time: now,
            free_time: None,
            site: site.into(),
        });
        let pos = self.index.partition_point(|&(b, _, _)| b < addr.raw());
        self.index.insert(pos, (addr.raw(), addr.raw() + len, id.0));
        id
    }

    /// Records a deallocation of the object based at `addr`. Unknown
    /// addresses are ignored (like intercepting a foreign `munmap`).
    pub fn on_munmap(&mut self, addr: VirtAddr, now: u64) {
        if let Some(rec) = self.records.iter_mut().find(|r| r.addr == addr && r.free_time.is_none())
        {
            rec.free_time = Some(now);
        }
    }

    /// Returns the object containing `addr`, if any.
    pub fn object_at(&self, addr: VirtAddr) -> Option<ObjectId> {
        let pos = self.index.partition_point(|&(b, _, _)| b <= addr.raw());
        let &(base, end, id) = self.index.get(pos.checked_sub(1)?)?;
        (addr.raw() >= base && addr.raw() < end).then_some(ObjectId(id))
    }

    /// Returns the record of an object.
    pub fn record(&self, id: ObjectId) -> Option<&AllocRecord> {
        self.records.get(id.0 as usize)
    }

    /// All records in allocation order.
    pub fn records(&self) -> &[AllocRecord] {
        &self.records
    }

    /// Number of tracked objects.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing has been tracked.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total bytes live at `time`.
    pub fn live_bytes_at(&self, time: u64) -> u64 {
        self.records.iter().filter(|r| r.live_at(time)).map(|r| r.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_containing_object() {
        let mut t = AllocTracker::new();
        let a = t.on_mmap(VirtAddr::new(0x1000), 0x1000, "a", 0);
        let b = t.on_mmap(VirtAddr::new(0x10000), 0x2000, "b", 1);
        assert_eq!(t.object_at(VirtAddr::new(0x1000)), Some(a));
        assert_eq!(t.object_at(VirtAddr::new(0x1fff)), Some(a));
        assert_eq!(t.object_at(VirtAddr::new(0x2000)), None);
        assert_eq!(t.object_at(VirtAddr::new(0x11000)), Some(b));
        assert_eq!(t.object_at(VirtAddr::new(0xfff)), None);
    }

    #[test]
    fn ids_follow_allocation_order() {
        let mut t = AllocTracker::new();
        // Out-of-order bases must not confuse the index.
        let b = t.on_mmap(VirtAddr::new(0x9000), 0x1000, "late", 0);
        let a = t.on_mmap(VirtAddr::new(0x1000), 0x1000, "early", 1);
        assert_eq!(b, ObjectId(0));
        assert_eq!(a, ObjectId(1));
        assert_eq!(t.object_at(VirtAddr::new(0x9000)), Some(b));
        assert_eq!(t.object_at(VirtAddr::new(0x1000)), Some(a));
    }

    #[test]
    fn munmap_sets_free_time_and_liveness() {
        let mut t = AllocTracker::new();
        let id = t.on_mmap(VirtAddr::new(0x1000), 0x1000, "a", 10);
        t.on_munmap(VirtAddr::new(0x1000), 50);
        let r = t.record(id).unwrap();
        assert!(r.live_at(10));
        assert!(r.live_at(49));
        assert!(!r.live_at(50));
        assert!(!r.live_at(5));
    }

    #[test]
    fn unknown_munmap_is_ignored() {
        let mut t = AllocTracker::new();
        t.on_munmap(VirtAddr::new(0xdead000), 1);
        assert!(t.is_empty());
    }

    proptest::proptest! {
        /// Random disjoint allocations: every interior address resolves to
        /// its object, gap addresses resolve to none.
        #[test]
        fn prop_lookup_resolves_disjoint_regions(
            sizes in proptest::collection::vec(1u64..5000, 1..40)
        ) {
            let mut t = AllocTracker::new();
            let mut base = 0x1000u64;
            let mut spans = Vec::new();
            for (i, &len) in sizes.iter().enumerate() {
                let id = t.on_mmap(VirtAddr::new(base), len, format!("o{i}"), i as u64);
                spans.push((base, len, id));
                base += len + 1; // one-byte guard gap
            }
            for &(b, len, id) in &spans {
                proptest::prop_assert_eq!(t.object_at(VirtAddr::new(b)), Some(id));
                proptest::prop_assert_eq!(t.object_at(VirtAddr::new(b + len - 1)), Some(id));
                proptest::prop_assert_eq!(t.object_at(VirtAddr::new(b + len)), None);
            }
        }
    }

    #[test]
    fn live_bytes_timeline() {
        let mut t = AllocTracker::new();
        t.on_mmap(VirtAddr::new(0x1000), 100, "a", 0);
        t.on_mmap(VirtAddr::new(0x8000), 50, "b", 10);
        t.on_munmap(VirtAddr::new(0x1000), 20);
        assert_eq!(t.live_bytes_at(5), 100);
        assert_eq!(t.live_bytes_at(15), 150);
        assert_eq!(t.live_bytes_at(25), 50);
    }
}
