//! Hierarchy-level distribution of samples (paper Fig. 3, Tables 1–3).

use crate::sample::MemSample;
use tiersim_mem::{MemLevel, Tier};

/// Distribution of load samples across hierarchy levels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LevelDistribution {
    /// Sample counts per level (indexed by [`MemLevel::index`]).
    pub counts: [u64; 6],
    /// Total latency cycles per level.
    pub cycles: [u64; 6],
    /// Counts of external samples by `(tier, tlb_miss)`.
    pub external_counts: [[u64; 2]; 2],
    /// Latency cycles of external samples by `(tier, tlb_miss)`.
    pub external_cycles: [[u64; 2]; 2],
}

impl LevelDistribution {
    /// Builds the distribution from load samples (stores are skipped, as
    /// in the paper).
    pub fn of(samples: &[MemSample]) -> LevelDistribution {
        let mut d = LevelDistribution::default();
        for s in samples.iter().filter(|s| !s.is_store) {
            let li = s.level.index();
            d.counts[li] += 1;
            d.cycles[li] += s.latency_cycles;
            if let Some(tier) = s.level.tier() {
                d.external_counts[tier.index()][s.tlb_miss as usize] += 1;
                d.external_cycles[tier.index()][s.tlb_miss as usize] += s.latency_cycles;
            }
        }
        d
    }

    /// Total load samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Samples on one level as a fraction of all samples.
    pub fn fraction(&self, level: MemLevel) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.counts[level.index()] as f64 / self.total() as f64
    }

    /// External (DRAM + NVM) samples.
    pub fn external(&self) -> u64 {
        self.counts[MemLevel::Dram.index()] + self.counts[MemLevel::Nvm.index()]
    }

    /// Fraction of samples outside the caches — Table 1's "Outside
    /// Cache" column and Fig. 3's green bar.
    pub fn external_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.external() as f64 / self.total() as f64
        }
    }

    /// Share of external samples on `tier` — Table 1's "Pages in
    /// DRAM/NVM" columns.
    pub fn tier_share_of_external(&self, tier: Tier) -> f64 {
        if self.external() == 0 {
            return 0.0;
        }
        self.counts[MemLevel::from(tier).index()] as f64 / self.external() as f64
    }

    /// Share of total external *latency cost* attributable to `tier` —
    /// Table 2.
    pub fn tier_share_of_cost(&self, tier: Tier) -> f64 {
        let dram = self.cycles[MemLevel::Dram.index()];
        let nvm = self.cycles[MemLevel::Nvm.index()];
        let total = dram + nvm;
        if total == 0 {
            return 0.0;
        }
        match tier {
            Tier::Dram => dram as f64 / total as f64,
            Tier::Nvm => nvm as f64 / total as f64,
        }
    }

    /// Mean latency of external samples in a `(tier, tlb_miss)` bucket —
    /// Table 3's four columns. `None` if the bucket is empty.
    pub fn mean_external_cost(&self, tier: Tier, tlb_miss: bool) -> Option<f64> {
        let c = self.external_counts[tier.index()][tlb_miss as usize];
        if c == 0 {
            return None;
        }
        Some(self.external_cycles[tier.index()][tlb_miss as usize] as f64 / c as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim_mem::{ThreadId, VirtAddr};

    fn s(level: MemLevel, lat: u64, tlb_miss: bool, is_store: bool) -> MemSample {
        MemSample {
            time_cycles: 0,
            addr: VirtAddr::new(0x1000),
            level,
            latency_cycles: lat,
            tlb_miss,
            thread: ThreadId(0),
            is_store,
        }
    }

    #[test]
    fn distribution_counts_and_fractions() {
        let samples = [
            s(MemLevel::L1, 4, false, false),
            s(MemLevel::L1, 4, false, false),
            s(MemLevel::Dram, 300, false, false),
            s(MemLevel::Nvm, 900, true, false),
            s(MemLevel::Nvm, 2000, true, true), // store: ignored
        ];
        let d = LevelDistribution::of(&samples);
        assert_eq!(d.total(), 4);
        assert_eq!(d.external(), 2);
        assert!((d.external_fraction() - 0.5).abs() < 1e-12);
        assert!((d.fraction(MemLevel::L1) - 0.5).abs() < 1e-12);
        assert!((d.tier_share_of_external(Tier::Dram) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cost_split_weights_by_latency() {
        let samples = [s(MemLevel::Dram, 100, false, false), s(MemLevel::Nvm, 300, false, false)];
        let d = LevelDistribution::of(&samples);
        assert!((d.tier_share_of_cost(Tier::Dram) - 0.25).abs() < 1e-12);
        assert!((d.tier_share_of_cost(Tier::Nvm) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn tlb_buckets_average_independently() {
        let samples = [
            s(MemLevel::Nvm, 1000, false, false),
            s(MemLevel::Nvm, 3000, true, false),
            s(MemLevel::Nvm, 5000, true, false),
        ];
        let d = LevelDistribution::of(&samples);
        assert_eq!(d.mean_external_cost(Tier::Nvm, false), Some(1000.0));
        assert_eq!(d.mean_external_cost(Tier::Nvm, true), Some(4000.0));
        assert_eq!(d.mean_external_cost(Tier::Dram, false), None);
    }

    #[test]
    fn empty_distribution_is_all_zero() {
        let d = LevelDistribution::of(&[]);
        assert_eq!(d.total(), 0);
        assert_eq!(d.external_fraction(), 0.0);
        assert_eq!(d.tier_share_of_cost(Tier::Nvm), 0.0);
    }
}
