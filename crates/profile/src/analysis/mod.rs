//! Analyses over sample traces: one module per paper figure/table family.

pub mod levels;
pub mod pattern;
pub mod reuse;
pub mod timeline;
pub mod top_objects;
pub mod touches;

pub use levels::LevelDistribution;
pub use pattern::AccessPattern;
pub use reuse::{two_touch_reuse, ReuseAnalysis};
pub use timeline::{binned_counts, AllocTimeline};
pub use top_objects::{top_objects, TopObjectRow};
pub use touches::TouchHistogram;
